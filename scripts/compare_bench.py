#!/usr/bin/env python3
"""The perf-gate comparison behind bench/run_benches.sh --compare.

Usage: scripts/compare_bench.py <baseline.json> <fresh.json> [bench-binary]

Compares per-benchmark real_time between a committed BENCH_<suite>.json
baseline and a fresh --compare pass, failing (exit 1) on a regression.
Kept as a standalone script — not a heredoc inside run_benches.sh — so
scripts/ci.sh can unit-test the gate's failure messages against synthetic
suite files without running any benchmark binary.

Fails on a >15% real_time regression *beyond the suite-wide drift*.  On a
shared box the whole suite swings together with tenant load and frequency
scaling (uniform 1.3x drifts observed between recording and comparing), so
per-benchmark ratios are judged against the suite's median ratio: a real
engine regression moves its benchmarks away from the pack, while host
drift moves the pack as one.  The median itself is capped at MAX_DRIFT so
a change that slows *everything* down (e.g. dropping LTO) cannot hide
inside the normalization.

Every refusal names the offending row and the evidence: the debug-build
refusal reports both sides' build types, the drift-cap refusal reports
both suite medians plus the worst-moving row, and the regression verdict
lists each offending row with its baseline and fresh times.
"""

import json
import os
import re
import statistics
import subprocess
import sys
import tempfile

THRESHOLD = 0.15
MAX_DRIFT = 0.50

# Rows still over the bar after drift normalization are re-measured (the
# flagged rows only, same min-of-repetitions protocol) up to RETRIES more
# times, folding each row's new minimum in before the verdict.  Identical
# binaries on a noisy box swing single rows 1.5x between passes, so any
# single-shot verdict flags a different random row each run; a real
# regression reproduces in every pass, while noise eventually loses to its
# own best sample.
RETRIES = 2

# Recorded for the scaling tables but not regression-judged: the parallel
# rows' wall time is dominated by how many cores the host can actually give
# the shards (oversubscribed rows are pure scheduler noise), and the code
# path behind them is already gated through BM_EpidemicDenseCollapsed.
GATE_EXEMPT_PREFIXES = ("BM_CollapsedScaling/",)

# Suites gated on a subset of their rows.  bench_observe exists to price
# observers, and its pricing rows run small-n workloads to *silence*, where
# per-seed convergence variance swings single rows 1.5x between identical
# binaries — only the telemetry rows (budget-bound workloads; the <=2%
# probe-overhead bar for src/telemetry) are stable enough to gate.
# bench_service is likewise gated only on its wire-dispatch rows: the
# registry rows time worker-pool wakeups and thread hand-offs, which swing
# with host scheduler latency rather than code changes.  bench_adaptive's
# n = 2^22+ rows are the EXPERIMENTS.md scaling table — full epidemics,
# seconds per iteration, too few repetitions to gate — so only the 2^20
# rows are judged.
GATE_ONLY_SUBSTRINGS = {"bench_observe": ("Telemetry",),
                        "bench_service": ("Wire",),
                        "bench_adaptive": ("/20",)}


def build_type(data):
    """The binary's build type.  "popproto_build_type" (bench_util.h's
    POPPROTO_BENCHMARK_MAIN, from NDEBUG) is authoritative; the library's
    own "library_build_type" is the fallback for baselines recorded before
    that key existed — misleadingly "debug" wherever the distro ships a
    debug libbenchmark, which is why the custom key wins."""
    ctx = data.get("context", {})
    return ctx.get("popproto_build_type", ctx.get("library_build_type", "unknown"))


def load(path):
    """Parsed JSON plus per-benchmark best real_time (min over repetitions,
    noise-robust)."""
    with open(path) as f:
        data = json.load(f)
    best = {}
    for b in data["benchmarks"]:
        if b.get("run_type", "iteration") == "aggregate":
            continue
        name = b["name"]
        best[name] = min(best.get(name, float("inf")), b["real_time"])
    return data, best


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    baseline_path, fresh_path = sys.argv[1], sys.argv[2]
    bench_bin = sys.argv[3] if len(sys.argv) > 3 else None
    gate_only = next((subs for suite, subs in GATE_ONLY_SUBSTRINGS.items()
                      if suite in baseline_path), None)

    baseline_data, baseline = load(baseline_path)
    fresh_data, fresh = load(fresh_path)

    # Refuse non-release numbers up front: a debug-vs-release diff is
    # meaningless in both directions (stale debug baselines mask real
    # regressions).  Name both sides so the fix — re-record whichever side
    # is wrong — is unambiguous.
    sides = [("committed baseline", baseline_path, build_type(baseline_data)),
             ("fresh run", fresh_path, build_type(fresh_data))]
    for index, (side, path, bt) in enumerate(sides):
        if bt != "release":
            other_side, other_path, other_bt = sides[1 - index]
            print(f"error: the {side} {path} was recorded from a '{bt}' build\n"
                  f"(the {other_side} {other_path} is '{other_bt}'); the perf\n"
                  f"gate only accepts release numbers.  Re-record it from a\n"
                  f"-DCMAKE_BUILD_TYPE=Release build with the\n"
                  f"min-of-repetitions protocol in bench/run_benches.sh's\n"
                  f"header comment.", file=sys.stderr)
            sys.exit(1)

    def is_exempt(name):
        return name.startswith(GATE_EXEMPT_PREFIXES) or (
            gate_only is not None and not any(sub in name for sub in gate_only))

    def evaluate(fresh):
        """Ratios, slowdown-normalized drift, and the gated rows over the bar."""
        ratios = {name: fresh[name] / base_time
                  for name, base_time in baseline.items() if name in fresh}
        raw = statistics.median(ratios.values()) if ratios else 1.0
        # Only normalize by *slowdowns*: a uniformly faster host must not
        # raise the bar for individual benchmarks.
        drift = max(raw, 1.0)
        flagged = [name for name, ratio in ratios.items()
                   if not is_exempt(name) and ratio > drift * (1 + THRESHOLD)]
        return ratios, raw, drift, flagged

    ratios, raw_drift, drift, flagged = evaluate(fresh)
    if raw_drift > 1 + MAX_DRIFT:
        shared = [name for name in baseline if name in fresh]
        base_median = statistics.median(baseline[name] for name in shared)
        fresh_median = statistics.median(fresh[name] for name in shared)
        worst = max(shared, key=lambda name: ratios[name])
        print(f"\nFAIL: suite-wide median ratio {raw_drift:.2f} exceeds the "
              f"{1 + MAX_DRIFT:.2f} drift cap — this is not host noise, the "
              f"whole suite got slower\n"
              f"  suite median real_time: baseline {base_median:.1f}, "
              f"fresh {fresh_median:.1f}\n"
              f"  worst row: {worst}: {baseline[worst]:.1f} -> "
              f"{fresh[worst]:.1f} ({ratios[worst]:.2f}x)", file=sys.stderr)
        sys.exit(1)

    retried = set()
    for _ in range(RETRIES):
        if not flagged or bench_bin is None:
            break
        retried.update(flagged)
        pattern = "^(" + "|".join(re.escape(name) for name in flagged) + ")$"
        fd, retry_path = tempfile.mkstemp(suffix=".json")
        os.close(fd)
        try:
            subprocess.run(
                [bench_bin, f"--benchmark_filter={pattern}",
                 "--benchmark_min_time=0.05", "--benchmark_repetitions=5",
                 "--benchmark_format=json", f"--benchmark_out={retry_path}",
                 "--benchmark_out_format=json"],
                check=True, stdout=subprocess.DEVNULL)
            for name, best in load(retry_path)[1].items():
                fresh[name] = min(fresh.get(name, float("inf")), best)
        finally:
            os.unlink(retry_path)
        ratios, raw_drift, drift, flagged = evaluate(fresh)

    regressions = []
    width = max(map(len, baseline), default=4)
    print(f"suite-wide median ratio (host drift): {drift:.2f}")
    if retried:
        print(f"re-measured {len(retried)} flagged row(s), keeping each row's "
              f"best time across passes")
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}  {'ratio':>6}")
    for name, base_time in sorted(baseline.items()):
        if name not in fresh:
            print(f"{name:<{width}}  {base_time:>12.1f}  {'MISSING':>12}")
            regressions.append((name, None))
            continue
        ratio = ratios[name]
        exempt = is_exempt(name)
        bad = not exempt and ratio > drift * (1 + THRESHOLD)
        flag = "  <-- REGRESSION" if bad else ("  (not gated)" if exempt else "")
        print(f"{name:<{width}}  {base_time:>12.1f}  {fresh[name]:>12.1f}  {ratio:>6.2f}{flag}")
        if bad:
            regressions.append((name, ratio))

    if regressions:
        shared = [name for name in baseline if name in fresh]
        base_median = statistics.median(baseline[name] for name in shared)
        fresh_median = statistics.median(fresh[name] for name in shared)
        lines = []
        for name, ratio in regressions:
            if ratio is None:
                lines.append(f"  {name}: present in the baseline but MISSING "
                             f"from the fresh run")
            else:
                lines.append(f"  {name}: {baseline[name]:.1f} -> "
                             f"{fresh[name]:.1f} ({ratio:.2f}x, bar "
                             f"{drift * (1 + THRESHOLD):.2f}x)")
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed by more "
              f"than {THRESHOLD:.0%} beyond the {drift:.2f} suite drift "
              f"against {baseline_path}\n" + "\n".join(lines) + "\n"
              f"  suite median real_time: baseline {base_median:.1f}, "
              f"fresh {fresh_median:.1f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nOK: all benchmarks within {THRESHOLD:.0%} of the committed baseline "
          f"(after {drift:.2f} drift normalization)")


if __name__ == "__main__":
    main()
