#!/usr/bin/env python3
"""Validates the two `trace_run --profile` artifacts.

Usage: scripts/check_telemetry.py <base>.trace.json <base>.prom [<run>.jsonl]

Holds the Chrome trace-event JSON and the Prometheus text exposition to the
schema documented in DESIGN.md "Telemetry" — the CI smoke stage
(scripts/ci.sh) runs a short collapsed threads=4 profile and feeds both
files through here, so an exporter regression fails the gate instead of
producing a file Perfetto silently refuses to load.

Checks (exit 1 with a message on the first violation):

  Chrome trace: parses as JSON; has displayTimeUnit, otherData with
  schema_version/engine/population, and a non-empty traceEvents array;
  every event is a complete ("X", with ts/dur/name/tid) or metadata ("M")
  event; per tid, complete events nest properly (no half-overlaps — that
  is what makes the flame graph render as a stack).

  Prometheus: every line is a comment or `name{labels} value` with a
  finite float value; every # TYPE names a popproto_* family that then
  appears; the families the ISSUE promises (run info, per-phase seconds,
  per-shard busy/wait) are present.

  JSONL (optional third argument; the trace_run stdout of an *adaptive*
  run): every engine_switch event is well-formed (monotone t, switch_index
  counting from 1, from != to, consecutive switches chaining from -> to,
  signal on the firing side of its threshold); the telemetry event's
  engine_segments agree with the switch events (count, engine chain) and
  attribute every interaction of the final stop event to exactly one
  segment; and the Prometheus exposition carries the per-engine families
  (popproto_engine_switches_total, popproto_engine_segment_*).
"""

import json
import math
import re
import sys


def fail(message: str) -> None:
    print(f"check_telemetry: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> None:
    with open(path) as f:
        try:
            trace = json.load(f)
        except json.JSONDecodeError as error:
            fail(f"{path} is not valid JSON: {error}")

    for key in ("displayTimeUnit", "otherData", "traceEvents"):
        if key not in trace:
            fail(f"{path}: missing top-level key {key!r}")
    for key in ("schema_version", "engine", "population", "threads"):
        if key not in trace["otherData"]:
            fail(f"{path}: otherData missing {key!r}")

    events = trace["traceEvents"]
    if not events:
        fail(f"{path}: traceEvents is empty")

    spans_by_tid = {}
    for event in events:
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") != "thread_name":
                fail(f"{path}: unexpected metadata event {event}")
            continue
        if ph != "X":
            fail(f"{path}: unexpected event phase {ph!r} in {event}")
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in event:
                fail(f"{path}: complete event missing {key!r}: {event}")
        if event["dur"] < 0:
            fail(f"{path}: negative duration in {event}")
        spans_by_tid.setdefault(event["tid"], []).append(
            (event["ts"], event["ts"] + event["dur"], event["name"]))

    if not spans_by_tid:
        fail(f"{path}: no complete ('X') events")

    # Proper nesting per thread: sweep spans in (start, -end) order and
    # keep a stack; a span must close inside whatever span contains it.
    for tid, spans in spans_by_tid.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []
        for begin, end, name in spans:
            while stack and stack[-1][1] <= begin:
                stack.pop()
            if stack and end > stack[-1][1]:
                fail(f"{path}: tid {tid}: span {name!r} [{begin}, {end}) "
                     f"half-overlaps {stack[-1][2]!r} "
                     f"[{stack[-1][0]}, {stack[-1][1]})")
            stack.append((begin, end, name))

    print(f"check_telemetry: {path}: "
          f"{sum(len(s) for s in spans_by_tid.values())} spans over "
          f"{len(spans_by_tid)} threads, properly nested")


LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[^ ]+)$")
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"$')

REQUIRED_FAMILIES = (
    "popproto_run_info",
    "popproto_run_wall_seconds",
    "popproto_run_interactions_total",
    "popproto_phase_seconds_total",
    "popproto_phase_calls_total",
)

# Only the sharded (threads > 1) collapsed profile emits these; the
# adaptive dispatcher is serial, so its profile legitimately lacks them.
SHARDED_FAMILIES = (
    "popproto_shard_busy_seconds_total",
    "popproto_shard_wait_seconds_total",
    "popproto_pool_rounds_total",
)


ADAPTIVE_FAMILIES = (
    "popproto_engine_switches_total",
    "popproto_engine_segment_seconds_total",
    "popproto_engine_segment_interactions_total",
)


def check_prometheus(path: str, adaptive: bool = False) -> None:
    with open(path) as f:
        text = f.read()
    if not text.endswith("\n"):
        fail(f"{path}: exposition must end with a newline")

    typed = set()
    seen = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 3 and parts[1] == "TYPE":
                typed.add(parts[2])
            continue
        match = LINE_RE.match(line)
        if match is None:
            fail(f"{path}:{lineno}: not `name{{labels}} value`: {line!r}")
        labels = match.group("labels")
        if labels:
            for label in labels.split(","):
                if not LABEL_RE.match(label):
                    fail(f"{path}:{lineno}: bad label {label!r}")
        try:
            value = float(match.group("value"))
        except ValueError:
            fail(f"{path}:{lineno}: non-numeric value: {line!r}")
        if math.isnan(value):
            fail(f"{path}:{lineno}: NaN value: {line!r}")
        seen.add(match.group("name"))

    required = REQUIRED_FAMILIES + (ADAPTIVE_FAMILIES if adaptive
                                    else SHARDED_FAMILIES)
    for family in required:
        # Histogram samples append _bucket/_sum/_count to the family name.
        if not any(name == family or name.startswith(family + "_") for name in seen):
            fail(f"{path}: required metric family {family!r} missing")
    for family in typed:
        if not any(name == family or name.startswith(family + "_") for name in seen):
            fail(f"{path}: # TYPE {family} declared but no sample emitted")

    print(f"check_telemetry: {path}: {len(seen)} metric names, "
          f"{len(typed)} typed families, all well-formed")


SWITCH_KEYS = ("t", "from", "to", "signal", "enter_threshold",
               "exit_threshold", "switch_index")


def check_adaptive_jsonl(path: str) -> None:
    """Validates the engine_switch events and per-engine attribution of an
    adaptive trace_run JSONL stream (requires --profile, for the telemetry
    event)."""
    switches = []
    telemetry = None
    stop = None
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                fail(f"{path}:{lineno}: not valid JSON: {error}")
            kind = event.get("event")
            if kind == "engine_switch":
                for key in SWITCH_KEYS:
                    if key not in event:
                        fail(f"{path}:{lineno}: engine_switch missing {key!r}")
                switches.append(event)
            elif kind == "telemetry":
                telemetry = event
            elif kind == "stop":
                stop = event

    if not switches:
        fail(f"{path}: no engine_switch events — the smoke workload is "
             f"expected to cross both thresholds")
    if stop is None:
        fail(f"{path}: no stop event")
    for index, switch in enumerate(switches):
        where = f"{path}: engine_switch #{index + 1}"
        if switch["switch_index"] != index + 1:
            fail(f"{where}: switch_index {switch['switch_index']}, "
                 f"expected {index + 1}")
        if switch["from"] == switch["to"]:
            fail(f"{where}: degenerate switch {switch['from']} -> {switch['to']}")
        if index > 0:
            if switch["t"] <= switches[index - 1]["t"]:
                fail(f"{where}: t {switch['t']} not after previous switch at "
                     f"{switches[index - 1]['t']}")
            if switch["from"] != switches[index - 1]["to"]:
                fail(f"{where}: from {switch['from']!r} does not chain with "
                     f"previous switch to {switches[index - 1]['to']!r}")
        # The signal must sit on the firing side of its hysteresis bound.
        if switch["to"] == "collapsed" and switch["signal"] < switch["enter_threshold"]:
            fail(f"{where}: entered collapsed at signal {switch['signal']} "
                 f"below enter_threshold {switch['enter_threshold']}")
        if switch["to"] == "count_batch" and switch["signal"] > switch["exit_threshold"]:
            fail(f"{where}: exited collapsed at signal {switch['signal']} "
                 f"above exit_threshold {switch['exit_threshold']}")

    if telemetry is None:
        fail(f"{path}: no telemetry event (run trace_run with --profile)")
    segments = telemetry.get("engine_segments")
    if not segments:
        fail(f"{path}: telemetry event has no engine_segments")
    if telemetry.get("engine_switches") != len(switches):
        fail(f"{path}: telemetry engine_switches "
             f"{telemetry.get('engine_switches')} != {len(switches)} "
             f"engine_switch events")
    if len(segments) != len(switches) + 1:
        fail(f"{path}: {len(segments)} engine_segments for {len(switches)} "
             f"switches (want switches + 1)")
    for index, switch in enumerate(switches):
        if segments[index]["engine"] != switch["from"]:
            fail(f"{path}: segment {index} ran {segments[index]['engine']!r} "
                 f"but switch #{index + 1} left {switch['from']!r}")
        if segments[index + 1]["engine"] != switch["to"]:
            fail(f"{path}: segment {index + 1} ran "
                 f"{segments[index + 1]['engine']!r} but switch #{index + 1} "
                 f"entered {switch['to']!r}")
    attributed = sum(segment["interactions"] for segment in segments)
    if attributed != stop["interactions"]:
        fail(f"{path}: engine_segments attribute {attributed} interactions, "
             f"stop event reports {stop['interactions']}")

    print(f"check_telemetry: {path}: {len(switches)} engine switches, "
          f"{len(segments)} segments, every interaction attributed")


def main() -> None:
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_trace(sys.argv[1])
    check_prometheus(sys.argv[2], adaptive=len(sys.argv) == 4)
    if len(sys.argv) == 4:
        check_adaptive_jsonl(sys.argv[3])
    print("check_telemetry: OK")


if __name__ == "__main__":
    main()
