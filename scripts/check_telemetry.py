#!/usr/bin/env python3
"""Validates the two `trace_run --profile` artifacts.

Usage: scripts/check_telemetry.py <base>.trace.json <base>.prom

Holds the Chrome trace-event JSON and the Prometheus text exposition to the
schema documented in DESIGN.md "Telemetry" — the CI smoke stage
(scripts/ci.sh) runs a short collapsed threads=4 profile and feeds both
files through here, so an exporter regression fails the gate instead of
producing a file Perfetto silently refuses to load.

Checks (exit 1 with a message on the first violation):

  Chrome trace: parses as JSON; has displayTimeUnit, otherData with
  schema_version/engine/population, and a non-empty traceEvents array;
  every event is a complete ("X", with ts/dur/name/tid) or metadata ("M")
  event; per tid, complete events nest properly (no half-overlaps — that
  is what makes the flame graph render as a stack).

  Prometheus: every line is a comment or `name{labels} value` with a
  finite float value; every # TYPE names a popproto_* family that then
  appears; the families the ISSUE promises (run info, per-phase seconds,
  per-shard busy/wait) are present.
"""

import json
import math
import re
import sys


def fail(message: str) -> None:
    print(f"check_telemetry: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> None:
    with open(path) as f:
        try:
            trace = json.load(f)
        except json.JSONDecodeError as error:
            fail(f"{path} is not valid JSON: {error}")

    for key in ("displayTimeUnit", "otherData", "traceEvents"):
        if key not in trace:
            fail(f"{path}: missing top-level key {key!r}")
    for key in ("schema_version", "engine", "population", "threads"):
        if key not in trace["otherData"]:
            fail(f"{path}: otherData missing {key!r}")

    events = trace["traceEvents"]
    if not events:
        fail(f"{path}: traceEvents is empty")

    spans_by_tid = {}
    for event in events:
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") != "thread_name":
                fail(f"{path}: unexpected metadata event {event}")
            continue
        if ph != "X":
            fail(f"{path}: unexpected event phase {ph!r} in {event}")
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in event:
                fail(f"{path}: complete event missing {key!r}: {event}")
        if event["dur"] < 0:
            fail(f"{path}: negative duration in {event}")
        spans_by_tid.setdefault(event["tid"], []).append(
            (event["ts"], event["ts"] + event["dur"], event["name"]))

    if not spans_by_tid:
        fail(f"{path}: no complete ('X') events")

    # Proper nesting per thread: sweep spans in (start, -end) order and
    # keep a stack; a span must close inside whatever span contains it.
    for tid, spans in spans_by_tid.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []
        for begin, end, name in spans:
            while stack and stack[-1][1] <= begin:
                stack.pop()
            if stack and end > stack[-1][1]:
                fail(f"{path}: tid {tid}: span {name!r} [{begin}, {end}) "
                     f"half-overlaps {stack[-1][2]!r} "
                     f"[{stack[-1][0]}, {stack[-1][1]})")
            stack.append((begin, end, name))

    print(f"check_telemetry: {path}: "
          f"{sum(len(s) for s in spans_by_tid.values())} spans over "
          f"{len(spans_by_tid)} threads, properly nested")


LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[^ ]+)$")
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"$')

REQUIRED_FAMILIES = (
    "popproto_run_info",
    "popproto_run_wall_seconds",
    "popproto_run_interactions_total",
    "popproto_phase_seconds_total",
    "popproto_phase_calls_total",
    "popproto_shard_busy_seconds_total",
    "popproto_shard_wait_seconds_total",
    "popproto_pool_rounds_total",
)


def check_prometheus(path: str) -> None:
    with open(path) as f:
        text = f.read()
    if not text.endswith("\n"):
        fail(f"{path}: exposition must end with a newline")

    typed = set()
    seen = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 3 and parts[1] == "TYPE":
                typed.add(parts[2])
            continue
        match = LINE_RE.match(line)
        if match is None:
            fail(f"{path}:{lineno}: not `name{{labels}} value`: {line!r}")
        labels = match.group("labels")
        if labels:
            for label in labels.split(","):
                if not LABEL_RE.match(label):
                    fail(f"{path}:{lineno}: bad label {label!r}")
        try:
            value = float(match.group("value"))
        except ValueError:
            fail(f"{path}:{lineno}: non-numeric value: {line!r}")
        if math.isnan(value):
            fail(f"{path}:{lineno}: NaN value: {line!r}")
        seen.add(match.group("name"))

    for family in REQUIRED_FAMILIES:
        # Histogram samples append _bucket/_sum/_count to the family name.
        if not any(name == family or name.startswith(family + "_") for name in seen):
            fail(f"{path}: required metric family {family!r} missing")
    for family in typed:
        if not any(name == family or name.startswith(family + "_") for name in seen):
            fail(f"{path}: # TYPE {family} declared but no sample emitted")

    print(f"check_telemetry: {path}: {len(seen)} metric names, "
          f"{len(typed)} typed families, all well-formed")


def main() -> None:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_trace(sys.argv[1])
    check_prometheus(sys.argv[2])
    print("check_telemetry: OK")


if __name__ == "__main__":
    main()
