#!/usr/bin/env bash
# The full pre-merge gate, in one command:
#
#   1. plain build + full ctest suite            (functional correctness)
#   2. bench/run_benches.sh --smoke              (every gbench suite runs;
#                                                 JSON goes to the build
#                                                 tree, recorded BENCH_*.json
#                                                 at the root are untouched)
#   3. trace_run --profile smoke                 (a short collapsed threads=4
#                                                 profile; both exporter
#                                                 artifacts validated by
#                                                 scripts/check_telemetry.py)
#   4. scripts/check_service.py                  (service smoke: trace_run
#                                                 SIGINT checkpointing, 1000
#                                                 concurrent daemon sessions,
#                                                 suspend/evict/resume and
#                                                 SIGTERM drain bit-identity)
#   5. bench/run_benches.sh --compare            (perf gate: bench_throughput,
#                                                 bench_collapsed, and
#                                                 bench_observe — including
#                                                 the telemetry overhead rows
#                                                 — within 15% of the
#                                                 committed release baselines)
#   6. scripts/check.sh                          (asan+ubsan build + ctest)
#   7. scripts/check.sh --tsan                   (ThreadSanitizer build over
#                                                 the parallel-engine tests)
#
# Usage: scripts/ci.sh [build-dir]
#   build-dir  defaults to <repo>/build; the sanitizer stages always use
#              their own <repo>/build-check{,-tsan} trees (see check.sh).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"

echo "ci.sh: [1/7] plain build + tests"
cmake -B "$BUILD_DIR" -S "$ROOT"
cmake --build "$BUILD_DIR" -j "$(nproc)"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

echo "ci.sh: [2/7] benchmark smoke pass"
"$ROOT/bench/run_benches.sh" --smoke "$BUILD_DIR"

echo "ci.sh: [3/7] telemetry profile smoke"
# A collapsed threads=4 profile exercises every probe family — phase
# timers, shard busy/wait, super-step accounting — and the checker holds
# both exporter artifacts to the DESIGN.md schema.  n = 2^20 so super-steps
# (~0.63 sqrt(n) = 645 pairs) clear the pooled-dispatch threshold
# (kMinPairsPerWorker * 4 = 256) and the shard lanes actually populate;
# the run still finishes in well under a second.  Artifacts land next to
# the bench smoke JSON, never at the repository root.
PROFILE_DIR="$BUILD_DIR/bench/smoke"
mkdir -p "$PROFILE_DIR"
"$BUILD_DIR/examples/trace_run" epidemic --n 1048576 --engine collapsed --threads 4 \
    --no-counts --profile "$PROFILE_DIR/telemetry_smoke" > /dev/null
python3 "$ROOT/scripts/check_telemetry.py" \
    "$PROFILE_DIR/telemetry_smoke.trace.json" "$PROFILE_DIR/telemetry_smoke.prom"

echo "ci.sh: [4/7] service end-to-end smoke"
# Drives the real serve_popproto/popctl/trace_run binaries over a Unix
# socket: 1000 concurrent sessions all reach terminal states, suspends
# spill and fault back bit-identically, and a SIGTERM drain + restart
# loses nothing (EXPERIMENTS.md quotes the printed throughput numbers).
python3 "$ROOT/scripts/check_service.py" "$BUILD_DIR" --sessions 1000

echo "ci.sh: [5/7] benchmark perf gate"
"$ROOT/bench/run_benches.sh" --compare "$BUILD_DIR"

echo "ci.sh: [6/7] sanitized suite"
"$ROOT/scripts/check.sh"

echo "ci.sh: [7/7] data-race gate"
"$ROOT/scripts/check.sh" --tsan

echo "ci.sh: all gates passed"
