#!/usr/bin/env bash
# The full pre-merge gate, in one command:
#
#   1. plain build + full ctest suite            (functional correctness)
#   2. perf-gate message self-test               (scripts/compare_bench.py
#                                                 against synthetic suites:
#                                                 the debug refusal, drift
#                                                 cap, and regression verdict
#                                                 each name the offending row
#                                                 and both medians)
#   3. bench/run_benches.sh --smoke              (every gbench suite runs;
#                                                 JSON goes to the build
#                                                 tree, recorded BENCH_*.json
#                                                 at the root are untouched)
#   4. trace_run --profile smoke                 (a short collapsed threads=4
#                                                 profile plus an adaptive
#                                                 profile with its JSONL
#                                                 switch events; all
#                                                 artifacts validated by
#                                                 scripts/check_telemetry.py)
#   5. scripts/check_service.py                  (service smoke: trace_run
#                                                 SIGINT checkpointing, 1000
#                                                 concurrent daemon sessions,
#                                                 suspend/evict/resume and
#                                                 SIGTERM drain bit-identity)
#   6. bench/run_benches.sh --compare            (perf gate: bench_throughput,
#                                                 bench_collapsed,
#                                                 bench_observe — including
#                                                 the telemetry overhead rows
#                                                 — and bench_adaptive's 2^20
#                                                 rows within 15% of the
#                                                 committed release baselines)
#   7. scripts/check.sh                          (asan+ubsan build + ctest)
#   8. scripts/check.sh --tsan                   (ThreadSanitizer build over
#                                                 the parallel-engine tests)
#
# Usage: scripts/ci.sh [build-dir]
#   build-dir  defaults to <repo>/build; the sanitizer stages always use
#              their own <repo>/build-check{,-tsan} trees (see check.sh).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"

echo "ci.sh: [1/8] plain build + tests"
cmake -B "$BUILD_DIR" -S "$ROOT"
cmake --build "$BUILD_DIR" -j "$(nproc)"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

echo "ci.sh: [2/8] perf-gate message self-test"
# The gate's refusals must carry enough evidence to act on — the offending
# benchmark row and both suite medians — so regressions in the messages
# themselves are caught here, against synthetic suite JSONs (no benchmark
# binaries involved; see scripts/compare_bench.py).
GATE_TMP="$(mktemp -d)"
trap 'rm -rf "$GATE_TMP"' EXIT
write_suite() { # <path> <build-type> <timeA> <timeB> <timeC>
    cat > "$1" <<JSON
{"context": {"popproto_build_type": "$2"},
 "benchmarks": [
   {"name": "BM_GateSelfTest_A", "run_type": "iteration", "real_time": $3},
   {"name": "BM_GateSelfTest_B", "run_type": "iteration", "real_time": $4},
   {"name": "BM_GateSelfTest_C", "run_type": "iteration", "real_time": $5}]}
JSON
}
write_suite "$GATE_TMP/release_base.json" release 100 100 100
write_suite "$GATE_TMP/debug_base.json"   debug   100 100 100
write_suite "$GATE_TMP/steady.json"       release 101  99 100
write_suite "$GATE_TMP/drifted.json"      release 200 200 210
write_suite "$GATE_TMP/regressed.json"    release 101  99 300
expect_gate_failure() { # <label> <baseline> <fresh> <required grep...>
    local label="$1" base="$2" fresh="$3"
    shift 3
    local out
    if out="$(python3 "$ROOT/scripts/compare_bench.py" "$base" "$fresh" 2>&1)"; then
        echo "ci.sh: FAIL: perf gate accepted the $label case" >&2
        exit 1
    fi
    for needle in "$@"; do
        if ! grep -qF -- "$needle" <<< "$out"; then
            echo "ci.sh: FAIL: $label verdict does not mention '$needle':" >&2
            echo "$out" >&2
            exit 1
        fi
    done
}
# A clean pass stays a pass.
python3 "$ROOT/scripts/compare_bench.py" "$GATE_TMP/release_base.json" \
    "$GATE_TMP/steady.json" > /dev/null
# The debug refusal names both sides' build types.
expect_gate_failure "debug-baseline" "$GATE_TMP/debug_base.json" \
    "$GATE_TMP/steady.json" "debug_base.json" "'debug'" "'release'"
# The drift cap names both suite medians and the worst-moving row.
expect_gate_failure "drift-cap" "$GATE_TMP/release_base.json" \
    "$GATE_TMP/drifted.json" "baseline 100.0" "fresh 200.0" "BM_GateSelfTest_C"
# The regression verdict names the offending row with both its times and
# the suite medians.
expect_gate_failure "regression" "$GATE_TMP/release_base.json" \
    "$GATE_TMP/regressed.json" "BM_GateSelfTest_C: 100.0 -> 300.0" \
    "baseline 100.0" "fresh 101.0"
rm -rf "$GATE_TMP"
trap - EXIT
echo "ci.sh: perf-gate messages name rows and medians in all three refusals"

echo "ci.sh: [3/8] benchmark smoke pass"
"$ROOT/bench/run_benches.sh" --smoke "$BUILD_DIR"

echo "ci.sh: [4/8] telemetry profile smoke"
# A collapsed threads=4 profile exercises every probe family — phase
# timers, shard busy/wait, super-step accounting — and the checker holds
# both exporter artifacts to the DESIGN.md schema.  n = 2^20 so super-steps
# (~0.63 sqrt(n) = 645 pairs) clear the pooled-dispatch threshold
# (kMinPairsPerWorker * 4 = 256) and the shard lanes actually populate;
# the run still finishes in well under a second.  Artifacts land next to
# the bench smoke JSON, never at the repository root.
PROFILE_DIR="$BUILD_DIR/bench/smoke"
mkdir -p "$PROFILE_DIR"
"$BUILD_DIR/examples/trace_run" epidemic --n 1048576 --engine collapsed --threads 4 \
    --no-counts --profile "$PROFILE_DIR/telemetry_smoke" > /dev/null
python3 "$ROOT/scripts/check_telemetry.py" \
    "$PROFILE_DIR/telemetry_smoke.trace.json" "$PROFILE_DIR/telemetry_smoke.prom"
# The same single-seed workload under the adaptive dispatcher crosses both
# hysteresis thresholds (sparse -> dense -> sparse), so the checker can
# validate the engine_switch JSONL events, the per-engine segment
# attribution, and the adaptive Prometheus families end to end.
"$BUILD_DIR/examples/trace_run" epidemic --n 1048576 --adaptive \
    --no-counts --profile "$PROFILE_DIR/telemetry_adaptive" \
    > "$PROFILE_DIR/telemetry_adaptive.jsonl"
python3 "$ROOT/scripts/check_telemetry.py" \
    "$PROFILE_DIR/telemetry_adaptive.trace.json" \
    "$PROFILE_DIR/telemetry_adaptive.prom" \
    "$PROFILE_DIR/telemetry_adaptive.jsonl"

echo "ci.sh: [5/8] service end-to-end smoke"
# Drives the real serve_popproto/popctl/trace_run binaries over a Unix
# socket: 1000 concurrent sessions all reach terminal states, suspends
# spill and fault back bit-identically, and a SIGTERM drain + restart
# loses nothing (EXPERIMENTS.md quotes the printed throughput numbers).
python3 "$ROOT/scripts/check_service.py" "$BUILD_DIR" --sessions 1000

echo "ci.sh: [6/8] benchmark perf gate"
"$ROOT/bench/run_benches.sh" --compare "$BUILD_DIR"

echo "ci.sh: [7/8] sanitized suite"
"$ROOT/scripts/check.sh"

echo "ci.sh: [8/8] data-race gate"
"$ROOT/scripts/check.sh" --tsan

echo "ci.sh: all gates passed"
