#!/usr/bin/env bash
# The full pre-merge gate, in one command:
#
#   1. plain build + full ctest suite            (functional correctness)
#   2. bench/run_benches.sh --smoke              (every gbench suite runs;
#                                                 JSON goes to the build
#                                                 tree, recorded BENCH_*.json
#                                                 at the root are untouched)
#   3. bench/run_benches.sh --compare            (perf gate: bench_throughput
#                                                 and bench_collapsed within
#                                                 15% of the committed
#                                                 release baselines)
#   4. scripts/check.sh                          (asan+ubsan build + ctest)
#   5. scripts/check.sh --tsan                   (ThreadSanitizer build over
#                                                 the parallel-engine tests)
#
# Usage: scripts/ci.sh [build-dir]
#   build-dir  defaults to <repo>/build; the sanitizer stages always use
#              their own <repo>/build-check{,-tsan} trees (see check.sh).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"

echo "ci.sh: [1/5] plain build + tests"
cmake -B "$BUILD_DIR" -S "$ROOT"
cmake --build "$BUILD_DIR" -j "$(nproc)"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

echo "ci.sh: [2/5] benchmark smoke pass"
"$ROOT/bench/run_benches.sh" --smoke "$BUILD_DIR"

echo "ci.sh: [3/5] benchmark perf gate"
"$ROOT/bench/run_benches.sh" --compare "$BUILD_DIR"

echo "ci.sh: [4/5] sanitized suite"
"$ROOT/scripts/check.sh"

echo "ci.sh: [5/5] data-race gate"
"$ROOT/scripts/check.sh" --tsan

echo "ci.sh: all gates passed"
