#!/usr/bin/env python3
"""End-to-end smoke test for the simulation service (src/service).

Usage: scripts/check_service.py <build-dir> [--sessions N]

Drives the real binaries the way an operator would and fails (exit 1) on
the first violated guarantee:

  1. trace_run signal handling: SIGINT mid-run with --checkpoint exits
     cleanly with a final checkpoint, and --resume from that file finishes
     with a stop event identical to the uninterrupted run's.
  2. serve_popproto + popctl: N (default 1000) concurrent sessions
     submitted over the Unix socket all reach a terminal state; the
     sustained throughput and submit->done latency percentiles are printed
     (the EXPERIMENTS.md "Service throughput" table quotes these).
  3. suspend -> evict -> resume: with --max-resident 0 every suspend
     spills to the checkpoint store; the resumed run's final counters are
     bit-identical to an uninterrupted session with the same spec.
  4. SIGTERM drain + restart: the daemon checkpoints every in-flight
     session on SIGTERM; a fresh daemon over the same spill directory
     restores them, finishes the interrupted run bit-identically, and
     preserves terminal sessions verbatim.
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

TERMINAL_STATES = {"done", "failed", "cancelled"}

# Dense agent-array work, 128 quanta: long enough that suspends, drains,
# and restarts reliably land mid-run, short enough to finish in seconds.
# The budget (8n) sits well below the epidemic's ~16n silence point, so
# the run is budget-bound — it cannot converge early and shrink the
# window the suspend/drain stages race against.
LONG_SPEC = {
    "protocol": "epidemic",
    "counts": [(1 << 20) - 1, 1],
    "engine": "agent",
    "quantum": 1 << 16,
    "budget": 128 << 16,
}

# The status fields two bit-identical runs must agree on.
IDENTITY_FIELDS = (
    "state",
    "interactions",
    "effective_interactions",
    "last_output_change",
    "stop_reason",
    "consensus",
)


def fail(message: str) -> None:
    print(f"check_service: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


class Client:
    """Blocking newline-delimited JSON client, mirroring ServiceClient."""

    def __init__(self, path: str):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(path)
        self.file = self.sock.makefile("rwb")

    def request(self, obj: dict) -> dict:
        self.file.write((json.dumps(obj) + "\n").encode())
        self.file.flush()
        line = self.file.readline()
        if not line:
            fail(f"daemon closed the connection answering {obj}")
        return json.loads(line)

    def ok(self, obj: dict) -> dict:
        response = self.request(obj)
        if not response.get("ok"):
            fail(f"request {obj} failed: {response}")
        return response

    def close(self) -> None:
        self.file.close()
        self.sock.close()


def wait_status(client: Client, session: str, predicate, what: str,
                timeout: float = 60.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        status = client.ok({"cmd": "status", "session": session})
        if predicate(status):
            return status
        if time.monotonic() > deadline:
            fail(f"timed out waiting for {what} on {session}: {status}")
        time.sleep(0.002)


def is_terminal(status: dict) -> bool:
    return status.get("state") in TERMINAL_STATES


def identity(status: dict) -> dict:
    return {key: status.get(key) for key in IDENTITY_FIELDS}


def expect_identical(a: dict, b: dict, what: str) -> None:
    if identity(a) != identity(b):
        fail(f"{what}: runs diverged:\n  {identity(a)}\n  {identity(b)}")


def start_daemon(build_dir: str, sock_path: str, spill_dir: str) -> subprocess.Popen:
    daemon = subprocess.Popen(
        [
            os.path.join(build_dir, "examples", "serve_popproto"),
            "--socket", sock_path,
            "--spill-dir", spill_dir,
            "--workers", "4",
            "--max-resident", "0",  # every suspend spills: exercises eviction
            "--quiet",
        ],
    )
    deadline = time.monotonic() + 10
    while not os.path.exists(sock_path):
        if daemon.poll() is not None or time.monotonic() > deadline:
            fail("serve_popproto did not come up")
        time.sleep(0.01)
    return daemon


def check_trace_run_signals(build_dir: str, work_dir: str) -> None:
    trace_run = os.path.join(build_dir, "examples", "trace_run")
    ckpt = os.path.join(work_dir, "interrupt.ckpt")
    # Budget-bound (8n, below the ~16n silence point): ~1.3 s of work, so
    # the SIGINT at 0.3 s reliably lands mid-run.
    flags = ["epidemic", "--n", "2097152", "--engine", "agent",
             "--budget", "16777216", "--seed", "9"]

    with open(os.path.join(work_dir, "part1.jsonl"), "wb") as out:
        proc = subprocess.Popen([trace_run, *flags, "--checkpoint", ckpt],
                                stdout=out, stderr=subprocess.PIPE)
        time.sleep(0.3)
        proc.send_signal(signal.SIGINT)
        _, stderr = proc.communicate(timeout=60)
    if proc.returncode != 0:
        fail(f"trace_run exited {proc.returncode} on SIGINT: {stderr.decode()}")
    if b"interrupted at" not in stderr:
        fail(f"trace_run finished before the SIGINT landed; raise the budget "
             f"(stderr: {stderr.decode()!r})")
    if not os.path.exists(ckpt):
        fail("trace_run reported a checkpoint but wrote none")

    def final_stop_event(args: list) -> dict:
        lines = subprocess.run([trace_run, *args], check=True,
                               capture_output=True).stdout.splitlines()
        event = json.loads(lines[-1])
        if event.get("event") != "stop":
            fail(f"trace_run did not end with a stop event: {event}")
        event.pop("wall_seconds", None)  # the only legitimately varying field
        return event

    resumed = final_stop_event([*flags, "--resume", ckpt])
    uninterrupted = final_stop_event(flags)
    if resumed != uninterrupted:
        fail(f"SIGINT + resume diverged from the uninterrupted run:\n"
             f"  resumed:       {resumed}\n  uninterrupted: {uninterrupted}")
    print("check_service: trace_run SIGINT -> checkpoint -> resume is bit-identical")


def check_throughput(client: Client, sessions: int) -> None:
    spec = {"protocol": "epidemic", "counts": [63, 1], "engine": "agent"}
    submitted_at = {}
    start = time.monotonic()
    for i in range(sessions):
        response = client.ok({"cmd": "submit", **spec, "seed": i + 1})
        submitted_at[response["session"]] = time.monotonic()

    done_at = {}
    deadline = time.monotonic() + 120
    while len(done_at) < sessions:
        if time.monotonic() > deadline:
            fail(f"only {len(done_at)}/{sessions} sessions finished in 120 s")
        now = time.monotonic()
        listing = client.ok({"cmd": "list"})
        for status in listing["sessions"]:
            session = status["session"]
            if session in submitted_at and session not in done_at:
                if status["state"] not in TERMINAL_STATES:
                    continue
                if status["state"] != "done":
                    fail(f"session {session} ended {status['state']}: {status}")
                done_at[session] = now
        time.sleep(0.02)
    elapsed = max(time.monotonic() - start, 1e-9)

    latencies = sorted(done_at[s] - submitted_at[s] for s in submitted_at)
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[min(len(latencies) - 1, (len(latencies) * 99) // 100)]
    print(f"check_service: {sessions} sessions all done in {elapsed:.2f} s "
          f"({sessions / elapsed:.0f} runs/s sustained; submit->done "
          f"p50 {p50 * 1000:.0f} ms, p99 {p99 * 1000:.0f} ms)")


def check_suspend_evict_resume(client: Client, spill_dir: str) -> None:
    spec = {**LONG_SPEC, "seed": 77}
    session = client.ok({"cmd": "submit", **spec})["session"]
    wait_status(client, session, lambda s: s.get("quanta", 0) >= 2, "progress")
    client.ok({"cmd": "suspend", "session": session})
    status = wait_status(
        client, session,
        lambda s: s["state"] == "evicted" or is_terminal(s), "eviction")
    if status["state"] != "evicted":
        fail(f"run finished before the suspend landed: {status}")
    if not os.path.exists(os.path.join(spill_dir, f"{session}.ckpt")):
        fail(f"evicted session {session} has no spilled checkpoint")
    client.ok({"cmd": "resume", "session": session})
    resumed = wait_status(client, session, is_terminal, "terminal state")

    reference = client.ok({"cmd": "submit", **spec})["session"]
    direct = wait_status(client, reference, is_terminal, "terminal state")
    expect_identical(resumed, direct, "suspend -> evict -> resume")

    stats = client.ok({"cmd": "stats"})["stats"]
    if stats["evictions"] < 1 or stats["faults"] < 1:
        fail(f"stats did not count the eviction/fault: {stats}")
    print(f"check_service: suspend -> evict -> resume is bit-identical "
          f"({stats['evictions']} evictions, {stats['faults']} faults)")


def check_drain_restart(build_dir: str, sock_path: str, spill_dir: str,
                        daemon: subprocess.Popen, done_session: str,
                        done_status: dict, total_before: int) -> subprocess.Popen:
    client = Client(sock_path)
    spec = {**LONG_SPEC, "seed": 177}
    inflight = client.ok({"cmd": "submit", **spec})["session"]
    wait_status(client, inflight, lambda s: s.get("quanta", 0) >= 2, "progress")
    client.close()

    daemon.send_signal(signal.SIGTERM)
    if daemon.wait(timeout=60) != 0:
        fail(f"daemon exited {daemon.returncode} on SIGTERM")
    if not os.path.exists(os.path.join(spill_dir, f"{inflight}.session")):
        fail(f"drain wrote no manifest for in-flight session {inflight}")

    daemon = start_daemon(build_dir, sock_path, spill_dir)
    client = Client(sock_path)
    restored = client.ok({"cmd": "stats"})["stats"]["total_sessions"]
    if restored != total_before:
        fail(f"restart restored {restored} sessions, expected {total_before}")

    resumed = wait_status(client, inflight, is_terminal, "terminal state")
    reference = client.ok({"cmd": "submit", **spec})["session"]
    direct = wait_status(client, reference, is_terminal, "terminal state")
    expect_identical(resumed, direct, "SIGTERM drain + restart")

    preserved = client.ok({"cmd": "status", "session": done_session})
    expect_identical(preserved, done_status, "terminal session across restart")
    client.close()
    print("check_service: SIGTERM drain + restart resumed the in-flight "
          "session bit-identically and preserved terminal sessions")
    return daemon


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("build_dir")
    parser.add_argument("--sessions", type=int, default=1000)
    args = parser.parse_args()

    popctl = os.path.join(args.build_dir, "examples", "popctl")
    with tempfile.TemporaryDirectory(prefix="popproto_svc_") as work_dir:
        check_trace_run_signals(args.build_dir, work_dir)

        sock_path = os.path.join(work_dir, "pop.sock")
        spill_dir = os.path.join(work_dir, "spill")
        daemon = start_daemon(args.build_dir, sock_path, spill_dir)
        try:
            # The CLI client works end to end.
            ping = subprocess.run([popctl, "--socket", sock_path, "ping"],
                                  capture_output=True)
            if ping.returncode != 0 or b'"ok":true' not in ping.stdout:
                fail(f"popctl ping failed: {ping.stdout} {ping.stderr}")

            client = Client(sock_path)
            check_throughput(client, args.sessions)
            check_suspend_evict_resume(client, spill_dir)

            # Remember one terminal session to verify restore preserves it.
            done_session = "s-1"
            done_status = client.ok({"cmd": "status", "session": done_session})
            total = client.ok({"cmd": "stats"})["stats"]["total_sessions"]
            client.close()

            daemon = check_drain_restart(args.build_dir, sock_path, spill_dir,
                                         daemon, done_session, done_status,
                                         total + 1)  # + the drain's in-flight run

            shutdown = subprocess.run([popctl, "--socket", sock_path, "shutdown"],
                                      capture_output=True)
            if shutdown.returncode != 0:
                fail(f"popctl shutdown failed: {shutdown.stdout} {shutdown.stderr}")
            if daemon.wait(timeout=60) != 0:
                fail(f"daemon exited {daemon.returncode} after shutdown")
        finally:
            if daemon.poll() is None:
                daemon.kill()
    print("check_service: OK")


if __name__ == "__main__":
    main()
