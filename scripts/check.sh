#!/usr/bin/env bash
# Builds the tree under sanitizers in a dedicated build directory and runs
# the test suite under them.
#
# Default mode is the memory- and UB-safety gate (address+undefined over the
# full suite): run it before merging engine or observer changes.
#
# --tsan switches to the data-race gate: a ThreadSanitizer build running the
# tests that exercise the intra-run parallel machinery (the thread pool, the
# sharded collapsed engine, and the trial fan-out).  TSan and ASan cannot
# share a process, hence the separate mode and build directory; the filter
# keeps the ~10x TSan slowdown off the purely sequential 95% of the suite.
#
# Usage: scripts/check.sh [--tsan] [build-dir] [ctest args...]
#   build-dir  defaults to <repo>/build-check (or <repo>/build-check-tsan in
#              --tsan mode), kept separate from the plain ./build tree so
#              the configurations never mix
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

SANITIZERS="address,undefined"
DEFAULT_BUILD_DIR="$ROOT/build-check"
CTEST_FILTER=()
LABEL="asan+ubsan"
if [[ "${1:-}" == "--tsan" ]]; then
    shift
    SANITIZERS="thread"
    DEFAULT_BUILD_DIR="$ROOT/build-check-tsan"
    # The concurrency surface: ThreadPool / parallel collapsed engine /
    # multi-threaded trial fan-out tests.
    CTEST_FILTER=(-R 'ThreadPool|ParallelCollapsed|ThreadOptions|Trials')
    LABEL="tsan"
fi

BUILD_DIR="${1:-$DEFAULT_BUILD_DIR}"
shift || true

cmake -B "$BUILD_DIR" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPOPPROTO_SANITIZE="$SANITIZERS"
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes sanitizer findings fail the run instead of just
# logging (TSan already defaults to failing on a report).
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)" \
    ${CTEST_FILTER[@]+"${CTEST_FILTER[@]}"} "$@")

echo "check.sh: $LABEL test suite passed"
