#!/usr/bin/env bash
# Builds the tree with address+undefined sanitizers in a dedicated build
# directory and runs the full test suite under them.  This is the memory-
# and UB-safety gate: run it before merging engine or observer changes.
#
# Usage: scripts/check.sh [build-dir] [ctest args...]
#   build-dir  defaults to <repo>/build-check (kept separate from the
#              plain ./build tree so the two configurations never mix)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build-check}"
shift || true

cmake -B "$BUILD_DIR" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPOPPROTO_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)" "$@")

echo "check.sh: sanitized test suite passed"
