file(REMOVE_RECURSE
  "libpopproto_analysis.a"
)
