file(REMOVE_RECURSE
  "CMakeFiles/popproto_analysis.dir/markov.cpp.o"
  "CMakeFiles/popproto_analysis.dir/markov.cpp.o.d"
  "CMakeFiles/popproto_analysis.dir/reachability.cpp.o"
  "CMakeFiles/popproto_analysis.dir/reachability.cpp.o.d"
  "CMakeFiles/popproto_analysis.dir/stable_computation.cpp.o"
  "CMakeFiles/popproto_analysis.dir/stable_computation.cpp.o.d"
  "libpopproto_analysis.a"
  "libpopproto_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popproto_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
