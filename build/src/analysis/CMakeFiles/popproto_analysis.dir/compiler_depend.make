# Empty compiler generated dependencies file for popproto_analysis.
# This may be replaced when dependencies are built.
