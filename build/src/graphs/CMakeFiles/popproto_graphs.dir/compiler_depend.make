# Empty compiler generated dependencies file for popproto_graphs.
# This may be replaced when dependencies are built.
