
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graphs/graph_analysis.cpp" "src/graphs/CMakeFiles/popproto_graphs.dir/graph_analysis.cpp.o" "gcc" "src/graphs/CMakeFiles/popproto_graphs.dir/graph_analysis.cpp.o.d"
  "/root/repo/src/graphs/graph_simulation.cpp" "src/graphs/CMakeFiles/popproto_graphs.dir/graph_simulation.cpp.o" "gcc" "src/graphs/CMakeFiles/popproto_graphs.dir/graph_simulation.cpp.o.d"
  "/root/repo/src/graphs/interaction_graph.cpp" "src/graphs/CMakeFiles/popproto_graphs.dir/interaction_graph.cpp.o" "gcc" "src/graphs/CMakeFiles/popproto_graphs.dir/interaction_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/popproto_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/popproto_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
