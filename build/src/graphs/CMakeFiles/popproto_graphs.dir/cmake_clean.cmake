file(REMOVE_RECURSE
  "CMakeFiles/popproto_graphs.dir/graph_analysis.cpp.o"
  "CMakeFiles/popproto_graphs.dir/graph_analysis.cpp.o.d"
  "CMakeFiles/popproto_graphs.dir/graph_simulation.cpp.o"
  "CMakeFiles/popproto_graphs.dir/graph_simulation.cpp.o.d"
  "CMakeFiles/popproto_graphs.dir/interaction_graph.cpp.o"
  "CMakeFiles/popproto_graphs.dir/interaction_graph.cpp.o.d"
  "libpopproto_graphs.a"
  "libpopproto_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popproto_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
