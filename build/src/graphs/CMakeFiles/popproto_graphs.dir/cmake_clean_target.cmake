file(REMOVE_RECURSE
  "libpopproto_graphs.a"
)
