file(REMOVE_RECURSE
  "CMakeFiles/popproto_machines.dir/counter_machine.cpp.o"
  "CMakeFiles/popproto_machines.dir/counter_machine.cpp.o.d"
  "CMakeFiles/popproto_machines.dir/examples.cpp.o"
  "CMakeFiles/popproto_machines.dir/examples.cpp.o.d"
  "CMakeFiles/popproto_machines.dir/minsky.cpp.o"
  "CMakeFiles/popproto_machines.dir/minsky.cpp.o.d"
  "CMakeFiles/popproto_machines.dir/program_builder.cpp.o"
  "CMakeFiles/popproto_machines.dir/program_builder.cpp.o.d"
  "CMakeFiles/popproto_machines.dir/turing_machine.cpp.o"
  "CMakeFiles/popproto_machines.dir/turing_machine.cpp.o.d"
  "libpopproto_machines.a"
  "libpopproto_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popproto_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
