file(REMOVE_RECURSE
  "libpopproto_machines.a"
)
