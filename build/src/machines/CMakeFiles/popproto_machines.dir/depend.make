# Empty dependencies file for popproto_machines.
# This may be replaced when dependencies are built.
