
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machines/counter_machine.cpp" "src/machines/CMakeFiles/popproto_machines.dir/counter_machine.cpp.o" "gcc" "src/machines/CMakeFiles/popproto_machines.dir/counter_machine.cpp.o.d"
  "/root/repo/src/machines/examples.cpp" "src/machines/CMakeFiles/popproto_machines.dir/examples.cpp.o" "gcc" "src/machines/CMakeFiles/popproto_machines.dir/examples.cpp.o.d"
  "/root/repo/src/machines/minsky.cpp" "src/machines/CMakeFiles/popproto_machines.dir/minsky.cpp.o" "gcc" "src/machines/CMakeFiles/popproto_machines.dir/minsky.cpp.o.d"
  "/root/repo/src/machines/program_builder.cpp" "src/machines/CMakeFiles/popproto_machines.dir/program_builder.cpp.o" "gcc" "src/machines/CMakeFiles/popproto_machines.dir/program_builder.cpp.o.d"
  "/root/repo/src/machines/turing_machine.cpp" "src/machines/CMakeFiles/popproto_machines.dir/turing_machine.cpp.o" "gcc" "src/machines/CMakeFiles/popproto_machines.dir/turing_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/popproto_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
