
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/combinators.cpp" "src/core/CMakeFiles/popproto_core.dir/combinators.cpp.o" "gcc" "src/core/CMakeFiles/popproto_core.dir/combinators.cpp.o.d"
  "/root/repo/src/core/configuration.cpp" "src/core/CMakeFiles/popproto_core.dir/configuration.cpp.o" "gcc" "src/core/CMakeFiles/popproto_core.dir/configuration.cpp.o.d"
  "/root/repo/src/core/conventions.cpp" "src/core/CMakeFiles/popproto_core.dir/conventions.cpp.o" "gcc" "src/core/CMakeFiles/popproto_core.dir/conventions.cpp.o.d"
  "/root/repo/src/core/debug.cpp" "src/core/CMakeFiles/popproto_core.dir/debug.cpp.o" "gcc" "src/core/CMakeFiles/popproto_core.dir/debug.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/popproto_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/popproto_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/protocol_io.cpp" "src/core/CMakeFiles/popproto_core.dir/protocol_io.cpp.o" "gcc" "src/core/CMakeFiles/popproto_core.dir/protocol_io.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/core/CMakeFiles/popproto_core.dir/rng.cpp.o" "gcc" "src/core/CMakeFiles/popproto_core.dir/rng.cpp.o.d"
  "/root/repo/src/core/schedulers.cpp" "src/core/CMakeFiles/popproto_core.dir/schedulers.cpp.o" "gcc" "src/core/CMakeFiles/popproto_core.dir/schedulers.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/core/CMakeFiles/popproto_core.dir/simulator.cpp.o" "gcc" "src/core/CMakeFiles/popproto_core.dir/simulator.cpp.o.d"
  "/root/repo/src/core/tabulated_protocol.cpp" "src/core/CMakeFiles/popproto_core.dir/tabulated_protocol.cpp.o" "gcc" "src/core/CMakeFiles/popproto_core.dir/tabulated_protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
