# Empty dependencies file for popproto_core.
# This may be replaced when dependencies are built.
