file(REMOVE_RECURSE
  "libpopproto_core.a"
)
