file(REMOVE_RECURSE
  "CMakeFiles/popproto_core.dir/combinators.cpp.o"
  "CMakeFiles/popproto_core.dir/combinators.cpp.o.d"
  "CMakeFiles/popproto_core.dir/configuration.cpp.o"
  "CMakeFiles/popproto_core.dir/configuration.cpp.o.d"
  "CMakeFiles/popproto_core.dir/conventions.cpp.o"
  "CMakeFiles/popproto_core.dir/conventions.cpp.o.d"
  "CMakeFiles/popproto_core.dir/debug.cpp.o"
  "CMakeFiles/popproto_core.dir/debug.cpp.o.d"
  "CMakeFiles/popproto_core.dir/protocol.cpp.o"
  "CMakeFiles/popproto_core.dir/protocol.cpp.o.d"
  "CMakeFiles/popproto_core.dir/protocol_io.cpp.o"
  "CMakeFiles/popproto_core.dir/protocol_io.cpp.o.d"
  "CMakeFiles/popproto_core.dir/rng.cpp.o"
  "CMakeFiles/popproto_core.dir/rng.cpp.o.d"
  "CMakeFiles/popproto_core.dir/schedulers.cpp.o"
  "CMakeFiles/popproto_core.dir/schedulers.cpp.o.d"
  "CMakeFiles/popproto_core.dir/simulator.cpp.o"
  "CMakeFiles/popproto_core.dir/simulator.cpp.o.d"
  "CMakeFiles/popproto_core.dir/tabulated_protocol.cpp.o"
  "CMakeFiles/popproto_core.dir/tabulated_protocol.cpp.o.d"
  "libpopproto_core.a"
  "libpopproto_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popproto_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
