
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/counting.cpp" "src/protocols/CMakeFiles/popproto_protocols.dir/counting.cpp.o" "gcc" "src/protocols/CMakeFiles/popproto_protocols.dir/counting.cpp.o.d"
  "/root/repo/src/protocols/division.cpp" "src/protocols/CMakeFiles/popproto_protocols.dir/division.cpp.o" "gcc" "src/protocols/CMakeFiles/popproto_protocols.dir/division.cpp.o.d"
  "/root/repo/src/protocols/epidemic.cpp" "src/protocols/CMakeFiles/popproto_protocols.dir/epidemic.cpp.o" "gcc" "src/protocols/CMakeFiles/popproto_protocols.dir/epidemic.cpp.o.d"
  "/root/repo/src/protocols/leader_election.cpp" "src/protocols/CMakeFiles/popproto_protocols.dir/leader_election.cpp.o" "gcc" "src/protocols/CMakeFiles/popproto_protocols.dir/leader_election.cpp.o.d"
  "/root/repo/src/protocols/one_way.cpp" "src/protocols/CMakeFiles/popproto_protocols.dir/one_way.cpp.o" "gcc" "src/protocols/CMakeFiles/popproto_protocols.dir/one_way.cpp.o.d"
  "/root/repo/src/protocols/output_convention.cpp" "src/protocols/CMakeFiles/popproto_protocols.dir/output_convention.cpp.o" "gcc" "src/protocols/CMakeFiles/popproto_protocols.dir/output_convention.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/popproto_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
