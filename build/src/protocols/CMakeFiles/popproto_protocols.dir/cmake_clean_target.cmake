file(REMOVE_RECURSE
  "libpopproto_protocols.a"
)
