# Empty dependencies file for popproto_protocols.
# This may be replaced when dependencies are built.
