file(REMOVE_RECURSE
  "CMakeFiles/popproto_protocols.dir/counting.cpp.o"
  "CMakeFiles/popproto_protocols.dir/counting.cpp.o.d"
  "CMakeFiles/popproto_protocols.dir/division.cpp.o"
  "CMakeFiles/popproto_protocols.dir/division.cpp.o.d"
  "CMakeFiles/popproto_protocols.dir/epidemic.cpp.o"
  "CMakeFiles/popproto_protocols.dir/epidemic.cpp.o.d"
  "CMakeFiles/popproto_protocols.dir/leader_election.cpp.o"
  "CMakeFiles/popproto_protocols.dir/leader_election.cpp.o.d"
  "CMakeFiles/popproto_protocols.dir/one_way.cpp.o"
  "CMakeFiles/popproto_protocols.dir/one_way.cpp.o.d"
  "CMakeFiles/popproto_protocols.dir/output_convention.cpp.o"
  "CMakeFiles/popproto_protocols.dir/output_convention.cpp.o.d"
  "libpopproto_protocols.a"
  "libpopproto_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popproto_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
