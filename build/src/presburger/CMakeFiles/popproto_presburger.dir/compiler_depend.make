# Empty compiler generated dependencies file for popproto_presburger.
# This may be replaced when dependencies are built.
