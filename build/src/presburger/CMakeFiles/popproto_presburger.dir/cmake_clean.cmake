file(REMOVE_RECURSE
  "CMakeFiles/popproto_presburger.dir/atom_protocols.cpp.o"
  "CMakeFiles/popproto_presburger.dir/atom_protocols.cpp.o.d"
  "CMakeFiles/popproto_presburger.dir/compiler.cpp.o"
  "CMakeFiles/popproto_presburger.dir/compiler.cpp.o.d"
  "CMakeFiles/popproto_presburger.dir/formula.cpp.o"
  "CMakeFiles/popproto_presburger.dir/formula.cpp.o.d"
  "CMakeFiles/popproto_presburger.dir/language.cpp.o"
  "CMakeFiles/popproto_presburger.dir/language.cpp.o.d"
  "CMakeFiles/popproto_presburger.dir/parser.cpp.o"
  "CMakeFiles/popproto_presburger.dir/parser.cpp.o.d"
  "CMakeFiles/popproto_presburger.dir/semilinear.cpp.o"
  "CMakeFiles/popproto_presburger.dir/semilinear.cpp.o.d"
  "libpopproto_presburger.a"
  "libpopproto_presburger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popproto_presburger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
