
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/presburger/atom_protocols.cpp" "src/presburger/CMakeFiles/popproto_presburger.dir/atom_protocols.cpp.o" "gcc" "src/presburger/CMakeFiles/popproto_presburger.dir/atom_protocols.cpp.o.d"
  "/root/repo/src/presburger/compiler.cpp" "src/presburger/CMakeFiles/popproto_presburger.dir/compiler.cpp.o" "gcc" "src/presburger/CMakeFiles/popproto_presburger.dir/compiler.cpp.o.d"
  "/root/repo/src/presburger/formula.cpp" "src/presburger/CMakeFiles/popproto_presburger.dir/formula.cpp.o" "gcc" "src/presburger/CMakeFiles/popproto_presburger.dir/formula.cpp.o.d"
  "/root/repo/src/presburger/language.cpp" "src/presburger/CMakeFiles/popproto_presburger.dir/language.cpp.o" "gcc" "src/presburger/CMakeFiles/popproto_presburger.dir/language.cpp.o.d"
  "/root/repo/src/presburger/parser.cpp" "src/presburger/CMakeFiles/popproto_presburger.dir/parser.cpp.o" "gcc" "src/presburger/CMakeFiles/popproto_presburger.dir/parser.cpp.o.d"
  "/root/repo/src/presburger/semilinear.cpp" "src/presburger/CMakeFiles/popproto_presburger.dir/semilinear.cpp.o" "gcc" "src/presburger/CMakeFiles/popproto_presburger.dir/semilinear.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/popproto_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/popproto_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
