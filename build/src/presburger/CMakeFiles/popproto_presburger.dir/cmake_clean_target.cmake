file(REMOVE_RECURSE
  "libpopproto_presburger.a"
)
