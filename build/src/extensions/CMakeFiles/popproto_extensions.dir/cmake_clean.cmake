file(REMOVE_RECURSE
  "CMakeFiles/popproto_extensions.dir/birth_death.cpp.o"
  "CMakeFiles/popproto_extensions.dir/birth_death.cpp.o.d"
  "CMakeFiles/popproto_extensions.dir/multiway.cpp.o"
  "CMakeFiles/popproto_extensions.dir/multiway.cpp.o.d"
  "libpopproto_extensions.a"
  "libpopproto_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popproto_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
