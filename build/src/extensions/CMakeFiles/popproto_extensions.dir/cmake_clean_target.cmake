file(REMOVE_RECURSE
  "libpopproto_extensions.a"
)
