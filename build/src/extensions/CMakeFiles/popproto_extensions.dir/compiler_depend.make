# Empty compiler generated dependencies file for popproto_extensions.
# This may be replaced when dependencies are built.
