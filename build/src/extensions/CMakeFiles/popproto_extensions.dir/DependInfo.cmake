
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extensions/birth_death.cpp" "src/extensions/CMakeFiles/popproto_extensions.dir/birth_death.cpp.o" "gcc" "src/extensions/CMakeFiles/popproto_extensions.dir/birth_death.cpp.o.d"
  "/root/repo/src/extensions/multiway.cpp" "src/extensions/CMakeFiles/popproto_extensions.dir/multiway.cpp.o" "gcc" "src/extensions/CMakeFiles/popproto_extensions.dir/multiway.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/popproto_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/popproto_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
