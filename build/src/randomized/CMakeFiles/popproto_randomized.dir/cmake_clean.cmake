file(REMOVE_RECURSE
  "CMakeFiles/popproto_randomized.dir/population_machine.cpp.o"
  "CMakeFiles/popproto_randomized.dir/population_machine.cpp.o.d"
  "CMakeFiles/popproto_randomized.dir/trials.cpp.o"
  "CMakeFiles/popproto_randomized.dir/trials.cpp.o.d"
  "CMakeFiles/popproto_randomized.dir/urn.cpp.o"
  "CMakeFiles/popproto_randomized.dir/urn.cpp.o.d"
  "CMakeFiles/popproto_randomized.dir/urn_automaton.cpp.o"
  "CMakeFiles/popproto_randomized.dir/urn_automaton.cpp.o.d"
  "libpopproto_randomized.a"
  "libpopproto_randomized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popproto_randomized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
