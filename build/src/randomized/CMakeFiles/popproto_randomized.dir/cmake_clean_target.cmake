file(REMOVE_RECURSE
  "libpopproto_randomized.a"
)
