# Empty compiler generated dependencies file for popproto_randomized.
# This may be replaced when dependencies are built.
