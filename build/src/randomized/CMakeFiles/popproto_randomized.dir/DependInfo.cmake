
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/randomized/population_machine.cpp" "src/randomized/CMakeFiles/popproto_randomized.dir/population_machine.cpp.o" "gcc" "src/randomized/CMakeFiles/popproto_randomized.dir/population_machine.cpp.o.d"
  "/root/repo/src/randomized/trials.cpp" "src/randomized/CMakeFiles/popproto_randomized.dir/trials.cpp.o" "gcc" "src/randomized/CMakeFiles/popproto_randomized.dir/trials.cpp.o.d"
  "/root/repo/src/randomized/urn.cpp" "src/randomized/CMakeFiles/popproto_randomized.dir/urn.cpp.o" "gcc" "src/randomized/CMakeFiles/popproto_randomized.dir/urn.cpp.o.d"
  "/root/repo/src/randomized/urn_automaton.cpp" "src/randomized/CMakeFiles/popproto_randomized.dir/urn_automaton.cpp.o" "gcc" "src/randomized/CMakeFiles/popproto_randomized.dir/urn_automaton.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/popproto_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machines/CMakeFiles/popproto_machines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
