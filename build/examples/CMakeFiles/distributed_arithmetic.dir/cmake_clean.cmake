file(REMOVE_RECURSE
  "CMakeFiles/distributed_arithmetic.dir/distributed_arithmetic.cpp.o"
  "CMakeFiles/distributed_arithmetic.dir/distributed_arithmetic.cpp.o.d"
  "distributed_arithmetic"
  "distributed_arithmetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_arithmetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
