# Empty dependencies file for distributed_arithmetic.
# This may be replaced when dependencies are built.
