file(REMOVE_RECURSE
  "CMakeFiles/predicate_lab.dir/predicate_lab.cpp.o"
  "CMakeFiles/predicate_lab.dir/predicate_lab.cpp.o.d"
  "predicate_lab"
  "predicate_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
