# Empty dependencies file for predicate_lab.
# This may be replaced when dependencies are built.
