file(REMOVE_RECURSE
  "CMakeFiles/graph_deployment.dir/graph_deployment.cpp.o"
  "CMakeFiles/graph_deployment.dir/graph_deployment.cpp.o.d"
  "graph_deployment"
  "graph_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
