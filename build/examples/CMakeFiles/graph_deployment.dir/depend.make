# Empty dependencies file for graph_deployment.
# This may be replaced when dependencies are built.
