# Empty dependencies file for flock_monitoring.
# This may be replaced when dependencies are built.
