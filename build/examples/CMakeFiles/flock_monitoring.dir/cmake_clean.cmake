file(REMOVE_RECURSE
  "CMakeFiles/flock_monitoring.dir/flock_monitoring.cpp.o"
  "CMakeFiles/flock_monitoring.dir/flock_monitoring.cpp.o.d"
  "flock_monitoring"
  "flock_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
