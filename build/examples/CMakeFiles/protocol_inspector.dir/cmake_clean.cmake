file(REMOVE_RECURSE
  "CMakeFiles/protocol_inspector.dir/protocol_inspector.cpp.o"
  "CMakeFiles/protocol_inspector.dir/protocol_inspector.cpp.o.d"
  "protocol_inspector"
  "protocol_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
