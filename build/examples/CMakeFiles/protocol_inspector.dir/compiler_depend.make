# Empty compiler generated dependencies file for protocol_inspector.
# This may be replaced when dependencies are built.
