# Empty dependencies file for popproto_tests.
# This may be replaced when dependencies are built.
