
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/absorption_test.cpp" "tests/CMakeFiles/popproto_tests.dir/absorption_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/absorption_test.cpp.o.d"
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/popproto_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/atom_protocols_test.cpp" "tests/CMakeFiles/popproto_tests.dir/atom_protocols_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/atom_protocols_test.cpp.o.d"
  "/root/repo/tests/birth_death_test.cpp" "tests/CMakeFiles/popproto_tests.dir/birth_death_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/birth_death_test.cpp.o.d"
  "/root/repo/tests/bulk_zero_test_test.cpp" "tests/CMakeFiles/popproto_tests.dir/bulk_zero_test_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/bulk_zero_test_test.cpp.o.d"
  "/root/repo/tests/compiler_test.cpp" "tests/CMakeFiles/popproto_tests.dir/compiler_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/compiler_test.cpp.o.d"
  "/root/repo/tests/conventions_test.cpp" "tests/CMakeFiles/popproto_tests.dir/conventions_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/conventions_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/popproto_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/counting_protocol_test.cpp" "tests/CMakeFiles/popproto_tests.dir/counting_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/counting_protocol_test.cpp.o.d"
  "/root/repo/tests/division_protocol_test.cpp" "tests/CMakeFiles/popproto_tests.dir/division_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/division_protocol_test.cpp.o.d"
  "/root/repo/tests/epidemic_test.cpp" "tests/CMakeFiles/popproto_tests.dir/epidemic_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/epidemic_test.cpp.o.d"
  "/root/repo/tests/fault_tolerance_test.cpp" "tests/CMakeFiles/popproto_tests.dir/fault_tolerance_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/fault_tolerance_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/popproto_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/graph_analysis_test.cpp" "tests/CMakeFiles/popproto_tests.dir/graph_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/graph_analysis_test.cpp.o.d"
  "/root/repo/tests/graphs_test.cpp" "tests/CMakeFiles/popproto_tests.dir/graphs_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/graphs_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/popproto_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/language_test.cpp" "tests/CMakeFiles/popproto_tests.dir/language_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/language_test.cpp.o.d"
  "/root/repo/tests/leader_election_test.cpp" "tests/CMakeFiles/popproto_tests.dir/leader_election_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/leader_election_test.cpp.o.d"
  "/root/repo/tests/machines_test.cpp" "tests/CMakeFiles/popproto_tests.dir/machines_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/machines_test.cpp.o.d"
  "/root/repo/tests/minsky_test.cpp" "tests/CMakeFiles/popproto_tests.dir/minsky_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/minsky_test.cpp.o.d"
  "/root/repo/tests/multiway_test.cpp" "tests/CMakeFiles/popproto_tests.dir/multiway_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/multiway_test.cpp.o.d"
  "/root/repo/tests/one_way_test.cpp" "tests/CMakeFiles/popproto_tests.dir/one_way_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/one_way_test.cpp.o.d"
  "/root/repo/tests/output_convention_test.cpp" "tests/CMakeFiles/popproto_tests.dir/output_convention_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/output_convention_test.cpp.o.d"
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/popproto_tests.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/parser_test.cpp.o.d"
  "/root/repo/tests/population_machine_test.cpp" "tests/CMakeFiles/popproto_tests.dir/population_machine_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/population_machine_test.cpp.o.d"
  "/root/repo/tests/presburger_formula_test.cpp" "tests/CMakeFiles/popproto_tests.dir/presburger_formula_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/presburger_formula_test.cpp.o.d"
  "/root/repo/tests/protocol_io_test.cpp" "tests/CMakeFiles/popproto_tests.dir/protocol_io_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/protocol_io_test.cpp.o.d"
  "/root/repo/tests/schedulers_test.cpp" "tests/CMakeFiles/popproto_tests.dir/schedulers_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/schedulers_test.cpp.o.d"
  "/root/repo/tests/semilinear_test.cpp" "tests/CMakeFiles/popproto_tests.dir/semilinear_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/semilinear_test.cpp.o.d"
  "/root/repo/tests/theorem_sweeps_test.cpp" "tests/CMakeFiles/popproto_tests.dir/theorem_sweeps_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/theorem_sweeps_test.cpp.o.d"
  "/root/repo/tests/trials_test.cpp" "tests/CMakeFiles/popproto_tests.dir/trials_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/trials_test.cpp.o.d"
  "/root/repo/tests/urn_automaton_test.cpp" "tests/CMakeFiles/popproto_tests.dir/urn_automaton_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/urn_automaton_test.cpp.o.d"
  "/root/repo/tests/urn_test.cpp" "tests/CMakeFiles/popproto_tests.dir/urn_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/urn_test.cpp.o.d"
  "/root/repo/tests/weighted_sampling_test.cpp" "tests/CMakeFiles/popproto_tests.dir/weighted_sampling_test.cpp.o" "gcc" "tests/CMakeFiles/popproto_tests.dir/weighted_sampling_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/popproto_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/popproto_core.dir/DependInfo.cmake"
  "/root/repo/build/src/extensions/CMakeFiles/popproto_extensions.dir/DependInfo.cmake"
  "/root/repo/build/src/graphs/CMakeFiles/popproto_graphs.dir/DependInfo.cmake"
  "/root/repo/build/src/machines/CMakeFiles/popproto_machines.dir/DependInfo.cmake"
  "/root/repo/build/src/presburger/CMakeFiles/popproto_presburger.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/popproto_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/randomized/CMakeFiles/popproto_randomized.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
