# Empty compiler generated dependencies file for bench_graph_simulation.
# This may be replaced when dependencies are built.
