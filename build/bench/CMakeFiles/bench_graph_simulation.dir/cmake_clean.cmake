file(REMOVE_RECURSE
  "CMakeFiles/bench_graph_simulation.dir/bench_graph_simulation.cpp.o"
  "CMakeFiles/bench_graph_simulation.dir/bench_graph_simulation.cpp.o.d"
  "bench_graph_simulation"
  "bench_graph_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
