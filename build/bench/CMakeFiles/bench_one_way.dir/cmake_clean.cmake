file(REMOVE_RECURSE
  "CMakeFiles/bench_one_way.dir/bench_one_way.cpp.o"
  "CMakeFiles/bench_one_way.dir/bench_one_way.cpp.o.d"
  "bench_one_way"
  "bench_one_way.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_one_way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
