# Empty compiler generated dependencies file for bench_one_way.
# This may be replaced when dependencies are built.
