file(REMOVE_RECURSE
  "CMakeFiles/bench_counter_machine.dir/bench_counter_machine.cpp.o"
  "CMakeFiles/bench_counter_machine.dir/bench_counter_machine.cpp.o.d"
  "bench_counter_machine"
  "bench_counter_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counter_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
