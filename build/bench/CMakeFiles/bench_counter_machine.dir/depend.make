# Empty dependencies file for bench_counter_machine.
# This may be replaced when dependencies are built.
