file(REMOVE_RECURSE
  "CMakeFiles/bench_remainder.dir/bench_remainder.cpp.o"
  "CMakeFiles/bench_remainder.dir/bench_remainder.cpp.o.d"
  "bench_remainder"
  "bench_remainder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_remainder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
