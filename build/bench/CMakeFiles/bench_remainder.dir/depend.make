# Empty dependencies file for bench_remainder.
# This may be replaced when dependencies are built.
