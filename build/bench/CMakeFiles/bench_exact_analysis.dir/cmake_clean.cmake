file(REMOVE_RECURSE
  "CMakeFiles/bench_exact_analysis.dir/bench_exact_analysis.cpp.o"
  "CMakeFiles/bench_exact_analysis.dir/bench_exact_analysis.cpp.o.d"
  "bench_exact_analysis"
  "bench_exact_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exact_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
