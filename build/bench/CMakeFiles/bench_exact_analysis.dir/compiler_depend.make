# Empty compiler generated dependencies file for bench_exact_analysis.
# This may be replaced when dependencies are built.
