
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_throughput.cpp" "bench/CMakeFiles/bench_throughput.dir/bench_throughput.cpp.o" "gcc" "bench/CMakeFiles/bench_throughput.dir/bench_throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/popproto_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/extensions/CMakeFiles/popproto_extensions.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/popproto_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graphs/CMakeFiles/popproto_graphs.dir/DependInfo.cmake"
  "/root/repo/build/src/machines/CMakeFiles/popproto_machines.dir/DependInfo.cmake"
  "/root/repo/build/src/presburger/CMakeFiles/popproto_presburger.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/popproto_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/randomized/CMakeFiles/popproto_randomized.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
