# Empty dependencies file for bench_weighted_sampling.
# This may be replaced when dependencies are built.
