file(REMOVE_RECURSE
  "CMakeFiles/bench_weighted_sampling.dir/bench_weighted_sampling.cpp.o"
  "CMakeFiles/bench_weighted_sampling.dir/bench_weighted_sampling.cpp.o.d"
  "bench_weighted_sampling"
  "bench_weighted_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weighted_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
