file(REMOVE_RECURSE
  "CMakeFiles/bench_zero_test.dir/bench_zero_test.cpp.o"
  "CMakeFiles/bench_zero_test.dir/bench_zero_test.cpp.o.d"
  "bench_zero_test"
  "bench_zero_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zero_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
