# Empty compiler generated dependencies file for bench_zero_test.
# This may be replaced when dependencies are built.
