file(REMOVE_RECURSE
  "CMakeFiles/bench_count_to_five.dir/bench_count_to_five.cpp.o"
  "CMakeFiles/bench_count_to_five.dir/bench_count_to_five.cpp.o.d"
  "bench_count_to_five"
  "bench_count_to_five.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_count_to_five.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
