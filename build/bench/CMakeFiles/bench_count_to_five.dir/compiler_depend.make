# Empty compiler generated dependencies file for bench_count_to_five.
# This may be replaced when dependencies are built.
