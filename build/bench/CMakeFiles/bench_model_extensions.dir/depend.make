# Empty dependencies file for bench_model_extensions.
# This may be replaced when dependencies are built.
