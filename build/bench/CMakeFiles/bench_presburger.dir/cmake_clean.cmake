file(REMOVE_RECURSE
  "CMakeFiles/bench_presburger.dir/bench_presburger.cpp.o"
  "CMakeFiles/bench_presburger.dir/bench_presburger.cpp.o.d"
  "bench_presburger"
  "bench_presburger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_presburger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
