# Empty compiler generated dependencies file for bench_presburger.
# This may be replaced when dependencies are built.
