file(REMOVE_RECURSE
  "CMakeFiles/bench_turing_simulation.dir/bench_turing_simulation.cpp.o"
  "CMakeFiles/bench_turing_simulation.dir/bench_turing_simulation.cpp.o.d"
  "bench_turing_simulation"
  "bench_turing_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_turing_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
