# Empty dependencies file for bench_turing_simulation.
# This may be replaced when dependencies are built.
