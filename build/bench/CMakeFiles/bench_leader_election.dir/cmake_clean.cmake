file(REMOVE_RECURSE
  "CMakeFiles/bench_leader_election.dir/bench_leader_election.cpp.o"
  "CMakeFiles/bench_leader_election.dir/bench_leader_election.cpp.o.d"
  "bench_leader_election"
  "bench_leader_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leader_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
