# Empty dependencies file for bench_leader_election.
# This may be replaced when dependencies are built.
