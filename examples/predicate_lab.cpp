// Predicate lab: type a Presburger predicate, get a sensor protocol.
//
// Usage:
//   predicate_lab                                  # demo predicate
//   predicate_lab "x0 - 19 x1 < 1" 950 50          # formula + symbol counts
//
// The formula is parsed, compiled with the Theorem 5 compiler, verified
// exhaustively on all populations of up to 5 agents with the exact analyzer,
// and then simulated once on the requested input under random pairing.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/stable_computation.h"
#include "core/simulator.h"
#include "presburger/compiler.h"
#include "presburger/parser.h"

namespace {

using namespace popproto;

void for_each_counts(std::uint64_t total, std::size_t slots,
                     std::vector<std::uint64_t>& current, std::size_t index,
                     bool& all_ok, const TabulatedProtocol& protocol, const Formula& formula) {
    if (index + 1 == slots) {
        current[index] = total;
        const auto initial = CountConfiguration::from_input_counts(protocol, current);
        const bool expected =
            formula.evaluate(std::vector<std::int64_t>(current.begin(), current.end()));
        if (!stably_computes_bool(protocol, initial, expected)) all_ok = false;
        return;
    }
    for (std::uint64_t v = 0; v <= total; ++v) {
        current[index] = v;
        for_each_counts(total - v, slots, current, index + 1, all_ok, protocol, formula);
    }
}

}  // namespace

int main(int argc, char** argv) {
    const std::string text = argc > 1 ? argv[1] : "x0 - 19 x1 < 1";

    Formula formula = [&] {
        try {
            return parse_formula(text);
        } catch (const std::exception& error) {
            std::fprintf(stderr, "%s\n", error.what());
            std::exit(2);
        }
    }();
    std::printf("parsed    : %s\n", formula.to_string().c_str());

    const auto protocol = compile_formula(formula);
    std::printf("compiled  : %zu states over %zu input symbols (%zu atoms)\n",
                protocol->num_states(), protocol->num_input_symbols(), formula.num_atoms());

    // Exhaustive verification over every input of every population up to 5.
    bool all_ok = true;
    for (std::uint64_t n = 1; n <= 5; ++n) {
        std::vector<std::uint64_t> counts(protocol->num_input_symbols(), 0);
        for_each_counts(n, counts.size(), counts, 0, all_ok, *protocol, formula);
    }
    std::printf("verified  : populations <= 5 agents %s\n",
                all_ok ? "all stably compute the predicate" : "FAILED");

    // Input counts from the command line (default: a 1000-agent example).
    std::vector<std::uint64_t> counts(protocol->num_input_symbols(), 0);
    std::uint64_t population = 0;
    if (argc > 2) {
        for (int i = 2; i < argc && static_cast<std::size_t>(i - 2) < counts.size(); ++i)
            counts[i - 2] = std::strtoull(argv[i], nullptr, 10);
    } else {
        counts[0] = 950;
        if (counts.size() > 1) counts[1] = 50;
    }
    for (std::uint64_t c : counts) population += c;
    if (population < 2) {
        std::printf("population too small to simulate; done\n");
        return all_ok ? 0 : 1;
    }

    const auto initial = CountConfiguration::from_input_counts(*protocol, counts);
    RunOptions options;
    options.max_interactions = default_budget(population, 128.0);
    options.seed = 1;
    const RunResult result = simulate(*protocol, initial, options);
    const bool expected =
        formula.evaluate(std::vector<std::int64_t>(counts.begin(), counts.end()));
    std::printf("simulated : n=%llu -> %s after %llu interactions (ground truth: %s)\n",
                static_cast<unsigned long long>(population),
                result.consensus ? (*result.consensus == kOutputTrue ? "true" : "false")
                                 : "no consensus",
                static_cast<unsigned long long>(result.last_output_change),
                expected ? "true" : "false");
    return all_ok ? 0 : 1;
}
