// Verify a serialized protocol file against expected Boolean verdicts.
//
// Usage:
//   verify_protocol <protocol-file> <x0> <x1> ... [--expect true|false]
//   verify_protocol                  # self-demo with a bundled protocol
//
// Loads a protocol in the popproto text format (core/protocol_io.h), runs
// the exact stable-computation analyzer on the given input counts, and
// reports the verdict.  Demonstrates the save -> audit -> verify workflow a
// protocol designer would use.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/stable_computation.h"
#include "core/protocol_io.h"
#include "protocols/counting.h"

int main(int argc, char** argv) {
    using namespace popproto;

    std::unique_ptr<TabulatedProtocol> protocol;
    std::vector<std::uint64_t> counts;

    if (argc >= 2) {
        std::ifstream file(argv[1]);
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 2;
        }
        std::ostringstream buffer;
        buffer << file.rdbuf();
        try {
            protocol = deserialize_protocol(buffer.str());
        } catch (const std::exception& error) {
            std::fprintf(stderr, "%s\n", error.what());
            return 2;
        }
        for (int i = 2; i < argc && argv[i][0] != '-'; ++i)
            counts.push_back(std::strtoull(argv[i], nullptr, 10));
        counts.resize(protocol->num_input_symbols(), 0);
    } else {
        // Self-demo: serialize the count-to-3 protocol in memory, reload it,
        // and verify it on a small flock.
        const auto original = make_counting_protocol(3);
        const std::string text = serialize_protocol(*original);
        std::printf("— no file given; demo with the count-to-3 protocol —\n%s\n",
                    text.substr(0, text.find("out ")).c_str());
        protocol = deserialize_protocol(text);
        counts = {4, 3};  // 3 ones: predicate holds
    }

    std::uint64_t population = 0;
    for (std::uint64_t c : counts) population += c;
    if (population == 0) {
        std::fprintf(stderr, "empty population\n");
        return 2;
    }

    const auto initial = CountConfiguration::from_input_counts(*protocol, counts);
    const StableComputationResult result = analyze_stable_computation(*protocol, initial);

    std::printf("population            : %llu agents over %zu input symbols\n",
                static_cast<unsigned long long>(population), counts.size());
    std::printf("reachable configs     : %zu\n", result.reachable_configurations);
    std::printf("always converges      : %s\n", result.always_converges ? "yes" : "NO");
    const auto consensus = result.consensus();
    if (consensus) {
        std::printf("stable consensus      : %s\n",
                    protocol->output_name(*consensus).c_str());
    } else {
        std::printf("stable consensus      : none (%zu stable signatures)\n",
                    result.stable_signatures.size());
    }
    return result.always_converges ? 0 : 1;
}
