// trace_run: stream one simulated run as JSONL for plotting.
//
// Runs a built-in protocol — or any protocol compiled from a
// quantifier-free Presburger predicate — under any of the five engines with
// a snapshot schedule and writes the trace to stdout, one JSON object per
// line — pipe it into jq/python for trajectory plots (README.md shows a
// matplotlib one-liner).  Long runs can be suspended and resumed: with
// --checkpoint the run continuously overwrites a checkpoint file, and
// --resume continues bit-identically from such a file (same protocol,
// population, and topology flags required; the engine is inferred from the
// file).
//
//   trace_run [protocol] [flags]
//
//   protocol     epidemic (default) | counting | majority
//   --predicate F  compile predicate F (presburger/parser.h syntax, e.g.
//                  'x0 - 19*x1 < 1') instead of a built-in protocol; the
//                  population reads input symbol i as variable x_i
//   --n N        population size                      (default 256)
//   --ones K     agents with input 1 (infected seeds, fevered birds,
//                majority-"1" voters)                 (default 1)
//   --counts C   comma-separated per-input-symbol counts (e.g. 40,25,3);
//                replaces --n/--ones for multi-variable predicates
//   --seed S     RNG seed                             (default 1)
//   --budget B   max interactions                     (default: default_budget(n))
//   --engine E   batch (default) | collapsed | agent | weighted | graph |
//                adaptive
//                (collapsed batches ~sqrt(n) interactions per super-step —
//                prefer it at n >= 2^20; weighted runs with unit weights;
//                graph activates uniform random edges of --graph and never
//                falls silent; adaptive switches batch <-> collapsed mid-run
//                as the effective-pair density crosses thresholds)
//   --adaptive   shorthand for --engine adaptive
//   --switch-thresholds ENTER,EXIT[,DWELL[,PERIOD]]
//                adaptive dispatcher tuning: enter/exit the collapsed engine
//                when the signal rho*E[L] crosses ENTER (up) / EXIT (down);
//                DWELL = min interactions between switches, PERIOD = poll
//                spacing (0 picks the defaults)
//   --fluid-assist  adaptive runs only: fast-forward the dense transient
//                with the mean-field ODE (approximate — the run is no
//                longer an exact sample path)
//   --threads K  intra-run worker threads (collapsed engine only; 0 = all
//                hardware threads, default 1).  Fixed (seed, K) runs are
//                bit-identical; different K agree in distribution only.
//   --graph G    complete | ring | line | star        (default ring;
//                only with --engine graph)
//   --model M    run a scenario pairing model instead of an engine:
//                round_robin | sweep | adversarial | dynamic_graph |
//                grid_mobility (run_scenario; conflicts with --engine)
//   --probe N    adversarial null-interaction look-ahead  (default 16)
//   --phases A,B,...  dynamic_graph phase topologies (complete, ring,
//                line, star); required for that model
//   --phase-length N  dynamic_graph interactions per phase (default 4n)
//   --torus WxH  grid_mobility torus dimensions (default: smallest
//                square with at least 2n cells)
//   --radius R   grid_mobility Chebyshev contact radius   (default 1)
//   --every P    fixed snapshot period                (default: n / 4)
//   --log F      log-spaced snapshot factor instead of --every
//   --checkpoint FILE      keep FILE updated with the latest checkpoint;
//                          SIGINT/SIGTERM then write one final checkpoint
//                          and exit cleanly instead of killing the run
//   --checkpoint-every N   checkpoint period          (default: budget / 16)
//   --resume FILE          resume from a checkpoint file (seed is ignored;
//                          the file carries the exact RNG position)
//   --no-counts  omit count vectors (indices and events only)
//   --metrics    append the MetricsCollector JSON aggregate to stderr
//   --profile BASE  collect runtime telemetry (telemetry/telemetry.h) and
//                write BASE.trace.json (Chrome trace-event format, loads in
//                chrome://tracing and Perfetto) plus BASE.prom (Prometheus
//                text exposition: per-phase timings, per-shard busy/wait);
//                also emits a "telemetry" JSONL event before "stop"
//   --progress   stderr progress line (interactions/s, estimated n·ln n
//                completion fraction, ETA), at most one per second
//
// Examples:
//   trace_run epidemic --n 1000 --every 500            > epidemic.jsonl
//   trace_run counting --n 65536 --ones 7 --log 1.2    > counting.jsonl
//   trace_run --predicate '2 x0 + x1 = 1 mod 3' --counts 50,14 > mod3.jsonl
//   trace_run counting --n 65536 --checkpoint run.ckpt > part1.jsonl
//   trace_run counting --n 65536 --resume run.ckpt     > part2.jsonl

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive_simulator.h"
#include "core/batch_simulator.h"
#include "core/collapsed_simulator.h"
#include "core/observer.h"
#include "core/run_loop.h"
#include "core/simulator.h"
#include "graphs/graph_simulation.h"
#include "graphs/interaction_graph.h"
#include "observe/jsonl_writer.h"
#include "observe/metrics.h"
#include "presburger/atom_protocols.h"
#include "presburger/compiler.h"
#include "presburger/parser.h"
#include "protocols/counting.h"
#include "protocols/epidemic.h"
#include "meanfield/fluid_assist.h"
#include "scenarios/games.h"
#include "scenarios/scenario_spec.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/prometheus.h"
#include "telemetry/telemetry.h"

namespace {

using namespace popproto;

[[noreturn]] void usage_error(const std::string& message) {
    std::fprintf(stderr, "trace_run: %s\n", message.c_str());
    std::fprintf(stderr,
                 "usage: trace_run [epidemic|counting|majority|pavlov] [--predicate F] [--n N]\n"
                 "                 [--ones K] [--counts C0,C1,...] [--seed S] [--budget B]\n"
                 "                 [--engine batch|collapsed|agent|weighted|graph|adaptive]\n"
                 "                 [--adaptive] [--switch-thresholds ENTER,EXIT[,DWELL[,PERIOD]]]\n"
                 "                 [--fluid-assist]\n"
                 "                 [--threads K] [--graph complete|ring|line|star]\n"
                 "                 [--model round_robin|sweep|adversarial|dynamic_graph|"
                 "grid_mobility]\n"
                 "                 [--probe N] [--phases A,B,...] [--phase-length N]\n"
                 "                 [--torus WxH] [--radius R]\n"
                 "                 [--every P | --log F]\n"
                 "                 [--checkpoint FILE] [--checkpoint-every N] [--resume FILE]\n"
                 "                 [--no-counts] [--metrics] [--profile BASE] [--progress]\n");
    std::exit(2);
}

std::uint64_t parse_u64(const char* flag, const char* text) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') usage_error(std::string(flag) + ": not a number: " + text);
    return value;
}

double parse_double(const char* flag, const char* text) {
    char* end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0') usage_error(std::string(flag) + ": not a number: " + text);
    return value;
}

std::vector<std::uint64_t> parse_count_list(const char* flag, const std::string& text) {
    std::vector<std::uint64_t> counts;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string item =
            text.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        counts.push_back(parse_u64(flag, item.c_str()));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return counts;
}

/// Persists the latest checkpoint via the shared atomic tmp+rename helper
/// (core/run_loop.h), so an interrupt mid-write never clobbers the last
/// good checkpoint.
class FileCheckpointSink final : public CheckpointSink {
public:
    explicit FileCheckpointSink(std::string path) : path_(std::move(path)) {}

    void on_checkpoint(const RunCheckpoint& checkpoint) override {
        try {
            write_checkpoint_atomic(path_, checkpoint);
        } catch (const std::exception& error) {
            std::fprintf(stderr, "trace_run: %s\n", error.what());
            std::exit(1);
        }
    }

private:
    std::string path_;
};

/// SIGINT/SIGTERM request a cooperative stop: the kernel polls this flag at
/// loop boundaries, writes one final checkpoint through the sink above, and
/// returns StopReason::kPaused — so an interrupted --checkpoint run always
/// leaves a resumable file instead of dying mid-run.
std::atomic<bool> g_stop_requested{false};

extern "C" void handle_stop_signal(int) { g_stop_requested.store(true); }

/// Background stderr progress reporter for --progress: polls the telemetry
/// collector's live interaction counter (a relaxed atomic published by the
/// run loop) once per second and prints rate, the estimated completion
/// fraction against the n·ln n epidemic-style convergence scale, and an ETA
/// extrapolated from the current rate.  Never touches the run itself.
class ProgressReporter {
public:
    ProgressReporter(const telemetry::RunTelemetryCollector& collector, std::uint64_t n)
        : collector_(collector),
          expected_(static_cast<double>(n) *
                    std::log(static_cast<double>(n > 2 ? n : 3))),
          thread_([this] { loop(); }) {}

    ~ProgressReporter() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        thread_.join();
    }

private:
    void loop() {
        std::unique_lock<std::mutex> lock(mutex_);
        std::uint64_t last_t = 0;
        std::uint64_t last_ns = 0;
        while (!wake_.wait_for(lock, std::chrono::seconds(1), [this] { return stop_; })) {
            const std::uint64_t t = collector_.live_interactions();
            const std::uint64_t now_ns = collector_.live_wall_ns();
            if (now_ns <= last_ns) continue;  // telemetry compiled out / not started
            const double rate =
                static_cast<double>(t - last_t) / (static_cast<double>(now_ns - last_ns) / 1e9);
            const double fraction =
                std::min(1.0, static_cast<double>(t) / (expected_ > 1.0 ? expected_ : 1.0));
            std::string eta = "?";
            if (rate > 0.0) {
                const double remaining = expected_ - static_cast<double>(t);
                eta = remaining <= 0.0
                          ? "0s"
                          : std::to_string(static_cast<std::uint64_t>(remaining / rate)) + "s";
            }
            std::fprintf(stderr,
                         "trace_run: progress t=%llu (%.3g interactions/s) "
                         "n·ln n fraction=%.2f eta=%s\n",
                         static_cast<unsigned long long>(t), rate, fraction, eta.c_str());
            last_t = t;
            last_ns = now_ns;
        }
    }

    const telemetry::RunTelemetryCollector& collector_;
    const double expected_;  // n ln n, the coupon-collector convergence scale
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stop_ = false;
    std::thread thread_;
};

/// Expands per-input-symbol counts into a per-agent input vector (for the
/// engines that address individual agents).
std::vector<Symbol> expand_inputs(const std::vector<std::uint64_t>& input_counts) {
    std::vector<Symbol> inputs;
    for (Symbol symbol = 0; symbol < input_counts.size(); ++symbol)
        inputs.insert(inputs.end(), input_counts[symbol], symbol);
    return inputs;
}

}  // namespace

int main(int argc, char** argv) {
    std::string protocol_name = "epidemic";
    std::string predicate;
    std::vector<std::uint64_t> input_counts;  // --counts; empty = use --n/--ones
    std::uint64_t n = 256;
    std::uint64_t ones = 1;
    std::uint64_t seed = 1;
    std::uint64_t budget = 0;       // 0 = default_budget(n)
    std::uint64_t every = 0;        // 0 = n / 4
    double log_factor = 0.0;        // 0 = use --every
    std::string engine_name;        // empty = batch, or inferred from --resume
    AdaptiveOptions adaptive_tuning;   // --switch-thresholds
    bool adaptive_tuning_given = false;
    bool fluid_assist = false;
    std::uint64_t threads = 1;      // --threads; 0 = hardware concurrency
    bool threads_given = false;
    std::string graph_name = "ring";
    ScenarioSpec scenario;              // --model et al.; scenario.model empty = engines
    std::string checkpoint_path;
    std::uint64_t checkpoint_every = 0;  // 0 = budget / 16
    std::string resume_path;
    bool write_counts = true;
    bool print_metrics = false;
    std::string profile_base;
    bool show_progress = false;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage_error(std::string(arg) + ": missing value");
            return argv[++i];
        };
        if (std::strcmp(arg, "--n") == 0) {
            n = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--ones") == 0) {
            ones = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--counts") == 0) {
            input_counts = parse_count_list(arg, next());
        } else if (std::strcmp(arg, "--predicate") == 0) {
            predicate = next();
        } else if (std::strcmp(arg, "--seed") == 0) {
            seed = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--budget") == 0) {
            budget = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--every") == 0) {
            every = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--log") == 0) {
            log_factor = parse_double(arg, next());
        } else if (std::strcmp(arg, "--engine") == 0) {
            engine_name = next();
            if (engine_name != "batch" && engine_name != "collapsed" &&
                engine_name != "agent" && engine_name != "weighted" &&
                engine_name != "graph" && engine_name != "adaptive")
                usage_error("--engine: expected batch, collapsed, agent, weighted, graph, or "
                            "adaptive, got " + engine_name);
        } else if (std::strcmp(arg, "--adaptive") == 0) {
            engine_name = "adaptive";
        } else if (std::strcmp(arg, "--switch-thresholds") == 0) {
            const std::string list = next();
            std::vector<double> values;
            std::size_t start = 0;
            while (start <= list.size()) {
                std::size_t comma = list.find(',', start);
                if (comma == std::string::npos) comma = list.size();
                values.push_back(
                    parse_double(arg, list.substr(start, comma - start).c_str()));
                start = comma + 1;
            }
            if (values.size() < 2 || values.size() > 4)
                usage_error("--switch-thresholds: expected ENTER,EXIT[,DWELL[,PERIOD]]");
            adaptive_tuning.enter_collapsed = values[0];
            adaptive_tuning.exit_collapsed = values[1];
            if (values.size() > 2)
                adaptive_tuning.min_dwell = static_cast<std::uint64_t>(values[2]);
            if (values.size() > 3)
                adaptive_tuning.eval_period = static_cast<std::uint64_t>(values[3]);
            adaptive_tuning_given = true;
        } else if (std::strcmp(arg, "--fluid-assist") == 0) {
            fluid_assist = true;
        } else if (std::strcmp(arg, "--threads") == 0) {
            threads = parse_u64(arg, next());
            threads_given = true;
        } else if (std::strcmp(arg, "--graph") == 0) {
            graph_name = next();
        } else if (std::strcmp(arg, "--model") == 0) {
            scenario.model = next();
            const auto& names = scenario_model_names();
            if (std::find(names.begin(), names.end(), scenario.model) == names.end())
                usage_error("--model: expected round_robin, sweep, adversarial, "
                            "dynamic_graph, or grid_mobility, got " + scenario.model);
        } else if (std::strcmp(arg, "--probe") == 0) {
            scenario.probe = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--phases") == 0) {
            const std::string list = next();
            std::size_t start = 0;
            while (start <= list.size()) {
                std::size_t comma = list.find(',', start);
                if (comma == std::string::npos) comma = list.size();
                scenario.phases.push_back(list.substr(start, comma - start));
                start = comma + 1;
            }
        } else if (std::strcmp(arg, "--phase-length") == 0) {
            scenario.phase_length = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--torus") == 0) {
            const std::string dims = next();
            const std::size_t x = dims.find('x');
            if (x == std::string::npos) usage_error("--torus: expected WxH");
            scenario.torus_width = parse_u64(arg, dims.substr(0, x).c_str());
            scenario.torus_height = parse_u64(arg, dims.substr(x + 1).c_str());
        } else if (std::strcmp(arg, "--radius") == 0) {
            scenario.radius = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--checkpoint") == 0) {
            checkpoint_path = next();
        } else if (std::strcmp(arg, "--checkpoint-every") == 0) {
            checkpoint_every = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--resume") == 0) {
            resume_path = next();
        } else if (std::strcmp(arg, "--no-counts") == 0) {
            write_counts = false;
        } else if (std::strcmp(arg, "--metrics") == 0) {
            print_metrics = true;
        } else if (std::strcmp(arg, "--profile") == 0) {
            profile_base = next();
        } else if (std::strcmp(arg, "--progress") == 0) {
            show_progress = true;
        } else if (arg[0] == '-') {
            usage_error(std::string("unknown flag ") + arg);
        } else {
            protocol_name = arg;
        }
    }

    std::unique_ptr<TabulatedProtocol> protocol;
    if (!predicate.empty()) {
        try {
            const Formula formula = parse_formula(predicate);
            const std::size_t num_symbols =
                std::max<std::size_t>(formula.num_variables(),
                                      input_counts.empty() ? 2 : input_counts.size());
            protocol = compile_formula(formula, num_symbols);
        } catch (const std::exception& error) {
            usage_error(std::string("--predicate: ") + error.what());
        }
    } else if (protocol_name == "epidemic") {
        protocol = make_epidemic_protocol();
    } else if (protocol_name == "counting") {
        protocol = make_counting_protocol(5);
    } else if (protocol_name == "pavlov") {
        protocol = make_game_protocol(make_pavlov_prisoners_dilemma());
    } else if (protocol_name == "majority") {
        // [ x_0 - x_1 < 0 ]: true iff the 1-voters outnumber the 0-voters.
        protocol = make_threshold_protocol({1, -1}, 0);
    } else {
        usage_error("unknown protocol " + protocol_name);
    }

    if (input_counts.empty()) {
        if (n < 2) usage_error("--n: need at least 2 agents");
        if (ones > n) usage_error("--ones: cannot exceed --n");
        input_counts.assign(protocol->num_input_symbols(), 0);
        input_counts[0] = n - ones;
        if (ones > 0) {
            if (protocol->num_input_symbols() < 2)
                usage_error("--ones: protocol has a single input symbol; use --counts");
            input_counts[1] = ones;
        }
    } else {
        if (input_counts.size() != protocol->num_input_symbols())
            usage_error("--counts: expected " + std::to_string(protocol->num_input_symbols()) +
                        " comma-separated entries");
        n = 0;
        for (std::uint64_t count : input_counts) n += count;
        if (n < 2) usage_error("--counts: need at least 2 agents in total");
    }
    const auto initial = CountConfiguration::from_input_counts(*protocol, input_counts);

    // Resuming: load the checkpoint up front so the engine can be inferred
    // from (or validated against) the file.
    RunCheckpoint resume_checkpoint;
    if (!resume_path.empty()) {
        std::ifstream in(resume_path);
        if (!in) usage_error("--resume: cannot open " + resume_path);
        try {
            resume_checkpoint = read_checkpoint(in);
        } catch (const std::exception& error) {
            usage_error("--resume: " + resume_path + ": " + error.what());
        }
        std::string file_engine;
        std::string file_model;
        if (resume_checkpoint.adaptive) {
            // The engine field names the segment engine at the cut; the
            // adaptive marker line says the run itself was adaptive.
            file_engine = "adaptive";
        } else switch (resume_checkpoint.engine) {
            case ObservedEngine::kAgentArray: file_engine = "agent"; break;
            case ObservedEngine::kCountBatch: file_engine = "batch"; break;
            case ObservedEngine::kCollapsed: file_engine = "collapsed"; break;
            case ObservedEngine::kParallelCollapsed: file_engine = "collapsed"; break;
            case ObservedEngine::kWeighted: file_engine = "weighted"; break;
            case ObservedEngine::kGraph: file_engine = "graph"; break;
            case ObservedEngine::kPairModel:
                // run_scenario checkpoints carry the model name; structural
                // parameters (phases, torus size) are not in the file, so
                // the resume command must repeat them.
                file_model = resume_checkpoint.interaction_model;
                break;
            case ObservedEngine::kScheduler:
                usage_error("--resume: this checkpoint came from simulate_with_scheduler; "
                            "resume it through that API");
        }
        // A parallel-collapsed checkpoint fixes the shard count; infer
        // --threads from the file (and reject a conflicting explicit value
        // here, where the message can name both numbers).
        const std::uint64_t file_threads = resume_checkpoint.shard_rngs.size();
        if (resume_checkpoint.engine == ObservedEngine::kParallelCollapsed) {
            if (threads_given && threads != file_threads)
                usage_error("--resume: " + resume_path + " was taken with " +
                            std::to_string(file_threads) + " threads, but --threads requests " +
                            std::to_string(threads));
            threads = file_threads;
        } else if (threads_given && threads > 1) {
            usage_error("--resume: " + resume_path +
                        " was taken by a serial engine; drop --threads to resume it");
        }
        if (!file_model.empty()) {
            if (!engine_name.empty())
                usage_error("--resume: " + resume_path + " was taken by the " + file_model +
                            " scenario model; drop --engine to resume it");
            if (scenario.model.empty())
                scenario.model = file_model;
            else if (scenario.model != file_model)
                usage_error("--resume: " + resume_path + " was taken by the " + file_model +
                            " model, but --model requests " + scenario.model);
        } else if (!scenario.model.empty()) {
            usage_error("--resume: " + resume_path + " was taken by the " + file_engine +
                        " engine, but --model requests " + scenario.model);
        } else if (engine_name.empty()) {
            engine_name = file_engine;
        } else if (engine_name != file_engine) {
            usage_error("--resume: " + resume_path + " was taken by the " + file_engine +
                        " engine, but --engine requests " + engine_name);
        }
    }
    if (!scenario.model.empty() && !engine_name.empty())
        usage_error("--model conflicts with --engine (scenarios pick their own pairing)");
    if (engine_name.empty() && scenario.model.empty()) engine_name = "batch";

    if (threads > 1 && engine_name != "collapsed")
        usage_error("--threads: only --engine collapsed runs with more than one thread");
    if ((adaptive_tuning_given || fluid_assist) && engine_name != "adaptive")
        usage_error("--switch-thresholds/--fluid-assist: require --engine adaptive "
                    "(or --adaptive)");

    RunOptions options;
    options.max_interactions = budget != 0 ? budget : default_budget(n);
    options.seed = seed;
    options.threads = static_cast<unsigned>(threads);
    options.snapshots = log_factor != 0.0
                            ? SnapshotSchedule::log_spaced(log_factor)
                            : SnapshotSchedule::every(every != 0 ? every : std::max<std::uint64_t>(
                                                                               n / 4, 1));
    if (!resume_path.empty()) options.resume_from = &resume_checkpoint;
    options.adaptive = adaptive_tuning;
    if (fluid_assist) {
        options.fluid_assist = true;
        options.fluid_hook = make_fluid_assist_hook();
    }

    std::unique_ptr<FileCheckpointSink> sink;
    if (!checkpoint_path.empty()) {
        sink = std::make_unique<FileCheckpointSink>(checkpoint_path);
        options.checkpoint_sink = sink.get();
        options.checkpoint_every = checkpoint_every != 0
                                       ? checkpoint_every
                                       : std::max<std::uint64_t>(options.max_interactions / 16, 1);
        // With a checkpoint file configured, SIGINT/SIGTERM flush one final
        // checkpoint and exit cleanly instead of dying mid-run.
        options.stop_flag = &g_stop_requested;
        std::signal(SIGINT, handle_stop_signal);
        std::signal(SIGTERM, handle_stop_signal);
    } else if (checkpoint_every != 0) {
        usage_error("--checkpoint-every: requires --checkpoint FILE");
    }

    JsonlTraceWriter writer(std::cout);
    writer.set_write_counts(write_counts);
    MetricsCollector metrics;
    TeeObserver tee({&writer, &metrics});
    options.observer = print_metrics ? static_cast<RunObserver*>(&tee) : &writer;

    telemetry::RunTelemetryCollector collector;
    if (!profile_base.empty() || show_progress) {
        if (!telemetry::kCompiledIn)
            std::fprintf(stderr,
                         "trace_run: warning: built with POPPROTO_TELEMETRY=OFF; --profile/"
                         "--progress will report nothing\n");
        options.telemetry = &collector;
    }
    std::unique_ptr<ProgressReporter> progress;
    if (show_progress) progress = std::make_unique<ProgressReporter>(collector, n);

    RunResult result{CountConfiguration(protocol->num_states()), StopReason::kBudget, 0, 0, 0,
                     std::nullopt};
    if (!scenario.model.empty()) {
        result = run_scenario(*protocol, initial, scenario, options);
    } else if (engine_name == "batch") {
        result = simulate_counts(*protocol, initial, options);
    } else if (engine_name == "collapsed") {
        result = simulate_collapsed(*protocol, initial, options);
    } else if (engine_name == "adaptive") {
        options.engine = SimulationEngine::kAdaptive;
        result = simulate_adaptive(*protocol, initial, options);
    } else if (engine_name == "agent") {
        result = simulate(*protocol, initial, options);
    } else if (engine_name == "weighted") {
        // Unit weights demonstrate the inverse-CDF sampler; the distribution
        // coincides with `agent` but the RNG stream (and so the trajectory)
        // differs.
        const auto agents = AgentConfiguration::from_counts(initial);
        const std::vector<double> weights(agents.size(), 1.0);
        result = simulate_weighted(*protocol, agents, weights, options);
    } else {  // graph
        if (n > std::uint32_t(-1)) usage_error("--engine graph: population must fit 32 bits");
        const auto num_agents = static_cast<std::uint32_t>(n);
        InteractionGraph graph = InteractionGraph::ring(num_agents);
        if (graph_name == "complete") {
            graph = InteractionGraph::complete(num_agents);
        } else if (graph_name == "line") {
            graph = InteractionGraph::line(num_agents);
        } else if (graph_name == "star") {
            graph = InteractionGraph::star(num_agents);
        } else if (graph_name != "ring") {
            usage_error("--graph: expected complete, ring, line, or star, got " + graph_name);
        }
        const GraphRunResult graph_result =
            simulate_on_graph(*protocol, graph, expand_inputs(input_counts), options);
        result = RunResult{graph_result.final_configuration.to_counts(protocol->num_states()),
                           graph_result.stop_reason, graph_result.interactions,
                           graph_result.effective_interactions,
                           graph_result.last_output_change, graph_result.consensus};
    }
    progress.reset();  // final join before the exports touch the collector

    if (!profile_base.empty()) {
        const telemetry::RunTelemetry& data = collector.telemetry();
        const std::string trace_path = profile_base + ".trace.json";
        const std::string prom_path = profile_base + ".prom";
        try {
            telemetry::write_chrome_trace_file(trace_path, data);
            telemetry::write_prometheus_file(prom_path, data);
        } catch (const std::exception& error) {
            std::fprintf(stderr, "trace_run: --profile: %s\n", error.what());
            return 1;
        }
        std::fprintf(stderr, "trace_run: wrote %s and %s\n%s", trace_path.c_str(),
                     prom_path.c_str(), data.to_string().c_str());
    }

    if (print_metrics) std::fprintf(stderr, "%s\n", metrics.report().to_json().c_str());
    if (result.stop_reason == StopReason::kPaused) {
        std::fprintf(stderr,
                     "trace_run: interrupted at t=%llu; checkpoint saved to %s "
                     "(continue with --resume %s)\n",
                     static_cast<unsigned long long>(result.interactions),
                     checkpoint_path.c_str(), checkpoint_path.c_str());
        return 0;
    }
    return result.interactions > 0 ? 0 : 1;
}
