// trace_run: stream one simulated run as JSONL for plotting.
//
// Runs a built-in protocol under either engine with a snapshot schedule and
// writes the trace to stdout, one JSON object per line — pipe it into
// jq/python for trajectory plots (README.md shows a matplotlib one-liner).
//
//   trace_run [protocol] [flags]
//
//   protocol     epidemic (default) | counting | majority
//   --n N        population size                      (default 256)
//   --ones K     agents with input 1 (infected seeds, fevered birds,
//                or majority-"1" voters)              (default 1)
//   --seed S     RNG seed                             (default 1)
//   --budget B   max interactions                     (default: default_budget(n))
//   --engine E   batch (default) | agent
//   --every P    fixed snapshot period                (default: n / 4)
//   --log F      log-spaced snapshot factor instead of --every
//   --no-counts  omit count vectors (indices and events only)
//
// Examples:
//   trace_run epidemic --n 1000 --every 500            > epidemic.jsonl
//   trace_run counting --n 65536 --ones 7 --log 1.2    > counting.jsonl

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/batch_simulator.h"
#include "core/observer.h"
#include "core/simulator.h"
#include "observe/jsonl_writer.h"
#include "presburger/atom_protocols.h"
#include "protocols/counting.h"
#include "protocols/epidemic.h"

namespace {

using namespace popproto;

[[noreturn]] void usage_error(const std::string& message) {
    std::fprintf(stderr, "trace_run: %s\n", message.c_str());
    std::fprintf(stderr,
                 "usage: trace_run [epidemic|counting|majority] [--n N] [--ones K]\n"
                 "                 [--seed S] [--budget B] [--engine batch|agent]\n"
                 "                 [--every P | --log F] [--no-counts]\n");
    std::exit(2);
}

std::uint64_t parse_u64(const char* flag, const char* text) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') usage_error(std::string(flag) + ": not a number: " + text);
    return value;
}

double parse_double(const char* flag, const char* text) {
    char* end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0') usage_error(std::string(flag) + ": not a number: " + text);
    return value;
}

}  // namespace

int main(int argc, char** argv) {
    std::string protocol_name = "epidemic";
    std::uint64_t n = 256;
    std::uint64_t ones = 1;
    std::uint64_t seed = 1;
    std::uint64_t budget = 0;       // 0 = default_budget(n)
    std::uint64_t every = 0;        // 0 = n / 4
    double log_factor = 0.0;        // 0 = use --every
    bool use_batch = true;
    bool write_counts = true;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage_error(std::string(arg) + ": missing value");
            return argv[++i];
        };
        if (std::strcmp(arg, "--n") == 0) {
            n = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--ones") == 0) {
            ones = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--seed") == 0) {
            seed = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--budget") == 0) {
            budget = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--every") == 0) {
            every = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--log") == 0) {
            log_factor = parse_double(arg, next());
        } else if (std::strcmp(arg, "--engine") == 0) {
            const std::string engine = next();
            if (engine == "batch") {
                use_batch = true;
            } else if (engine == "agent") {
                use_batch = false;
            } else {
                usage_error("--engine: expected 'batch' or 'agent', got " + engine);
            }
        } else if (std::strcmp(arg, "--no-counts") == 0) {
            write_counts = false;
        } else if (arg[0] == '-') {
            usage_error(std::string("unknown flag ") + arg);
        } else {
            protocol_name = arg;
        }
    }

    if (n < 2) usage_error("--n: need at least 2 agents");
    if (ones > n) usage_error("--ones: cannot exceed --n");

    std::unique_ptr<TabulatedProtocol> protocol;
    if (protocol_name == "epidemic") {
        protocol = make_epidemic_protocol();
    } else if (protocol_name == "counting") {
        protocol = make_counting_protocol(5);
    } else if (protocol_name == "majority") {
        // [ x_0 - x_1 < 0 ]: true iff the 1-voters outnumber the 0-voters.
        protocol = make_threshold_protocol({1, -1}, 0);
    } else {
        usage_error("unknown protocol " + protocol_name);
    }
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n - ones, ones});

    RunOptions options;
    options.max_interactions = budget != 0 ? budget : default_budget(n);
    options.seed = seed;
    options.snapshots = log_factor != 0.0
                            ? SnapshotSchedule::log_spaced(log_factor)
                            : SnapshotSchedule::every(every != 0 ? every : std::max<std::uint64_t>(
                                                                               n / 4, 1));

    JsonlTraceWriter writer(std::cout);
    writer.set_write_counts(write_counts);
    options.observer = &writer;

    const RunResult result = use_batch ? simulate_counts(*protocol, initial, options)
                                       : simulate(*protocol, initial, options);
    return result.interactions > 0 ? 0 : 1;
}
