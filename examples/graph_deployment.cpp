// Graph deployment: sensors that can only talk to their neighbors.
//
// Theorem 7 says the complete interaction graph is the *weakest* topology:
// the Fig. 1 baton construction lifts any protocol to any weakly-connected
// graph.  Here sensors are deployed along a corridor (a line graph) and
// still stably compute the parity of the number of triggered sensors.

#include <cstdio>

#include "graphs/graph_simulation.h"
#include "graphs/interaction_graph.h"
#include "presburger/atom_protocols.h"

int main() {
    using namespace popproto;

    const std::uint32_t sensors = 24;
    const std::uint64_t triggered = 9;  // odd -> parity predicate says "false"

    // Parity of the triggered sensors: count of symbol 1 mod 2 == 0.
    const auto parity = make_remainder_protocol({0, 1}, 0, 2);
    const auto lifted = make_graph_simulation_protocol(*parity);
    std::printf("base protocol: %zu states; Theorem 7 lift: %zu states\n",
                parity->num_states(), lifted->num_states());

    const InteractionGraph corridor = InteractionGraph::line(sensors);
    std::printf("corridor deployment: %u sensors, %zu directed links, weakly connected: %s\n",
                sensors, corridor.edges().size(),
                corridor.is_weakly_connected() ? "yes" : "no");

    std::vector<Symbol> inputs(sensors, 0);
    for (std::uint64_t i = 0; i < triggered; ++i) inputs[(5 * i + 1) % sensors] = 1;

    RunOptions options;
    options.max_interactions = 100'000'000;
    options.stop_after_stable_outputs = 1'000'000;
    options.seed = 11;
    const GraphRunResult result = simulate_on_graph(*lifted, corridor, inputs, options);

    std::printf("after %llu link activations (outputs stable for the last %llu):\n",
                static_cast<unsigned long long>(result.interactions),
                static_cast<unsigned long long>(result.interactions -
                                                result.last_output_change));
    if (result.consensus) {
        std::printf("consensus: triggered count is %s\n",
                    *result.consensus == kOutputTrue ? "even" : "odd");
    } else {
        std::printf("no consensus yet\n");
    }
    const bool ok = result.consensus &&
                    (*result.consensus == (triggered % 2 == 0 ? kOutputTrue : kOutputFalse));
    return ok ? 0 : 1;
}
