// Distributed arithmetic: functions, not just predicates.
//
// Part 1 - the Sect. 3.4 division protocol computes floor(m/3) with the
// result represented diffusely (the number of agents outputting 1).
//
// Part 2 - the Sect. 6.1 machine: a leader simulates a counter program
// (here 13 * 3 via the paper's product loop) on counters stored as bounded
// shares across the population, with the randomized zero test and the full
// leader-election prologue.

#include <cstdio>

#include "core/simulator.h"
#include "machines/examples.h"
#include "protocols/division.h"
#include "randomized/population_machine.h"

int main() {
    using namespace popproto;

    // ---- Part 1: floor(m / 3) by diffuse token exchange.
    const std::uint32_t divisor = 3;
    const auto division = make_division_protocol(divisor);
    const std::uint64_t m = 100;
    const std::uint64_t idle = 60;
    const auto initial = CountConfiguration::from_input_counts(*division, {idle, m});
    RunOptions options;
    options.max_interactions = default_budget(m + idle);
    options.seed = 33;
    const RunResult run = simulate(*division, initial, options);
    const DivisionReading reading = read_division(*division, run.final_configuration, divisor);
    std::printf("division protocol: m=%llu -> quotient=%llu remainder=%llu (expected %llu r %llu)\n",
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(reading.quotient),
                static_cast<unsigned long long>(reading.remainder),
                static_cast<unsigned long long>(m / divisor),
                static_cast<unsigned long long>(m % divisor));

    // ---- Part 2: a leader-driven counter machine computing 13 * 3.
    const CounterProgram program = make_multiply_program(3);
    PopulationMachineOptions machine_options;
    machine_options.timer_parameter = 4;
    machine_options.share_capacity = 4;
    machine_options.max_interactions = 4'000'000'000ull;
    machine_options.seed = 7;
    machine_options.leader_election_prologue = true;

    const PopulationMachineResult result =
        run_population_counter_machine(program, {13, 0}, 64, machine_options);
    std::printf("population machine: 13 * 3 -> %llu (halted=%s, zero-test errors=%llu)\n",
                static_cast<unsigned long long>(result.counters[0]),
                result.halted ? "yes" : "no",
                static_cast<unsigned long long>(result.zero_test_errors));
    std::printf("  election took %llu interactions; whole run %llu interactions\n",
                static_cast<unsigned long long>(result.election_interactions),
                static_cast<unsigned long long>(result.interactions));

    const bool ok = reading.quotient == m / divisor && result.halted &&
                    result.counters[0] == 39;
    return ok ? 0 : 1;
}
