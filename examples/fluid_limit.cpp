// fluid_limit: mean-field ODE prediction vs simulated trajectories.
//
// Solves the fluid limit dx/dt = F(x) of a protocol (src/meanfield) and
// cross-validates it against the mean of simulated runs rescaled to fluid
// time t = i / n, printing both trajectories side by side with the
// per-time and overall sup-norm deviations.  For the epidemic the ODE has
// the closed-form logistic solution y(t) = y0 / (y0 + (1-y0) e^{-2t});
// the harness checks the integrator against it to ~1e-6.
//
//   fluid_limit [protocol] [flags]
//
//   protocol     epidemic (default) | counting | majority
//   --predicate F  compile predicate F (presburger/parser.h syntax) instead
//   --n N        population size                      (default 4096)
//   --ones K     agents with input 1                  (default n / 64)
//   --counts C   comma-separated per-input-symbol counts instead of --n/--ones
//   --t-end T    fluid-time horizon                   (default 8)
//   --trials T   simulated runs averaged              (default 8)
//   --seed S     RNG seed of trial 0                  (default 1)
//   --engine E   batch (default) | agent
//   --rows R     table rows printed                   (default 16)
//
// Example:
//   fluid_limit epidemic --n 65536 --ones 1024 --t-end 6

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "meanfield/comparator.h"
#include "meanfield/integrator.h"
#include "presburger/atom_protocols.h"
#include "presburger/compiler.h"
#include "presburger/parser.h"
#include "protocols/counting.h"
#include "protocols/epidemic.h"

namespace {

using namespace popproto;

[[noreturn]] void usage_error(const std::string& message) {
    std::fprintf(stderr, "fluid_limit: %s\n", message.c_str());
    std::fprintf(stderr,
                 "usage: fluid_limit [epidemic|counting|majority] [--predicate F] [--n N]\n"
                 "                   [--ones K] [--counts C0,C1,...] [--t-end T] [--trials T]\n"
                 "                   [--seed S] [--engine batch|agent] [--rows R]\n");
    std::exit(2);
}

std::uint64_t parse_u64(const char* flag, const char* text) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') usage_error(std::string(flag) + ": not a number: " + text);
    return value;
}

double parse_double(const char* flag, const char* text) {
    char* end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0') usage_error(std::string(flag) + ": not a number: " + text);
    return value;
}

std::vector<std::uint64_t> parse_count_list(const char* flag, const std::string& text) {
    std::vector<std::uint64_t> counts;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string item =
            text.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        counts.push_back(parse_u64(flag, item.c_str()));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return counts;
}

}  // namespace

int main(int argc, char** argv) {
    std::string protocol_name = "epidemic";
    std::string predicate;
    std::vector<std::uint64_t> input_counts;
    std::uint64_t n = 4096;
    std::uint64_t ones = 0;  // 0 = n / 64
    std::uint64_t seed = 1;
    std::uint64_t trials = 8;
    double t_end = 8.0;
    std::size_t rows = 16;
    SimulationEngine engine = SimulationEngine::kCountBatch;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage_error(std::string(arg) + ": missing value");
            return argv[++i];
        };
        if (std::strcmp(arg, "--n") == 0) {
            n = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--ones") == 0) {
            ones = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--counts") == 0) {
            input_counts = parse_count_list(arg, next());
        } else if (std::strcmp(arg, "--predicate") == 0) {
            predicate = next();
        } else if (std::strcmp(arg, "--seed") == 0) {
            seed = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--trials") == 0) {
            trials = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--t-end") == 0) {
            t_end = parse_double(arg, next());
        } else if (std::strcmp(arg, "--rows") == 0) {
            rows = parse_u64(arg, next());
        } else if (std::strcmp(arg, "--engine") == 0) {
            const std::string name = next();
            if (name == "batch") {
                engine = SimulationEngine::kCountBatch;
            } else if (name == "agent") {
                engine = SimulationEngine::kAgentArray;
            } else {
                usage_error("--engine: expected 'batch' or 'agent', got " + name);
            }
        } else if (arg[0] == '-') {
            usage_error(std::string("unknown flag ") + arg);
        } else {
            protocol_name = arg;
        }
    }
    if (t_end <= 0.0) usage_error("--t-end: must be positive");
    if (trials < 1) usage_error("--trials: need at least one trial");

    std::unique_ptr<TabulatedProtocol> protocol;
    if (!predicate.empty()) {
        try {
            const Formula formula = parse_formula(predicate);
            const std::size_t num_symbols =
                std::max<std::size_t>(formula.num_variables(),
                                      input_counts.empty() ? 2 : input_counts.size());
            protocol = compile_formula(formula, num_symbols);
        } catch (const std::exception& error) {
            usage_error(std::string("--predicate: ") + error.what());
        }
    } else if (protocol_name == "epidemic") {
        protocol = make_epidemic_protocol();
    } else if (protocol_name == "counting") {
        protocol = make_counting_protocol(5);
    } else if (protocol_name == "majority") {
        protocol = make_threshold_protocol({1, -1}, 0);
    } else {
        usage_error("unknown protocol " + protocol_name);
    }

    if (input_counts.empty()) {
        if (n < 2) usage_error("--n: need at least 2 agents");
        if (ones == 0) ones = std::max<std::uint64_t>(1, n / 64);
        if (ones > n) usage_error("--ones: cannot exceed --n");
        if (protocol->num_input_symbols() < 2) usage_error("protocol needs --counts");
        input_counts.assign(protocol->num_input_symbols(), 0);
        input_counts[0] = n - ones;
        input_counts[1] = ones;
    } else {
        if (input_counts.size() != protocol->num_input_symbols())
            usage_error("--counts: expected " + std::to_string(protocol->num_input_symbols()) +
                        " comma-separated entries");
        n = std::accumulate(input_counts.begin(), input_counts.end(), std::uint64_t{0});
        if (n < 2) usage_error("--counts: need at least 2 agents in total");
    }
    const auto initial = CountConfiguration::from_input_counts(*protocol, input_counts);

    // Fluid prediction: cost independent of n.
    FluidOptions fluid_options;
    fluid_options.t_end = t_end;
    fluid_options.equilibrium_eps = 1e-9;
    fluid_options.equilibrium_window = 1.0;
    const FluidResult fluid = solve_fluid(*protocol, initial, fluid_options);

    // Simulated trajectories on the same fluid-time grid.
    TrialOptions trial_options;
    trial_options.trials = trials;
    trial_options.base.engine = engine;
    trial_options.base.seed = seed;
    trial_options.base.max_interactions =
        static_cast<std::uint64_t>(std::ceil(t_end * static_cast<double>(n))) + 1;
    const std::uint64_t period = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(t_end * static_cast<double>(n)) / 64);
    trial_options.base.snapshots = SnapshotSchedule::every(period);
    const EmpiricalTrajectory simulated =
        mean_normalized_trajectory(*protocol, initial, trial_options);
    const TrajectoryDeviation deviation = compare_to_fluid(fluid.solution, simulated);

    std::printf("fluid_limit: %s, n=%llu, %llu trial(s), |Q|=%zu\n",
                predicate.empty() ? protocol_name.c_str() : predicate.c_str(),
                static_cast<unsigned long long>(n), static_cast<unsigned long long>(trials),
                protocol->num_states());
    std::printf("ode: stop=%s t=%.3f, %zu accepted steps, %zu drift evals, |F|=%.2e\n",
                fluid.stop_reason == FluidStopReason::kEquilibrium ? "equilibrium"
                : fluid.stop_reason == FluidStopReason::kHorizon   ? "horizon"
                                                                   : "max_steps",
                fluid.t_reached, fluid.steps_accepted, fluid.drift_evaluations,
                fluid.final_drift_norm);

    // Display the densest states (at most four) side by side.
    std::vector<std::size_t> order(protocol->num_states());
    std::vector<double> peak(protocol->num_states(), 0.0);
    for (const std::vector<double>& density : simulated.densities)
        for (std::size_t s = 0; s < density.size(); ++s) peak[s] = std::max(peak[s], density[s]);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return peak[a] > peak[b]; });
    order.resize(std::min<std::size_t>(order.size(), 4));

    std::printf("\n%10s", "t");
    for (std::size_t s : order) {
        const std::string name = protocol->state_name(static_cast<State>(s));
        std::printf("  ode:%-8s sim:%-8s", name.c_str(), name.c_str());
    }
    std::printf("%12s\n", "sup|dev|");

    const std::size_t stride = std::max<std::size_t>(1, simulated.times.size() / rows);
    for (std::size_t k = 0; k < simulated.times.size(); ++k) {
        if (k % stride != 0 && k + 1 != simulated.times.size()) continue;
        const double t = simulated.times[k];
        const std::vector<double> predicted = fluid.solution.density_at(t);
        double dev = 0.0;
        for (std::size_t s = 0; s < predicted.size(); ++s)
            dev = std::max(dev, std::abs(predicted[s] - simulated.densities[k][s]));
        std::printf("%10.3f", t);
        for (std::size_t s : order)
            std::printf("  %12.6f %12.6f", predicted[s], simulated.densities[k][s]);
        std::printf("%12.2e\n", dev);
    }
    std::printf("\nsup-norm deviation over %zu points: %.3e (state %s at t=%.3f)\n",
                deviation.points, deviation.sup,
                protocol->state_name(deviation.sup_state).c_str(), deviation.sup_time);

    if (predicate.empty() && protocol_name == "epidemic") {
        // Closed-form check: y' = 2 y (1 - y), the logistic curve.
        const double y0 = static_cast<double>(input_counts[1]) / static_cast<double>(n);
        double sup = 0.0;
        for (int i = 0; i <= 1000; ++i) {
            const double t = fluid.t_reached * static_cast<double>(i) / 1000.0;
            const double exact = y0 / (y0 + (1.0 - y0) * std::exp(-2.0 * t));
            sup = std::max(sup, std::abs(fluid.solution.density_at(t, 1) - exact));
        }
        std::printf("epidemic ODE vs closed-form logistic: sup deviation %.3e\n", sup);
    }
    return 0;
}
