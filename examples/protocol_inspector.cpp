// Protocol inspector: print a protocol's full definition and its Graphviz
// rendering, plus the exact transition-graph statistics for a small
// population.  Handy when designing new protocols.
//
// Usage: protocol_inspector [count|division|leader|oneway|majority] [n]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/stable_computation.h"
#include "core/debug.h"
#include "presburger/atom_protocols.h"
#include "protocols/counting.h"
#include "protocols/division.h"
#include "protocols/leader_election.h"
#include "protocols/one_way.h"

int main(int argc, char** argv) {
    using namespace popproto;

    const std::string which = argc > 1 ? argv[1] : "count";
    const std::uint64_t population = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 6;

    std::unique_ptr<TabulatedProtocol> protocol;
    if (which == "count") {
        protocol = make_counting_protocol(3);
    } else if (which == "division") {
        protocol = make_division_protocol(3);
    } else if (which == "leader") {
        protocol = make_leader_election_protocol();
    } else if (which == "oneway") {
        protocol = make_one_way_counting_protocol(3);
    } else if (which == "majority") {
        protocol = make_threshold_protocol({1, -1}, 0);
    } else {
        std::fprintf(stderr, "unknown protocol '%s'\n", which.c_str());
        return 2;
    }

    std::printf("== definition ==\n%s\n", describe_protocol(*protocol).c_str());
    std::printf("== graphviz ==\n%s\n", protocol_to_dot(*protocol).c_str());

    // Transition-graph statistics for a balanced input of `population` agents.
    std::vector<std::uint64_t> counts(protocol->num_input_symbols(), 0);
    counts[0] = population / 2;
    counts[counts.size() - 1] += population - population / 2;
    const auto initial = CountConfiguration::from_input_counts(*protocol, counts);
    const ConfigurationGraph graph = explore_reachable(*protocol, initial);
    const SccDecomposition sccs = condense(graph);
    std::size_t final_components = 0;
    for (bool is_final : sccs.is_final) final_components += is_final ? 1 : 0;
    std::printf("== exact transition graph (n = %llu) ==\n",
                static_cast<unsigned long long>(population));
    std::printf("reachable configurations : %zu\n", graph.size());
    std::printf("strongly connected comps : %zu (%zu final)\n", sccs.num_components,
                final_components);
    const StableComputationResult verdict = analyze_stable_computation(*protocol, initial);
    std::printf("always converges         : %s\n", verdict.always_converges ? "yes" : "no");
    std::printf("stable output signatures : %zu\n", verdict.stable_signatures.size());
    return 0;
}
