// Flock monitoring: the Sect. 4.2 percentage question.
//
// "Is at least 5% of the flock fevered?" is 20 x1 >= x0 + x1, a Presburger
// predicate.  We compile it with the Theorem 5 compiler, verify it *exactly*
// on a small flock with the Theorem 6 reachability analyzer, and then run it
// on a large flock under random scheduling.

#include <cstdio>

#include "analysis/stable_computation.h"
#include "core/simulator.h"
#include "presburger/compiler.h"

int main() {
    using namespace popproto;

    // 20 x1 >= x0 + x1  <=>  19 x1 - x0 >= 0.
    const Formula fever_share = Formula::at_least({-1, 19}, 0);
    const auto protocol = compile_formula(fever_share);
    std::printf("compiled '%s' into a protocol with %zu states\n",
                fever_share.to_string().c_str(), protocol->num_states());

    // Exact verification on every flock of up to 6 birds: every fair
    // schedule of every input converges to the correct answer.
    bool verified = true;
    for (std::uint64_t flock = 1; flock <= 6 && verified; ++flock) {
        for (std::uint64_t sick = 0; sick <= flock; ++sick) {
            const auto initial =
                CountConfiguration::from_input_counts(*protocol, {flock - sick, sick});
            const bool expected = 20 * sick >= flock;
            if (!stably_computes_bool(*protocol, initial, expected)) verified = false;
        }
    }
    std::printf("exact verification (all flocks <= 6 birds): %s\n",
                verified ? "every fair execution converges correctly" : "FAILED");

    // Field deployment: a 2000-bird flock just below and just above 5%.
    for (const std::uint64_t sick : {99ull, 100ull}) {
        const std::uint64_t flock = 2000;
        const auto initial =
            CountConfiguration::from_input_counts(*protocol, {flock - sick, sick});
        RunOptions options;
        options.max_interactions = default_budget(flock, 128.0);
        options.seed = sick;
        const RunResult result = simulate(*protocol, initial, options);
        std::printf("flock=%llu sick=%llu -> %s after %llu interactions\n",
                    static_cast<unsigned long long>(flock),
                    static_cast<unsigned long long>(sick),
                    result.consensus
                        ? (*result.consensus == kOutputTrue ? "ALERT (>= 5%)" : "ok (< 5%)")
                        : "no consensus",
                    static_cast<unsigned long long>(result.last_output_change));
    }
    return verified ? 0 : 1;
}
