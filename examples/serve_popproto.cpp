// serve_popproto: the simulation-as-a-service daemon.
//
// Multiplexes thousands of concurrent population-protocol runs over a
// small worker pool: each run executes in bounded work quanta under
// weighted deficit-round-robin scheduling (a 2^24-agent run cannot starve
// a thousand small ones), idle sessions spill to checkpoint files and
// fault back on demand, and SIGTERM checkpoints every in-flight session so
// a restarted daemon resumes them bit-identically.  Clients speak
// newline-delimited JSON over a Unix or loopback TCP socket — see popctl
// for the matching CLI and DESIGN.md "Service architecture" for the wire
// grammar.
//
//   serve_popproto [flags]
//
//   --socket PATH    listen on a Unix-domain socket     (default
//                    popproto.sock in the current directory)
//   --tcp-port P     listen on 127.0.0.1:P instead (0 = ephemeral,
//                    the chosen port is printed to stderr)
//   --spill-dir D    checkpoint/manifest directory      (default
//                    popproto-spill)
//   --workers K      quantum worker threads             (default 0 = all
//                    hardware threads)
//   --quantum N      default work-quantum length in interactions
//                    (default 65536; sessions may override per submit)
//   --max-resident N suspended sessions kept in memory before the LRU
//                    evictor spills them                (default 64)
//   --max-queued N   admission bound: reject submits once N sessions are
//                    queued or running, with a structured "queue_full"
//                    error clients can retry on         (default 0 = off)
//   --quiet          suppress the stderr status lines
//
// Examples:
//   serve_popproto --socket /tmp/pop.sock --workers 4 &
//   popctl --socket /tmp/pop.sock submit --protocol epidemic --counts 999,1
//   kill -TERM %1       # graceful drain; restart resumes every session

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/daemon.h"

namespace {

[[noreturn]] void usage_error(const std::string& message) {
    std::fprintf(stderr, "serve_popproto: %s\n", message.c_str());
    std::fprintf(stderr,
                 "usage: serve_popproto [--socket PATH | --tcp-port P] [--spill-dir D]\n"
                 "                      [--workers K] [--quantum N] [--max-resident N]\n"
                 "                      [--max-queued N] [--quiet]\n");
    std::exit(2);
}

std::uint64_t parse_u64(const char* flag, const std::string& text) {
    try {
        std::size_t end = 0;
        const unsigned long long value = std::stoull(text, &end);
        if (end != text.size()) throw std::invalid_argument(text);
        return value;
    } catch (const std::exception&) {
        usage_error(std::string(flag) + ": not a number: " + text);
    }
}

}  // namespace

int main(int argc, char** argv) {
    popproto::service::DaemonOptions options;
    options.server.unix_path = "popproto.sock";
    bool tcp = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) usage_error(arg + ": missing value");
            return argv[++i];
        };
        if (arg == "--socket") {
            options.server.unix_path = value();
            tcp = false;
        } else if (arg == "--tcp-port") {
            options.server.tcp_port = static_cast<int>(parse_u64("--tcp-port", value()));
            tcp = true;
        } else if (arg == "--spill-dir") {
            options.registry.spill_dir = value();
        } else if (arg == "--workers") {
            options.registry.workers = static_cast<unsigned>(parse_u64("--workers", value()));
        } else if (arg == "--quantum") {
            options.registry.default_quantum = parse_u64("--quantum", value());
            if (options.registry.default_quantum == 0)
                usage_error("--quantum: must be at least 1");
        } else if (arg == "--max-resident") {
            options.registry.max_resident_suspended =
                static_cast<std::size_t>(parse_u64("--max-resident", value()));
        } else if (arg == "--max-queued") {
            options.registry.max_queued =
                static_cast<std::size_t>(parse_u64("--max-queued", value()));
        } else if (arg == "--quiet") {
            options.verbose = false;
        } else {
            usage_error("unknown flag " + arg);
        }
    }
    if (tcp) options.server.unix_path.clear();
    return popproto::service::run_daemon(options);
}
