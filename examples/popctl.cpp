// popctl: command-line client for the serve_popproto daemon.
//
//   popctl [--socket PATH | --tcp HOST:PORT] <command> [args]
//
//   submit [flags]     submit a run; prints the session id
//       --protocol P       epidemic (default) | counting | majority |
//                          predicate
//       --predicate F      Presburger predicate source (protocol predicate)
//       --threshold K      counting threshold            (default 5)
//       --counts A,B,...   agents per input symbol       (required)
//       --engine E         auto (default) | agent | batch | collapsed
//       --model M          uniform (default) | round_robin | sweep |
//                          adversarial | dynamic_graph | grid_mobility
//       --probe N          adversarial null-interaction look-ahead
//       --phases A,B,...   dynamic_graph phase topologies (complete,
//                          ring, line, star)
//       --phase-length N   dynamic_graph interactions per phase (0 = 4n)
//       --torus WxH        grid_mobility torus dimensions (default auto)
//       --radius R         grid_mobility contact radius   (default 1)
//       --threads K        intra-run threads (collapsed engine)
//       --seed S           RNG seed                      (default 1)
//       --budget B         interaction budget (0 = default_budget(n))
//       --quantum N        work-quantum override
//       --weight W         scheduler weight              (default 1)
//       --snapshot-every N stream snapshots to subscribers
//       --telemetry        stream the final telemetry event too
//       --name NAME        label echoed in status output
//   status  ID         one status line (JSON)
//   list               every session (JSON)
//   suspend ID | resume ID | cancel ID
//   watch   ID         subscribe and stream events until the session
//                      settles (terminal state or stop event)
//   wait    ID         poll status until terminal; prints the final status
//   stats              daemon aggregate counters (JSON)
//   ping               liveness check
//   shutdown           ask the daemon to drain and exit
//
// Exit status: 0 on success ("ok":true), 1 on a daemon error response or
// connection failure, 2 on usage errors.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/client.h"
#include "service/json.h"

namespace {

using popproto::service::JsonValue;
using popproto::service::ServiceClient;
using popproto::service::json_quote;
using popproto::service::parse_json;

[[noreturn]] void usage_error(const std::string& message) {
    std::fprintf(stderr, "popctl: %s\n", message.c_str());
    std::fprintf(stderr,
                 "usage: popctl [--socket PATH | --tcp HOST:PORT] "
                 "submit|status|list|suspend|resume|cancel|watch|wait|stats|ping|shutdown "
                 "[args]\n");
    std::exit(2);
}

std::uint64_t parse_u64(const char* flag, const std::string& text) {
    try {
        std::size_t end = 0;
        const unsigned long long value = std::stoull(text, &end);
        if (end != text.size()) throw std::invalid_argument(text);
        return value;
    } catch (const std::exception&) {
        usage_error(std::string(flag) + ": not a number: " + text);
    }
}

/// True when the response line says "ok":true (cheap but exact: responses
/// are objects built by wire.cpp with "ok" first).
bool response_ok(const std::string& line) {
    try {
        const JsonValue parsed = parse_json(line);
        const JsonValue* ok = parsed.find("ok");
        return ok != nullptr && ok->as_bool("'ok'");
    } catch (const std::exception&) {
        return false;
    }
}

int print_response(const std::string& line) {
    std::printf("%s\n", line.c_str());
    return response_ok(line) ? 0 : 1;
}

std::string string_member(const JsonValue& object, const char* key) {
    const JsonValue* value = object.find(key);
    return value != nullptr && value->is_string() ? value->as_string(key) : std::string();
}

bool state_is_terminal(const std::string& state) {
    return state == "done" || state == "failed" || state == "cancelled";
}

}  // namespace

int main(int argc, char** argv) {
    std::string socket_path = "popproto.sock";
    std::string tcp_host;
    int tcp_port = 0;

    int i = 1;
    const auto next_value = [&](const std::string& flag) -> std::string {
        if (i + 1 >= argc) usage_error(flag + ": missing value");
        return argv[++i];
    };
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            socket_path = next_value(arg);
        } else if (arg == "--tcp") {
            const std::string endpoint = next_value(arg);
            const std::size_t colon = endpoint.rfind(':');
            if (colon == std::string::npos) usage_error("--tcp: expected HOST:PORT");
            tcp_host = endpoint.substr(0, colon);
            tcp_port = static_cast<int>(parse_u64("--tcp", endpoint.substr(colon + 1)));
            socket_path.clear();
        } else {
            break;
        }
    }
    if (i >= argc) usage_error("missing command");
    const std::string command = argv[i++];

    try {
        ServiceClient client = socket_path.empty()
                                  ? ServiceClient::connect_tcp(tcp_host, tcp_port)
                                  : ServiceClient::connect_unix(socket_path);

        if (command == "submit") {
            std::string request = "{\"cmd\":\"submit\"";
            bool have_counts = false;
            for (; i < argc; ++i) {
                const std::string arg = argv[i];
                if (arg == "--protocol") {
                    request += ",\"protocol\":" + json_quote(next_value(arg));
                } else if (arg == "--predicate") {
                    request += ",\"predicate\":" + json_quote(next_value(arg));
                } else if (arg == "--threshold") {
                    request += ",\"threshold\":" +
                               std::to_string(parse_u64("--threshold", next_value(arg)));
                } else if (arg == "--counts") {
                    const std::string list = next_value(arg);
                    request += ",\"counts\":[";
                    std::size_t start = 0;
                    bool first = true;
                    while (start <= list.size()) {
                        std::size_t comma = list.find(',', start);
                        if (comma == std::string::npos) comma = list.size();
                        if (!first) request += ',';
                        first = false;
                        request += std::to_string(
                            parse_u64("--counts", list.substr(start, comma - start)));
                        start = comma + 1;
                    }
                    request += ']';
                    have_counts = true;
                } else if (arg == "--engine") {
                    request += ",\"engine\":" + json_quote(next_value(arg));
                } else if (arg == "--model") {
                    request += ",\"model\":" + json_quote(next_value(arg));
                } else if (arg == "--probe") {
                    request +=
                        ",\"probe\":" + std::to_string(parse_u64("--probe", next_value(arg)));
                } else if (arg == "--phases") {
                    const std::string list = next_value(arg);
                    request += ",\"phases\":[";
                    std::size_t start = 0;
                    bool first = true;
                    while (start <= list.size()) {
                        std::size_t comma = list.find(',', start);
                        if (comma == std::string::npos) comma = list.size();
                        if (!first) request += ',';
                        first = false;
                        request += json_quote(list.substr(start, comma - start));
                        start = comma + 1;
                    }
                    request += ']';
                } else if (arg == "--phase-length") {
                    request += ",\"phase_length\":" +
                               std::to_string(parse_u64("--phase-length", next_value(arg)));
                } else if (arg == "--torus") {
                    const std::string dims = next_value(arg);
                    const std::size_t x = dims.find('x');
                    if (x == std::string::npos) usage_error("--torus: expected WxH");
                    request += ",\"torus_width\":" +
                               std::to_string(parse_u64("--torus", dims.substr(0, x)));
                    request += ",\"torus_height\":" +
                               std::to_string(parse_u64("--torus", dims.substr(x + 1)));
                } else if (arg == "--radius") {
                    request += ",\"radius\":" +
                               std::to_string(parse_u64("--radius", next_value(arg)));
                } else if (arg == "--threads") {
                    request += ",\"threads\":" +
                               std::to_string(parse_u64("--threads", next_value(arg)));
                } else if (arg == "--seed") {
                    request +=
                        ",\"seed\":" + std::to_string(parse_u64("--seed", next_value(arg)));
                } else if (arg == "--budget") {
                    request += ",\"budget\":" +
                               std::to_string(parse_u64("--budget", next_value(arg)));
                } else if (arg == "--quantum") {
                    request += ",\"quantum\":" +
                               std::to_string(parse_u64("--quantum", next_value(arg)));
                } else if (arg == "--weight") {
                    request += ",\"weight\":" +
                               std::to_string(parse_u64("--weight", next_value(arg)));
                } else if (arg == "--snapshot-every") {
                    request += ",\"snapshot_every\":" +
                               std::to_string(parse_u64("--snapshot-every", next_value(arg)));
                } else if (arg == "--telemetry") {
                    request += ",\"telemetry\":true";
                } else if (arg == "--name") {
                    request += ",\"name\":" + json_quote(next_value(arg));
                } else {
                    usage_error("submit: unknown flag " + arg);
                }
            }
            if (!have_counts) usage_error("submit: --counts is required");
            request += '}';
            return print_response(client.request(request));
        }

        if (command == "status" || command == "suspend" || command == "resume" ||
            command == "cancel") {
            if (i >= argc) usage_error(command + ": missing session id");
            const std::string session = argv[i];
            return print_response(client.request("{\"cmd\":" + json_quote(command) +
                                                 ",\"session\":" + json_quote(session) + "}"));
        }

        if (command == "list" || command == "stats" || command == "ping" ||
            command == "shutdown") {
            return print_response(client.request("{\"cmd\":" + json_quote(command) + "}"));
        }

        if (command == "watch") {
            if (i >= argc) usage_error("watch: missing session id");
            const std::string session = argv[i];
            const std::string ack = client.request(
                "{\"cmd\":\"subscribe\",\"session\":" + json_quote(session) + "}");
            if (!response_ok(ack)) return print_response(ack);
            for (;;) {
                const std::string line = client.read_line();
                std::printf("%s\n", line.c_str());
                std::fflush(stdout);
                try {
                    const JsonValue parsed = parse_json(line);
                    const std::string event = string_member(parsed, "event");
                    if (event == "stop") return 0;
                    if (event == "state" && state_is_terminal(string_member(parsed, "state")))
                        return 0;
                } catch (const std::exception&) {
                    // Non-JSON lines cannot happen; keep streaming anyway.
                }
            }
        }

        if (command == "wait") {
            if (i >= argc) usage_error("wait: missing session id");
            const std::string session = argv[i];
            for (;;) {
                const std::string line = client.request(
                    "{\"cmd\":\"status\",\"session\":" + json_quote(session) + "}");
                if (!response_ok(line)) return print_response(line);
                const JsonValue parsed = parse_json(line);
                if (state_is_terminal(string_member(parsed, "state")))
                    return print_response(line);
                ::usleep(20000);
            }
        }

        usage_error("unknown command " + command);
    } catch (const std::exception& error) {
        std::fprintf(stderr, "popctl: %s\n", error.what());
        return 1;
    }
}
