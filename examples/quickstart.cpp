// Quickstart: the paper's opening scenario (Sect. 1).
//
// A flock of birds carries finite-state sensors; we want to know whether at
// least five birds have elevated temperatures.  Build the count-to-five
// protocol, scatter inputs over a population, and let uniform random
// pairing drive it to a stable consensus.

#include <cstdio>

#include "core/simulator.h"
#include "protocols/counting.h"

int main() {
    using namespace popproto;

    const std::uint64_t flock_size = 1000;
    const std::uint64_t fevered = 7;  // ground truth: >= 5, so the answer is "yes"

    // The protocol of Sect. 3.1: states q_0..q_5, counters merge pairwise,
    // and reaching 5 triggers a permanent alert that spreads to everyone.
    const auto protocol = make_counting_protocol(5);

    // The "global start signal": every sensor takes one reading.
    const auto initial = CountConfiguration::from_input_counts(
        *protocol, {flock_size - fevered, fevered});

    RunOptions options;
    options.max_interactions = default_budget(flock_size);
    options.seed = 2004;  // PODC 2004
    const RunResult result = simulate(*protocol, initial, options);

    std::printf("flock of %llu birds, %llu fevered\n",
                static_cast<unsigned long long>(flock_size),
                static_cast<unsigned long long>(fevered));
    std::printf("interactions simulated : %llu\n",
                static_cast<unsigned long long>(result.interactions));
    std::printf("outputs last changed at: %llu\n",
                static_cast<unsigned long long>(result.last_output_change));
    if (result.consensus) {
        std::printf("consensus              : %s\n",
                    *result.consensus == kOutputTrue ? "at least 5 fevered birds"
                                                     : "fewer than 5 fevered birds");
    } else {
        std::printf("consensus              : not yet reached (raise the budget)\n");
    }
    return result.consensus && *result.consensus == kOutputTrue ? 0 : 1;
}
