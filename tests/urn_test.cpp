// Lemma 11 urn process: closed form vs. Markov solution vs. sampling.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "randomized/urn.h"

namespace popproto {
namespace {

using UrnCase = std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>;  // (N, m, k)

class UrnClosedForm : public ::testing::TestWithParam<UrnCase> {};

TEST_P(UrnClosedForm, MatchesMarkovSolution) {
    const auto [tokens, counters, k] = GetParam();
    const double closed = urn_loss_probability(tokens, counters, k);
    const double dp = urn_loss_probability_dp(tokens, counters, k);
    EXPECT_NEAR(closed, dp, 1e-12) << "N=" << tokens << " m=" << counters << " k=" << k;
}

TEST_P(UrnClosedForm, SamplingAgrees) {
    const auto [tokens, counters, k] = GetParam();
    const double closed = urn_loss_probability(tokens, counters, k);
    Rng rng(tokens * 1000 + counters * 10 + k);
    const int trials = 200000;
    int losses = 0;
    for (int t = 0; t < trials; ++t)
        if (sample_urn(tokens, counters, k, rng).lost) ++losses;
    const double observed = static_cast<double>(losses) / trials;
    // Three-sigma band of the binomial estimate, plus an absolute floor for
    // probabilities near zero.
    const double sigma = std::sqrt(closed * (1 - closed) / trials);
    EXPECT_NEAR(observed, closed, 3 * sigma + 5e-5)
        << "N=" << tokens << " m=" << counters << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UrnClosedForm,
    ::testing::Values(UrnCase{4, 1, 1}, UrnCase{4, 1, 2}, UrnCase{4, 2, 2},
                      UrnCase{10, 1, 1}, UrnCase{10, 3, 2}, UrnCase{10, 9, 1},
                      UrnCase{25, 5, 2}, UrnCase{25, 1, 3}, UrnCase{50, 10, 2}));

TEST(Urn, LossProbabilityIsOneWithoutCounters) {
    EXPECT_EQ(urn_loss_probability(10, 0, 2), 1.0);
    EXPECT_EQ(urn_loss_probability_dp(10, 0, 2), 1.0);
}

TEST(Urn, LossProbabilityDecreasesInK) {
    double previous = 1.0;
    for (std::uint32_t k = 1; k <= 5; ++k) {
        const double p = urn_loss_probability(20, 3, k);
        EXPECT_LT(p, previous);
        previous = p;
    }
}

TEST(Urn, LossProbabilityMatchesPaperUpperBound) {
    // Lemma 11(1) bound: p <= 1 / (m N^{k-1}).
    for (std::uint64_t tokens : {5ull, 20ull}) {
        for (std::uint64_t counters : {1ull, 3ull}) {
            for (std::uint32_t k : {1u, 2u, 3u}) {
                const double p = urn_loss_probability(tokens, counters, k);
                const double bound =
                    1.0 / (static_cast<double>(counters) *
                           std::pow(static_cast<double>(tokens), k - 1.0));
                EXPECT_LE(p, bound + 1e-12);
            }
        }
    }
}

TEST(Urn, WinningDrawsRespectBound) {
    // Lemma 11(2): E[draws | win] <= N/m.  Estimate the conditional mean.
    const std::uint64_t tokens = 20;
    const std::uint64_t counters = 4;
    const std::uint32_t k = 3;
    Rng rng(77);
    double total_draws = 0;
    int wins = 0;
    for (int t = 0; t < 100000; ++t) {
        const UrnOutcome outcome = sample_urn(tokens, counters, k, rng);
        if (!outcome.lost) {
            total_draws += static_cast<double>(outcome.draws);
            ++wins;
        }
    }
    ASSERT_GT(wins, 0);
    const double mean = total_draws / wins;
    EXPECT_LE(mean, urn_expected_draws_win_bound(tokens, counters) * 1.02);
}

TEST(Urn, EmptyUrnDrawsRespectBound) {
    // Lemma 11(3): with m = 0 the expected draws to lose is O(N^k).
    const std::uint64_t tokens = 6;
    const std::uint32_t k = 2;
    Rng rng(99);
    double total = 0;
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) total += static_cast<double>(sample_urn(tokens, 0, k, rng).draws);
    const double mean = total / trials;
    EXPECT_LE(mean, urn_expected_draws_empty_bound(tokens, k) * 1.05);
    EXPECT_GE(mean, 1.0);
}

TEST(Urn, ParameterValidation) {
    EXPECT_THROW(urn_loss_probability(1, 0, 1), std::invalid_argument);
    EXPECT_THROW(urn_loss_probability(5, 5, 1), std::invalid_argument);
    EXPECT_THROW(urn_loss_probability(5, 1, 0), std::invalid_argument);
    EXPECT_THROW(urn_expected_draws_win_bound(5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace popproto
