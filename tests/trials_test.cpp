// The repeated-trial measurement harness.

#include <gtest/gtest.h>

#include "protocols/counting.h"
#include "protocols/epidemic.h"
#include "randomized/trials.h"

namespace popproto {
namespace {

TEST(Trials, CountsCorrectConsensusRuns) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 5});
    TrialOptions options;
    options.base.max_interactions = default_budget(15);
    options.base.seed = 100;
    options.trials = 25;
    options.expected_consensus = kOutputTrue;
    const TrialSummary summary = measure_trials(*protocol, initial, options);
    EXPECT_EQ(summary.trials, 25u);
    EXPECT_EQ(summary.correct, 25u);
    EXPECT_EQ(summary.silent, 25u);
    EXPECT_NEAR(summary.correct_rate(), 1.0, 1e-12);
}

TEST(Trials, OrderStatisticsAreConsistent) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {30, 1});
    TrialOptions options;
    options.base.max_interactions = default_budget(31);
    options.base.seed = 7;
    options.trials = 40;
    const TrialSummary summary = measure_trials(*protocol, initial, options);
    EXPECT_LE(summary.min_convergence, summary.median_convergence);
    EXPECT_LE(summary.median_convergence, summary.max_convergence);
    EXPECT_GE(summary.mean_convergence, static_cast<double>(summary.min_convergence));
    EXPECT_LE(summary.mean_convergence, static_cast<double>(summary.max_convergence));
    EXPECT_GT(summary.stddev_convergence, 0.0);
    // Epidemic completion: the mean lands near the closed form.
    EXPECT_NEAR(summary.mean_convergence, epidemic_expected_interactions(31, 1),
                0.35 * epidemic_expected_interactions(31, 1));
}

TEST(Trials, WrongExpectationYieldsZeroCorrect) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 5});
    TrialOptions options;
    options.base.max_interactions = default_budget(15);
    options.trials = 5;
    options.expected_consensus = kOutputFalse;  // truth is "true"
    const TrialSummary summary = measure_trials(*protocol, initial, options);
    EXPECT_EQ(summary.correct, 0u);
}

TEST(Trials, SeedsAdvancePerTrial) {
    // Distinct seeds produce convergence-time dispersion.
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {20, 1});
    TrialOptions options;
    options.base.max_interactions = default_budget(21);
    options.base.seed = 1;
    options.trials = 10;
    const TrialSummary summary = measure_trials(*protocol, initial, options);
    EXPECT_NE(summary.min_convergence, summary.max_convergence);
}

TEST(Trials, ParallelSummariesBitIdenticalAcrossThreadCounts) {
    // Trial t always runs with seed base.seed + t and aggregation happens
    // in trial order, so the thread count must not change a single bit of
    // the summary.
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {30, 1});
    TrialOptions options;
    options.base.max_interactions = default_budget(31);
    options.base.seed = 19;
    options.trials = 16;

    options.threads = 1;
    const TrialSummary sequential = measure_trials(*protocol, initial, options);
    for (unsigned threads : {4u, 8u}) {
        options.threads = threads;
        const TrialSummary parallel = measure_trials(*protocol, initial, options);
        EXPECT_EQ(parallel.trials, sequential.trials) << threads;
        EXPECT_EQ(parallel.correct, sequential.correct) << threads;
        EXPECT_EQ(parallel.silent, sequential.silent) << threads;
        EXPECT_EQ(parallel.mean_convergence, sequential.mean_convergence) << threads;
        EXPECT_EQ(parallel.stddev_convergence, sequential.stddev_convergence) << threads;
        EXPECT_EQ(parallel.min_convergence, sequential.min_convergence) << threads;
        EXPECT_EQ(parallel.median_convergence, sequential.median_convergence) << threads;
        EXPECT_EQ(parallel.max_convergence, sequential.max_convergence) << threads;
    }
}

TEST(Trials, BatchEngineMeasuresTheSameProtocol) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 5});
    TrialOptions options;
    options.base.max_interactions = default_budget(15);
    options.base.seed = 100;
    options.base.engine = SimulationEngine::kCountBatch;
    options.trials = 25;
    options.threads = 4;
    options.expected_consensus = kOutputTrue;
    const TrialSummary summary = measure_trials(*protocol, initial, options);
    EXPECT_EQ(summary.trials, 25u);
    EXPECT_EQ(summary.correct, 25u);
    EXPECT_EQ(summary.silent, 25u);
}

TEST(Trials, Validation) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {2, 2});
    TrialOptions options;
    options.base.max_interactions = 1000;
    options.trials = 0;
    EXPECT_THROW(measure_trials(*protocol, initial, options), std::invalid_argument);
}

}  // namespace
}  // namespace popproto
