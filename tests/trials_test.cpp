// The repeated-trial measurement harness.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "observe/trace_recorder.h"
#include "protocols/counting.h"
#include "protocols/epidemic.h"
#include "randomized/trials.h"

namespace popproto {
namespace {

TEST(Trials, CountsCorrectConsensusRuns) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 5});
    TrialOptions options;
    options.base.max_interactions = default_budget(15);
    options.base.seed = 100;
    options.trials = 25;
    options.expected_consensus = kOutputTrue;
    const TrialSummary summary = measure_trials(*protocol, initial, options);
    EXPECT_EQ(summary.trials, 25u);
    EXPECT_EQ(summary.correct, 25u);
    EXPECT_EQ(summary.silent, 25u);
    EXPECT_NEAR(summary.correct_rate(), 1.0, 1e-12);
}

TEST(Trials, OrderStatisticsAreConsistent) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {30, 1});
    TrialOptions options;
    options.base.max_interactions = default_budget(31);
    options.base.seed = 7;
    options.trials = 40;
    const TrialSummary summary = measure_trials(*protocol, initial, options);
    EXPECT_LE(summary.min_convergence, summary.median_convergence);
    EXPECT_LE(summary.median_convergence, summary.max_convergence);
    EXPECT_GE(summary.mean_convergence, static_cast<double>(summary.min_convergence));
    EXPECT_LE(summary.mean_convergence, static_cast<double>(summary.max_convergence));
    EXPECT_GT(summary.stddev_convergence, 0.0);
    // Epidemic completion: the mean lands near the closed form.
    EXPECT_NEAR(summary.mean_convergence, epidemic_expected_interactions(31, 1),
                0.35 * epidemic_expected_interactions(31, 1));
}

TEST(Trials, WrongExpectationYieldsZeroCorrect) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 5});
    TrialOptions options;
    options.base.max_interactions = default_budget(15);
    options.trials = 5;
    options.expected_consensus = kOutputFalse;  // truth is "true"
    const TrialSummary summary = measure_trials(*protocol, initial, options);
    EXPECT_EQ(summary.correct, 0u);
}

TEST(Trials, SeedsAdvancePerTrial) {
    // Distinct seeds produce convergence-time dispersion.
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {20, 1});
    TrialOptions options;
    options.base.max_interactions = default_budget(21);
    options.base.seed = 1;
    options.trials = 10;
    const TrialSummary summary = measure_trials(*protocol, initial, options);
    EXPECT_NE(summary.min_convergence, summary.max_convergence);
}

TEST(Trials, ParallelSummariesBitIdenticalAcrossThreadCounts) {
    // Trial t always runs with seed base.seed + t and aggregation happens
    // in trial order, so the thread count must not change a single bit of
    // the summary.
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {30, 1});
    TrialOptions options;
    options.base.max_interactions = default_budget(31);
    options.base.seed = 19;
    options.trials = 16;

    options.threads = 1;
    const TrialSummary sequential = measure_trials(*protocol, initial, options);
    for (unsigned threads : {4u, 8u}) {
        options.threads = threads;
        const TrialSummary parallel = measure_trials(*protocol, initial, options);
        EXPECT_EQ(parallel.trials, sequential.trials) << threads;
        EXPECT_EQ(parallel.correct, sequential.correct) << threads;
        EXPECT_EQ(parallel.silent, sequential.silent) << threads;
        EXPECT_EQ(parallel.mean_convergence, sequential.mean_convergence) << threads;
        EXPECT_EQ(parallel.stddev_convergence, sequential.stddev_convergence) << threads;
        EXPECT_EQ(parallel.min_convergence, sequential.min_convergence) << threads;
        EXPECT_EQ(parallel.median_convergence, sequential.median_convergence) << threads;
        EXPECT_EQ(parallel.max_convergence, sequential.max_convergence) << threads;
    }
}

TEST(Trials, BatchEngineMeasuresTheSameProtocol) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 5});
    TrialOptions options;
    options.base.max_interactions = default_budget(15);
    options.base.seed = 100;
    options.base.engine = SimulationEngine::kCountBatch;
    options.trials = 25;
    options.threads = 4;
    options.expected_consensus = kOutputTrue;
    const TrialSummary summary = measure_trials(*protocol, initial, options);
    EXPECT_EQ(summary.trials, 25u);
    EXPECT_EQ(summary.correct, 25u);
    EXPECT_EQ(summary.silent, 25u);
}

TEST(Trials, StopReasonCountsPartitionTrials) {
    // A starvation budget: every run must be reported as budget-limited, so
    // budget exhaustion can never hide inside a summary.
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {30, 1});
    TrialOptions options;
    options.base.max_interactions = 10;  // far below the ~120 expected completion
    options.base.seed = 3;
    options.trials = 12;
    const TrialSummary summary = measure_trials(*protocol, initial, options);
    EXPECT_EQ(summary.budget, 12u);
    EXPECT_EQ(summary.silent, 0u);
    EXPECT_EQ(summary.stable_outputs, 0u);
    EXPECT_EQ(summary.silent + summary.stable_outputs + summary.budget, summary.trials);
}

TEST(Trials, StableOutputStopsAreCountedSeparately) {
    // With a small stability window the heuristic rule fires long before the
    // first periodic silence check (period >= 1024), so every run stops as
    // kStableOutputs — and must not be conflated with sound silent stops.
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {30, 1});
    TrialOptions options;
    options.base.max_interactions = default_budget(31);
    options.base.stop_after_stable_outputs = 40;
    options.base.seed = 8;
    options.trials = 10;
    const TrialSummary summary = measure_trials(*protocol, initial, options);
    EXPECT_EQ(summary.stable_outputs, 10u);
    EXPECT_EQ(summary.silent, 0u);
    EXPECT_EQ(summary.budget, 0u);
}

TEST(Trials, MedianIsLowerMedianForEvenTrialCounts) {
    // Regression test: with an even trial count the median must be the
    // *lower* of the two middle order statistics, sorted[(n - 1) / 2] — the
    // harness previously reported the upper one.
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {20, 1});
    TrialOptions options;
    options.base.max_interactions = default_budget(21);
    options.base.seed = 77;
    options.trials = 4;
    options.keep_records = true;
    const TrialSummary summary = measure_trials(*protocol, initial, options);

    ASSERT_EQ(summary.records.size(), 4u);
    std::vector<std::uint64_t> sorted;
    for (const TrialRecord& record : summary.records) sorted.push_back(record.last_output_change);
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(summary.median_convergence, sorted[1]);  // lower middle of 4
    EXPECT_EQ(summary.min_convergence, sorted.front());
    EXPECT_EQ(summary.max_convergence, sorted.back());
}

TEST(Trials, RecordsAreRetainedInTrialOrder) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 5});
    TrialOptions options;
    options.base.max_interactions = default_budget(15);
    options.base.seed = 100;
    options.trials = 6;
    options.keep_records = true;

    options.threads = 1;
    const TrialSummary sequential = measure_trials(*protocol, initial, options);
    options.threads = 3;
    const TrialSummary parallel = measure_trials(*protocol, initial, options);

    ASSERT_EQ(sequential.records.size(), 6u);
    ASSERT_EQ(parallel.records.size(), 6u);
    for (std::size_t t = 0; t < 6; ++t) {
        // records[t] is trial t (seed base.seed + t) at any thread count.
        EXPECT_EQ(parallel.records[t].stop_reason, sequential.records[t].stop_reason) << t;
        EXPECT_EQ(parallel.records[t].consensus, sequential.records[t].consensus) << t;
        EXPECT_EQ(parallel.records[t].last_output_change,
                  sequential.records[t].last_output_change)
            << t;
        EXPECT_EQ(parallel.records[t].interactions, sequential.records[t].interactions) << t;
        EXPECT_EQ(parallel.records[t].effective_interactions,
                  sequential.records[t].effective_interactions)
            << t;
    }

    // Records are off by default.
    options.keep_records = false;
    EXPECT_TRUE(measure_trials(*protocol, initial, options).records.empty());
}

TEST(Trials, ObserverFactoryDeliversPerTrialObservers) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {60, 4});
    TrialOptions options;
    options.base.max_interactions = default_budget(64);
    options.base.seed = 40;
    options.base.snapshots = SnapshotSchedule::every(128);
    options.trials = 6;
    options.keep_records = true;

    std::vector<TraceRecorder> recorders(options.trials);
    options.observer_factory = [&](std::uint64_t trial) { return &recorders[trial]; };

    options.threads = 3;
    const TrialSummary summary = measure_trials(*protocol, initial, options);

    ASSERT_EQ(summary.records.size(), 6u);
    for (std::size_t t = 0; t < recorders.size(); ++t) {
        // Recorder t saw exactly trial t's run: matching interaction count
        // and the shared initial configuration.
        ASSERT_TRUE(recorders[t].finished()) << t;
        EXPECT_EQ(recorders[t].result()->interactions, summary.records[t].interactions) << t;
        EXPECT_EQ(recorders[t].initial_counts(), initial.counts()) << t;
    }

    // The factory takes precedence over base.observer, which stays unused.
    TraceRecorder ignored;
    options.base.observer = &ignored;
    std::vector<TraceRecorder> fresh(options.trials);
    options.observer_factory = [&](std::uint64_t trial) { return &fresh[trial]; };
    measure_trials(*protocol, initial, options);
    EXPECT_FALSE(ignored.finished());
    EXPECT_TRUE(fresh.front().finished());
}

TEST(Trials, Validation) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {2, 2});
    TrialOptions options;
    options.base.max_interactions = 1000;
    options.trials = 0;
    EXPECT_THROW(measure_trials(*protocol, initial, options), std::invalid_argument);
}

}  // namespace
}  // namespace popproto
