// Multiway interactions (the Sect. 8 "larger groups" extension).

#include <gtest/gtest.h>

#include "extensions/multiway.h"

namespace popproto {
namespace {

CountConfiguration inputs_for(const MultiwayProtocol& protocol, std::uint64_t camp_a,
                              std::uint64_t camp_b) {
    CountConfiguration config(protocol.num_states());
    if (camp_a > 0) config.add(protocol.initial_state(0), camp_a);
    if (camp_b > 0) config.add(protocol.initial_state(1), camp_b);
    return config;
}

TEST(Multiway, CoincidenceStablyComputesThresholdG) {
    // With O(1) states for any group size g, "at least g marked agents" is
    // stably computed: a group of g marked agents can always fire while no
    // alert exists, so no alert-free final SCC survives when marked >= g.
    for (std::size_t g : {2ull, 3ull, 4ull}) {
        const auto protocol = make_multiway_coincidence_protocol(g);
        for (std::uint64_t marked = 0; marked <= 5; ++marked) {
            for (std::uint64_t idle = 0; idle + marked <= 6; ++idle) {
                if (idle + marked < g) continue;  // population must fit one group
                const auto initial = inputs_for(*protocol, idle, marked);
                const StableComputationResult result =
                    analyze_multiway_stable_computation(*protocol, initial);
                ASSERT_TRUE(result.always_converges)
                    << "g=" << g << " marked=" << marked << " idle=" << idle;
                ASSERT_TRUE(result.single_valued());
                const bool expected = marked >= g;
                const OutputSignature& signature = result.stable_signatures.front();
                EXPECT_EQ(signature[kOutputTrue] == initial.population_size(), expected)
                    << "g=" << g << " marked=" << marked << " idle=" << idle;
            }
        }
    }
}

TEST(Multiway, MajorityConvergesForStrictMajorities) {
    const auto protocol = make_multiway_majority_protocol(3);
    for (std::uint64_t camp_a = 0; camp_a <= 5; ++camp_a) {
        for (std::uint64_t camp_b = 0; camp_b <= 5; ++camp_b) {
            if (camp_a == camp_b) continue;  // ties: documented non-convergence
            if (camp_a + camp_b < 3) continue;
            const auto initial = inputs_for(*protocol, camp_a, camp_b);
            const StableComputationResult result =
                analyze_multiway_stable_computation(*protocol, initial);
            ASSERT_TRUE(result.always_converges) << camp_a << " vs " << camp_b;
            ASSERT_TRUE(result.single_valued()) << camp_a << " vs " << camp_b;
            const OutputSignature& signature = result.stable_signatures.front();
            const bool b_wins = camp_b > camp_a;
            EXPECT_EQ(signature[kOutputTrue] == initial.population_size(), b_wins)
                << camp_a << " vs " << camp_b;
            EXPECT_EQ(signature[kOutputFalse] == initial.population_size(), !b_wins)
                << camp_a << " vs " << camp_b;
        }
    }
}

TEST(Multiway, MajorityTieDoesNotConverge) {
    const auto protocol = make_multiway_majority_protocol(3);
    const auto initial = inputs_for(*protocol, 3, 3);
    const StableComputationResult result =
        analyze_multiway_stable_computation(*protocol, initial);
    // Ties leave mixed Ta/Tb populations whose outputs disagree forever.
    EXPECT_FALSE(result.single_valued() &&
                 result.stable_signatures.front()[kOutputTrue] == 6);
}

TEST(Multiway, SimulationReachesMajorityConsensus) {
    const auto protocol = make_multiway_majority_protocol(3);
    const auto initial = inputs_for(*protocol, 40, 60);
    MultiwayRunOptions options;
    options.max_interactions = 4'000'000;
    options.stop_after_stable_outputs = 200'000;
    options.seed = 5;
    const MultiwayRunResult result = simulate_multiway(*protocol, initial, options);
    ASSERT_TRUE(result.consensus.has_value());
    EXPECT_EQ(*result.consensus, kOutputTrue);  // B is the strict majority
    EXPECT_GT(result.effective_interactions, 0u);
}

TEST(Multiway, SimulationCoincidenceFiresOnlyWithEnoughMarks) {
    for (const auto& [marked, expect_alert] :
         std::vector<std::pair<std::uint64_t, bool>>{{2, false}, {3, true}, {6, true}}) {
        const auto protocol = make_multiway_coincidence_protocol(3);
        const auto initial = inputs_for(*protocol, 20, marked);
        MultiwayRunOptions options;
        options.max_interactions = 8'000'000;
        options.seed = 11 + marked;
        const MultiwayRunResult result = simulate_multiway(*protocol, initial, options);
        const std::uint64_t alerts = result.final_configuration.count(2);
        EXPECT_EQ(alerts == initial.population_size(), expect_alert) << marked;
    }
}

TEST(Multiway, LargerGroupsBeatPairwiseStateCounts) {
    // The structural point: the coincidence protocol has 3 states for every
    // g, whereas the pairwise counting protocol needs g + 1.
    for (std::size_t g : {3ull, 5ull, 9ull}) {
        const auto protocol = make_multiway_coincidence_protocol(g);
        EXPECT_EQ(protocol->num_states(), 3u);
        EXPECT_EQ(protocol->group_size(), g);
    }
}

TEST(Multiway, Validation) {
    EXPECT_THROW(make_multiway_majority_protocol(1), std::invalid_argument);
    const auto protocol = make_multiway_coincidence_protocol(4);
    const auto too_small = inputs_for(*protocol, 1, 2);  // 3 agents < group of 4
    MultiwayRunOptions options;
    options.max_interactions = 10;
    EXPECT_THROW(simulate_multiway(*protocol, too_small, options), std::invalid_argument);
    EXPECT_THROW(analyze_multiway_stable_computation(*protocol, too_small),
                 std::invalid_argument);
}

}  // namespace
}  // namespace popproto
