// Unit tests for the core model: RNG, tabulated protocols, configurations,
// combinators, and the random simulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/combinators.h"
#include "core/configuration.h"
#include "core/interner.h"
#include "core/rng.h"
#include "core/simulator.h"
#include "core/tabulated_protocol.h"
#include "protocols/counting.h"
#include "protocols/leader_election.h"

namespace popproto {
namespace {

TEST(Rng, DeterministicForSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b()) ++same;
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRange) {
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversAllValues) {
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, Uniform01InRange) {
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(StateInterner, AssignsDenseIndicesInOrder) {
    StateInterner<int> interner;
    EXPECT_EQ(interner.intern(10), 0u);
    EXPECT_EQ(interner.intern(20), 1u);
    EXPECT_EQ(interner.intern(10), 0u);
    EXPECT_EQ(interner.size(), 2u);
    EXPECT_EQ(interner.value(1), 20);
    EXPECT_TRUE(interner.contains(10));
    EXPECT_FALSE(interner.contains(30));
    EXPECT_THROW(interner.at(30), std::invalid_argument);
}

TabulatedProtocol::Tables tiny_tables() {
    // Two states; input 0 -> state 0; delta(1, 0) = (1, 1); outputs = state.
    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    tables.initial = {0};
    tables.output = {0, 1};
    tables.delta = {{0, 0}, {0, 1}, {1, 1}, {1, 1}};
    return tables;
}

TEST(TabulatedProtocol, ValidatesShapes) {
    auto tables = tiny_tables();
    tables.delta.pop_back();
    EXPECT_THROW(TabulatedProtocol{std::move(tables)}, std::invalid_argument);

    tables = tiny_tables();
    tables.output = {0, 5};
    EXPECT_THROW(TabulatedProtocol{std::move(tables)}, std::invalid_argument);

    tables = tiny_tables();
    tables.initial = {7};
    EXPECT_THROW(TabulatedProtocol{std::move(tables)}, std::invalid_argument);

    tables = tiny_tables();
    tables.delta[0] = {9, 0};
    EXPECT_THROW(TabulatedProtocol{std::move(tables)}, std::invalid_argument);
}

TEST(TabulatedProtocol, LookupsMatchTables) {
    const TabulatedProtocol protocol(tiny_tables());
    EXPECT_EQ(protocol.num_states(), 2u);
    EXPECT_EQ(protocol.num_input_symbols(), 1u);
    EXPECT_EQ(protocol.initial_state(0), 0u);
    EXPECT_EQ(protocol.output(1), 1u);
    EXPECT_EQ(protocol.apply(1, 0), (StatePair{1, 1}));
    EXPECT_TRUE(protocol.is_null_interaction(0, 0));
    EXPECT_FALSE(protocol.is_null_interaction(1, 0));
    EXPECT_THROW(protocol.apply(2, 0), std::invalid_argument);
}

TEST(TabulatedProtocol, TabulateRoundTrips) {
    const auto counting = make_counting_protocol(3);
    const auto copy = TabulatedProtocol::tabulate(*counting);
    ASSERT_EQ(copy->num_states(), counting->num_states());
    for (State p = 0; p < counting->num_states(); ++p) {
        EXPECT_EQ(copy->output(p), counting->output(p));
        for (State q = 0; q < counting->num_states(); ++q)
            EXPECT_EQ(copy->apply(p, q), counting->apply(p, q));
    }
    EXPECT_EQ(copy->state_name(0), counting->state_name(0));
}

TEST(CountConfiguration, AddRemoveAndPopulation) {
    CountConfiguration config(4);
    EXPECT_EQ(config.population_size(), 0u);
    config.add(2, 3);
    config.add(0);
    EXPECT_EQ(config.population_size(), 4u);
    EXPECT_EQ(config.count(2), 3u);
    config.remove(2, 2);
    EXPECT_EQ(config.count(2), 1u);
    EXPECT_EQ(config.population_size(), 2u);
    EXPECT_THROW(config.remove(2, 5), std::invalid_argument);
    EXPECT_THROW(config.count(9), std::invalid_argument);
}

TEST(CountConfiguration, FromInputsMatchesCounts) {
    const auto protocol = make_counting_protocol(5);
    const auto a = CountConfiguration::from_inputs(*protocol, {kInputOne, kInputZero, kInputOne});
    const auto b = CountConfiguration::from_input_counts(*protocol, {1, 2});
    EXPECT_EQ(a.count(1), 2u);
    EXPECT_EQ(a.count(0), 1u);
    EXPECT_EQ(b.count(1), 2u);
    EXPECT_EQ(b.population_size(), 3u);
}

TEST(CountConfiguration, ApplyInteractionMovesAgents) {
    const auto protocol = make_counting_protocol(5);
    auto config = CountConfiguration::from_input_counts(*protocol, {0, 2});
    config.apply_interaction(*protocol, 1, 1);  // q1 + q1 -> q2 + q0
    EXPECT_EQ(config.count(2), 1u);
    EXPECT_EQ(config.count(0), 1u);
    EXPECT_EQ(config.count(1), 0u);
    // Applying with absent agents throws.
    EXPECT_THROW(config.apply_interaction(*protocol, 1, 1), std::invalid_argument);
}

TEST(CountConfiguration, ConsensusOutput) {
    const auto protocol = make_counting_protocol(2);
    auto all_false = CountConfiguration::from_input_counts(*protocol, {3, 0});
    ASSERT_TRUE(all_false.consensus_output(*protocol).has_value());
    EXPECT_EQ(*all_false.consensus_output(*protocol), kOutputFalse);

    auto mixed = CountConfiguration::from_input_counts(*protocol, {1, 0});
    mixed.add(2);  // one alert agent
    EXPECT_FALSE(mixed.consensus_output(*protocol).has_value());
}

TEST(CountConfiguration, SilenceDetection) {
    const auto protocol = make_counting_protocol(5);
    // All agents in q0: every interaction is a no-op.
    auto idle = CountConfiguration::from_input_counts(*protocol, {4, 0});
    EXPECT_TRUE(idle.is_silent(*protocol));
    // Two q1 agents can still merge.
    auto active = CountConfiguration::from_input_counts(*protocol, {0, 2});
    EXPECT_FALSE(active.is_silent(*protocol));
    // A single q1 cannot interact with itself.
    auto lonely = CountConfiguration::from_input_counts(*protocol, {0, 1});
    EXPECT_TRUE(lonely.is_silent(*protocol));
}

TEST(AgentConfiguration, RoundTripWithCounts) {
    const auto protocol = make_counting_protocol(5);
    const auto counts = CountConfiguration::from_input_counts(*protocol, {2, 3});
    const auto agents = AgentConfiguration::from_counts(counts);
    EXPECT_EQ(agents.size(), 5u);
    EXPECT_EQ(agents.to_counts(protocol->num_states()), counts);
}

TEST(AgentConfiguration, ApplyInteractionReportsChange) {
    const auto protocol = make_counting_protocol(5);
    auto agents =
        AgentConfiguration::from_inputs(*protocol, {kInputOne, kInputOne, kInputZero});
    EXPECT_TRUE(agents.apply_interaction(*protocol, 0, 1));   // q1,q1 -> q2,q0
    EXPECT_FALSE(agents.apply_interaction(*protocol, 2, 1));  // q0,q0 no-op
    EXPECT_THROW(agents.apply_interaction(*protocol, 0, 0), std::invalid_argument);
}

TEST(Combinators, ProductRunsComponentsInParallel) {
    const auto a = make_counting_protocol(2);
    const auto b = make_counting_protocol(3);
    const auto both = make_product_protocol(
        *a, *b,
        [](Symbol x, Symbol y) { return (x == kOutputTrue && y == kOutputTrue) ? kOutputTrue
                                                                               : kOutputFalse; },
        2);
    EXPECT_EQ(both->num_states(), a->num_states() * b->num_states());
    EXPECT_EQ(both->num_input_symbols(), 2u);

    // Decode: state = qa * |Qb| + qb.
    const State initial = both->initial_state(kInputOne);
    EXPECT_EQ(initial / b->num_states(), a->initial_state(kInputOne));
    EXPECT_EQ(initial % b->num_states(), b->initial_state(kInputOne));

    const StatePair next = both->apply(initial, initial);
    const StatePair next_a = a->apply(a->initial_state(kInputOne), a->initial_state(kInputOne));
    const StatePair next_b = b->apply(b->initial_state(kInputOne), b->initial_state(kInputOne));
    EXPECT_EQ(next.initiator / b->num_states(), next_a.initiator);
    EXPECT_EQ(next.initiator % b->num_states(), next_b.initiator);
    EXPECT_EQ(next.responder / b->num_states(), next_a.responder);
    EXPECT_EQ(next.responder % b->num_states(), next_b.responder);
}

TEST(Combinators, ProductRejectsMismatchedAlphabets) {
    const auto a = make_counting_protocol(2);
    const auto leader = make_leader_election_protocol();  // one input symbol
    EXPECT_THROW(make_product_protocol(
                     *a, *leader, [](Symbol, Symbol) { return kOutputFalse; }, 2),
                 std::invalid_argument);
}

TEST(Combinators, NegationFlipsOutputsOnly) {
    const auto base = make_counting_protocol(2);
    const auto negated = make_negation_protocol(*base);
    for (State q = 0; q < base->num_states(); ++q)
        EXPECT_NE(negated->output(q), base->output(q));
    for (State p = 0; p < base->num_states(); ++p)
        for (State q = 0; q < base->num_states(); ++q)
            EXPECT_EQ(negated->apply(p, q), base->apply(p, q));
}

TEST(Simulator, StopsWhenSilent) {
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {6, 2});
    RunOptions options;
    options.max_interactions = 1u << 20;
    options.seed = 9;
    const RunResult result = simulate(*protocol, initial, options);
    EXPECT_EQ(result.stop_reason, StopReason::kSilent);
    ASSERT_TRUE(result.consensus.has_value());
    EXPECT_EQ(*result.consensus, kOutputFalse);  // only 2 ones < 5
    EXPECT_EQ(result.final_configuration.population_size(), 8u);
}

TEST(Simulator, ReachesAlertConsensus) {
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {3, 7});
    RunOptions options;
    options.max_interactions = 1u << 22;
    options.seed = 10;
    const RunResult result = simulate(*protocol, initial, options);
    ASSERT_TRUE(result.consensus.has_value());
    EXPECT_EQ(*result.consensus, kOutputTrue);
    EXPECT_GT(result.effective_interactions, 0u);
    EXPECT_LE(result.effective_interactions, result.interactions);
    EXPECT_GE(result.last_output_change, 1u);
}

TEST(Simulator, BudgetStop) {
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {50, 50});
    RunOptions options;
    options.max_interactions = 3;  // far too small
    options.seed = 4;
    const RunResult result = simulate(*protocol, initial, options);
    EXPECT_EQ(result.stop_reason, StopReason::kBudget);
    EXPECT_EQ(result.interactions, 3u);
}

TEST(Simulator, DeterministicGivenSeed) {
    const auto protocol = make_counting_protocol(4);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 6});
    RunOptions options;
    options.max_interactions = 1u << 20;
    options.seed = 1234;
    const RunResult a = simulate(*protocol, initial, options);
    const RunResult b = simulate(*protocol, initial, options);
    EXPECT_EQ(a.interactions, b.interactions);
    EXPECT_EQ(a.final_configuration, b.final_configuration);
}

TEST(Simulator, RequiresSaneOptions) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {1, 1});
    RunOptions options;  // max_interactions == 0 -> default_budget(n)
    const RunResult result = simulate(*protocol, initial, options);
    EXPECT_LE(result.interactions, default_budget(2));

    const auto lonely = CountConfiguration::from_input_counts(*protocol, {1, 0});
    options.max_interactions = 10;
    EXPECT_THROW(simulate(*protocol, lonely, options), std::invalid_argument);

    // Engine-field consistency: a direct entry point refuses an options
    // struct meant for a different engine instead of silently running.
    options.engine = SimulationEngine::kCountBatch;
    EXPECT_THROW(simulate(*protocol, initial, options), std::invalid_argument);
}

TEST(Simulator, DefaultBudgetGrowsSuperlinearly) {
    EXPECT_GT(default_budget(100), default_budget(10));
    EXPECT_GT(default_budget(100), 100ull * 100ull);
    EXPECT_THROW(default_budget(1), std::invalid_argument);
}

TEST(Simulator, SilenceBetweenChecksBeatsBudgetExpiry) {
    // Regression: with a check period longer than the budget, a run that
    // becomes silent between checks used to be misreported as kBudget when
    // the budget expired first.  The final silence test must still issue
    // the sound kSilent certificate.
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 5});
    RunOptions options;
    options.max_interactions = default_budget(15);
    options.silence_check_period = options.max_interactions + 1;  // never fires in-loop
    options.seed = 5;
    const RunResult result = simulate(*protocol, initial, options);
    EXPECT_EQ(result.stop_reason, StopReason::kSilent);
    ASSERT_TRUE(result.consensus.has_value());
    EXPECT_EQ(*result.consensus, kOutputTrue);
}

TEST(Rng, GeometricSkipsCertainEventNeverWaits) {
    Rng rng(3);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(rng.geometric_skips(1.0), 0u);
}

TEST(Rng, GeometricSkipsMatchesGeometricMean) {
    // E[skips] = (1 - p) / p; check p = 0.25 (mean 3) within Monte Carlo
    // tolerance.
    Rng rng(17);
    const int samples = 20000;
    double total = 0.0;
    for (int i = 0; i < samples; ++i)
        total += static_cast<double>(rng.geometric_skips(0.25));
    EXPECT_NEAR(total / samples, 3.0, 0.15);
}

TEST(Rng, GeometricSkipsRareEventIsCapped) {
    Rng rng(29);
    EXPECT_LE(rng.geometric_skips(1e-300), static_cast<std::uint64_t>(1e18));
}

}  // namespace
}  // namespace popproto
