// Phase-adaptive dispatcher tests: switch-as-checkpoint bit-identity
// against a manually spliced run, checkpoint/resume cut on and around a
// switch boundary, dwell-based thrash suppression, entry-engine selection,
// and per-engine telemetry attribution.

#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive_simulator.h"
#include "core/batch_simulator.h"
#include "core/collapsed_simulator.h"
#include "core/configuration.h"
#include "core/engine_monitor.h"
#include "core/observer.h"
#include "core/run_loop.h"
#include "core/simulator.h"
#include "meanfield/fluid_assist.h"
#include "protocols/epidemic.h"
#include "telemetry/telemetry.h"

namespace popproto {
namespace {

class CollectingSink final : public CheckpointSink {
public:
    void on_checkpoint(const RunCheckpoint& checkpoint) override {
        checkpoints.push_back(checkpoint);
    }
    std::vector<RunCheckpoint> checkpoints;
};

class SwitchRecorder final : public RunObserver {
public:
    void on_engine_switch(const EngineSwitchInfo& info) override { switches.push_back(info); }
    std::vector<EngineSwitchInfo> switches;
};

void expect_same_run(const RunResult& actual, const RunResult& expected) {
    EXPECT_EQ(actual.stop_reason, expected.stop_reason);
    EXPECT_EQ(actual.interactions, expected.interactions);
    EXPECT_EQ(actual.effective_interactions, expected.effective_interactions);
    EXPECT_EQ(actual.last_output_change, expected.last_output_change);
    EXPECT_EQ(actual.final_configuration, expected.final_configuration);
    EXPECT_EQ(actual.consensus, expected.consensus);
}

// A single-seed epidemic large enough for the default thresholds to switch
// twice (sparse -> dense -> sparse) but small enough for sub-second tests.
constexpr std::uint64_t kPopulation = 1 << 14;

RunOptions adaptive_options(std::uint64_t seed) {
    RunOptions options;
    options.engine = SimulationEngine::kAdaptive;
    options.seed = seed;
    return options;
}

// The core tentpole guarantee: an adaptive run is bit-identical to manually
// pausing a static run at each recorded switch index, transferring the
// checkpoint to the other engine, and resuming — the switch IS a
// checkpoint round-trip.
TEST(AdaptiveSimulator, BitIdenticalToManualSplice) {
    const auto protocol = make_epidemic_protocol();
    const auto initial =
        CountConfiguration::from_input_counts(*protocol, {kPopulation - 1, 1});

    SwitchRecorder recorder;
    RunOptions options = adaptive_options(7);
    options.observer = &recorder;
    const RunResult adaptive = simulate_adaptive(*protocol, initial, options);
    EXPECT_EQ(adaptive.engine, ObservedEngine::kAdaptive);
    EXPECT_EQ(adaptive.stop_reason, StopReason::kSilent);
    // Full epidemic: sparse tail on both ends of the dense transient.
    ASSERT_EQ(recorder.switches.size(), 2u);
    EXPECT_EQ(recorder.switches[0].from, ObservedEngine::kCountBatch);
    EXPECT_EQ(recorder.switches[0].to, ObservedEngine::kCollapsed);
    EXPECT_EQ(recorder.switches[1].from, ObservedEngine::kCollapsed);
    EXPECT_EQ(recorder.switches[1].to, ObservedEngine::kCountBatch);
    EXPECT_LT(recorder.switches[0].interactions, recorder.switches[1].interactions);
    EXPECT_EQ(recorder.switches[0].switch_index, 1u);
    EXPECT_EQ(recorder.switches[1].switch_index, 2u);

    // Manual splice: count-batch to the first switch index...
    CollectingSink sink;
    RunOptions manual;
    manual.seed = 7;
    manual.engine = SimulationEngine::kCountBatch;
    manual.pause_after = recorder.switches[0].interactions;
    manual.checkpoint_sink = &sink;
    const RunResult leg1 = simulate_counts(*protocol, initial, manual);
    ASSERT_EQ(leg1.stop_reason, StopReason::kPaused);
    ASSERT_FALSE(sink.checkpoints.empty());
    RunCheckpoint cut = sink.checkpoints.back();
    ASSERT_EQ(cut.interactions, recorder.switches[0].interactions);

    // ...transfer to collapsed, run to the second switch index...
    transfer_checkpoint_engine(cut, ObservedEngine::kCollapsed);
    sink.checkpoints.clear();
    manual.engine = SimulationEngine::kCollapsedBatch;
    manual.resume_from = &cut;
    manual.pause_after = recorder.switches[1].interactions;
    const RunResult leg2 = simulate_collapsed(*protocol, initial, manual);
    ASSERT_EQ(leg2.stop_reason, StopReason::kPaused);
    ASSERT_FALSE(sink.checkpoints.empty());
    RunCheckpoint cut2 = sink.checkpoints.back();
    ASSERT_EQ(cut2.interactions, recorder.switches[1].interactions);

    // ...transfer back to count-batch and finish.
    transfer_checkpoint_engine(cut2, ObservedEngine::kCountBatch);
    manual.engine = SimulationEngine::kCountBatch;
    manual.resume_from = &cut2;
    manual.pause_after = 0;
    manual.checkpoint_sink = nullptr;
    const RunResult tail = simulate_counts(*protocol, initial, manual);
    expect_same_run(tail, adaptive);
}

// Pausing exactly ON a switch boundary is transparent: a switch index is a
// natural loop top (the super-step ending there is never clamped — see the
// splice argument in adaptive_simulator.h), so a pause checkpoint cut there
// resumes bit-identically onto the *un*-checkpointed baseline, re-firing the
// pending switch on the first resumed loop top.
TEST(AdaptiveSimulator, ResumesBitIdenticallyAcrossSwitches) {
    const auto protocol = make_epidemic_protocol();
    const auto initial =
        CountConfiguration::from_input_counts(*protocol, {kPopulation - 1, 1});

    SwitchRecorder recorder;
    RunOptions options = adaptive_options(11);
    options.observer = &recorder;
    const RunResult baseline = simulate_adaptive(*protocol, initial, options);
    ASSERT_EQ(recorder.switches.size(), 2u);
    options.observer = nullptr;

    for (const EngineSwitchInfo& info : recorder.switches) {
        CollectingSink sink;
        RunOptions paused = options;
        paused.pause_after = info.interactions;
        paused.checkpoint_sink = &sink;
        const RunResult first = simulate_adaptive(*protocol, initial, paused);
        ASSERT_EQ(first.stop_reason, StopReason::kPaused) << "cut at " << info.interactions;
        ASSERT_FALSE(sink.checkpoints.empty()) << "cut at " << info.interactions;
        // The pause checkpoint block runs before the monitor poll, so the
        // cut still carries the *pre*-switch engine.
        EXPECT_EQ(sink.checkpoints.back().engine, info.from);

        // Serialize through the text format, as a service restart would.
        const RunCheckpoint reloaded =
            checkpoint_from_string(checkpoint_to_string(sink.checkpoints.back()));
        EXPECT_TRUE(reloaded.adaptive);
        RunOptions resumed = options;
        resumed.resume_from = &reloaded;
        expect_same_run(simulate_adaptive(*protocol, initial, resumed), baseline);
    }
}

// Cuts that do NOT land on a switch boundary follow the collapsed engine's
// checkpoint contract (tests/collapsed_simulator_test.cpp): boundaries clamp
// super-steps, so resume bit-identity is against a baseline with the *same*
// boundary schedule.  A periodic schedule straddles both switches, giving
// cuts strictly before the first and strictly after the last; every one
// resumes (with the schedule kept) onto the checkpointed baseline.
TEST(AdaptiveSimulator, PeriodicCheckpointsResumeThroughSwitches) {
    const auto protocol = make_epidemic_protocol();
    const auto initial =
        CountConfiguration::from_input_counts(*protocol, {kPopulation - 1, 1});

    // Probe run: only to size the checkpoint period.
    RunOptions options = adaptive_options(3);
    const std::uint64_t run_length =
        simulate_adaptive(*protocol, initial, options).interactions;

    CollectingSink sink;
    SwitchRecorder recorder;
    RunOptions observed = options;
    observed.checkpoint_every = run_length / 12 + 1;
    observed.checkpoint_sink = &sink;
    observed.observer = &recorder;
    const RunResult baseline = simulate_adaptive(*protocol, initial, observed);
    ASSERT_EQ(baseline.stop_reason, StopReason::kSilent);
    ASSERT_GE(sink.checkpoints.size(), 8u);
    ASSERT_EQ(recorder.switches.size(), 2u);
    // The schedule straddles the switch window: at least one cut on each side.
    EXPECT_LT(sink.checkpoints.front().interactions, recorder.switches.front().interactions);
    EXPECT_GT(sink.checkpoints.back().interactions, recorder.switches.back().interactions);
    observed.observer = nullptr;

    for (const RunCheckpoint& checkpoint : sink.checkpoints) {
        EXPECT_TRUE(checkpoint.adaptive);
        CollectingSink resumed_sink;
        RunOptions resumed = observed;
        resumed.checkpoint_sink = &resumed_sink;
        resumed.resume_from = &checkpoint;
        expect_same_run(simulate_adaptive(*protocol, initial, resumed), baseline);
    }
}

// Thrash regression: min_dwell pins the minimum distance between switches
// even under pathologically tight hysteresis.
TEST(AdaptiveSimulator, MinDwellSuppressesThrashing) {
    const auto protocol = make_epidemic_protocol();
    const auto initial =
        CountConfiguration::from_input_counts(*protocol, {kPopulation - 1, 1});

    // Tight hysteresis: enter barely above exit invites a switch at nearly
    // every poll while the signal hovers near the band.
    SwitchRecorder recorder;
    RunOptions options = adaptive_options(5);
    options.adaptive.enter_collapsed = 13.0;
    options.adaptive.exit_collapsed = 12.0;
    options.adaptive.min_dwell = 50000;
    options.observer = &recorder;
    const RunResult result = simulate_adaptive(*protocol, initial, options);
    EXPECT_EQ(result.stop_reason, StopReason::kSilent);

    std::uint64_t previous = 0;
    for (const EngineSwitchInfo& info : recorder.switches) {
        if (previous != 0) {
            EXPECT_GE(info.interactions - previous, options.adaptive.min_dwell)
                << "switches thrash faster than min_dwell";
        }
        previous = info.interactions;
    }
}

// Entry engine comes from the initial density, and telemetry attributes
// every interaction to exactly one per-engine segment.
TEST(AdaptiveSimulator, EntryEngineAndSegmentAttribution) {
    const auto protocol = make_epidemic_protocol();

    telemetry::RunTelemetryCollector sparse_collector;
    RunOptions options = adaptive_options(9);
    options.telemetry = &sparse_collector;
    const auto sparse =
        CountConfiguration::from_input_counts(*protocol, {kPopulation - 1, 1});
    const RunResult sparse_run = simulate_adaptive(*protocol, sparse, options);
    if (telemetry::kCompiledIn) {
        const telemetry::RunTelemetry& data = sparse_collector.telemetry();
        ASSERT_FALSE(data.engine_segments.empty());
        EXPECT_EQ(data.engine, "adaptive");
        EXPECT_EQ(data.engine_segments.front().engine, "count_batch");
        EXPECT_EQ(data.engine_switches, data.engine_segments.size() - 1);
        std::uint64_t attributed = 0;
        for (const auto& segment : data.engine_segments) attributed += segment.interactions;
        EXPECT_EQ(attributed, sparse_run.interactions);
    }

    telemetry::RunTelemetryCollector dense_collector;
    options.telemetry = &dense_collector;
    const auto dense = CountConfiguration::from_input_counts(
        *protocol, {kPopulation / 2, kPopulation / 2});
    simulate_adaptive(*protocol, dense, options);
    if (telemetry::kCompiledIn) {
        ASSERT_FALSE(dense_collector.telemetry().engine_segments.empty());
        EXPECT_EQ(dense_collector.telemetry().engine_segments.front().engine, "collapsed");
    }
}

// A checkpoint taken by a *static* engine run can be adopted by the
// adaptive dispatcher mid-run (monitoring starts one period past the cut).
TEST(AdaptiveSimulator, AdoptsStaticCheckpoints) {
    const auto protocol = make_epidemic_protocol();
    const auto initial =
        CountConfiguration::from_input_counts(*protocol, {kPopulation - 1, 1});

    CollectingSink sink;
    RunOptions fixed;
    fixed.seed = 13;
    fixed.engine = SimulationEngine::kCountBatch;
    fixed.pause_after = 3000;
    fixed.checkpoint_sink = &sink;
    ASSERT_EQ(simulate_counts(*protocol, initial, fixed).stop_reason, StopReason::kPaused);

    const RunCheckpoint cut = sink.checkpoints.back();
    EXPECT_FALSE(cut.adaptive);
    RunOptions adopt = adaptive_options(13);
    adopt.resume_from = &cut;
    const RunResult result = simulate_adaptive(*protocol, initial, adopt);
    EXPECT_EQ(result.stop_reason, StopReason::kSilent);
    EXPECT_EQ(result.effective_interactions, kPopulation - 1);
    EXPECT_EQ(result.consensus, std::optional<bool>(true));
}

// Fluid assist (opt-in) replaces a dense transient with the mean-field
// solution: the run still reaches silence and consensus, but simulates far
// fewer interactions stochastically.  Sparse entries never invoke the hook,
// so assisted and unassisted sparse runs stay bit-identical.
TEST(AdaptiveSimulator, FluidAssistFastForwardsDenseEntries) {
    const auto protocol = make_epidemic_protocol();

    const auto dense = CountConfiguration::from_input_counts(
        *protocol, {kPopulation / 2, kPopulation / 2});
    RunOptions plain = adaptive_options(21);
    const RunResult exact = simulate_adaptive(*protocol, dense, plain);

    RunOptions assisted = adaptive_options(21);
    assisted.fluid_assist = true;
    assisted.fluid_hook = make_fluid_assist_hook();
    const RunResult fast = simulate_adaptive(*protocol, dense, assisted);
    EXPECT_EQ(fast.stop_reason, StopReason::kSilent);
    EXPECT_EQ(fast.consensus, std::optional<bool>(true));
    // The transient was fast-forwarded: only the sparse tail is simulated.
    EXPECT_LT(fast.effective_interactions, exact.effective_interactions / 4);

    const auto sparse =
        CountConfiguration::from_input_counts(*protocol, {kPopulation - 1, 1});
    const RunResult sparse_plain = simulate_adaptive(*protocol, sparse, plain);
    const RunResult sparse_assisted = simulate_adaptive(*protocol, sparse, assisted);
    expect_same_run(sparse_assisted, sparse_plain);
}

// transfer_checkpoint_engine validates its preconditions: only count-shaped
// serial checkpoints move between the two count engines.
TEST(AdaptiveSimulator, TransferRejectsForeignCheckpoints) {
    RunCheckpoint checkpoint;
    checkpoint.engine = ObservedEngine::kAgentArray;
    checkpoint.agent_states = {0, 1};
    EXPECT_THROW(transfer_checkpoint_engine(checkpoint, ObservedEngine::kCollapsed),
                 std::invalid_argument);

    checkpoint.engine = ObservedEngine::kCountBatch;
    checkpoint.agent_states.clear();
    checkpoint.counts = {1, 1};
    checkpoint.has_pending_skip = true;
    EXPECT_THROW(transfer_checkpoint_engine(checkpoint, ObservedEngine::kCollapsed),
                 std::invalid_argument);

    checkpoint.has_pending_skip = false;
    transfer_checkpoint_engine(checkpoint, ObservedEngine::kCollapsed);
    EXPECT_EQ(checkpoint.engine, ObservedEngine::kCollapsed);
}

}  // namespace
}  // namespace popproto
