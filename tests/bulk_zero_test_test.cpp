// The bulk fast path for empty-counter zero tests: verdicts identical,
// interaction accounting statistically consistent with the exact path.

#include <gtest/gtest.h>

#include <cmath>

#include "machines/examples.h"
#include "randomized/population_machine.h"

namespace popproto {
namespace {

PopulationMachineOptions base_options(std::uint64_t n, std::uint32_t k, std::uint64_t seed) {
    PopulationMachineOptions options;
    options.timer_parameter = k;
    options.share_capacity = 4;
    options.max_interactions = ~std::uint64_t{0} / 4;
    options.seed = seed;
    return options;
}

TEST(BulkZeroTest, VerdictsAndCountersMatchExactPath) {
    const CounterProgram program = make_multiply_program(3);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        PopulationMachineOptions exact = base_options(20, 3, seed);
        exact.bulk_zero_test_threshold = ~std::uint64_t{0};  // never bulk
        PopulationMachineOptions bulk = base_options(20, 3, seed);
        bulk.bulk_zero_test_threshold = 0;  // always bulk on empty counters

        const auto exact_run = run_population_counter_machine(program, {4, 0}, 20, exact);
        const auto bulk_run = run_population_counter_machine(program, {4, 0}, 20, bulk);
        ASSERT_TRUE(exact_run.halted);
        ASSERT_TRUE(bulk_run.halted);
        EXPECT_EQ(exact_run.exit_code, bulk_run.exit_code);
        // Zero-test errors only occur on nonzero counters, which both paths
        // simulate identically in structure (though along different random
        // streams); with k = 3 neither should err here.
        if (exact_run.zero_test_errors == 0 && bulk_run.zero_test_errors == 0) {
            EXPECT_EQ(exact_run.counters, bulk_run.counters);
        }
    }
}

TEST(BulkZeroTest, InteractionCountsAreStatisticallyConsistent) {
    // The countdown program ends with exactly one empty-counter zero test;
    // the bulk and exact paths must agree on its expected cost.
    const CounterProgram program = make_countdown_program();
    const std::uint64_t n = 14;
    const std::uint32_t k = 3;
    const int trials = 300;

    double exact_total = 0.0;
    double bulk_total = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
        PopulationMachineOptions exact = base_options(n, k, 1000 + trial);
        exact.bulk_zero_test_threshold = ~std::uint64_t{0};
        PopulationMachineOptions bulk = base_options(n, k, 1000 + trial);
        bulk.bulk_zero_test_threshold = 0;
        exact_total += static_cast<double>(
            run_population_counter_machine(program, {3}, n, exact).interactions);
        bulk_total += static_cast<double>(
            run_population_counter_machine(program, {3}, n, bulk).interactions);
    }
    const double exact_mean = exact_total / trials;
    const double bulk_mean = bulk_total / trials;
    EXPECT_NEAR(bulk_mean / exact_mean, 1.0, 0.15);
}

TEST(BulkZeroTest, MakesHighTimerParametersAffordable) {
    // k = 6 on n = 64: an empty-counter verdict costs ~63^6 = 6e10
    // interactions, hopeless to replay but instant in bulk.
    const CounterProgram program = make_countdown_program();
    PopulationMachineOptions options = base_options(64, 6, 9);
    const auto result = run_population_counter_machine(program, {10}, 64, options);
    ASSERT_TRUE(result.halted);
    EXPECT_EQ(result.counters[0], 0u);
    // The final wait dominates: on the order of n/2 * 63^6 ~ 2e12
    // interactions in expectation.  A single geometric draw is exponential,
    // so only assert the order of magnitude from below.
    EXPECT_GT(result.interactions, 10'000'000'000ull);
}

TEST(BulkZeroTest, NonEmptyCountersNeverTakeTheBulkPath) {
    // Countdown with bulk threshold 0: the 5 nonzero verdicts must still be
    // simulated exactly (only the final empty verdict is bulked), so with a
    // reliable k = 4 the run drains the counter and counts all 6 tests.
    const CounterProgram program = make_countdown_program();
    PopulationMachineOptions bulk = base_options(12, 4, 4);
    bulk.bulk_zero_test_threshold = 0;
    const auto result = run_population_counter_machine(program, {5}, 12, bulk);
    ASSERT_TRUE(result.halted);
    EXPECT_EQ(result.zero_test_errors, 0u);
    EXPECT_EQ(result.counters[0], 0u);
    EXPECT_EQ(result.zero_tests, 6u);
}

}  // namespace
}  // namespace popproto
