// The scenario pack (src/scenarios): game-rule compilation, the
// adversarial-but-fair cover model, time-varying graphs, grid mobility, and
// the run_scenario front door — convergence, validation, and
// checkpoint/resume bit-identity including service-style quantum slicing.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/interaction_model.h"
#include "core/rng.h"
#include "core/run_loop.h"
#include "core/simulator.h"
#include "protocols/epidemic.h"
#include "scenarios/adversarial.h"
#include "scenarios/dynamic_graph.h"
#include "scenarios/games.h"
#include "scenarios/mobility.h"
#include "scenarios/scenario_spec.h"

namespace popproto {
namespace {

// --- Game-rule adapter -----------------------------------------------------

TEST(Games, PavlovPrisonersDilemmaDeltaTable) {
    const auto protocol = make_game_protocol(make_pavlov_prisoners_dilemma());
    ASSERT_EQ(protocol->num_states(), 2u);
    const State C = 0, D = 1;
    // (C,C): both meet aspiration (R=3 >= 2) and stay.
    EXPECT_EQ(protocol->apply_fast(C, C), (StatePair{C, C}));
    // (C,D): the cooperator is suckered (S=0 < 2) and shifts; the defector
    // scores T=5 and stays.
    EXPECT_EQ(protocol->apply_fast(C, D), (StatePair{D, D}));
    EXPECT_EQ(protocol->apply_fast(D, C), (StatePair{D, D}));
    // (D,D): both punished (P=1 < 2), both shift back to cooperation.
    EXPECT_EQ(protocol->apply_fast(D, D), (StatePair{C, C}));
}

TEST(Games, PavlovPopulationConvergesToAllCooperate) {
    // All-C is the unique silent configuration (the delta table above shows
    // every other encounter changes someone), and it is reachable from any
    // configuration, so the uniform scheduler converges to it a.s.
    // The drift keeps the strategies mixed in large populations (a mixed
    // encounter mints a defector, a (D,D) encounter removes two), so use a
    // small one where the absorbing fluctuation arrives quickly.
    const auto protocol = make_game_protocol(make_pavlov_prisoners_dilemma());
    const auto initial = CountConfiguration::from_input_counts(*protocol, {4, 2});
    RunOptions options;
    options.seed = 7;
    options.max_interactions = 1000000;
    const RunResult result = simulate(*protocol, initial, options);
    EXPECT_EQ(result.stop_reason, StopReason::kSilent);
    ASSERT_TRUE(result.consensus.has_value());
    EXPECT_EQ(*result.consensus, 0u);  // everyone plays C
    EXPECT_EQ(result.final_configuration.count(0), 6u);
}

TEST(Games, ImitateAdoptsStrictlyBetterStrategy) {
    GameSpec spec = make_pavlov_prisoners_dilemma();
    spec.rule = UpdateRule::kImitate;
    const auto protocol = make_game_protocol(spec);
    const State C = 0, D = 1;
    // Against (C,D): the defector scored 5 > 0, so the cooperator imitates
    // D; the defector keeps D (0 < 5).
    EXPECT_EQ(protocol->apply_fast(C, D), (StatePair{D, D}));
    // Equal payoffs (C,C) and (D,D): nobody moves.
    EXPECT_EQ(protocol->apply_fast(C, C), (StatePair{C, C}));
    EXPECT_EQ(protocol->apply_fast(D, D), (StatePair{D, D}));
}

TEST(Games, BestResponsePlaysAgainstOpponentsStrategy) {
    GameSpec spec = make_pavlov_prisoners_dilemma();
    spec.rule = UpdateRule::kBestResponse;
    const auto protocol = make_game_protocol(spec);
    const State C = 0, D = 1;
    // D strictly dominates in the PD, so every encounter drives both
    // players to D regardless of what they held.
    EXPECT_EQ(protocol->apply_fast(C, C), (StatePair{D, D}));
    EXPECT_EQ(protocol->apply_fast(C, D), (StatePair{D, D}));
    EXPECT_EQ(protocol->apply_fast(D, D), (StatePair{D, D}));
}

TEST(Games, RejectsMalformedSpecs) {
    GameSpec spec;
    spec.num_strategies = 1;
    spec.payoff = {1.0};
    EXPECT_THROW(make_game_protocol(spec), std::invalid_argument);

    spec = make_pavlov_prisoners_dilemma();
    spec.payoff.pop_back();
    EXPECT_THROW(make_game_protocol(spec), std::invalid_argument);

    spec = make_pavlov_prisoners_dilemma();
    spec.payoff[2] = std::numeric_limits<double>::infinity();
    EXPECT_THROW(make_game_protocol(spec), std::invalid_argument);

    spec = make_pavlov_prisoners_dilemma();
    spec.strategy_names = {"only-one"};
    EXPECT_THROW(make_game_protocol(spec), std::invalid_argument);
}

// --- Adversarial cover -----------------------------------------------------

TEST(Adversarial, EveryEpochCoversAllOrderedPairs) {
    // With probing disabled the model is a pure random-permutation cover:
    // each block of n(n-1) proposals plays every ordered pair exactly once.
    const auto protocol = make_epidemic_protocol();
    const std::uint64_t n = 4;
    AdversarialCoverModel model(*protocol, n, /*probe_window=*/0);
    Rng rng(3);
    const std::vector<State> states(n, 0);
    for (int epoch = 0; epoch < 3; ++epoch) {
        std::set<AgentPair> seen;
        for (std::uint64_t step = 0; step < n * (n - 1); ++step) {
            const AgentPair pair = model.propose_pair(rng, states);
            EXPECT_NE(pair.first, pair.second);
            EXPECT_TRUE(seen.insert(pair).second)
                << "pair repeated within epoch " << epoch;
        }
        EXPECT_EQ(seen.size(), n * (n - 1));
    }
}

TEST(Adversarial, ProbingPrefersNullInteractions) {
    // Epidemic: (infected, x) infects x; (susceptible, susceptible) and
    // (x, infected-initiator)... the only null pairs are those whose delta
    // is the identity.  With one infected agent and a full probe window, the
    // adversary must play a null pair whenever the upcoming window holds
    // one, slowing the epidemic relative to the friendly scheduler.
    const auto protocol = make_epidemic_protocol();
    const std::uint64_t n = 6;
    std::vector<State> states(n, 0);
    const auto initial_counts = CountConfiguration::from_input_counts(*protocol, {5, 1});
    states = AgentConfiguration::from_counts(initial_counts).states();

    AdversarialCoverModel eager(*protocol, n, /*probe_window=*/0);
    AdversarialCoverModel lazy(*protocol, n, /*probe_window=*/n * (n - 1));
    Rng rng_eager(11), rng_lazy(11);

    const auto first_change_step = [&](AdversarialCoverModel& model, Rng& rng) {
        std::vector<State> working = states;
        for (int step = 0; step < 60; ++step) {
            const AgentPair pair = model.propose_pair(rng, working);
            const StatePair next = protocol->apply_fast(working[pair.first],
                                                        working[pair.second]);
            const bool changed = next.initiator != working[pair.first] ||
                                 next.responder != working[pair.second];
            working[pair.first] = next.initiator;
            working[pair.second] = next.responder;
            if (changed) return step;
        }
        return 60;
    };
    // Exactly 10 of the 30 ordered pairs are infecting at the start (the
    // two-way epidemic fires on (I, S) and (S, I)), so a full-window probe
    // plays the 20 null pairs first: the lazy adversary cannot change any
    // state before step 20.  The friendly permutation hits an infecting
    // pair far sooner.
    const int eager_first = first_change_step(eager, rng_eager);
    const int lazy_first = first_change_step(lazy, rng_lazy);
    EXPECT_EQ(lazy_first, 20);
    EXPECT_LT(eager_first, lazy_first);
}

// --- Dynamic graph ---------------------------------------------------------

TEST(DynamicGraph, CyclesPhasesOnSchedule) {
    const std::uint64_t n = 5;
    std::vector<std::vector<Edge>> phases = {
        InteractionGraph::ring(n).edges(),
        InteractionGraph::star(n).edges(),
    };
    DynamicGraphModel model(std::move(phases), /*phase_length=*/3, n);
    Rng rng(1);
    const std::vector<State> states(n, 0);
    std::vector<std::uint64_t> expected_phase = {0, 0, 0, 1, 1, 1, 0, 0, 0, 1};
    for (std::size_t step = 0; step < expected_phase.size(); ++step) {
        EXPECT_EQ(model.phase(), expected_phase[step]) << "step " << step;
        model.propose_pair(rng, states);
    }
}

TEST(DynamicGraph, ValidatesConstruction) {
    EXPECT_THROW(DynamicGraphModel({}, 1, 4), std::invalid_argument);
    EXPECT_THROW(DynamicGraphModel({{}}, 1, 4), std::invalid_argument);
    EXPECT_THROW(DynamicGraphModel({{{0, 0}}}, 1, 4), std::invalid_argument);  // self-loop
    EXPECT_THROW(DynamicGraphModel({{{0, 9}}}, 1, 4), std::invalid_argument);  // out of range
    EXPECT_THROW(DynamicGraphModel({{{0, 1}}}, 0, 4), std::invalid_argument);  // zero length
}

// --- Grid mobility ---------------------------------------------------------

TEST(GridMobility, ProposesOnlyProximatePairs) {
    const std::uint64_t n = 8, width = 5, height = 5, radius = 1;
    GridMobilityModel model(n, width, height, radius);
    Rng rng(42);
    const std::vector<State> states(n, 0);
    for (int step = 0; step < 50; ++step) {
        const AgentPair pair = model.propose_pair(rng, states);
        ASSERT_NE(pair.first, pair.second);
        const std::uint64_t a = model.positions()[pair.first];
        const std::uint64_t b = model.positions()[pair.second];
        // Chebyshev distance on the torus.
        const auto axis_dist = [](std::uint64_t p, std::uint64_t q, std::uint64_t extent) {
            const std::uint64_t d = p > q ? p - q : q - p;
            return std::min(d, extent - d);
        };
        const std::uint64_t dx = axis_dist(a % width, b % width, width);
        const std::uint64_t dy = axis_dist(a / width, b / width, height);
        EXPECT_LE(std::max(dx, dy), radius) << "contact beyond the radius";
    }
}

// --- run_scenario front door -----------------------------------------------

/// Epidemic convergence is the cross-scenario smoke test: one infected
/// agent must eventually infect everyone under any fair pairing.
void expect_epidemic_converges(const ScenarioSpec& spec, std::uint64_t n) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n - 1, 1});
    RunOptions options;
    options.seed = 13;
    options.max_interactions = 400 * n;
    if (spec.model == "dynamic_graph") options.stop_after_stable_outputs = 16 * n;
    const RunResult result = run_scenario(*protocol, initial, spec, options);
    EXPECT_NE(result.stop_reason, StopReason::kBudget) << "did not converge: " << spec.model;
    ASSERT_TRUE(result.consensus.has_value()) << spec.model;
    EXPECT_EQ(*result.consensus, 1u) << spec.model;  // everyone infected
}

TEST(RunScenario, EpidemicConvergesUnderEveryModel) {
    for (const std::string& model : scenario_model_names()) {
        ScenarioSpec spec;
        spec.model = model;
        if (model == "dynamic_graph") spec.phases = {"ring", "star"};
        expect_epidemic_converges(spec, 24);
    }
}

TEST(RunScenario, ValidatesSpecAndOptions) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {9, 1});
    RunOptions options;

    ScenarioSpec spec;
    spec.model = "no_such_model";
    EXPECT_THROW(run_scenario(*protocol, initial, spec, options), std::invalid_argument);

    spec.model = "dynamic_graph";  // no phases
    EXPECT_THROW(run_scenario(*protocol, initial, spec, options), std::invalid_argument);

    spec.phases = {"moebius"};  // unknown topology
    EXPECT_THROW(run_scenario(*protocol, initial, spec, options), std::invalid_argument);

    spec = ScenarioSpec{};
    spec.model = "round_robin";
    options.engine = SimulationEngine::kAgentArray;  // scenarios pick their own pairing
    EXPECT_THROW(run_scenario(*protocol, initial, spec, options), std::invalid_argument);
}

// --- Checkpoint/resume bit-identity ----------------------------------------

void expect_same_run(const RunResult& actual, const RunResult& expected) {
    EXPECT_EQ(actual.stop_reason, expected.stop_reason);
    EXPECT_EQ(actual.interactions, expected.interactions);
    EXPECT_EQ(actual.effective_interactions, expected.effective_interactions);
    EXPECT_EQ(actual.last_output_change, expected.last_output_change);
    EXPECT_EQ(actual.final_configuration, expected.final_configuration);
    EXPECT_EQ(actual.consensus, expected.consensus);
}

class CollectingSink final : public CheckpointSink {
public:
    void on_checkpoint(const RunCheckpoint& checkpoint) override {
        checkpoints.push_back(checkpoint);
    }
    std::vector<RunCheckpoint> checkpoints;
};

/// Periodic-checkpoint bit-identity plus service-style quantum slicing:
/// every cut must resume onto the baseline trajectory exactly, and chaining
/// quanta on the absolute pause grid must reproduce the terminal result.
void check_scenario_bit_identity(const ScenarioSpec& spec, RunOptions options,
                                 std::uint64_t checkpoint_every, std::uint64_t quantum) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {19, 1});
    const auto run = [&](const RunOptions& opts) {
        return run_scenario(*protocol, initial, spec, opts);
    };
    const RunResult baseline = run(options);

    CollectingSink sink;
    options.checkpoint_every = checkpoint_every;
    options.checkpoint_sink = &sink;
    expect_same_run(run(options), baseline);
    ASSERT_FALSE(sink.checkpoints.empty()) << spec.model;

    options.checkpoint_every = 0;
    options.checkpoint_sink = nullptr;
    for (const RunCheckpoint& checkpoint : sink.checkpoints) {
        EXPECT_EQ(checkpoint.engine, ObservedEngine::kPairModel);
        EXPECT_EQ(checkpoint.interaction_model, spec.model);
        const RunCheckpoint reloaded = checkpoint_from_string(checkpoint_to_string(checkpoint));
        options.resume_from = &reloaded;
        expect_same_run(run(options), baseline);
    }
    options.resume_from = nullptr;

    // Service-daemon slicing: chain pause_after quanta on the absolute grid.
    CollectingSink pause_sink;
    options.checkpoint_sink = &pause_sink;
    RunCheckpoint current;
    bool resuming = false;
    int quanta = 0;
    for (;; ++quanta) {
        ASSERT_LT(quanta, 100000) << "never reached a terminal state";
        options.resume_from = resuming ? &current : nullptr;
        const std::uint64_t done = resuming ? current.interactions : 0;
        options.pause_after = (done / quantum + 1) * quantum;
        const RunResult result = run(options);
        if (result.stop_reason != StopReason::kPaused) {
            expect_same_run(result, baseline);
            break;
        }
        ASSERT_FALSE(pause_sink.checkpoints.empty());
        current = pause_sink.checkpoints.back();
        resuming = true;
    }
    EXPECT_GT(quanta, 1) << "quantum too large to exercise slicing: " << spec.model;
}

TEST(ScenarioCheckpoint, AdversarialResumesBitIdenticallyMidEpoch) {
    ScenarioSpec spec;
    spec.model = "adversarial";
    spec.probe = 8;
    RunOptions options;
    options.seed = 31;
    options.max_interactions = 4000;
    // 20 agents -> 380-pair epochs; 97 is coprime, so cuts land mid-epoch
    // and the permutation + cursor must serialize exactly.
    check_scenario_bit_identity(spec, options, /*checkpoint_every=*/97, /*quantum=*/101);
}

TEST(ScenarioCheckpoint, DynamicGraphResumesBitIdenticallyMidPhase) {
    ScenarioSpec spec;
    spec.model = "dynamic_graph";
    spec.phases = {"ring", "complete", "star"};
    spec.phase_length = 50;
    RunOptions options;
    options.seed = 8;
    options.max_interactions = 3000;
    options.stop_after_stable_outputs = 500;
    // Neither 73 nor 89 divides the 50-step phase: every cut is mid-phase,
    // so the {phase, step-in-phase} counters must restore exactly.
    check_scenario_bit_identity(spec, options, /*checkpoint_every=*/73, /*quantum=*/89);
}

TEST(ScenarioCheckpoint, GridMobilityResumesBitIdenticallyMidWalk) {
    ScenarioSpec spec;
    spec.model = "grid_mobility";
    spec.torus_width = 6;
    spec.torus_height = 6;
    spec.radius = 1;
    RunOptions options;
    options.seed = 19;
    options.max_interactions = 3000;
    check_scenario_bit_identity(spec, options, /*checkpoint_every=*/61, /*quantum=*/67);
}

TEST(ScenarioCheckpoint, RoundRobinAndSweepResumeThroughRunScenario) {
    for (const char* model : {"round_robin", "sweep"}) {
        ScenarioSpec spec;
        spec.model = model;
        RunOptions options;
        options.seed = 3;
        options.max_interactions = 4000;
        // Exact silence halts these runs at the first silent configuration
        // (t = 37 / 53 for this seed), so cuts must be tighter than the
        // old 53/59 grid to land inside the run.
        check_scenario_bit_identity(spec, options, /*checkpoint_every=*/7, /*quantum=*/11);
    }
}

TEST(ScenarioCheckpoint, ResumeRejectsWrongModel) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {19, 1});
    ScenarioSpec spec;
    spec.model = "round_robin";
    CollectingSink sink;
    RunOptions options;
    options.seed = 2;
    options.max_interactions = 500;
    options.checkpoint_every = 10;  // exact silence halts well before 100
    options.checkpoint_sink = &sink;
    run_scenario(*protocol, initial, spec, options);
    ASSERT_FALSE(sink.checkpoints.empty());

    RunOptions resume;
    resume.max_interactions = 500;
    resume.resume_from = &sink.checkpoints.front();
    spec.model = "sweep";
    EXPECT_THROW(run_scenario(*protocol, initial, spec, resume), std::invalid_argument);
}

}  // namespace
}  // namespace popproto
