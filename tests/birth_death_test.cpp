// Population-changing interactions (the Sect. 8 "increase or decrease the
// population" extension).

#include <gtest/gtest.h>

#include "extensions/birth_death.h"

namespace popproto {
namespace {

CountConfiguration camps(const BirthDeathProtocol& protocol, std::uint64_t camp_a,
                         std::uint64_t camp_b) {
    CountConfiguration config(protocol.num_states());
    if (camp_a > 0) config.add(protocol.initial_state(0), camp_a);
    if (camp_b > 0) config.add(protocol.initial_state(1), camp_b);
    return config;
}

TEST(BirthDeath, AnnihilationComputesExactMajorityAndTies) {
    const auto protocol = make_annihilating_majority_protocol();
    for (std::uint64_t a = 0; a <= 6; ++a) {
        for (std::uint64_t b = 0; b <= 6; ++b) {
            if (a + b < 2) continue;
            const auto initial = camps(*protocol, a, b);
            const StableComputationResult result =
                analyze_birth_death_stable_computation(*protocol, initial);
            ASSERT_TRUE(result.always_converges) << a << " vs " << b;
            ASSERT_TRUE(result.single_valued()) << a << " vs " << b;
            const OutputSignature& signature = result.stable_signatures.front();
            // Survivors: |a - b| agents of the majority camp; a tie leaves
            // an empty population - exact tie detection via extinction,
            // something fixed-population pairwise protocols cannot express
            // as a population state.
            EXPECT_EQ(signature[kOutputFalse], a > b ? a - b : 0) << a << " vs " << b;
            EXPECT_EQ(signature[kOutputTrue], b > a ? b - a : 0) << a << " vs " << b;
        }
    }
}

TEST(BirthDeath, AnnihilationSimulationMatchesTheory) {
    const auto protocol = make_annihilating_majority_protocol();
    BirthDeathRunOptions options;
    options.max_interactions = 10'000'000;
    options.seed = 3;

    const auto majority = simulate_birth_death(*protocol, camps(*protocol, 70, 30), options);
    EXPECT_EQ(majority.final_configuration.count(0), 40u);
    EXPECT_EQ(majority.final_configuration.count(1), 0u);
    EXPECT_EQ(majority.deaths, 60u);
    EXPECT_EQ(majority.births, 0u);
    ASSERT_TRUE(majority.consensus.has_value());
    EXPECT_EQ(*majority.consensus, kOutputFalse);

    const auto tie = simulate_birth_death(*protocol, camps(*protocol, 25, 25), options);
    EXPECT_TRUE(tie.extinct);
    EXPECT_EQ(tie.final_configuration.population_size(), 0u);
    EXPECT_FALSE(tie.consensus.has_value());
}

TEST(BirthDeath, SpawningCounterMultipliesExactly) {
    for (std::uint32_t factor : {1u, 3u}) {
        const auto protocol = make_spawning_counter_protocol(factor);
        for (std::uint64_t workers : {1ull, 4ull}) {
            for (std::uint64_t seeds : {1ull, 2ull}) {
                const auto initial = camps(*protocol, workers, seeds);
                const StableComputationResult result =
                    analyze_birth_death_stable_computation(*protocol, initial);
                ASSERT_TRUE(result.always_converges)
                    << "factor=" << factor << " w=" << workers << " s=" << seeds;
                ASSERT_TRUE(result.single_valued());
                // Every seed buds `factor` workers and finally becomes a
                // worker itself: population = workers + seeds * (factor + 1).
                const OutputSignature& signature = result.stable_signatures.front();
                EXPECT_EQ(signature[0], workers + seeds * (factor + 1));
                EXPECT_EQ(signature[1], 0u);
            }
        }
    }
}

TEST(BirthDeath, SpawningSimulationTracksBirths) {
    const auto protocol = make_spawning_counter_protocol(5);
    const auto initial = camps(*protocol, 10, 4);
    BirthDeathRunOptions options;
    options.max_interactions = 1'000'000;
    options.stop_after_stable_outputs = 50'000;
    options.seed = 12;
    const auto result = simulate_birth_death(*protocol, initial, options);
    EXPECT_EQ(result.births, 4u * 5u);
    EXPECT_EQ(result.final_configuration.population_size(), 10 + 4 * 6);
    EXPECT_EQ(result.final_configuration.count(0), 10 + 4 * 6);
}

TEST(BirthDeath, PopulationExplosionGuard) {
    // A pathological always-spawn protocol must trip the population cap.
    class Exploder final : public BirthDeathProtocol {
    public:
        std::size_t num_states() const override { return 1; }
        std::size_t num_input_symbols() const override { return 1; }
        std::size_t num_output_symbols() const override { return 1; }
        State initial_state(Symbol) const override { return 0; }
        Symbol output(State) const override { return 0; }
        std::vector<State> apply(State, State) const override { return {0, 0, 0}; }
        std::size_t max_offspring() const override { return 3; }
    };
    const Exploder protocol;
    CountConfiguration initial(1);
    initial.add(0, 4);
    BirthDeathRunOptions options;
    options.max_interactions = 1'000'000'000;
    options.max_population = 1000;
    EXPECT_THROW(simulate_birth_death(protocol, initial, options), std::runtime_error);
    EXPECT_THROW(analyze_birth_death_stable_computation(protocol, initial, 1u << 20, 1000),
                 std::runtime_error);
}

TEST(BirthDeath, ExtinctionStopsTheRun) {
    const auto protocol = make_annihilating_majority_protocol();
    const auto initial = camps(*protocol, 1, 1);
    BirthDeathRunOptions options;
    options.max_interactions = 1000;
    options.seed = 1;
    const auto result = simulate_birth_death(*protocol, initial, options);
    EXPECT_TRUE(result.extinct);
    EXPECT_EQ(result.interactions, 1u);  // the single annihilation
}

}  // namespace
}  // namespace popproto
