// Lemma 5 protocols: exhaustive stable-computation checks against the
// formula evaluator, plus the structural invariants used in the proof.

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "analysis/stable_computation.h"
#include "core/rng.h"
#include "core/simulator.h"
#include "presburger/atom_protocols.h"
#include "presburger/formula.h"
#include "test_util.h"

namespace popproto {
namespace {

/// Exhaustively verifies that `protocol` stably computes `truth` for every
/// input-count assignment over populations of size 1..max_population.
void expect_stably_computes(const TabulatedProtocol& protocol, const Formula& truth,
                            std::uint64_t max_population) {
    for (std::uint64_t n = 1; n <= max_population; ++n) {
        testutil::for_each_composition(
            n, protocol.num_input_symbols(), [&](const std::vector<std::uint64_t>& counts) {
                const auto initial = CountConfiguration::from_input_counts(protocol, counts);
                const bool expected = truth.evaluate(testutil::to_signed(counts));
                EXPECT_TRUE(stably_computes_bool(protocol, initial, expected))
                    << "n=" << n << " counts[0]=" << counts[0];
            });
    }
}

struct ThresholdCase {
    std::vector<std::int64_t> coefficients;
    std::int64_t constant;
    std::uint64_t max_population;
};

class ThresholdProtocolSweep : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(ThresholdProtocolSweep, StablyComputesFormula) {
    const ThresholdCase& test_case = GetParam();
    const auto protocol =
        make_threshold_protocol(test_case.coefficients, test_case.constant);
    const Formula truth = Formula::threshold(test_case.coefficients, test_case.constant);
    expect_stably_computes(*protocol, truth, test_case.max_population);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThresholdProtocolSweep,
    ::testing::Values(ThresholdCase{{1}, 3, 6},         // x0 < 3
                      ThresholdCase{{1, -1}, 0, 6},     // x0 < x1 (majority)
                      ThresholdCase{{-1}, 0, 5},        // -x0 < 0, i.e. x0 >= 1
                      ThresholdCase{{2, -3}, 1, 5},     // 2 x0 - 3 x1 < 1
                      ThresholdCase{{1, 1}, 4, 6}));    // x0 + x1 < 4

struct RemainderCase {
    std::vector<std::int64_t> coefficients;
    std::int64_t remainder;
    std::int64_t modulus;
    std::uint64_t max_population;
};

class RemainderProtocolSweep : public ::testing::TestWithParam<RemainderCase> {};

TEST_P(RemainderProtocolSweep, StablyComputesFormula) {
    const RemainderCase& test_case = GetParam();
    const auto protocol = make_remainder_protocol(test_case.coefficients, test_case.remainder,
                                                  test_case.modulus);
    const Formula truth =
        Formula::congruence(test_case.coefficients, test_case.remainder, test_case.modulus);
    expect_stably_computes(*protocol, truth, test_case.max_population);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RemainderProtocolSweep,
    ::testing::Values(RemainderCase{{1}, 0, 2, 7},        // parity
                      RemainderCase{{1}, 2, 3, 7},        // x = 2 (mod 3)
                      RemainderCase{{1, -2}, 0, 3, 6},    // x0 - 2 x1 = 0 (mod 3)
                      RemainderCase{{1, 1}, 1, 4, 6}));   // x0 + x1 = 1 (mod 4)

TEST(ThresholdProtocol, SingletonPopulationIsCorrectWithoutInteractions) {
    // A single agent never interacts; its initial output must already be
    // the right verdict (our refinement of the paper's construction).
    const auto protocol = make_threshold_protocol({1}, 1);  // x0 < 1
    const auto one = CountConfiguration::from_input_counts(*protocol, {1});
    EXPECT_TRUE(stably_computes_bool(*protocol, one, false));
}

TEST(ThresholdProtocol, CountSumIsConserved) {
    // The proof of Lemma 5 tracks sum_j u_j(C) = sum_i a_i x_i throughout.
    const auto protocol = make_threshold_protocol({2, -1}, 1);
    auto agents = AgentConfiguration::from_inputs(*protocol, {0, 0, 1, 1, 1});

    // Decode the count field from the state name layout: states are
    // (leader, output, u) with u = slot - s; recover u via arithmetic.
    const std::int64_t s = 2;  // max(|1|+1, max|a_i|) = 2
    const auto count_field = [&](State q) {
        return static_cast<std::int64_t>(q % (2 * s + 1)) - s;
    };
    const auto total = [&]() {
        std::int64_t sum = 0;
        for (State q : agents.states()) sum += count_field(q);
        return sum;
    };
    const std::int64_t initial_sum = total();
    EXPECT_EQ(initial_sum, 2 * 2 + (-1) * 3);  // 2 zeros coeff 2, 3 ones coeff -1

    Rng rng(17);
    for (int step = 0; step < 300; ++step) {
        const std::size_t i = rng.below(agents.size());
        std::size_t j = rng.below(agents.size() - 1);
        if (j >= i) ++j;
        agents.apply_interaction(*protocol, i, j);
        EXPECT_EQ(total(), initial_sum);
    }
}

TEST(ThresholdProtocol, LeaderCountNeverIncreases) {
    const auto protocol = make_threshold_protocol({1}, 2);
    const std::int64_t s = 3;
    const auto is_leader = [&](State q) { return q / (2 * s + 1) >= 2; };

    auto agents = AgentConfiguration::from_inputs(*protocol, {0, 0, 0, 0, 0, 0});
    Rng rng(23);
    std::size_t leaders = agents.size();
    for (int step = 0; step < 300; ++step) {
        const std::size_t i = rng.below(agents.size());
        std::size_t j = rng.below(agents.size() - 1);
        if (j >= i) ++j;
        agents.apply_interaction(*protocol, i, j);
        std::size_t now = 0;
        for (State q : agents.states()) now += is_leader(q) ? 1 : 0;
        EXPECT_LE(now, leaders);
        EXPECT_GE(now, 1u);
        leaders = now;
    }
    EXPECT_EQ(leaders, 1u);  // 300 random interactions on 6 agents suffice
}

TEST(RemainderProtocol, ConvergesUnderSimulation) {
    const auto protocol = make_remainder_protocol({1}, 0, 3);
    for (std::uint64_t ones : {30ull, 31ull, 32ull}) {
        const auto initial = CountConfiguration::from_input_counts(*protocol, {ones});
        RunOptions options;
        options.max_interactions = default_budget(ones);
        options.seed = ones;
        const RunResult result = simulate(*protocol, initial, options);
        ASSERT_TRUE(result.consensus.has_value()) << ones;
        EXPECT_EQ(*result.consensus, ones % 3 == 0 ? kOutputTrue : kOutputFalse) << ones;
    }
}

TEST(AtomProtocols, RejectEmptyAlphabetAndBadModulus) {
    EXPECT_THROW(make_threshold_protocol({}, 0), std::invalid_argument);
    EXPECT_THROW(make_remainder_protocol({}, 0, 2), std::invalid_argument);
    EXPECT_THROW(make_remainder_protocol({1}, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace popproto
