// The service layer (src/service): DRR fair scheduling in deterministic
// virtual time, quantum-sliced execution bit-identical to direct runs,
// suspend -> evict -> fault-back bit-identity, graceful drain + restore,
// and the checkpoint spill store.  The wire protocol and socket transport
// are covered in service_wire_test.cpp.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_simulator.h"
#include "core/run_loop.h"
#include "core/simulator.h"
#include "service/checkpoint_store.h"
#include "service/registry.h"
#include "service/scheduler.h"
#include "service/session.h"

namespace popproto::service {
namespace {

// ---------------------------------------------------------------------------
// DrrScheduler: deterministic virtual time, no threads involved.

TEST(DrrScheduler, EverySessionDispatchedOncePerEpochAtEqualWeights) {
    DrrScheduler scheduler;
    for (int i = 0; i < 5; ++i) scheduler.add("s-" + std::to_string(i), 1);

    // Two full epochs: the dispatch order is a strict rotation.
    std::vector<std::string> order;
    for (int i = 0; i < 10; ++i) {
        auto entry = scheduler.take();
        ASSERT_TRUE(entry.has_value());
        order.push_back(entry->id);
        scheduler.give_back(*std::move(entry), /*still_runnable=*/true);
    }
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], "s-" + std::to_string(i % 5)) << i;
}

TEST(DrrScheduler, HugeSessionCannotStarveAHundredTinyOnes) {
    // The acceptance scenario in deterministic virtual time: one 2^20-agent
    // session with a practically unbounded backlog shares the ring with 100
    // tiny sessions needing 3 quanta each.  Every session must progress in
    // every epoch, and all tiny sessions must finish within 3 epochs.
    DrrScheduler scheduler;
    scheduler.add("huge", 1);
    std::map<std::string, int> remaining;
    for (int i = 0; i < 100; ++i) {
        const std::string id = "tiny-" + std::to_string(i);
        scheduler.add(id, 1);
        remaining[id] = 3;
    }

    std::uint64_t huge_quanta = 0;
    std::uint64_t dispatches = 0;
    std::map<std::string, std::uint64_t> last_seen_epoch;
    while (!remaining.empty()) {
        auto entry = scheduler.take();
        ASSERT_TRUE(entry.has_value());
        const std::uint64_t epoch = dispatches / 101;
        ++dispatches;
        ASSERT_LE(dispatches, 3u * 101u) << "tiny sessions did not finish in 3 epochs";
        if (entry->id == "huge") {
            ++huge_quanta;  // the huge run always has another quantum
            last_seen_epoch["huge"] = epoch;
            scheduler.give_back(*std::move(entry), true);
            continue;
        }
        last_seen_epoch[entry->id] = epoch;
        const bool more = --remaining[entry->id] > 0;
        if (!more) remaining.erase(entry->id);
        scheduler.give_back(*std::move(entry), more);
    }
    // The huge session was dispatched exactly once per full epoch — it
    // progressed every epoch and never monopolized the ring.
    EXPECT_EQ(huge_quanta, 3u);
}

TEST(DrrScheduler, WeightsGrantProportionalQuantaPerEpoch) {
    DrrScheduler scheduler;
    scheduler.add("heavy", 3);
    scheduler.add("light", 1);

    std::map<std::string, int> quanta;
    for (int i = 0; i < 8; ++i) {  // two epochs of 4 dispatches
        auto entry = scheduler.take();
        ASSERT_TRUE(entry.has_value());
        ++quanta[entry->id];
        scheduler.give_back(*std::move(entry), true);
    }
    EXPECT_EQ(quanta["heavy"], 6);
    EXPECT_EQ(quanta["light"], 2);
}

TEST(DrrScheduler, WeightedSessionKeepsItsTurnUntilTheDeficitIsSpent) {
    DrrScheduler scheduler;
    scheduler.add("a", 2);
    scheduler.add("b", 1);
    // a, a (deficit continues the turn), then b.
    std::vector<std::string> order;
    for (int i = 0; i < 3; ++i) {
        auto entry = scheduler.take();
        ASSERT_TRUE(entry.has_value());
        order.push_back(entry->id);
        scheduler.give_back(*std::move(entry), true);
    }
    EXPECT_EQ(order, (std::vector<std::string>{"a", "a", "b"}));
}

TEST(DrrScheduler, RemoveAndMembershipRules) {
    DrrScheduler scheduler;
    scheduler.add("a", 1);
    scheduler.add("b", 1);
    EXPECT_THROW(scheduler.add("a", 1), std::invalid_argument);  // already queued
    EXPECT_TRUE(scheduler.remove("a"));
    EXPECT_FALSE(scheduler.remove("a"));  // already gone
    EXPECT_EQ(scheduler.size(), 1u);

    auto entry = scheduler.take();
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->id, "b");
    EXPECT_FALSE(scheduler.remove("b"));  // dispatched entries are not in the ring
    scheduler.give_back(*std::move(entry), /*still_runnable=*/false);
    EXPECT_TRUE(scheduler.empty());
}

// ---------------------------------------------------------------------------
// CheckpointStore.

std::string fresh_dir(const std::string& name) {
    const auto path = std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(path);
    return path.string();
}

TEST(CheckpointStoreTest, RoundTripsCheckpointsAndManifests) {
    const std::string dir = fresh_dir("popproto_store_test");
    CheckpointStore store(dir);

    RunCheckpoint checkpoint;
    checkpoint.engine = ObservedEngine::kCountBatch;
    checkpoint.population = 10;
    checkpoint.num_states = 2;
    checkpoint.rng.words = {1, 2, 3, 4};
    checkpoint.interactions = 42;
    checkpoint.counts = {7, 3};

    EXPECT_FALSE(store.has_checkpoint("s-1"));
    store.save_checkpoint("s-1", checkpoint);
    EXPECT_TRUE(store.has_checkpoint("s-1"));
    EXPECT_EQ(store.load_checkpoint("s-1"), checkpoint);

    store.save_manifest("s-1", "{\"id\":\"s-1\"}");
    store.save_manifest("s-2", "{\"id\":\"s-2\"}");
    const auto manifests = store.list_manifests();
    ASSERT_EQ(manifests.size(), 2u);
    EXPECT_EQ(manifests[0].first, "s-1");
    EXPECT_EQ(manifests[0].second, "{\"id\":\"s-1\"}");
    EXPECT_EQ(manifests[1].first, "s-2");

    store.remove("s-1");
    EXPECT_FALSE(store.has_checkpoint("s-1"));
    EXPECT_EQ(store.list_manifests().size(), 1u);
    store.remove("s-1");  // missing files are not an error

    EXPECT_THROW(store.load_checkpoint("s-1"), std::runtime_error);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// RunRegistry.

/// RunOptions matching what the registry resolves from a spec, for direct
/// uninterrupted reference runs.
RunOptions direct_options(const SessionSpec& spec) {
    RunOptions options;
    options.seed = spec.seed;
    options.max_interactions = spec.budget;
    options.engine = parse_engine_name(spec.engine);
    return options;
}

RunResult direct_run(const SessionSpec& spec) {
    const auto protocol = build_protocol(spec);
    const auto initial = build_initial(*protocol, spec);
    if (spec.model != "uniform")
        return run_scenario(*protocol, initial, scenario_spec_from(spec),
                            direct_options(spec));
    return run_simulation(*protocol, initial, direct_options(spec));
}

/// The sliced run and the uninterrupted run must agree on every field a
/// SessionStatus exposes.
void expect_matches_direct(const SessionStatus& status, const RunResult& direct) {
    EXPECT_EQ(status.interactions, direct.interactions);
    EXPECT_EQ(status.effective_interactions, direct.effective_interactions);
    EXPECT_EQ(status.last_output_change, direct.last_output_change);
    ASSERT_TRUE(status.stop_reason.has_value());
    EXPECT_EQ(*status.stop_reason, direct.stop_reason);
    EXPECT_EQ(status.consensus.has_value(), direct.consensus.has_value());
    if (status.consensus && direct.consensus) EXPECT_EQ(*status.consensus, *direct.consensus);
}

/// Polls `status(id)` until `done` returns true or ~30 s elapse.
SessionStatus wait_for(RunRegistry& registry, const std::string& id,
                       const std::function<bool(const SessionStatus&)>& done) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
        const SessionStatus status = registry.status(id);
        if (done(status)) return status;
        if (std::chrono::steady_clock::now() > deadline) {
            ADD_FAILURE() << "timed out waiting on " << id << " (state "
                          << session_state_name(status.state) << ")";
            return status;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
}

bool is_terminal(const SessionStatus& status) {
    return status.state == SessionState::kDone || status.state == SessionState::kFailed ||
           status.state == SessionState::kCancelled;
}

TEST(RunRegistryTest, SubmitValidatesSpecsEagerly) {
    RegistryOptions options;
    options.spill_dir = fresh_dir("popproto_registry_validate");
    RunRegistry registry(options);

    SessionSpec empty_counts;
    empty_counts.counts = {};
    EXPECT_THROW(registry.submit(empty_counts), std::invalid_argument);

    SessionSpec too_small;
    too_small.counts = {1};
    EXPECT_THROW(registry.submit(too_small), std::invalid_argument);

    SessionSpec unknown_protocol;
    unknown_protocol.protocol = "nope";
    unknown_protocol.counts = {10, 2};
    EXPECT_THROW(registry.submit(unknown_protocol), std::invalid_argument);

    SessionSpec unknown_engine;
    unknown_engine.counts = {10, 2};
    unknown_engine.engine = "warp";
    EXPECT_THROW(registry.submit(unknown_engine), std::invalid_argument);

    SessionSpec bad_predicate;
    bad_predicate.protocol = "predicate";
    bad_predicate.predicate = "((";
    bad_predicate.counts = {10, 2};
    EXPECT_THROW(registry.submit(bad_predicate), std::invalid_argument);

    EXPECT_THROW(registry.status("s-404"), std::invalid_argument);
    std::filesystem::remove_all(options.spill_dir);
}

TEST(RunRegistryTest, QuantumSlicedRunMatchesTheDirectRun) {
    RegistryOptions options;
    options.workers = 2;
    options.spill_dir = fresh_dir("popproto_registry_sliced");
    RunRegistry registry(options);

    SessionSpec spec;
    spec.protocol = "counting";
    spec.threshold = 3;
    spec.counts = {40, 8};
    spec.seed = 11;
    spec.quantum = 97;  // coprime to everything: cuts land mid-everything
    spec.engine = "agent";

    const std::string id = registry.submit(spec);
    registry.wait_idle();
    const SessionStatus status = registry.status(id);
    EXPECT_EQ(status.state, SessionState::kDone);
    EXPECT_GT(status.quanta, 1u) << "quantum too large to exercise slicing";
    expect_matches_direct(status, direct_run(spec));
    std::filesystem::remove_all(options.spill_dir);
}

TEST(RunRegistryTest, SlicedBatchEngineCutsInsideNullSkipsMatchTheDirectRun) {
    // Token-sparse population on the batch engine: quantum boundaries fall
    // inside geometric null skips, the hardest slicing case.
    RegistryOptions options;
    options.spill_dir = fresh_dir("popproto_registry_batch");
    RunRegistry registry(options);

    SessionSpec spec;
    spec.protocol = "counting";
    spec.threshold = 2;
    spec.counts = {19998, 2};
    spec.seed = 3;
    spec.engine = "batch";
    spec.quantum = 10000;
    spec.budget = 400000;  // stop on budget: a deterministic endpoint

    const std::string id = registry.submit(spec);
    registry.wait_idle();
    const SessionStatus status = registry.status(id);
    EXPECT_EQ(status.state, SessionState::kDone);
    EXPECT_GT(status.quanta, 10u);
    expect_matches_direct(status, direct_run(spec));
    std::filesystem::remove_all(options.spill_dir);
}

TEST(RunRegistryTest, ScenarioSessionsSlicedThroughTheDaemonMatchDirectRuns) {
    // The acceptance property of the interaction-model layer at the service
    // level: a scenario session executed in daemon quanta must reproduce the
    // direct uninterrupted run_scenario result bit-for-bit.
    RegistryOptions options;
    options.spill_dir = fresh_dir("popproto_registry_scenario");
    RunRegistry registry(options);

    for (const std::string& model : {std::string("adversarial"), std::string("round_robin"),
                                     std::string("grid_mobility")}) {
        SessionSpec spec;
        spec.protocol = "epidemic";
        spec.counts = {63, 1};
        spec.seed = 29;
        spec.model = model;
        spec.budget = 20000;
        spec.quantum = 97;  // coprime: cuts land mid-epoch/mid-cycle/mid-walk

        const std::string id = registry.submit(spec);
        registry.wait_idle();
        const SessionStatus status = registry.status(id);
        EXPECT_EQ(status.state, SessionState::kDone) << model << ": " << status.error;
        EXPECT_GT(status.quanta, 1u) << model;
        expect_matches_direct(status, direct_run(spec));
    }
    std::filesystem::remove_all(options.spill_dir);
}

TEST(RunRegistryTest, SubmitRejectsInvalidScenarioSpecs) {
    RegistryOptions options;
    options.spill_dir = fresh_dir("popproto_registry_scenario_validate");
    RunRegistry registry(options);

    SessionSpec unknown_model;
    unknown_model.counts = {10, 2};
    unknown_model.model = "teleport";
    EXPECT_THROW(registry.submit(unknown_model), std::invalid_argument);

    SessionSpec wrong_engine;
    wrong_engine.counts = {10, 2};
    wrong_engine.model = "round_robin";
    wrong_engine.engine = "batch";
    EXPECT_THROW(registry.submit(wrong_engine), std::invalid_argument);

    SessionSpec no_phases;
    no_phases.counts = {10, 2};
    no_phases.model = "dynamic_graph";
    EXPECT_THROW(registry.submit(no_phases), std::invalid_argument);

    std::filesystem::remove_all(options.spill_dir);
}

TEST(RunRegistryTest, BoundedAdmissionQueueRejectsThenRecovers) {
    RegistryOptions options;
    options.workers = 1;
    options.max_queued = 2;
    options.spill_dir = fresh_dir("popproto_registry_admission");
    RunRegistry registry(options);

    // Two sessions with far-off budgets hold the backlog (queued + running)
    // at the bound for the whole test window.
    SessionSpec big;
    big.protocol = "epidemic";
    big.counts = {(std::uint64_t{1} << 20) - 1, 1};
    big.seed = 5;
    big.engine = "agent";
    big.budget = std::uint64_t{1} << 30;
    big.quantum = 1 << 16;
    const std::string first = registry.submit(big);
    const std::string second = registry.submit(big);

    try {
        registry.submit(big);
        FAIL() << "third submit should have hit the admission bound";
    } catch (const QueueFullError& error) {
        EXPECT_EQ(error.queued, 2u);
        EXPECT_EQ(error.max_queued, 2u);
        EXPECT_NE(std::string(error.what()).find("admission queue is full"),
                  std::string::npos);
    }

    // stats reports the live backlog and the bound.
    const std::string stats = registry.stats_json();
    EXPECT_NE(stats.find("\"queue_depth\":2"), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"max_queued\":2"), std::string::npos) << stats;

    // Freeing a slot (cancel drains the session from the backlog) re-opens
    // admission.
    registry.cancel(first);
    wait_for(registry, first, is_terminal);
    EXPECT_NO_THROW(registry.submit(big));

    registry.cancel(second);
    for (const SessionStatus& status : registry.list())
        if (!is_terminal(status)) registry.cancel(status.id);
    registry.wait_idle();
    std::filesystem::remove_all(options.spill_dir);
}

/// A session big enough that suspend reliably lands mid-run: 128 quanta
/// of dense agent-array work.  The budget sits well below the epidemic's
/// ~16n silence point (measured ~16.8M interactions at n = 2^20), so the
/// run is budget-bound — it cannot converge early and shrink the window
/// the suspend/drain tests race against.
SessionSpec long_running_spec() {
    SessionSpec spec;
    spec.protocol = "epidemic";
    spec.counts = {(std::uint64_t{1} << 20) - 1, 1};
    spec.seed = 21;
    spec.engine = "agent";
    spec.quantum = 1 << 16;
    spec.budget = std::uint64_t{128} << 16;  // 8.4M: mid-epidemic, ~0.2 s
    return spec;
}

TEST(RunRegistryTest, SuspendEvictResumeIsBitIdentical) {
    RegistryOptions options;
    options.max_resident_suspended = 0;  // every suspend spills immediately
    options.spill_dir = fresh_dir("popproto_registry_evict");
    RunRegistry registry(options);

    const SessionSpec spec = long_running_spec();
    const std::string id = registry.submit(spec);

    // Let it execute at least one quantum, then suspend mid-run.
    wait_for(registry, id, [](const SessionStatus& s) { return s.quanta >= 2; });
    registry.suspend(id);
    const SessionStatus suspended = wait_for(registry, id, [](const SessionStatus& s) {
        return s.state == SessionState::kEvicted || is_terminal(s);
    });
    ASSERT_EQ(suspended.state, SessionState::kEvicted)
        << "run finished before the suspend landed; enlarge the budget";
    EXPECT_LT(suspended.interactions, spec.budget);
    EXPECT_TRUE(registry.store().has_checkpoint(id)) << "eviction did not spill";
    registry.suspend(id);  // idempotent on an already-suspended session

    // Resume faults the checkpoint back in; the completed run must be
    // bit-identical to the run that was never suspended.
    registry.resume(id);
    registry.wait_idle();
    const SessionStatus final_status = registry.status(id);
    EXPECT_EQ(final_status.state, SessionState::kDone);
    expect_matches_direct(final_status, direct_run(spec));
    std::filesystem::remove_all(options.spill_dir);
}

TEST(RunRegistryTest, CancelIsTerminalAndIdempotentWhereMeaningful) {
    RegistryOptions options;
    options.spill_dir = fresh_dir("popproto_registry_cancel");
    RunRegistry registry(options);

    const std::string id = registry.submit(long_running_spec());
    registry.cancel(id);
    const SessionStatus cancelled =
        wait_for(registry, id, [](const SessionStatus& s) { return is_terminal(s); });
    EXPECT_EQ(cancelled.state, SessionState::kCancelled);
    registry.cancel(id);  // cancelling a cancelled session stays cancelled
    EXPECT_THROW(registry.resume(id), std::invalid_argument);
    EXPECT_THROW(registry.suspend(id), std::invalid_argument);
    std::filesystem::remove_all(options.spill_dir);
}

TEST(RunRegistryTest, DrainThenRestoreLosesNothingAndStaysBitIdentical) {
    const std::string dir = fresh_dir("popproto_registry_drain");
    const SessionSpec long_spec = long_running_spec();

    SessionSpec quick_spec;
    quick_spec.protocol = "counting";
    quick_spec.threshold = 2;
    quick_spec.counts = {10, 2};
    quick_spec.seed = 5;
    quick_spec.engine = "agent";
    quick_spec.name = "quick";

    std::string long_id, quick_id;
    SessionStatus quick_before;
    {
        RegistryOptions options;
        options.spill_dir = dir;
        RunRegistry registry(options);
        long_id = registry.submit(long_spec);
        quick_id = registry.submit(quick_spec);
        wait_for(registry, quick_id, [](const SessionStatus& s) { return is_terminal(s); });
        wait_for(registry, long_id, [](const SessionStatus& s) { return s.quanta >= 2; });
        quick_before = registry.status(quick_id);
        registry.drain();
        const SessionStatus drained = registry.status(long_id);
        EXPECT_FALSE(is_terminal(drained)) << "long run finished before the drain";
        EXPECT_GT(drained.interactions, 0u);
    }  // daemon process "exits" here

    RegistryOptions options;
    options.spill_dir = dir;
    RunRegistry restarted(options);
    EXPECT_EQ(restarted.restore(), 2u);

    // The terminal session survived verbatim.
    const SessionStatus quick_after = restarted.status(quick_id);
    EXPECT_EQ(quick_after.state, SessionState::kDone);
    EXPECT_EQ(quick_after.name, "quick");
    EXPECT_EQ(quick_after.interactions, quick_before.interactions);
    EXPECT_EQ(quick_after.effective_interactions, quick_before.effective_interactions);

    // The in-flight session resumes across the restart and still matches
    // the run that was never interrupted.
    restarted.wait_idle();
    const SessionStatus final_status = restarted.status(long_id);
    EXPECT_EQ(final_status.state, SessionState::kDone);
    expect_matches_direct(final_status, direct_run(long_spec));

    // New submissions do not collide with restored ids.
    const std::string fresh = restarted.submit(quick_spec);
    EXPECT_NE(fresh, long_id);
    EXPECT_NE(fresh, quick_id);
    restarted.wait_idle();
    std::filesystem::remove_all(dir);
}

TEST(RunRegistryTest, HundredsOfConcurrentSessionsAllReachTerminalStates) {
    RegistryOptions options;
    options.workers = 4;
    options.spill_dir = fresh_dir("popproto_registry_many");
    RunRegistry registry(options);

    SessionSpec spec;
    spec.protocol = "epidemic";
    spec.counts = {63, 1};
    spec.engine = "agent";

    std::vector<std::string> ids;
    for (int i = 0; i < 300; ++i) {
        spec.seed = static_cast<std::uint64_t>(i) + 1;
        ids.push_back(registry.submit(spec));
    }
    registry.wait_idle();
    for (const std::string& id : ids) {
        const SessionStatus status = registry.status(id);
        EXPECT_EQ(status.state, SessionState::kDone) << id;
        EXPECT_TRUE(status.stop_reason.has_value()) << id;
    }
    EXPECT_EQ(registry.list().size(), 300u);
    std::filesystem::remove_all(options.spill_dir);
}

TEST(RunRegistryTest, FairSchedulingLetsTinyRunsFinishUnderAHugeRun) {
    // One 2^20-agent run shares two workers with 50 tiny runs; DRR
    // guarantees the tiny runs drain while the huge run is still going.
    RegistryOptions options;
    options.workers = 2;
    options.spill_dir = fresh_dir("popproto_registry_fair");
    RunRegistry registry(options);

    SessionSpec huge;
    huge.protocol = "counting";
    huge.threshold = 5;
    huge.counts = {(std::uint64_t{1} << 20) - 16, 16};
    huge.seed = 9;
    huge.budget = ~std::uint64_t{0};  // effectively unbounded
    const std::string huge_id = registry.submit(huge);

    SessionSpec tiny;
    tiny.protocol = "epidemic";
    tiny.counts = {31, 1};
    tiny.engine = "agent";
    std::vector<std::string> tiny_ids;
    for (int i = 0; i < 50; ++i) {
        tiny.seed = static_cast<std::uint64_t>(i) + 1;
        tiny_ids.push_back(registry.submit(tiny));
    }

    for (const std::string& id : tiny_ids) {
        const SessionStatus status =
            wait_for(registry, id, [](const SessionStatus& s) { return is_terminal(s); });
        EXPECT_EQ(status.state, SessionState::kDone) << id;
    }
    // The huge run progressed but is nowhere near done: nobody starved.
    const SessionStatus huge_status = registry.status(huge_id);
    EXPECT_FALSE(is_terminal(huge_status));
    EXPECT_GT(huge_status.quanta, 0u);
    registry.cancel(huge_id);
    registry.wait_idle();
    std::filesystem::remove_all(options.spill_dir);
}

TEST(RunRegistryTest, SubscribersReceiveSessionTaggedEventsThroughStop) {
    RegistryOptions options;
    options.spill_dir = fresh_dir("popproto_registry_events");
    RunRegistry registry(options);

    std::mutex lines_mutex;
    std::vector<std::string> lines;
    const LineSink sink = [&](const std::string& line) {
        const std::lock_guard<std::mutex> lock(lines_mutex);
        lines.push_back(line);
    };

    SessionSpec spec;
    spec.protocol = "counting";
    spec.threshold = 3;
    spec.counts = {40, 8};
    spec.seed = 11;
    spec.engine = "agent";
    spec.snapshot_every = 64;
    const std::string id = registry.submit(spec);
    registry.subscribe(id, /*token=*/1, sink);
    registry.wait_idle();
    wait_for(registry, id, [](const SessionStatus& s) { return is_terminal(s); });

    // Whether the subscriber attached before or after the run finished, it
    // must observe the session reaching a terminal state; live subscribers
    // see the JSONL trace with the session id spliced into every line.
    const auto saw = [&](const std::string& needle) {
        const std::lock_guard<std::mutex> lock(lines_mutex);
        for (const std::string& line : lines)
            if (line.find(needle) != std::string::npos) return true;
        return false;
    };
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!saw("\"event\":\"stop\"") && !saw("\"state\":\"done\"") &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(saw("\"event\":\"stop\"") || saw("\"state\":\"done\""));
    {
        const std::lock_guard<std::mutex> lock(lines_mutex);
        ASSERT_FALSE(lines.empty());
        for (const std::string& line : lines)
            EXPECT_EQ(line.rfind("{\"session\":\"" + id + "\",", 0), 0u) << line;
    }
    registry.unsubscribe(id, 1);

    // A late subscriber to a terminal session gets the synthetic state
    // event immediately.
    std::vector<std::string> late_lines;
    registry.subscribe(id, /*token=*/2,
                       [&](const std::string& line) { late_lines.push_back(line); });
    ASSERT_EQ(late_lines.size(), 1u);
    EXPECT_NE(late_lines[0].find("\"state\":\"done\""), std::string::npos) << late_lines[0];
    registry.unsubscribe(id, 2);
    std::filesystem::remove_all(options.spill_dir);
}

}  // namespace
}  // namespace popproto::service
