// Protocol text serialization: round trips and error reporting.

#include <gtest/gtest.h>

#include "core/protocol_io.h"
#include "presburger/atom_protocols.h"
#include "presburger/compiler.h"
#include "protocols/counting.h"
#include "protocols/division.h"
#include "protocols/leader_election.h"

namespace popproto {
namespace {

void expect_equivalent(const TabulatedProtocol& a, const TabulatedProtocol& b) {
    ASSERT_EQ(a.num_states(), b.num_states());
    ASSERT_EQ(a.num_input_symbols(), b.num_input_symbols());
    ASSERT_EQ(a.num_output_symbols(), b.num_output_symbols());
    for (Symbol x = 0; x < a.num_input_symbols(); ++x) {
        EXPECT_EQ(a.initial_state(x), b.initial_state(x));
        EXPECT_EQ(a.input_name(x), b.input_name(x));
    }
    for (State q = 0; q < a.num_states(); ++q) {
        EXPECT_EQ(a.output_fast(q), b.output_fast(q));
        EXPECT_EQ(a.state_name(q), b.state_name(q));
    }
    for (State p = 0; p < a.num_states(); ++p)
        for (State q = 0; q < a.num_states(); ++q)
            EXPECT_EQ(a.apply_fast(p, q), b.apply_fast(p, q));
}

TEST(ProtocolIo, RoundTripsLibraryProtocols) {
    const auto counting = make_counting_protocol(5);
    expect_equivalent(*counting, *deserialize_protocol(serialize_protocol(*counting)));

    const auto leader = make_leader_election_protocol();
    expect_equivalent(*leader, *deserialize_protocol(serialize_protocol(*leader)));

    const auto division = make_division_protocol(3);
    expect_equivalent(*division, *deserialize_protocol(serialize_protocol(*division)));

    const auto majority = make_threshold_protocol({1, -1}, 0);
    expect_equivalent(*majority, *deserialize_protocol(serialize_protocol(*majority)));
}

TEST(ProtocolIo, RoundTripsACompiledProtocol) {
    const auto compiled = compile_formula(Formula::congruence({1, -2}, 0, 3));
    expect_equivalent(*compiled, *deserialize_protocol(serialize_protocol(*compiled)));
}

TEST(ProtocolIo, AcceptsCommentsAndDefaults) {
    const std::string text =
        "# a hand-written protocol\n"
        "popproto-protocol 1\n"
        "sizes 2 1 2\n"
        "input 0 1 start\n"
        "out 1 1\n"
        "delta 1 1 1 0\n"
        "end\n";
    const auto protocol = deserialize_protocol(text);
    EXPECT_EQ(protocol->num_states(), 2u);
    EXPECT_EQ(protocol->initial_state(0), 1u);
    EXPECT_EQ(protocol->output(1), 1u);
    EXPECT_EQ(protocol->apply(1, 1), (StatePair{1, 0}));
    EXPECT_EQ(protocol->apply(0, 1), (StatePair{0, 1}));  // implicit null
    EXPECT_EQ(protocol->input_name(0), "start");
    EXPECT_EQ(protocol->output_name(0), "y0");  // defaulted
}

TEST(ProtocolIo, HeaderIsCommentTolerantButMandatory) {
    EXPECT_THROW(deserialize_protocol("sizes 2 1 2\nend\n"), std::invalid_argument);
    EXPECT_THROW(deserialize_protocol("popproto-protocol 2\nsizes 2 1 2\nend\n"),
                 std::invalid_argument);
}

TEST(ProtocolIo, ReportsMalformedDirectives) {
    const std::string header = "popproto-protocol 1\nsizes 2 1 2\n";
    EXPECT_THROW(deserialize_protocol(header + "delta 9 0 0 0\nend\n"), std::invalid_argument);
    EXPECT_THROW(deserialize_protocol(header + "out 0 7\nend\n"), std::invalid_argument);
    EXPECT_THROW(deserialize_protocol(header + "input 0 9 x\nend\n"), std::invalid_argument);
    EXPECT_THROW(deserialize_protocol(header + "mystery 1\nend\n"), std::invalid_argument);
    EXPECT_THROW(deserialize_protocol(header + "out 0 0\n"), std::invalid_argument);  // no end
    EXPECT_THROW(deserialize_protocol("popproto-protocol 1\nout 0 0\nend\n"),
                 std::invalid_argument);  // directive before sizes
}

TEST(ProtocolIo, SerializedFormHasOnlyNonNullDeltas) {
    const auto leader = make_leader_election_protocol();
    const std::string text = serialize_protocol(*leader);
    // Exactly one non-null transition: (L, L) -> (L, F).
    std::size_t deltas = 0;
    std::size_t position = 0;
    while ((position = text.find("delta ", position)) != std::string::npos) {
        ++deltas;
        ++position;
    }
    EXPECT_EQ(deltas, 1u);
}

}  // namespace
}  // namespace popproto
