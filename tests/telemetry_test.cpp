// Runtime telemetry (src/telemetry): the telemetry-never-perturbs contract,
// the collector aggregates, and both exporters.
//
// The load-bearing test is non-perturbation: a run with a collector
// attached must be bit-identical (same interactions, same RunResult
// counts) to one without, on every engine and for every thread count —
// telemetry reads clocks and counters but never the RNG stream or the
// configuration.  The exporter tests hold the Chrome trace to well-formed
// JSON with properly nested spans and the Prometheus exposition to the
// documented metric families; the JsonlTraceWriter tests here are the
// regression suite for the error-path bugfix (open/write failures name the
// path instead of silently truncating).

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <streambuf>
#include <string>
#include <vector>

#include "core/batch_simulator.h"
#include "core/collapsed_simulator.h"
#include "core/observer.h"
#include "core/simulator.h"
#include "graphs/graph_simulation.h"
#include "graphs/interaction_graph.h"
#include "observe/jsonl_writer.h"
#include "observe/trace_recorder.h"
#include "protocols/counting.h"
#include "protocols/epidemic.h"
#include "randomized/trials.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/prometheus.h"
#include "telemetry/telemetry.h"
#include "test_util.h"

namespace popproto {
namespace {

using telemetry::Phase;
using telemetry::RunTelemetry;
using telemetry::RunTelemetryCollector;
using testutil::JsonChecker;

bool results_equal(const RunResult& a, const RunResult& b) {
    return a.stop_reason == b.stop_reason && a.interactions == b.interactions &&
           a.effective_interactions == b.effective_interactions &&
           a.last_output_change == b.last_output_change && a.consensus == b.consensus &&
           a.final_configuration.counts() == b.final_configuration.counts();
}

RunOptions base_options(std::uint64_t budget, std::uint64_t seed) {
    RunOptions options;
    options.max_interactions = budget;
    options.seed = seed;
    return options;
}

std::uint64_t phase_ns(const RunTelemetry& data, Phase phase) {
    return data.phases[static_cast<std::size_t>(phase)].total_ns;
}

std::uint64_t phase_calls(const RunTelemetry& data, Phase phase) {
    return data.phases[static_cast<std::size_t>(phase)].calls;
}

// --- Registry ------------------------------------------------------------

TEST(TelemetryRegistry, CountersAreNamedStableAndCumulative) {
    telemetry::TelemetryRegistry registry;
    telemetry::Counter& a = registry.counter("alpha");
    a.add(3);
    // Lookup by the same name returns the same instrument.
    registry.counter("alpha").add(4);
    EXPECT_EQ(a.value(), 7u);

    registry.counter("beta").add(1);
    const std::vector<telemetry::CounterSnapshot> counters = registry.counters();
    ASSERT_EQ(counters.size(), 2u);
    EXPECT_EQ(counters[0].name, "alpha");
    EXPECT_EQ(counters[0].value, 7u);
    EXPECT_EQ(counters[1].name, "beta");
    EXPECT_EQ(counters[1].value, 1u);

    registry.clear();
    EXPECT_TRUE(registry.counters().empty());
}

TEST(TelemetryRegistry, LogHistogramBucketsByFloorLog2) {
    telemetry::TelemetryRegistry registry;
    telemetry::LogHistogram& h = registry.histogram("lengths");
    // Bucket b holds [2^b, 2^(b+1)); zero lands in bucket 0 alongside 1.
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(3);
    h.record(4);
    h.record(1023);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 1023);
    EXPECT_EQ(h.bucket(0), 2u);  // 0 and 1
    EXPECT_EQ(h.bucket(1), 2u);  // 2 and 3
    EXPECT_EQ(h.bucket(2), 1u);  // 4
    EXPECT_EQ(h.bucket(9), 1u);  // 1023
    EXPECT_EQ(h.bucket(10), 0u);

    const std::vector<telemetry::HistogramSnapshot> histograms = registry.histograms();
    ASSERT_EQ(histograms.size(), 1u);
    EXPECT_EQ(histograms[0].name, "lengths");
    EXPECT_EQ(histograms[0].count, 6u);
    EXPECT_EQ(histograms[0].buckets[9], 1u);
}

TEST(Telemetry, ScopedTimerWithNullCollectorIsANoOp) {
    // The disabled fast path: a null collector must be safe at every probe
    // site (this is what every un-instrumented run exercises).
    { const telemetry::ScopedTimer timer(nullptr, Phase::kSilenceCheck); }
    RunTelemetryCollector* collector = nullptr;
    { const telemetry::ScopedTimer timer(collector, Phase::kSuperStepApply); }
}

// --- Telemetry never perturbs any engine ---------------------------------

TEST(Telemetry, DoesNotPerturbAgentArray) {
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {57, 7});
    const RunOptions plain = base_options(default_budget(64), 31);
    const RunResult unobserved = simulate(*protocol, initial, plain);

    RunTelemetryCollector collector;
    RunOptions instrumented = plain;
    instrumented.telemetry = &collector;
    const RunResult result = simulate(*protocol, initial, instrumented);

    EXPECT_TRUE(results_equal(result, unobserved));
    if (!telemetry::kCompiledIn) return;
    ASSERT_NE(result.telemetry, nullptr);
    EXPECT_TRUE(result.telemetry->enabled);
    EXPECT_EQ(result.telemetry->engine, "agent_array");
    EXPECT_EQ(result.telemetry->population, 64u);
    EXPECT_EQ(result.telemetry->threads, 1u);
    EXPECT_EQ(result.telemetry->interactions, result.interactions);
    EXPECT_GT(result.telemetry->wall_ns, 0u);
    // Per-interaction engines report their stepping as the derived phase.
    EXPECT_GT(phase_ns(*result.telemetry, Phase::kStepping), 0u);
    EXPECT_EQ(result.telemetry->super_steps, 0u);
}

TEST(Telemetry, DoesNotPerturbBatchEngine) {
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {57, 7});
    const RunOptions plain = base_options(default_budget(64), 32);
    const RunResult unobserved = simulate_counts(*protocol, initial, plain);

    RunTelemetryCollector collector;
    RunOptions instrumented = plain;
    instrumented.telemetry = &collector;
    const RunResult result = simulate_counts(*protocol, initial, instrumented);

    EXPECT_TRUE(results_equal(result, unobserved));
    if (!telemetry::kCompiledIn) return;
    ASSERT_NE(result.telemetry, nullptr);
    // Geometric-skip accounting reconciles exactly with the run totals —
    // and with what an observer would have been told (the counting
    // protocol goes silent, so every null interaction sits in a skip).
    EXPECT_EQ(result.telemetry->null_interactions_skipped,
              result.interactions - result.effective_interactions);
    if (result.interactions != result.effective_interactions) {
        EXPECT_GT(result.telemetry->geometric_skips, 0u);
    }
}

TEST(Telemetry, SkipAccountingMatchesObserverWithoutAnObserver) {
    // The skip probes fire on the same sites as RunObserver::on_null_run
    // but must not depend on an observer being attached: the telemetry of
    // an observer-free run equals the observer's tally of an observed one.
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {57, 7});
    const RunOptions plain = base_options(default_budget(64), 33);

    TraceRecorder recorder;
    RunOptions observed = plain;
    observed.observer = &recorder;
    simulate_counts(*protocol, initial, observed);

    RunTelemetryCollector collector;
    RunOptions instrumented = plain;
    instrumented.telemetry = &collector;
    const RunResult result = simulate_counts(*protocol, initial, instrumented);
    if (!telemetry::kCompiledIn) return;
    EXPECT_EQ(result.telemetry->null_interactions_skipped, recorder.total_null_skips());
}

TEST(Telemetry, DoesNotPerturbWeightedEngine) {
    const auto protocol = make_epidemic_protocol();
    std::vector<Symbol> inputs(20, 0);
    inputs[0] = 1;
    const auto initial = AgentConfiguration::from_inputs(*protocol, inputs);
    std::vector<double> weights(20);
    for (std::size_t i = 0; i < weights.size(); ++i) weights[i] = 1.0 + 0.25 * (i % 4);

    const RunOptions plain = base_options(default_budget(20), 34);
    const RunResult unobserved = simulate_weighted(*protocol, initial, weights, plain);

    RunTelemetryCollector collector;
    RunOptions instrumented = plain;
    instrumented.telemetry = &collector;
    const RunResult result = simulate_weighted(*protocol, initial, weights, instrumented);

    EXPECT_TRUE(results_equal(result, unobserved));
    if (!telemetry::kCompiledIn) return;
    ASSERT_NE(result.telemetry, nullptr);
    EXPECT_EQ(result.telemetry->engine, "weighted");
}

TEST(Telemetry, DoesNotPerturbGraphEngine) {
    const auto protocol = make_epidemic_protocol();
    const InteractionGraph graph = InteractionGraph::ring(16);
    std::vector<Symbol> inputs(16, 0);
    inputs[3] = 1;
    RunOptions plain = base_options(default_budget(16), 35);
    plain.stop_after_stable_outputs = 2000;
    const GraphRunResult unobserved = simulate_on_graph(*protocol, graph, inputs, plain);

    RunTelemetryCollector collector;
    RunOptions instrumented = plain;
    instrumented.telemetry = &collector;
    const GraphRunResult result = simulate_on_graph(*protocol, graph, inputs, instrumented);

    EXPECT_EQ(result.stop_reason, unobserved.stop_reason);
    EXPECT_EQ(result.interactions, unobserved.interactions);
    EXPECT_EQ(result.effective_interactions, unobserved.effective_interactions);
    EXPECT_EQ(result.last_output_change, unobserved.last_output_change);
    EXPECT_EQ(result.consensus, unobserved.consensus);
    EXPECT_EQ(result.final_configuration.states(), unobserved.final_configuration.states());
    if (!telemetry::kCompiledIn) return;
    EXPECT_EQ(collector.telemetry().engine, "graph");
}

TEST(Telemetry, DoesNotPerturbCollapsedEngineAcrossThreadCounts) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {4000, 96});
    for (const unsigned threads : {1u, 2u, 4u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        RunOptions plain = base_options(default_budget(4096), 36);
        plain.threads = threads;
        const RunResult unobserved = simulate_collapsed(*protocol, initial, plain);

        RunTelemetryCollector collector;
        RunOptions instrumented = plain;
        instrumented.telemetry = &collector;
        const RunResult result = simulate_collapsed(*protocol, initial, instrumented);

        EXPECT_TRUE(results_equal(result, unobserved));
        if (!telemetry::kCompiledIn) continue;
        const RunTelemetry& data = *result.telemetry;
        EXPECT_EQ(data.engine, threads > 1 ? "parallel_collapsed" : "collapsed");
        EXPECT_EQ(data.threads, threads);
        EXPECT_GT(data.super_steps, 0u);
        // Super-step bookkeeping reconciles with the run totals: each
        // non-clamped super-step contributes its pairs plus one colliding
        // interaction, each clamped one only its pairs.
        EXPECT_EQ(data.super_step_pairs + (data.super_steps - data.clamped_super_steps),
                  data.interactions);
        EXPECT_GT(phase_calls(data, Phase::kRunLengthDraw), 0u);
        EXPECT_EQ(phase_calls(data, Phase::kSuperStepApply), data.super_steps);
        EXPECT_GT(phase_calls(data, Phase::kWRecompute), 0u);
        if (threads > 1) {
            // The sharded stepper does its cascades inside the shard tasks
            // (kShardTask worker spans); the driving thread times the carve
            // and the fan-out section instead.  At this population most
            // rounds fall under the inline threshold, so only the round
            // split — not pooled dispatch — is guaranteed.
            EXPECT_GT(phase_calls(data, Phase::kShardCarve), 0u);
            EXPECT_GT(phase_calls(data, Phase::kShardTasks), 0u);
            EXPECT_EQ(data.shards.size(), threads);
            EXPECT_EQ(data.pool_rounds + data.inline_rounds, data.super_steps);
        } else {
            EXPECT_GT(phase_calls(data, Phase::kPairCascade), 0u);
        }
    }
}

TEST(Telemetry, ShardUtilizationPopulatedOncePoolEngages) {
    // Pooled dispatch needs super-steps of >= kMinPairsPerWorker * K pairs
    // (~0.63 sqrt(n) per step), so use a population large enough that the
    // pool actually engages: n = 2^16, K = 2 gives ~161-pair steps against
    // a 128-pair threshold.
    if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
    const auto protocol = make_epidemic_protocol();
    const auto initial =
        CountConfiguration::from_input_counts(*protocol, {(1u << 16) - 1, 1});
    RunOptions options = base_options(0, 37);  // 0 = default budget for n
    options.threads = 2;

    RunTelemetryCollector collector;
    options.telemetry = &collector;
    simulate_collapsed(*protocol, initial, options);

    const RunTelemetry& data = collector.telemetry();
    ASSERT_EQ(data.shards.size(), 2u);
    EXPECT_GT(data.pool_rounds, 0u);
    for (std::size_t k = 0; k < data.shards.size(); ++k) {
        SCOPED_TRACE("shard " + std::to_string(k));
        EXPECT_EQ(data.shards[k].tasks, data.pool_rounds);
        EXPECT_GT(data.shards[k].busy_ns, 0u);
        // busy + wait = K * (summed round wall) by construction, so each
        // shard's busy share is bounded by the total round time.
        EXPECT_LE(data.shards[k].busy_ns, data.shards[k].busy_ns + data.shards[k].wait_ns);
    }
    EXPECT_GT(phase_calls(data, Phase::kShardTasks), 0u);
}

TEST(Telemetry, CollectorIsReusableAcrossRuns) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {63, 1});
    RunTelemetryCollector collector;
    RunOptions options = base_options(default_budget(64), 38);
    options.telemetry = &collector;

    const RunResult first = simulate_counts(*protocol, initial, options);
    if (!telemetry::kCompiledIn) return;
    const std::shared_ptr<const RunTelemetry> first_data = first.telemetry;
    EXPECT_EQ(first_data->interactions, first.interactions);

    // begin_run resets: the second run's telemetry starts from zero and the
    // first run's snapshot (shared_ptr) is left untouched.
    options.seed = 39;
    const RunResult second = simulate(*protocol, initial, options);
    EXPECT_EQ(second.telemetry->engine, "agent_array");
    EXPECT_EQ(second.telemetry->interactions, second.interactions);
    EXPECT_EQ(first_data->engine, "count_batch");
    EXPECT_EQ(first_data->interactions, first.interactions);
    EXPECT_NE(first.telemetry.get(), second.telemetry.get());
}

TEST(Telemetry, MeasureTrialsRejectsASharedCollector) {
    // A collector instruments exactly one run; a trial fan-out would
    // interleave begin_run/finish_run across workers.
    RunTelemetryCollector collector;
    TrialOptions options;
    options.trials = 2;
    options.base.telemetry = &collector;
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {15, 1});
    EXPECT_THROW(measure_trials(*protocol, initial, options), std::invalid_argument);
}

// --- Chrome trace exporter -----------------------------------------------

/// Runs a collapsed threads=2 run and returns its telemetry (shared
/// fixture for the exporter tests).
std::shared_ptr<const RunTelemetry> instrumented_collapsed_run() {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {4000, 96});
    RunOptions options = base_options(default_budget(4096), 40);
    options.threads = 2;
    RunTelemetryCollector collector;
    options.telemetry = &collector;
    return simulate_collapsed(*protocol, initial, options).telemetry;
}

TEST(ChromeTrace, EmitsValidJsonWithNestedSpans) {
    if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
    const std::shared_ptr<const RunTelemetry> data = instrumented_collapsed_run();
    ASSERT_NE(data, nullptr);
    ASSERT_FALSE(data->spans.empty());

    std::ostringstream out;
    telemetry::write_chrome_trace(out, *data);
    const std::string json = out.str();

    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json.substr(0, 400);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\":"), std::string::npos);
    // Thread-name metadata for the driving thread, complete events after.
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"run_loop\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"super_step_apply\""), std::string::npos);

    // Spans nest properly per thread: any two either don't overlap or one
    // contains the other (this is what makes the flame graph render as a
    // stack — a half-overlap means a probe closed out of order).
    std::map<std::uint32_t, std::vector<const telemetry::TraceSpan*>> by_tid;
    for (const telemetry::TraceSpan& span : data->spans) {
        EXPECT_LE(span.begin_ns, span.end_ns);
        by_tid[span.tid].push_back(&span);
    }
    for (const auto& [tid, spans] : by_tid) {
        for (std::size_t i = 0; i < spans.size(); ++i) {
            for (std::size_t j = i + 1; j < spans.size(); ++j) {
                const auto* a = spans[i];
                const auto* b = spans[j];
                const bool disjoint = a->end_ns <= b->begin_ns || b->end_ns <= a->begin_ns;
                const bool a_in_b = b->begin_ns <= a->begin_ns && a->end_ns <= b->end_ns;
                const bool b_in_a = a->begin_ns <= b->begin_ns && b->end_ns <= a->end_ns;
                ASSERT_TRUE(disjoint || a_in_b || b_in_a)
                    << "tid " << tid << ": span [" << a->begin_ns << ", " << a->end_ns
                    << ") half-overlaps [" << b->begin_ns << ", " << b->end_ns << ")";
            }
        }
    }
}

TEST(ChromeTrace, FileWriterNamesThePathOnFailure) {
    const RunTelemetry data;
    try {
        telemetry::write_chrome_trace_file("/nonexistent-dir-popproto/trace.json", data);
        FAIL() << "expected an exception";
    } catch (const std::exception& error) {
        EXPECT_NE(std::string(error.what()).find("/nonexistent-dir-popproto/trace.json"),
                  std::string::npos)
            << error.what();
    }
}

// --- Prometheus exporter -------------------------------------------------

TEST(Prometheus, EmitsDocumentedMetricFamilies) {
    if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
    const std::shared_ptr<const RunTelemetry> data = instrumented_collapsed_run();
    ASSERT_NE(data, nullptr);

    std::ostringstream out;
    telemetry::write_prometheus(out, *data);
    const std::string text = out.str();

    for (const char* needle : {
             "# TYPE popproto_run_info gauge",
             "popproto_run_info{engine=\"parallel_collapsed\"",
             "popproto_run_wall_seconds",
             "# TYPE popproto_phase_seconds_total counter",
             "popproto_phase_seconds_total{phase=\"super_step_apply\"}",
             "popproto_phase_calls_total{phase=\"run_length_draw\"}",
             "popproto_shard_busy_seconds_total{shard=\"0\"}",
             "popproto_shard_wait_seconds_total{shard=\"1\"}",
             "popproto_pool_rounds_total{path=\"pooled\"}",
             "popproto_pool_rounds_total{path=\"inline\"}",
             "popproto_super_steps_total",
             "popproto_run_interactions_total",
         }) {
        EXPECT_NE(text.find(needle), std::string::npos) << "missing: " << needle;
    }

    // Exposition-format hygiene: every line is a comment or `name value` /
    // `name{labels} value`, and the payload ends with a newline.
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#') continue;
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        ASSERT_GT(space, 0u) << line;
        // The value parses as a double.
        EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
    }
}

TEST(Prometheus, FileWriterNamesThePathOnFailure) {
    const RunTelemetry data;
    try {
        telemetry::write_prometheus_file("/nonexistent-dir-popproto/run.prom", data);
        FAIL() << "expected an exception";
    } catch (const std::exception& error) {
        EXPECT_NE(std::string(error.what()).find("/nonexistent-dir-popproto/run.prom"),
                  std::string::npos)
            << error.what();
    }
}

// --- JsonlTraceWriter integration + error-path regressions ---------------

TEST(Telemetry, JsonlWriterEmitsOneTelemetryEventBeforeStop) {
    if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {63, 1});

    std::ostringstream out;
    JsonlTraceWriter writer(out);
    RunTelemetryCollector collector;
    RunOptions options = base_options(default_budget(64), 41);
    options.observer = &writer;
    options.telemetry = &collector;
    simulate_counts(*protocol, initial, options);

    std::vector<std::string> lines;
    {
        std::istringstream in(out.str());
        std::string line;
        while (std::getline(in, line)) lines.push_back(line);
    }
    ASSERT_GE(lines.size(), 3u);
    for (const std::string& line : lines) {
        JsonChecker checker(line);
        EXPECT_TRUE(checker.valid()) << line;
    }
    // Exactly one telemetry event, immediately before the stop event.
    const std::string prefix = "{\"event\":\"telemetry\"";
    std::size_t telemetry_lines = 0;
    for (const std::string& line : lines)
        if (line.compare(0, prefix.size(), prefix) == 0) ++telemetry_lines;
    EXPECT_EQ(telemetry_lines, 1u);
    EXPECT_EQ(lines[lines.size() - 2].compare(0, prefix.size(), prefix), 0);
    EXPECT_NE(lines[lines.size() - 2].find("\"phases\":{"), std::string::npos);
    const std::string stop_prefix = "{\"event\":\"stop\"";
    EXPECT_EQ(lines.back().compare(0, stop_prefix.size(), stop_prefix), 0);

    // Without a collector there is no telemetry event.
    std::ostringstream plain_out;
    JsonlTraceWriter plain_writer(plain_out);
    options.telemetry = nullptr;
    options.observer = &plain_writer;
    simulate_counts(*protocol, initial, options);
    EXPECT_EQ(plain_out.str().find("\"event\":\"telemetry\""), std::string::npos);
}

TEST(JsonlTraceWriter, OpenFailureNamesThePath) {
    try {
        const JsonlTraceWriter writer("/nonexistent-dir-popproto/trace.jsonl");
        FAIL() << "expected an exception";
    } catch (const std::invalid_argument& error) {
        EXPECT_NE(std::string(error.what()).find("/nonexistent-dir-popproto/trace.jsonl"),
                  std::string::npos)
            << error.what();
    }
}

/// A streambuf that accepts nothing: every overflow reports failure, the
/// way a closed pipe or a full disk surfaces through an ostream.
class FailingBuf final : public std::streambuf {
protected:
    int_type overflow(int_type) override { return traits_type::eof(); }
};

TEST(JsonlTraceWriter, MidRunWriteFailureThrowsInsteadOfTruncating) {
    // Regression: a failed stream used to be ignored, silently truncating
    // the trace; now the first lost line throws.
    FailingBuf buf;
    std::ostream broken(&buf);
    JsonlTraceWriter writer(broken);
    RunStartInfo info;
    info.engine = ObservedEngine::kCountBatch;
    info.population = 2;
    info.num_states = 2;
    EXPECT_THROW(writer.on_start(info), std::runtime_error);
}

TEST(JsonlTraceWriter, WriteFailureOnAnOpenedFileNamesThePath) {
    // A full disk mid-run must surface the path, not just "write failed".
    // /dev/full opens fine and fails every flush with ENOSPC — exactly the
    // failure the bug silently swallowed.
    if (!std::ifstream("/dev/full").good()) GTEST_SKIP() << "/dev/full unavailable";
    JsonlTraceWriter writer("/dev/full");
    try {
        // The ofstream buffers, so the failure may surface a few lines in;
        // ~10k short lines overflow any sane buffer.
        for (int i = 0; i < 10000; ++i) writer.on_output_change(i);
        FAIL() << "expected a write failure against /dev/full";
    } catch (const std::runtime_error& error) {
        EXPECT_NE(std::string(error.what()).find("/dev/full"), std::string::npos)
            << error.what();
    }
}

}  // namespace
}  // namespace popproto
