// The Theorem 5 / Corollary 3 compiler: compiled protocols must stably
// compute their formulas on every input of every small population, including
// Boolean combinations (Lemma 3) and the integer input convention.

#include <gtest/gtest.h>

#include "analysis/stable_computation.h"
#include "core/simulator.h"
#include "presburger/compiler.h"
#include "test_util.h"

namespace popproto {
namespace {

void expect_compiled_correct(const Formula& formula, std::uint64_t max_population,
                             std::size_t num_symbols = 0) {
    const auto protocol = compile_formula(formula, num_symbols);
    for (std::uint64_t n = 1; n <= max_population; ++n) {
        testutil::for_each_composition(
            n, protocol->num_input_symbols(), [&](const std::vector<std::uint64_t>& counts) {
                const auto initial = CountConfiguration::from_input_counts(*protocol, counts);
                const bool expected = formula.evaluate(testutil::to_signed(counts));
                EXPECT_TRUE(stably_computes_bool(*protocol, initial, expected))
                    << formula.to_string() << " n=" << n;
            });
    }
}

TEST(Compiler, SingleThresholdAtom) {
    expect_compiled_correct(Formula::threshold({1, -1}, 0), 6);  // minority
}

TEST(Compiler, SingleCongruenceAtom) {
    expect_compiled_correct(Formula::congruence({1}, 1, 3), 7);
}

TEST(Compiler, ConjunctionOfAtoms) {
    // x0 odd AND x0 < 4.
    expect_compiled_correct(
        Formula::conjunction(Formula::congruence({1}, 1, 2), Formula::threshold({1}, 4)), 6);
}

TEST(Compiler, DisjunctionOfAtoms) {
    expect_compiled_correct(
        Formula::disjunction(Formula::congruence({1}, 0, 2), Formula::at_least({1}, 5)), 6);
}

TEST(Compiler, NegationOfAtom) {
    expect_compiled_correct(Formula::negation(Formula::threshold({1}, 3)), 6);
}

TEST(Compiler, EqualityViaTwoThresholds) {
    // x0 == x1, as in the proof of Theorem 5 (AND of two inequalities).
    expect_compiled_correct(Formula::equals({1, -1}, 0), 6);
}

TEST(Compiler, NestedFormula) {
    // (x0 > x1) OR NOT (x0 + x1 = 0 mod 2): three atoms, mixed connectives.
    const Formula formula = Formula::disjunction(
        Formula::threshold({-1, 1}, 0),
        Formula::negation(Formula::congruence({1, 1}, 0, 2)));
    expect_compiled_correct(formula, 5);
}

TEST(Compiler, FivePercentFeverPredicate) {
    // Sect. 4.2 example: 20 x1 >= x0 + x1, i.e. 19 x1 - x0 >= 0.
    const Formula fever = Formula::at_least({-1, 19}, 0);
    expect_compiled_correct(fever, 6);
}

TEST(Compiler, PaddedInputAlphabet) {
    // A one-variable formula over a three-symbol alphabet: extra symbols are
    // counted but never change the verdict.
    const Formula formula = Formula::at_least({1}, 2);
    const auto protocol = compile_formula(formula, 3);
    EXPECT_EQ(protocol->num_input_symbols(), 3u);
    for (std::uint64_t n = 1; n <= 5; ++n) {
        testutil::for_each_composition(n, 3, [&](const std::vector<std::uint64_t>& counts) {
            const auto initial = CountConfiguration::from_input_counts(*protocol, counts);
            const bool expected = counts[0] >= 2;
            EXPECT_TRUE(stably_computes_bool(*protocol, initial, expected));
        });
    }
}

TEST(Compiler, RejectsTooFewSymbols) {
    EXPECT_THROW(compile_formula(Formula::threshold({1, 1}, 0), 1), std::invalid_argument);
}

TEST(Compiler, IntegerConventionPaperExample) {
    // Sect. 4.3 example: Phi(y1, y2) = (y1 - 2 y2 = 0 mod 3) over token
    // alphabet {(0,0), (1,0), (-1,0), (0,1), (0,-1)}.
    const Formula phi = Formula::congruence({1, -2}, 0, 3);
    const std::vector<std::vector<std::int64_t>> tokens = {
        {0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}};
    const auto protocol = compile_integer_convention(phi, tokens);
    ASSERT_EQ(protocol->num_input_symbols(), tokens.size());

    for (std::uint64_t n = 1; n <= 4; ++n) {
        testutil::for_each_composition(
            n, tokens.size(), [&](const std::vector<std::uint64_t>& counts) {
                std::int64_t y1 = 0;
                std::int64_t y2 = 0;
                for (std::size_t v = 0; v < tokens.size(); ++v) {
                    y1 += tokens[v][0] * static_cast<std::int64_t>(counts[v]);
                    y2 += tokens[v][1] * static_cast<std::int64_t>(counts[v]);
                }
                const auto initial = CountConfiguration::from_input_counts(*protocol, counts);
                EXPECT_TRUE(stably_computes_bool(*protocol, initial, phi.evaluate({y1, y2})))
                    << "y1=" << y1 << " y2=" << y2;
            });
    }
}

TEST(Compiler, LargePopulationSimulation) {
    // Majority on 300 agents under random scheduling: the compiled protocol
    // reaches the correct consensus well within the Theta(n^2 log n) budget.
    const Formula minority = Formula::threshold({1, -1}, 0);  // x0 < x1
    const auto protocol = compile_formula(minority);
    for (const auto& [zeros, ones] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
             {151, 149}, {149, 151}, {10, 290}}) {
        const auto initial =
            CountConfiguration::from_input_counts(*protocol, {zeros, ones});
        RunOptions options;
        options.max_interactions = default_budget(zeros + ones);
        options.seed = zeros;
        const RunResult result = simulate(*protocol, initial, options);
        ASSERT_TRUE(result.consensus.has_value()) << zeros << " vs " << ones;
        EXPECT_EQ(*result.consensus, zeros < ones ? kOutputTrue : kOutputFalse);
    }
}

}  // namespace
}  // namespace popproto
