// The flock-of-birds counting protocol: the paper's running example.
// Includes the exact 6-agent trace from Sect. 3.2 and exhaustive
// stable-computation sweeps over thresholds and population sizes.

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/stable_computation.h"
#include "core/simulator.h"
#include "protocols/counting.h"
#include "test_util.h"

namespace popproto {
namespace {

TEST(CountingProtocol, MatchesPaperTransitionFunction) {
    const auto protocol = make_counting_protocol(5);
    ASSERT_EQ(protocol->num_states(), 6u);
    // delta(q_i, q_j) = (q_{i+j}, q_0) if i + j < 5, else (q_5, q_5).
    EXPECT_EQ(protocol->apply(1, 1), (StatePair{2, 0}));
    EXPECT_EQ(protocol->apply(2, 2), (StatePair{4, 0}));
    EXPECT_EQ(protocol->apply(2, 3), (StatePair{5, 5}));
    EXPECT_EQ(protocol->apply(5, 0), (StatePair{5, 5}));
    EXPECT_EQ(protocol->apply(0, 0), (StatePair{0, 0}));
    // Output: only q_5 says true.
    for (State q = 0; q < 5; ++q) EXPECT_EQ(protocol->output(q), kOutputFalse);
    EXPECT_EQ(protocol->output(5), kOutputTrue);
}

TEST(CountingProtocol, ReproducesPaperExampleComputation) {
    // Input (0,1,0,1,1,1) and the encounter sequence (2,4), (6,5), (2,6),
    // (3,2) from the Sect. 3.2 example (1-based agent indices).
    const auto protocol = make_counting_protocol(5);
    auto agents = AgentConfiguration::from_inputs(
        *protocol, {kInputZero, kInputOne, kInputZero, kInputOne, kInputOne, kInputOne});

    agents.apply_interaction(*protocol, 1, 3);  // (2,4): q1,q1 -> q2,q0
    EXPECT_EQ(agents.state(1), 2u);
    EXPECT_EQ(agents.state(3), 0u);

    agents.apply_interaction(*protocol, 5, 4);  // (6,5): q1,q1 -> q2,q0
    EXPECT_EQ(agents.state(5), 2u);
    EXPECT_EQ(agents.state(4), 0u);

    agents.apply_interaction(*protocol, 1, 5);  // (2,6): q2,q2 -> q4,q0
    EXPECT_EQ(agents.state(1), 4u);
    EXPECT_EQ(agents.state(5), 0u);

    agents.apply_interaction(*protocol, 2, 1);  // (3,2): q0,q4 -> q4,q0
    EXPECT_EQ(agents.state(2), 4u);
    EXPECT_EQ(agents.state(1), 0u);

    // The output assignment is all-zero: F(0,1,0,1,1,1) = (0,...,0).
    const auto counts = agents.to_counts(protocol->num_states());
    ASSERT_TRUE(counts.consensus_output(*protocol).has_value());
    EXPECT_EQ(*counts.consensus_output(*protocol), kOutputFalse);
}

// Exhaustive stable-computation sweep: (threshold, population).
using CountingCase = std::tuple<std::uint32_t, std::uint64_t>;

class CountingStableComputation : public ::testing::TestWithParam<CountingCase> {};

TEST_P(CountingStableComputation, AllInputsComputeExactThreshold) {
    const auto [threshold, population] = GetParam();
    const auto protocol = make_counting_protocol(threshold);
    for (std::uint64_t ones = 0; ones <= population; ++ones) {
        const auto initial =
            CountConfiguration::from_input_counts(*protocol, {population - ones, ones});
        const bool expected = ones >= threshold;
        EXPECT_TRUE(stably_computes_bool(*protocol, initial, expected))
            << "threshold=" << threshold << " n=" << population << " ones=" << ones;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CountingStableComputation,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u),
                                            ::testing::Values(1u, 2u, 5u, 7u)));

TEST(CountingProtocol, SilentFinalConfigurationUnderSimulation) {
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {20, 30});
    RunOptions options;
    options.max_interactions = default_budget(50);
    options.seed = 77;
    const RunResult result = simulate(*protocol, initial, options);
    EXPECT_EQ(result.stop_reason, StopReason::kSilent);
    ASSERT_TRUE(result.consensus.has_value());
    EXPECT_EQ(*result.consensus, kOutputTrue);
}

TEST(CountingProtocol, ConservesTokenSumBelowThreshold) {
    // As long as nobody alerts, the sum of counter values equals the number
    // of ones (the counting invariant behind the protocol's correctness).
    const auto protocol = make_counting_protocol(5);
    auto agents = AgentConfiguration::from_inputs(
        *protocol, {kInputOne, kInputOne, kInputOne, kInputZero, kInputZero});
    Rng rng(5);
    for (int step = 0; step < 200; ++step) {
        const std::size_t i = rng.below(agents.size());
        std::size_t j = rng.below(agents.size() - 1);
        if (j >= i) ++j;
        agents.apply_interaction(*protocol, i, j);
        std::uint64_t sum = 0;
        for (State q : agents.states()) sum += q;
        EXPECT_EQ(sum, 3u);  // 3 ones, threshold never reached
    }
}

TEST(CountingProtocol, RejectsZeroThreshold) {
    EXPECT_THROW(make_counting_protocol(0), std::invalid_argument);
}

}  // namespace
}  // namespace popproto
