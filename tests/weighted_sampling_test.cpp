// Weighted pair sampling (the Sect. 8 open direction): correctness of
// stably-computing protocols should be insensitive to reasonable weights.

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "presburger/atom_protocols.h"
#include "protocols/counting.h"

namespace popproto {
namespace {

AgentConfiguration counting_inputs(const TabulatedProtocol& protocol, std::size_t zeros,
                                   std::size_t ones) {
    std::vector<Symbol> inputs(zeros, kInputZero);
    inputs.insert(inputs.end(), ones, kInputOne);
    return AgentConfiguration::from_inputs(protocol, inputs);
}

TEST(WeightedSampling, UniformWeightsBehaveLikeUniformSampling) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = counting_inputs(*protocol, 20, 5);
    const std::vector<double> weights(25, 1.0);
    RunOptions options;
    options.max_interactions = default_budget(25);
    options.seed = 8;
    const RunResult result = simulate_weighted(*protocol, initial, weights, options);
    EXPECT_EQ(result.stop_reason, StopReason::kSilent);
    ASSERT_TRUE(result.consensus.has_value());
    EXPECT_EQ(*result.consensus, kOutputTrue);
}

TEST(WeightedSampling, SkewedWeightsStillConvergeCorrectly) {
    // Mobility heterogeneity (weights spanning a 16x range) must not change
    // the stable verdict - the paper's conjecture, checked on majority.
    const auto protocol = make_threshold_protocol({1, -1}, 0);  // x0 < x1
    for (const auto& [zeros, ones] :
         std::vector<std::pair<std::size_t, std::size_t>>{{14, 16}, {16, 14}}) {
        std::vector<Symbol> inputs(zeros, 0);
        inputs.insert(inputs.end(), ones, 1);
        const auto initial = AgentConfiguration::from_inputs(*protocol, inputs);
        std::vector<double> weights(zeros + ones);
        for (std::size_t i = 0; i < weights.size(); ++i)
            weights[i] = 1.0 + 15.0 * static_cast<double>(i % 7) / 6.0;

        RunOptions options;
        options.max_interactions = default_budget(zeros + ones, 256.0);
        options.seed = 100 + ones;
        const RunResult result = simulate_weighted(*protocol, initial, weights, options);
        ASSERT_TRUE(result.consensus.has_value()) << zeros << "," << ones;
        EXPECT_EQ(*result.consensus, zeros < ones ? kOutputTrue : kOutputFalse);
    }
}

TEST(WeightedSampling, ExtremeWeightSlowsButDoesNotBreakConvergence) {
    // One nearly-immobile agent (tiny weight) carrying a needed token: it is
    // still selected eventually, so the computation completes.
    const auto protocol = make_counting_protocol(2);
    const auto initial = counting_inputs(*protocol, 10, 2);
    std::vector<double> weights(12, 1.0);
    weights[10] = 0.01;  // one of the 1-agents barely moves
    RunOptions options;
    options.max_interactions = 100 * default_budget(12);
    options.seed = 17;
    const RunResult result = simulate_weighted(*protocol, initial, weights, options);
    ASSERT_TRUE(result.consensus.has_value());
    EXPECT_EQ(*result.consensus, kOutputTrue);
}

TEST(WeightedSampling, DominatingWeightDoesNotStallPairSelection) {
    // Regression: one weight carrying ~all the mass made the responder
    // rejection loop spin (the first draw returns the dominant agent with
    // probability ~1).  The bounded loop now falls back to an exact
    // exclusion draw, so the run terminates and still converges.
    const auto protocol = make_counting_protocol(2);
    const auto initial = counting_inputs(*protocol, 10, 2);
    std::vector<double> weights(12, 1.0);
    weights[10] = 1e12;  // one of the two 1-agents does nearly all the moving
    RunOptions options;
    options.max_interactions = 10 * default_budget(12);
    options.seed = 23;
    const RunResult result = simulate_weighted(*protocol, initial, weights, options);
    ASSERT_TRUE(result.consensus.has_value());
    EXPECT_EQ(*result.consensus, kOutputTrue);
}

TEST(WeightedSampling, ValidatesArguments) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = counting_inputs(*protocol, 2, 2);
    RunOptions options;
    options.max_interactions = 100;
    EXPECT_THROW(simulate_weighted(*protocol, initial, {1.0, 1.0}, options),
                 std::invalid_argument);
    EXPECT_THROW(simulate_weighted(*protocol, initial, {1.0, 1.0, 1.0, -1.0}, options),
                 std::invalid_argument);
    EXPECT_THROW(simulate_weighted(*protocol, initial, {1.0, 1.0, 1.0, 0.0}, options),
                 std::invalid_argument);
}

TEST(WeightedSampling, DeterministicGivenSeed) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = counting_inputs(*protocol, 8, 3);
    std::vector<double> weights(11, 1.0);
    weights[0] = 3.0;
    RunOptions options;
    options.max_interactions = default_budget(11);
    options.seed = 77;
    const RunResult a = simulate_weighted(*protocol, initial, weights, options);
    const RunResult b = simulate_weighted(*protocol, initial, weights, options);
    EXPECT_EQ(a.interactions, b.interactions);
    EXPECT_EQ(a.final_configuration, b.final_configuration);
}

}  // namespace
}  // namespace popproto
