// Intra-run parallelism: the sharded collapsed engine, its thread pool, and
// the SIMD kernels (core/collapsed_simulator.cpp, core/thread_pool.h,
// core/simd.h).
//
// Three contracts are under test:
//
//  * Distribution identity.  For every shard count K the sharded engine
//    must sample final configurations from exactly the law of the uniform
//    ordered-pair chain; the exact-DP + chi-square harness of
//    collapsed_simulator_test is re-run here with K in {2, 3} under
//    several observation setups (boundary clamps and sharded batches must
//    compose).
//  * Determinism.  Fixed (seed, K) is bit-identical across repetitions and
//    checkpoint cuts — including the serialized shard streams surviving a
//    text round-trip — while a thread request on a sequential engine, a
//    cross-engine resume, or a shard-count mismatch is rejected loudly.
//  * Composition.  run_simulation pins the collapsed engine for threads >
//    1; measure_trials honours an explicit per-run thread count in every
//    trial so summaries stay bit-identical across trial fan-outs.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/batch_simulator.h"
#include "core/collapsed_simulator.h"
#include "core/observer.h"
#include "core/run_loop.h"
#include "core/simd.h"
#include "core/simulator.h"
#include "core/thread_pool.h"
#include "observe/trace_recorder.h"
#include "presburger/atom_protocols.h"
#include "protocols/counting.h"
#include "protocols/epidemic.h"
#include "randomized/trials.h"
#include "test_util.h"

namespace popproto {
namespace {

using testutil::chi_square_gof;
using testutil::ChiSquareResult;

using CountVector = std::vector<std::uint64_t>;

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, ExecutesEveryTaskExactlyOnce) {
    for (const std::size_t size : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        ThreadPool pool(size);
        EXPECT_EQ(pool.size(), size);
        for (const std::size_t tasks : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                        std::size_t{100}}) {
            std::vector<std::atomic<int>> hits(tasks);
            for (auto& hit : hits) hit = 0;
            pool.run(tasks, [&](std::size_t task) { ++hits[task]; });
            for (std::size_t task = 0; task < tasks; ++task)
                EXPECT_EQ(hits[task], 1) << "size=" << size << " tasks=" << tasks
                                         << " task=" << task;
        }
    }
}

TEST(ThreadPool, ReusableAcrossManyRounds) {
    // The fork-merge barrier is reused thousands of times per run; hammer
    // the round machinery (stale-round protection included) with quick
    // successive rounds.
    ThreadPool pool(4);
    std::atomic<std::uint64_t> total{0};
    for (int round = 0; round < 500; ++round)
        pool.run(4, [&](std::size_t task) { total += task + 1; });
    EXPECT_EQ(total, 500u * (1 + 2 + 3 + 4));
}

TEST(ThreadPool, RunsEveryTaskAndRethrowsFirstExceptionAfterTheBarrier) {
    for (const std::size_t size : {std::size_t{1}, std::size_t{3}}) {
        ThreadPool pool(size);
        std::vector<std::atomic<int>> hits(8);
        for (auto& hit : hits) hit = 0;
        const auto faulty = [&](std::size_t task) {
            ++hits[task];
            if (task % 2 == 1) throw std::runtime_error("task failed");
        };
        EXPECT_THROW(pool.run(8, faulty), std::runtime_error);
        // The barrier completes the round: no task is abandoned.
        for (std::size_t task = 0; task < 8; ++task) EXPECT_EQ(hits[task], 1);
        // The pool survives a failed round.
        std::atomic<int> ok{0};
        pool.run(3, [&](std::size_t) { ++ok; });
        EXPECT_EQ(ok, 3);
    }
}

TEST(ThreadPool, RejectsZeroSize) {
    EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SIMD kernels (exactness against the scalar definitions)

TEST(SimdKernels, AddSubSubMatchesScalar) {
    // Odd length exercises the scalar tail after the vector loop; the
    // "underflowing" intermediate (add < sub1 + sub2 element-wise for some
    // entries) must wrap back exactly.
    const std::vector<std::uint64_t> add = {5, 0, 7, 100, 2, 9, 1};
    const std::vector<std::uint64_t> sub1 = {1, 0, 9, 50, 0, 3, 0};
    const std::vector<std::uint64_t> sub2 = {2, 0, 1, 50, 1, 6, 1};
    std::vector<std::uint64_t> dst = {10, 20, 30, 40, 50, 60, 70};
    std::vector<std::uint64_t> expected = dst;
    for (std::size_t i = 0; i < dst.size(); ++i) expected[i] += add[i] - sub1[i] - sub2[i];
    simd::add_sub_sub(dst.data(), add.data(), sub1.data(), sub2.data(), dst.size());
    EXPECT_EQ(dst, expected);
}

TEST(SimdKernels, AddMatchesScalar) {
    std::vector<std::uint64_t> dst = {1, 2, 3, 4, 5};
    const std::vector<std::uint64_t> src = {10, 0, 30, 0, 50};
    simd::add(dst.data(), src.data(), dst.size());
    EXPECT_EQ(dst, (std::vector<std::uint64_t>{11, 2, 33, 4, 55}));
}

TEST(SimdKernels, MaskedSumMatchesScalar) {
    const std::vector<std::uint8_t> mask = {1, 0, 1, 1, 0, 0, 1};
    const std::vector<std::uint64_t> values = {4, 100, 6, 1, 200, 300, 9};
    EXPECT_EQ(simd::masked_sum(mask.data(), values.data(), values.size()), 4u + 6 + 1 + 9);
    EXPECT_EQ(simd::masked_sum(mask.data(), values.data(), 0), 0u);
}

TEST(SimdKernels, Sum4MinusSum4MatchesScalarAssociation) {
    const double plus[4] = {1.5, 2.25, -3.0, 4.125};
    const double minus[4] = {0.5, 1.0, 2.0, -1.25};
    const double expected = ((plus[0] - minus[0]) + (plus[1] - minus[1])) +
                            ((plus[2] - minus[2]) + (plus[3] - minus[3]));
    // Bit-identical, not just close: both paths use the same association.
    EXPECT_EQ(simd::sum4_minus_sum4(plus, minus), expected);
}

// ---------------------------------------------------------------------------
// Distribution identity of the sharded engine

class CollectingSink final : public CheckpointSink {
public:
    void on_checkpoint(const RunCheckpoint& checkpoint) override {
        checkpoints.push_back(checkpoint);
    }
    std::vector<RunCheckpoint> checkpoints;
};

enum class ObservationSetup { kUnobserved, kSnapshotEveryOne, kCheckpointed };

const char* setup_label(ObservationSetup setup) {
    switch (setup) {
        case ObservationSetup::kUnobserved: return "unobserved";
        case ObservationSetup::kSnapshotEveryOne: return "snapshot_every_1";
        case ObservationSetup::kCheckpointed: return "checkpoint_every_2";
    }
    return "?";
}

void expect_matches_exact_law(const TabulatedProtocol& protocol, const CountVector& initial_counts,
                              std::uint64_t steps, unsigned threads, ObservationSetup setup) {
    SCOPED_TRACE(std::string(setup_label(setup)) + " threads=" + std::to_string(threads));
    const auto exact = testutil::exact_chain_distribution(protocol, initial_counts, steps);
    const auto initial = CountConfiguration::from_state_counts(initial_counts);

    constexpr std::uint64_t kRuns = 4000;
    std::map<CountVector, std::uint64_t> tally;
    for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
        RunOptions options;
        options.max_interactions = steps;
        options.seed = seed;
        options.threads = threads;
        TraceRecorder recorder;
        CollectingSink sink;
        switch (setup) {
            case ObservationSetup::kUnobserved: break;
            case ObservationSetup::kSnapshotEveryOne:
                options.observer = &recorder;
                options.snapshots = SnapshotSchedule::every(1);
                break;
            case ObservationSetup::kCheckpointed:
                options.checkpoint_every = 2;
                options.checkpoint_sink = &sink;
                break;
        }
        const RunResult result = simulate_collapsed(protocol, initial, options);
        EXPECT_EQ(result.engine, ObservedEngine::kParallelCollapsed);
        ++tally[result.final_configuration.counts()];
    }

    std::vector<std::uint64_t> observed;
    std::vector<double> expected;
    for (const auto& [config, prob] : exact) {
        const auto it = tally.find(config);
        observed.push_back(it == tally.end() ? 0 : it->second);
        expected.push_back(prob);
        if (it != tally.end()) tally.erase(it);
    }
    EXPECT_TRUE(tally.empty()) << tally.size() << " configurations outside the exact support";

    const ChiSquareResult gof = chi_square_gof(observed, expected, kRuns);
    EXPECT_TRUE(gof.pass) << gof.summary();
}

TEST(ParallelCollapsedExactLaw, EpidemicMatchesEnumeratedDistribution) {
    // n = 5 with K shards of a handful of pairs each: shard loads m_k are
    // mostly 0 or 1, so the pool-split cascade, the per-shard matching, and
    // the collision fixup over the merged touched multiset all run at the
    // boundary of their supports.
    const auto protocol = make_epidemic_protocol();
    const CountVector initial = {4, 1};
    for (const unsigned threads : {2u, 3u}) {
        for (const ObservationSetup setup :
             {ObservationSetup::kUnobserved, ObservationSetup::kSnapshotEveryOne,
              ObservationSetup::kCheckpointed}) {
            expect_matches_exact_law(*protocol, initial, /*steps=*/6, threads, setup);
        }
    }
}

TEST(ParallelCollapsedExactLaw, MajorityMatchesEnumeratedDistribution) {
    // Multi-state threshold atom: shard cascades over more than two states.
    const auto protocol = make_threshold_protocol({1, -1}, 0);
    const auto config = CountConfiguration::from_input_counts(*protocol, {2, 3});
    expect_matches_exact_law(*protocol, config.counts(), /*steps=*/5, /*threads=*/2,
                             ObservationSetup::kUnobserved);
    expect_matches_exact_law(*protocol, config.counts(), /*steps=*/5, /*threads=*/3,
                             ObservationSetup::kCheckpointed);
}

// ---------------------------------------------------------------------------
// Determinism and checkpoint/resume

void expect_same_run(const RunResult& actual, const RunResult& expected) {
    EXPECT_EQ(actual.stop_reason, expected.stop_reason);
    EXPECT_EQ(actual.interactions, expected.interactions);
    EXPECT_EQ(actual.effective_interactions, expected.effective_interactions);
    EXPECT_EQ(actual.last_output_change, expected.last_output_change);
    EXPECT_EQ(actual.final_configuration, expected.final_configuration);
    EXPECT_EQ(actual.consensus, expected.consensus);
    EXPECT_EQ(actual.engine, expected.engine);
}

TEST(ParallelCollapsed, FixedSeedAndThreadCountIsReproducible) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {900, 24});
    RunOptions options;
    options.seed = 17;
    options.threads = 3;
    const RunResult first = simulate_collapsed(*protocol, initial, options);
    const RunResult second = simulate_collapsed(*protocol, initial, options);
    EXPECT_EQ(first.engine, ObservedEngine::kParallelCollapsed);
    expect_same_run(second, first);
    // The epidemic invariant holds through sharded batches: every effective
    // interaction infects exactly one susceptible.
    EXPECT_EQ(first.stop_reason, StopReason::kSilent);
    EXPECT_EQ(first.effective_interactions, 900u);
}

TEST(ParallelCollapsed, ThreadsOneIsTheSerialEngine) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {200, 8});
    RunOptions options;
    options.seed = 23;
    const RunResult baseline = simulate_collapsed(*protocol, initial, options);
    options.threads = 1;
    const RunResult explicit_one = simulate_collapsed(*protocol, initial, options);
    EXPECT_EQ(explicit_one.engine, ObservedEngine::kCollapsed);
    expect_same_run(explicit_one, baseline);
}

TEST(ParallelCollapsedCheckpointResume, BitIdenticalAgainstCheckpointedBaseline) {
    // Same harness as the serial engine's checkpoint test: the baseline must
    // itself be checkpointed (boundaries clamp super-steps), and every cut —
    // through a text round-trip, shard streams included — must replay the
    // identical suffix.
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {57, 7});
    RunOptions options;
    options.seed = 11;
    options.max_interactions = 600;
    options.threads = 3;

    CollectingSink sink;
    options.checkpoint_every = 7;
    options.checkpoint_sink = &sink;
    const RunResult baseline = simulate_collapsed(*protocol, initial, options);
    EXPECT_EQ(baseline.engine, ObservedEngine::kParallelCollapsed);
    ASSERT_FALSE(sink.checkpoints.empty());

    for (const RunCheckpoint& checkpoint : sink.checkpoints) {
        EXPECT_EQ(checkpoint.engine, ObservedEngine::kParallelCollapsed);
        ASSERT_EQ(checkpoint.shard_rngs.size(), 3u);
        // The text grammar round-trips the shard streams exactly.
        const RunCheckpoint reloaded = checkpoint_from_string(checkpoint_to_string(checkpoint));
        EXPECT_EQ(reloaded, checkpoint);

        CollectingSink resumed_sink;
        RunOptions resumed = options;
        resumed.checkpoint_sink = &resumed_sink;
        resumed.resume_from = &reloaded;
        expect_same_run(simulate_collapsed(*protocol, initial, resumed), baseline);

        std::vector<RunCheckpoint> expected_suffix;
        for (const RunCheckpoint& later : sink.checkpoints)
            if (later.interactions > checkpoint.interactions) expected_suffix.push_back(later);
        EXPECT_EQ(resumed_sink.checkpoints, expected_suffix)
            << "resumed from cut at " << checkpoint.interactions;
    }
}

TEST(ParallelCollapsedCheckpointResume, RejectsMismatchedShardCounts) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {40, 6});
    RunOptions options;
    options.seed = 3;
    options.max_interactions = 200;
    options.threads = 3;
    CollectingSink sink;
    options.checkpoint_every = 20;
    options.checkpoint_sink = &sink;
    simulate_collapsed(*protocol, initial, options);
    ASSERT_FALSE(sink.checkpoints.empty());
    const RunCheckpoint parallel_checkpoint = sink.checkpoints.front();

    // Same engine, wrong K.
    RunOptions resume;
    resume.resume_from = &parallel_checkpoint;
    resume.threads = 2;
    EXPECT_THROW(simulate_collapsed(*protocol, initial, resume), std::invalid_argument);
    // A parallel checkpoint cannot resume on the serial engine...
    resume.threads = 1;
    EXPECT_THROW(simulate_collapsed(*protocol, initial, resume), std::invalid_argument);

    // ...and a serial checkpoint cannot resume on the parallel engine.
    sink.checkpoints.clear();
    options.threads = 1;
    simulate_collapsed(*protocol, initial, options);
    ASSERT_FALSE(sink.checkpoints.empty());
    EXPECT_TRUE(sink.checkpoints.front().shard_rngs.empty());
    resume.resume_from = &sink.checkpoints.front();
    resume.threads = 3;
    EXPECT_THROW(simulate_collapsed(*protocol, initial, resume), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Thread-count plumbing across entry points

TEST(ThreadOptions, SequentialEnginesRejectThreadRequests) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {20, 2});
    RunOptions options;
    options.seed = 4;
    options.max_interactions = 50;
    options.threads = 2;
    EXPECT_THROW(simulate(*protocol, initial, options), std::invalid_argument);
    EXPECT_THROW(simulate_counts(*protocol, initial, options), std::invalid_argument);
    // threads == 0 (auto) is accepted by sequential engines — it resolves
    // to a serial run rather than an error.
    options.threads = 0;
    EXPECT_NO_THROW(simulate(*protocol, initial, options));
    EXPECT_NO_THROW(simulate_counts(*protocol, initial, options));
}

TEST(ThreadOptions, RunSimulationPinsCollapsedForThreadRequests) {
    // Far below every auto-selection threshold, threads > 1 must still
    // land on the (sharded) collapsed engine instead of tripping the
    // sequential engines' thread check.
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {60, 4});
    RunOptions options;
    options.seed = 3;
    options.max_interactions = 100;
    options.threads = 3;
    EXPECT_EQ(run_simulation(*protocol, initial, options).engine,
              ObservedEngine::kParallelCollapsed);
}

TEST(ThreadOptions, EngineNameRoundTrips) {
    EXPECT_STREQ(observed_engine_name(ObservedEngine::kParallelCollapsed), "parallel_collapsed");
    ObservedEngine parsed = ObservedEngine::kAgentArray;
    ASSERT_TRUE(observed_engine_from_name("parallel_collapsed", parsed));
    EXPECT_EQ(parsed, ObservedEngine::kParallelCollapsed);
}

TEST(ThreadOptions, TrialsHonourExplicitIntraRunThreadsAtEveryFanOut) {
    // An explicit base.threads is applied verbatim in every trial, so the
    // summary (and each record, engine included) is bit-identical across
    // trial thread counts — the oversubscription clamp only touches
    // base.threads == 0.
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {120, 4});
    TrialOptions options;
    options.trials = 8;
    options.keep_records = true;
    options.base.seed = 100;
    options.base.max_interactions = 4000;
    options.base.threads = 2;

    options.threads = 1;
    const TrialSummary serial_fan = measure_trials(*protocol, initial, options);
    options.threads = 3;
    const TrialSummary parallel_fan = measure_trials(*protocol, initial, options);

    ASSERT_EQ(serial_fan.records.size(), 8u);
    for (const TrialRecord& record : serial_fan.records)
        EXPECT_EQ(record.engine, ObservedEngine::kParallelCollapsed);
    EXPECT_EQ(serial_fan.correct, parallel_fan.correct);
    EXPECT_EQ(serial_fan.silent, parallel_fan.silent);
    EXPECT_EQ(serial_fan.mean_convergence, parallel_fan.mean_convergence);
    EXPECT_EQ(serial_fan.stddev_convergence, parallel_fan.stddev_convergence);
    ASSERT_EQ(parallel_fan.records.size(), 8u);
    for (std::size_t trial = 0; trial < 8; ++trial) {
        EXPECT_EQ(serial_fan.records[trial].last_output_change,
                  parallel_fan.records[trial].last_output_change);
        EXPECT_EQ(serial_fan.records[trial].interactions,
                  parallel_fan.records[trial].interactions);
    }
}

}  // namespace
}  // namespace popproto
