// The interaction-model layer (core/interaction_model.h): distributional
// parity of the refactored built-in models against their closed-form pair
// laws, O(1) pair decoding, model-state serialization, and checkpoint/resume
// bit-identity of the built-in schedulers through the new layer.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/interaction_model.h"
#include "core/rng.h"
#include "core/run_loop.h"
#include "core/schedulers.h"
#include "core/simulator.h"
#include "graphs/interaction_graph.h"
#include "protocols/counting.h"
#include "test_util.h"

namespace popproto {
namespace {

/// Category index of an ordered pair (i, j), i != j, in lexicographic
/// order — the inverse of decode_ordered_pair.
std::size_t pair_category(const AgentPair& pair, std::uint64_t num_agents) {
    const std::uint64_t offset =
        pair.second < pair.first ? pair.second : pair.second - 1;
    return static_cast<std::size_t>(pair.first * (num_agents - 1) + offset);
}

TEST(InteractionModel, DecodeOrderedPairMatchesLexicographicEnumeration) {
    for (const std::uint64_t n : {2u, 3u, 5u, 8u}) {
        std::vector<AgentPair> expected;
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                if (i != j) expected.push_back({i, j});
        for (std::uint64_t k = 0; k < n * (n - 1); ++k) {
            EXPECT_EQ(decode_ordered_pair(k, n), expected[k]) << "n=" << n << " k=" << k;
            EXPECT_EQ(pair_category(expected[k], n), k);
        }
    }
}

// --- Distributional parity -------------------------------------------------
//
// The refactor moved uniform/weighted/graph pair selection out of bespoke
// steppers into models; these chi-square tests pin the post-refactor
// samplers to the closed-form laws the pre-refactor engines realized.

TEST(InteractionModel, UniformModelMatchesUniformPairLaw) {
    const std::uint64_t n = 6;
    const std::uint64_t draws = 60000;
    UniformPairModel model;
    Rng rng(12345);
    const std::vector<State> states(n, 0);
    std::vector<std::uint64_t> observed(n * (n - 1), 0);
    for (std::uint64_t d = 0; d < draws; ++d) {
        const AgentPair pair = model.propose_pair(rng, states);
        ASSERT_NE(pair.first, pair.second);
        ASSERT_LT(pair.first, n);
        ASSERT_LT(pair.second, n);
        ++observed[pair_category(pair, n)];
    }
    const std::vector<double> expected(n * (n - 1), 1.0 / static_cast<double>(n * (n - 1)));
    const auto result = testutil::chi_square_gof(observed, expected, draws);
    EXPECT_TRUE(result.pass) << result.summary();
}

TEST(InteractionModel, WeightedModelMatchesProductLaw) {
    // P(i, j) = (w_i / W) * (w_j / (W - w_i)): the initiator is drawn from
    // the weight distribution, the responder from the same distribution
    // conditioned on avoiding i.
    const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
    const std::uint64_t n = weights.size();
    double total = 0.0;
    for (const double w : weights) total += w;

    WeightedPairModel model(weights);
    Rng rng(777);
    const std::vector<State> states(n, 0);
    const std::uint64_t draws = 80000;
    std::vector<std::uint64_t> observed(n * (n - 1), 0);
    for (std::uint64_t d = 0; d < draws; ++d)
        ++observed[pair_category(model.propose_pair(rng, states), n)];

    std::vector<double> expected(n * (n - 1), 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            if (i != j)
                expected[pair_category({i, j}, n)] =
                    (weights[i] / total) * (weights[j] / (total - weights[i]));
    const auto result = testutil::chi_square_gof(observed, expected, draws);
    EXPECT_TRUE(result.pass) << result.summary();
}

TEST(InteractionModel, EdgeListModelUniformOverEdges) {
    const std::uint32_t n = 6;
    const InteractionGraph graph = InteractionGraph::ring(n);
    const std::vector<Edge>& edges = graph.edges();
    ASSERT_EQ(edges.size(), 2u * n);  // both orientations

    EdgeListPairModel model(edges, n);
    Rng rng(99);
    const std::vector<State> states(n, 0);
    const std::uint64_t draws = 48000;
    std::vector<std::uint64_t> observed(edges.size(), 0);
    for (std::uint64_t d = 0; d < draws; ++d) {
        const AgentPair pair = model.propose_pair(rng, states);
        bool found = false;
        for (std::size_t e = 0; e < edges.size(); ++e) {
            if (edges[e].first == pair.first && edges[e].second == pair.second) {
                ++observed[e];
                found = true;
                break;
            }
        }
        ASSERT_TRUE(found) << "proposed a non-edge (" << pair.first << "," << pair.second
                           << ")";
    }
    const std::vector<double> expected(edges.size(), 1.0 / static_cast<double>(edges.size()));
    const auto result = testutil::chi_square_gof(observed, expected, draws);
    EXPECT_TRUE(result.pass) << result.summary();
}

// --- Model-state serialization ---------------------------------------------

TEST(InteractionModel, RoundRobinStateRoundTripsMidCycle) {
    const std::uint64_t n = 5;
    RoundRobinPairModel original(n);
    for (int step = 0; step < 7; ++step) original.next_pair();  // mid-cycle cursor

    std::vector<std::uint64_t> words;
    original.save_state(words);
    ASSERT_EQ(words.size(), 1u);

    RoundRobinPairModel restored(n);
    restored.restore_state(words);
    for (std::uint64_t step = 0; step < 2 * n * (n - 1); ++step)
        EXPECT_EQ(restored.next_pair(), original.next_pair()) << "diverged at step " << step;
}

TEST(InteractionModel, SweepStateRoundTripsAcrossReshuffles) {
    const std::uint64_t n = 4;
    SweepPairModel original(n, /*seed=*/21);
    for (int step = 0; step < 5; ++step) original.next_pair();  // mid-sweep

    std::vector<std::uint64_t> words;
    original.save_state(words);

    // A differently seeded replacement must still replay identically: the
    // serialized words carry the RNG position and the live permutation.
    SweepPairModel restored(n, /*seed=*/987654);
    restored.restore_state(words);
    for (std::uint64_t step = 0; step < 3 * n * (n - 1); ++step)
        EXPECT_EQ(restored.next_pair(), original.next_pair()) << "diverged at step " << step;
}

TEST(InteractionModel, StateValidationRejectsCorruptWords) {
    RoundRobinPairModel round_robin(4);
    EXPECT_THROW(round_robin.restore_state({}), std::invalid_argument);
    EXPECT_THROW(round_robin.restore_state({999}), std::invalid_argument);

    SweepPairModel sweep(4, 1);
    EXPECT_THROW(sweep.restore_state({1, 2, 3}), std::invalid_argument);
    std::vector<std::uint64_t> words;
    sweep.save_state(words);
    words[4] = 10000;  // cursor beyond the permutation
    EXPECT_THROW(sweep.restore_state(words), std::invalid_argument);
}

// --- Checkpoint grammar ----------------------------------------------------

TEST(InteractionModel, CheckpointSerializesModelSection) {
    RunCheckpoint checkpoint;
    checkpoint.engine = ObservedEngine::kPairModel;
    checkpoint.population = 4;
    checkpoint.num_states = 2;
    checkpoint.interactions = 42;
    checkpoint.agent_states = {0, 0, 0, 1};
    checkpoint.interaction_model = "round_robin";
    checkpoint.model_state = {7};

    const std::string text = checkpoint_to_string(checkpoint);
    EXPECT_NE(text.find("interaction_model round_robin 1 7"), std::string::npos) << text;
    EXPECT_EQ(checkpoint_from_string(text), checkpoint);
}

TEST(InteractionModel, StatelessCheckpointOmitsModelSection) {
    // Byte-compat guarantee: uniform/weighted/graph checkpoints must look
    // exactly like the pre-layer format — no interaction_model line at all.
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 2});
    class Sink final : public CheckpointSink {
    public:
        void on_checkpoint(const RunCheckpoint& checkpoint) override {
            checkpoints.push_back(checkpoint);
        }
        std::vector<RunCheckpoint> checkpoints;
    } sink;
    RunOptions options;
    options.seed = 4;
    options.checkpoint_every = 64;
    options.checkpoint_sink = &sink;
    simulate(*protocol, initial, options);
    ASSERT_FALSE(sink.checkpoints.empty());
    EXPECT_TRUE(sink.checkpoints.front().interaction_model.empty());
    EXPECT_EQ(checkpoint_to_string(sink.checkpoints.front()).find("interaction_model"),
              std::string::npos);
}

TEST(InteractionModel, CheckpointRejectsMalformedModelLine) {
    RunCheckpoint checkpoint;
    checkpoint.engine = ObservedEngine::kPairModel;
    checkpoint.counts = {2};
    checkpoint.agent_states = {0, 0};
    checkpoint.interaction_model = "sweep";
    checkpoint.model_state = {1, 2, 3};
    std::string text = checkpoint_to_string(checkpoint);

    // Corrupt the declared word count: the line claims 4 state words but
    // only 3 follow, so parsing must fail instead of silently swallowing
    // the next section.
    const std::string good = "interaction_model sweep 3";
    const std::size_t at = text.find(good);
    ASSERT_NE(at, std::string::npos) << text;
    text.replace(at, good.size(), "interaction_model sweep 4");
    EXPECT_THROW(checkpoint_from_string(text), std::invalid_argument);
}

// --- Bit-identity through the built-in schedulers --------------------------

void expect_same_run(const RunResult& actual, const RunResult& expected) {
    EXPECT_EQ(actual.stop_reason, expected.stop_reason);
    EXPECT_EQ(actual.interactions, expected.interactions);
    EXPECT_EQ(actual.effective_interactions, expected.effective_interactions);
    EXPECT_EQ(actual.last_output_change, expected.last_output_change);
    EXPECT_EQ(actual.final_configuration, expected.final_configuration);
    EXPECT_EQ(actual.consensus, expected.consensus);
}

/// Bit-identity harness over a scheduler factory: the scheduler is rebuilt
/// fresh for every run (exactly how a CLI resume rebuilds it), so the
/// restored model state — not leftover in-memory state — must account for
/// the replay.
template <typename MakeScheduler>
void check_scheduler_bit_identity(const TabulatedProtocol& protocol,
                                  const AgentConfiguration& initial,
                                  MakeScheduler&& make_scheduler,
                                  std::uint64_t checkpoint_every) {
    RunOptions options;
    const auto run = [&](const RunOptions& opts) {
        auto scheduler = make_scheduler();
        return simulate_with_scheduler(protocol, initial, *scheduler, opts);
    };
    const RunResult baseline = run(options);

    class Sink final : public CheckpointSink {
    public:
        void on_checkpoint(const RunCheckpoint& checkpoint) override {
            checkpoints.push_back(checkpoint);
        }
        std::vector<RunCheckpoint> checkpoints;
    } sink;
    options.checkpoint_every = checkpoint_every;
    options.checkpoint_sink = &sink;
    expect_same_run(run(options), baseline);
    ASSERT_FALSE(sink.checkpoints.empty());

    options.checkpoint_every = 0;
    options.checkpoint_sink = nullptr;
    for (const RunCheckpoint& checkpoint : sink.checkpoints) {
        const RunCheckpoint reloaded = checkpoint_from_string(checkpoint_to_string(checkpoint));
        options.resume_from = &reloaded;
        expect_same_run(run(options), baseline);
    }
}

TEST(InteractionModel, RoundRobinSchedulerResumesBitIdentically) {
    const auto protocol = make_counting_protocol(3);
    std::vector<Symbol> inputs(9, 0);
    inputs[0] = inputs[4] = inputs[8] = 1;
    const auto initial = AgentConfiguration::from_inputs(*protocol, inputs);
    check_scheduler_bit_identity(
        *protocol, initial,
        [&] { return std::make_unique<RoundRobinScheduler>(inputs.size()); },
        /*checkpoint_every=*/37);  // coprime to the 72-pair cycle: cuts mid-cycle
}

TEST(InteractionModel, SweepSchedulerResumesBitIdentically) {
    const auto protocol = make_counting_protocol(3);
    std::vector<Symbol> inputs(8, 0);
    inputs[1] = inputs[6] = 1;
    const auto initial = AgentConfiguration::from_inputs(*protocol, inputs);
    check_scheduler_bit_identity(
        *protocol, initial,
        [&] { return std::make_unique<SweepScheduler>(inputs.size(), /*seed=*/5); },
        /*checkpoint_every=*/41);  // cuts mid-sweep: the permutation must serialize
}

TEST(InteractionModel, SchedulerResumeRejectsModelNameMismatch) {
    const auto protocol = make_counting_protocol(2);
    const auto initial =
        AgentConfiguration::from_inputs(*protocol, std::vector<Symbol>{1, 1, 0, 0});

    class Sink final : public CheckpointSink {
    public:
        void on_checkpoint(const RunCheckpoint& checkpoint) override {
            checkpoints.push_back(checkpoint);
        }
        std::vector<RunCheckpoint> checkpoints;
    } sink;
    RunOptions options;
    options.max_interactions = 200;
    options.checkpoint_every = 50;
    options.checkpoint_sink = &sink;
    RoundRobinScheduler round_robin(4);
    simulate_with_scheduler(*protocol, initial, round_robin, options);
    ASSERT_FALSE(sink.checkpoints.empty());

    // A round_robin checkpoint cannot resume a sweep scheduler.
    RunOptions resume;
    resume.max_interactions = 200;
    resume.resume_from = &sink.checkpoints.front();
    SweepScheduler sweep(4, 1);
    EXPECT_THROW(simulate_with_scheduler(*protocol, initial, sweep, resume),
                 std::invalid_argument);
}

}  // namespace
}  // namespace popproto
