// The Minsky reduction: a compiled Turing machine (run as a counter
// machine) must agree with direct execution on every enumerated input.

#include <gtest/gtest.h>

#include "machines/examples.h"
#include "machines/minsky.h"

namespace popproto {
namespace {

TEST(GoedelEncoding, RoundTrips) {
    for (std::uint32_t base : {2u, 3u, 4u}) {
        const std::vector<std::vector<std::uint32_t>> tapes = {
            {}, {1}, {1, 1, 1}, {1, 0, 1}, {base - 1, 1, base - 1}};
        for (const auto& tape : tapes) {
            const std::uint64_t encoded = encode_tape(tape, base);
            std::vector<std::uint32_t> expected = tape;
            while (!expected.empty() && expected.back() == 0) expected.pop_back();
            EXPECT_EQ(decode_tape(encoded, base), expected);
        }
    }
}

TEST(GoedelEncoding, TopDigitIsFirstSymbol) {
    EXPECT_EQ(encode_tape({2, 1}, 3), 2u + 3u * 1u);
    EXPECT_EQ(encode_tape({0, 0, 1}, 2), 4u);
    EXPECT_THROW(encode_tape({5}, 3), std::invalid_argument);
}

TEST(Minsky, ParityMachineAgreesWithDirectExecution) {
    const TuringMachine machine = make_unary_mod_turing_machine(2);
    const MinskyProgram compiled = compile_turing_machine(machine);
    for (std::uint32_t x = 0; x <= 10; ++x) {
        const std::vector<std::uint32_t> input(x, 1);
        const TuringExecution direct = run_turing_machine(machine, input, 100000);
        const CounterExecution simulated = run_counter_machine(
            compiled.program, compiled.initial_counters(input), 10'000'000);
        ASSERT_TRUE(direct.halted && simulated.halted) << x;
        EXPECT_EQ(simulated.exit_code == MinskyProgram::kAcceptExitCode, direct.accepted) << x;
    }
}

TEST(Minsky, Mod3MachineAgreesWithDirectExecution) {
    const TuringMachine machine = make_unary_mod_turing_machine(3);
    const MinskyProgram compiled = compile_turing_machine(machine);
    for (std::uint32_t x = 0; x <= 9; ++x) {
        const std::vector<std::uint32_t> input(x, 1);
        const TuringExecution direct = run_turing_machine(machine, input, 100000);
        const CounterExecution simulated = run_counter_machine(
            compiled.program, compiled.initial_counters(input), 10'000'000);
        ASSERT_TRUE(direct.halted && simulated.halted) << x;
        EXPECT_EQ(simulated.exit_code == MinskyProgram::kAcceptExitCode, direct.accepted) << x;
    }
}

TEST(Minsky, ThresholdMachineAgreesWithDirectExecution) {
    const TuringMachine machine = make_unary_threshold_turing_machine(3);
    const MinskyProgram compiled = compile_turing_machine(machine);
    for (std::uint32_t x = 0; x <= 7; ++x) {
        const std::vector<std::uint32_t> input(x, 1);
        const TuringExecution direct = run_turing_machine(machine, input, 100000);
        const CounterExecution simulated = run_counter_machine(
            compiled.program, compiled.initial_counters(input), 10'000'000);
        ASSERT_TRUE(direct.halted && simulated.halted) << x;
        EXPECT_EQ(simulated.exit_code == MinskyProgram::kAcceptExitCode, direct.accepted) << x;
    }
}

TEST(Minsky, MajorityMachineExercisesLeftMoves) {
    const TuringMachine machine = make_unary_majority_turing_machine();
    const MinskyProgram compiled = compile_turing_machine(machine);
    for (std::uint32_t a = 0; a <= 4; ++a) {
        for (std::uint32_t b = 0; b <= 4; ++b) {
            std::vector<std::uint32_t> input;
            input.insert(input.end(), a, 1);
            input.insert(input.end(), b, 2);
            const TuringExecution direct = run_turing_machine(machine, input, 100000);
            const CounterExecution simulated = run_counter_machine(
                compiled.program, compiled.initial_counters(input), 50'000'000);
            ASSERT_TRUE(direct.halted && simulated.halted) << a << " vs " << b;
            EXPECT_EQ(simulated.exit_code == MinskyProgram::kAcceptExitCode, direct.accepted)
                << a << " vs " << b;
        }
    }
}

TEST(Minsky, UsesThreeCounters) {
    const MinskyProgram compiled =
        compile_turing_machine(make_unary_mod_turing_machine(2));
    EXPECT_EQ(compiled.program.num_counters, 3u);
    EXPECT_EQ(compiled.base, 2u);
    EXPECT_NO_THROW(compiled.program.validate());
}

TEST(Minsky, InitialCountersEncodeInput) {
    const MinskyProgram compiled =
        compile_turing_machine(make_unary_mod_turing_machine(2));
    const auto counters = compiled.initial_counters({1, 1, 1});
    EXPECT_EQ(counters[MinskyProgram::kLeftCounter], 0u);
    EXPECT_EQ(counters[MinskyProgram::kRightCounter], encode_tape({1, 1, 1}, 2));
    EXPECT_EQ(counters[MinskyProgram::kAuxCounter], 0u);
}

}  // namespace
}  // namespace popproto
