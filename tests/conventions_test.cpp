// Encoding conventions (Sect. 3.4) and exact function computation, including
// the divmod protocol under the integer-based output convention.

#include <gtest/gtest.h>

#include "analysis/stable_computation.h"
#include "core/conventions.h"
#include "core/simulator.h"
#include "protocols/division.h"

namespace popproto {
namespace {

TEST(Conventions, IntegerInputDecode) {
    // The paper's Sect. 4.3 token alphabet: (0,0), (1,0), (-1,0), (0,1), (0,-1).
    const IntegerInputConvention convention{
        {{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}}};
    EXPECT_EQ(convention.arity(), 2u);
    EXPECT_EQ(convention.decode({3, 2, 1, 0, 4}), (std::vector<std::int64_t>{1, -4}));
    EXPECT_EQ(convention.decode({0, 0, 0, 0, 0}), (std::vector<std::int64_t>{0, 0}));
    EXPECT_THROW(convention.decode({1, 2}), std::invalid_argument);
}

TEST(Conventions, IntegerOutputDecode) {
    const IntegerOutputConvention convention{{{0}, {1}, {5}}};
    EXPECT_EQ(convention.decode({7, 3, 2}), (std::vector<std::int64_t>{13}));
}

TEST(Conventions, AllAgentsPredicateDecode) {
    EXPECT_EQ(decode_all_agents_predicate({5, 0}), std::optional<bool>(false));
    EXPECT_EQ(decode_all_agents_predicate({0, 4}), std::optional<bool>(true));
    EXPECT_EQ(decode_all_agents_predicate({1, 3}), std::nullopt);  // bottom
    EXPECT_THROW(decode_all_agents_predicate({1, 2, 3}), std::invalid_argument);
}

TEST(Conventions, ZeroNonzeroDecode) {
    EXPECT_FALSE(decode_zero_nonzero_predicate({5, 0}));
    EXPECT_TRUE(decode_zero_nonzero_predicate({4, 1}));
}

TEST(Conventions, DivisionComputesFloorAsIntegerFunction) {
    // The Sect. 3.4 division protocol under the convention "output symbol 1
    // carries value 1": the represented result is floor(m / d).
    const std::uint32_t divisor = 3;
    const auto protocol = make_division_protocol(divisor);
    const IntegerOutputConvention quotient_only{{{0}, {1}}};
    for (std::uint64_t ones = 0; ones <= 8; ++ones) {
        const auto initial = CountConfiguration::from_input_counts(*protocol, {2, ones});
        EXPECT_TRUE(stably_computes_integer_function(
            *protocol, initial, quotient_only,
            {static_cast<std::int64_t>(ones / divisor)}))
            << ones;
        EXPECT_FALSE(stably_computes_integer_function(
            *protocol, initial, quotient_only,
            {static_cast<std::int64_t>(ones / divisor) + 1}))
            << ones;
    }
}

TEST(Conventions, DivmodProtocolComputesThePair) {
    // The identity-output variant represents (m mod d, floor(m/d)) - the
    // paper's closing remark in Sect. 3.4.
    for (std::uint32_t divisor : {2u, 3u, 4u}) {
        const auto protocol = make_divmod_protocol(divisor);
        const IntegerOutputConvention convention = divmod_output_convention(divisor);
        ASSERT_EQ(convention.symbol_values.size(), protocol->num_output_symbols());
        for (std::uint64_t ones = 0; ones <= 7; ++ones) {
            const auto initial =
                CountConfiguration::from_input_counts(*protocol, {2, ones});
            const std::vector<std::int64_t> expected{
                static_cast<std::int64_t>(ones % divisor),
                static_cast<std::int64_t>(ones / divisor)};
            EXPECT_TRUE(
                stably_computes_integer_function(*protocol, initial, convention, expected))
                << "d=" << divisor << " m=" << ones;
        }
    }
}

TEST(Conventions, DivmodSimulationDecodesCorrectly) {
    const std::uint32_t divisor = 5;
    const auto protocol = make_divmod_protocol(divisor);
    const IntegerOutputConvention convention = divmod_output_convention(divisor);
    const std::uint64_t ones = 43;
    const auto initial = CountConfiguration::from_input_counts(*protocol, {17, ones});
    RunOptions options;
    options.max_interactions = default_budget(60);
    options.seed = 4;
    const RunResult result = simulate(*protocol, initial, options);
    EXPECT_EQ(result.stop_reason, StopReason::kSilent);
    const auto decoded = convention.decode(result.final_configuration.output_counts(*protocol));
    EXPECT_EQ(decoded, (std::vector<std::int64_t>{43 % divisor, 43 / divisor}));
}

}  // namespace
}  // namespace popproto
