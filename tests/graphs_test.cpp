// Interaction graphs and the Theorem 7 simulation construction.

#include <gtest/gtest.h>

#include <string>

#include "analysis/stable_computation.h"
#include "graphs/graph_simulation.h"
#include "graphs/interaction_graph.h"
#include "protocols/counting.h"
#include "presburger/atom_protocols.h"

namespace popproto {
namespace {

TEST(InteractionGraph, Generators) {
    EXPECT_EQ(InteractionGraph::complete(5).edges().size(), 20u);
    EXPECT_EQ(InteractionGraph::line(5).edges().size(), 8u);
    EXPECT_EQ(InteractionGraph::ring(5).edges().size(), 10u);
    EXPECT_EQ(InteractionGraph::star(5).edges().size(), 8u);

    EXPECT_TRUE(InteractionGraph::complete(4).is_weakly_connected());
    EXPECT_TRUE(InteractionGraph::line(9).is_weakly_connected());
    EXPECT_TRUE(InteractionGraph::ring(6).is_weakly_connected());
    EXPECT_TRUE(InteractionGraph::star(7).is_weakly_connected());
    for (std::uint64_t seed = 0; seed < 5; ++seed)
        EXPECT_TRUE(InteractionGraph::random_connected(12, 4, seed).is_weakly_connected());
}

TEST(InteractionGraph, GridGenerator) {
    const InteractionGraph grid = InteractionGraph::grid(3, 4);
    EXPECT_EQ(grid.num_agents(), 12u);
    // 3*3 horizontal + 2*4 vertical undirected edges, two arcs each.
    EXPECT_EQ(grid.edges().size(), 2u * (3 * 3 + 2 * 4));
    EXPECT_TRUE(grid.is_weakly_connected());
    EXPECT_TRUE(InteractionGraph::grid(1, 5).is_weakly_connected());
    EXPECT_THROW(InteractionGraph::grid(1, 1), std::invalid_argument);
    EXPECT_THROW(InteractionGraph::grid(0, 3), std::invalid_argument);
}

TEST(InteractionGraph, DisconnectedDetection) {
    InteractionGraph graph(4);
    graph.add_edge(0, 1);
    graph.add_edge(2, 3);
    EXPECT_FALSE(graph.is_weakly_connected());
    graph.add_edge(1, 2);
    EXPECT_TRUE(graph.is_weakly_connected());
}

TEST(InteractionGraph, RejectsSelfLoops) {
    InteractionGraph graph(3);
    EXPECT_THROW(graph.add_edge(1, 1), std::invalid_argument);
    EXPECT_THROW(graph.add_edge(0, 5), std::invalid_argument);
}

TEST(GraphSimulation, StateLayoutAndDecoding) {
    const auto base = make_counting_protocol(2);
    const auto sim = make_graph_simulation_protocol(*base);
    EXPECT_EQ(sim->num_states(), 4 * base->num_states());
    for (Symbol x = 0; x < sim->num_input_symbols(); ++x) {
        const State s = sim->initial_state(x);
        EXPECT_EQ(baton_of(*base, s), Baton::kD);
        EXPECT_EQ(base_state_of(*base, s), base->initial_state(x));
    }
}

TEST(GraphSimulation, Fig1GroupRules) {
    const auto base = make_counting_protocol(3);  // apply(q1, q1) = (q2, q0)
    const auto sim = make_graph_simulation_protocol(*base);
    const auto enc = [&](State q, Baton b) {
        return static_cast<State>(q * 4 + static_cast<std::uint32_t>(b));
    };

    // (a): two D's -> S and R.
    EXPECT_EQ(sim->apply(enc(1, Baton::kD), enc(1, Baton::kD)),
              (StatePair{enc(1, Baton::kS), enc(1, Baton::kR)}));
    // (a): D next to a non-D dies.
    EXPECT_EQ(sim->apply(enc(1, Baton::kD), enc(0, Baton::kS)),
              (StatePair{enc(1, Baton::kBlank), enc(0, Baton::kS)}));
    // (b): duplicate S merges.
    EXPECT_EQ(sim->apply(enc(0, Baton::kS), enc(1, Baton::kS)),
              (StatePair{enc(0, Baton::kS), enc(1, Baton::kBlank)}));
    // (c): baton moves to a blank agent, both directions.
    EXPECT_EQ(sim->apply(enc(0, Baton::kR), enc(1, Baton::kBlank)),
              (StatePair{enc(0, Baton::kBlank), enc(1, Baton::kR)}));
    EXPECT_EQ(sim->apply(enc(0, Baton::kBlank), enc(1, Baton::kR)),
              (StatePair{enc(0, Baton::kR), enc(1, Baton::kBlank)}));
    // (d): blanks swap simulated states.
    EXPECT_EQ(sim->apply(enc(0, Baton::kBlank), enc(1, Baton::kBlank)),
              (StatePair{enc(1, Baton::kBlank), enc(0, Baton::kBlank)}));
    // (e): S meets R runs the base transition (q1, q1) -> (q2, q0) and the
    // batons swap.
    EXPECT_EQ(sim->apply(enc(1, Baton::kS), enc(1, Baton::kR)),
              (StatePair{enc(2, Baton::kR), enc(0, Baton::kS)}));
    // (e) mirrored: R meets S; base runs with the responder as initiator.
    EXPECT_EQ(sim->apply(enc(1, Baton::kR), enc(1, Baton::kS)),
              (StatePair{enc(0, Baton::kS), enc(2, Baton::kR)}));
}

TEST(GraphSimulation, FinalConfigurationsAreClean) {
    // Lemma 7: every final configuration has exactly one S, one R, no D.
    const auto base = make_counting_protocol(2);
    const auto sim = make_graph_simulation_protocol(*base);
    const auto initial = CountConfiguration::from_input_counts(*sim, {2, 2});
    const ConfigurationGraph graph = explore_reachable(*sim, initial);
    ASSERT_TRUE(graph.complete);
    const SccDecomposition sccs = condense(graph);
    std::size_t final_checked = 0;
    for (ConfigId c = 0; c < graph.size(); ++c) {
        if (!sccs.is_final[sccs.component[c]]) continue;
        ++final_checked;
        std::uint64_t s_count = 0;
        std::uint64_t r_count = 0;
        std::uint64_t d_count = 0;
        for (State q = 0; q < sim->num_states(); ++q) {
            const std::uint64_t agents = graph.configs[c].count(q);
            switch (baton_of(*base, q)) {
                case Baton::kS:
                    s_count += agents;
                    break;
                case Baton::kR:
                    r_count += agents;
                    break;
                case Baton::kD:
                    d_count += agents;
                    break;
                case Baton::kBlank:
                    break;
            }
        }
        EXPECT_EQ(s_count, 1u);
        EXPECT_EQ(r_count, 1u);
        EXPECT_EQ(d_count, 0u);
    }
    EXPECT_GT(final_checked, 0u);
}

TEST(GraphSimulation, StablyComputesOnCompleteGraphExhaustively) {
    // Theorem 7 in particular implies A' computes the same predicate on the
    // complete graph itself; verify exhaustively for small populations.
    const auto base = make_counting_protocol(2);
    const auto sim = make_graph_simulation_protocol(*base);
    for (std::uint64_t n = 2; n <= 5; ++n) {
        for (std::uint64_t ones = 0; ones <= n; ++ones) {
            const auto initial =
                CountConfiguration::from_input_counts(*sim, {n - ones, ones});
            const bool expected = ones >= 2;
            EXPECT_TRUE(stably_computes_bool(*sim, initial, expected))
                << "n=" << n << " ones=" << ones;
        }
    }
}

struct GraphCase {
    std::string name;
    InteractionGraph graph;
};

class GraphSimulationEndToEnd : public ::testing::TestWithParam<int> {};

TEST_P(GraphSimulationEndToEnd, CountingOnRestrictedGraphs) {
    const int variant = GetParam();
    const std::uint32_t n = 12;
    InteractionGraph graph = [&] {
        switch (variant) {
            case 0:
                return InteractionGraph::line(n);
            case 1:
                return InteractionGraph::ring(n);
            case 2:
                return InteractionGraph::star(n);
            default:
                return InteractionGraph::random_connected(n, 6, 99);
        }
    }();
    ASSERT_TRUE(graph.is_weakly_connected());

    const auto base = make_counting_protocol(3);
    const auto sim = make_graph_simulation_protocol(*base);

    for (std::uint64_t ones : {1ull, 5ull}) {
        std::vector<Symbol> inputs(n, kInputZero);
        for (std::uint64_t i = 0; i < ones; ++i) inputs[2 * i] = kInputOne;

        RunOptions options;
        options.max_interactions = 40'000'000;
        options.stop_after_stable_outputs = 400'000;
        options.seed = 3 * variant + ones;
        const GraphRunResult result = simulate_on_graph(*sim, graph, inputs, options);
        ASSERT_TRUE(result.consensus.has_value())
            << "variant=" << variant << " ones=" << ones;
        EXPECT_EQ(*result.consensus, ones >= 3 ? kOutputTrue : kOutputFalse)
            << "variant=" << variant << " ones=" << ones;
    }
}

INSTANTIATE_TEST_SUITE_P(Graphs, GraphSimulationEndToEnd, ::testing::Values(0, 1, 2, 3));

TEST(GraphSimulation, ParityOnLineGraph) {
    const std::uint32_t n = 10;
    const InteractionGraph graph = InteractionGraph::line(n);

    // Parity of the number of symbol-1 agents; symbol 0 carries weight 0.
    const auto padded = make_remainder_protocol({0, 1}, 0, 2);
    const auto padded_sim = make_graph_simulation_protocol(*padded);
    for (std::uint64_t ones : {4ull, 7ull}) {
        std::vector<Symbol> inputs(n, 0);
        for (std::uint64_t i = 0; i < ones; ++i) inputs[i] = 1;
        RunOptions options;
        options.max_interactions = 40'000'000;
        options.stop_after_stable_outputs = 400'000;
        options.seed = ones;
        const GraphRunResult result = simulate_on_graph(*padded_sim, graph, inputs, options);
        ASSERT_TRUE(result.consensus.has_value()) << ones;
        EXPECT_EQ(*result.consensus, ones % 2 == 0 ? kOutputTrue : kOutputFalse) << ones;
    }
}

TEST(GraphSimulation, SampledRunsEndClean) {
    // Lemma 6/7 along sampled runs: after enough activations the population
    // carries exactly one S baton, one R baton, and no D marks.
    const auto base = make_counting_protocol(3);
    const auto sim = make_graph_simulation_protocol(*base);
    const InteractionGraph ring = InteractionGraph::ring(10);
    std::vector<Symbol> inputs(10, kInputZero);
    inputs[2] = inputs[5] = kInputOne;

    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        RunOptions options;
        options.max_interactions = 200000;
        options.seed = seed;
        const GraphRunResult result = simulate_on_graph(*sim, ring, inputs, options);
        std::uint64_t s_count = 0;
        std::uint64_t r_count = 0;
        std::uint64_t d_count = 0;
        for (State state : result.final_configuration.states()) {
            switch (baton_of(*base, state)) {
                case Baton::kS:
                    ++s_count;
                    break;
                case Baton::kR:
                    ++r_count;
                    break;
                case Baton::kD:
                    ++d_count;
                    break;
                case Baton::kBlank:
                    break;
            }
        }
        EXPECT_EQ(s_count, 1u) << seed;
        EXPECT_EQ(r_count, 1u) << seed;
        EXPECT_EQ(d_count, 0u) << seed;
    }
}

TEST(GraphSimulation, RunnerValidatesArguments) {
    const auto base = make_counting_protocol(2);
    const auto sim = make_graph_simulation_protocol(*base);
    const InteractionGraph graph = InteractionGraph::line(4);
    RunOptions options;
    options.max_interactions = 100;
    EXPECT_THROW(simulate_on_graph(*sim, graph, {0, 0}, options), std::invalid_argument);
    // max_interactions == 0 resolves to default_budget(n); graph protocols
    // never fall silent, so the run uses the whole resolved budget.
    RunOptions no_budget;
    const GraphRunResult result = simulate_on_graph(*sim, graph, {0, 0, 0, 0}, no_budget);
    EXPECT_EQ(result.stop_reason, StopReason::kBudget);
    EXPECT_EQ(result.interactions, default_budget(4));
    // Engine-field consistency: graph runs have no SimulationEngine value
    // and require kAuto.
    RunOptions wrong_engine;
    wrong_engine.engine = SimulationEngine::kCountBatch;
    EXPECT_THROW(simulate_on_graph(*sim, graph, {0, 0, 0, 0}, wrong_engine),
                 std::invalid_argument);
}

}  // namespace
}  // namespace popproto
