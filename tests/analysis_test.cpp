// Tests for the exact analysis machinery: reachability, SCC condensation,
// stable-computation verdicts, and Markov expected hitting times.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/markov.h"
#include "analysis/reachability.h"
#include "analysis/stable_computation.h"
#include "protocols/counting.h"
#include "protocols/leader_election.h"

namespace popproto {
namespace {

// A deliberately non-convergent protocol: two states toggling outputs.
// delta(p, q) flips the responder's state, so outputs never stabilize once
// two agents disagree... in fact they never stabilize at all for n >= 2.
std::unique_ptr<TabulatedProtocol> make_blinker_protocol() {
    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    tables.initial = {0};
    tables.output = {0, 1};
    tables.delta = {
        {0, 1},  // (0,0) -> (0,1)
        {0, 0},  // (0,1) -> (0,0)
        {1, 1},  // (1,0) -> (1,1)
        {1, 0},  // (1,1) -> (1,0)
    };
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

TEST(Reachability, LeaderElectionHasLinearlyManyConfigs) {
    const auto protocol = make_leader_election_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {6});
    const ConfigurationGraph graph = explore_reachable(*protocol, initial);
    ASSERT_TRUE(graph.complete);
    // Configurations are exactly "k leaders, 6-k followers" for k = 6..1.
    EXPECT_EQ(graph.size(), 6u);
    // Each non-final config has exactly one successor (one fewer leader).
    EXPECT_EQ(graph.successors[0].size(), 1u);
}

TEST(Reachability, RespectsLimit) {
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {4, 8});
    const ConfigurationGraph graph = explore_reachable(*protocol, initial, 3);
    EXPECT_FALSE(graph.complete);
    EXPECT_GT(graph.size(), 3u);  // stops just past the limit
}

TEST(Reachability, InitialConfigurationIsIndexZero) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {1, 2});
    const ConfigurationGraph graph = explore_reachable(*protocol, initial);
    EXPECT_EQ(graph.configs[0], initial);
}

TEST(SccCondensation, SingleChain) {
    const auto protocol = make_leader_election_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {4});
    const ConfigurationGraph graph = explore_reachable(*protocol, initial);
    const SccDecomposition sccs = condense(graph);
    // A chain of four configurations: each its own SCC, only the last final.
    EXPECT_EQ(sccs.num_components, 4u);
    std::size_t final_components = 0;
    for (bool is_final : sccs.is_final) final_components += is_final ? 1 : 0;
    EXPECT_EQ(final_components, 1u);
}

TEST(StableComputation, LeaderElectionConvergesToOneLeader) {
    const auto protocol = make_leader_election_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {5});
    const StableComputationResult result = analyze_stable_computation(*protocol, initial);
    EXPECT_TRUE(result.always_converges);
    ASSERT_TRUE(result.single_valued());
    // Stable signature: 4 followers, 1 leader.
    EXPECT_EQ(result.stable_signatures.front(), (OutputSignature{4, 1}));
    EXPECT_FALSE(result.consensus().has_value());  // outputs disagree by design
}

TEST(StableComputation, BlinkerNeverConverges) {
    const auto protocol = make_blinker_protocol();
    auto initial = CountConfiguration(protocol->num_states());
    initial.add(0, 2);
    const StableComputationResult result = analyze_stable_computation(*protocol, initial);
    EXPECT_FALSE(result.always_converges);
    EXPECT_TRUE(result.stable_signatures.empty());
}

TEST(StableComputation, ThrowsOnTruncatedExploration) {
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {4, 8});
    EXPECT_THROW(analyze_stable_computation(*protocol, initial, 3), std::runtime_error);
}

TEST(StablyComputesBool, CountingProtocol) {
    const auto protocol = make_counting_protocol(3);
    const auto above = CountConfiguration::from_input_counts(*protocol, {1, 4});
    const auto below = CountConfiguration::from_input_counts(*protocol, {4, 2});
    EXPECT_TRUE(stably_computes_bool(*protocol, above, true));
    EXPECT_TRUE(stably_computes_bool(*protocol, below, false));
    EXPECT_FALSE(stably_computes_bool(*protocol, above, false));
}

TEST(Markov, TwoAgentLeaderElectionIsOneExpectedInteraction) {
    // With n = 2 every interaction is a leader-leader meeting, so the
    // expected time to a unique leader is exactly 1.
    const auto protocol = make_leader_election_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {2});
    const double expected = expected_hitting_time(
        *protocol, initial, [](const CountConfiguration& c) { return c.count(1) == 1; });
    EXPECT_NEAR(expected, 1.0, 1e-9);
}

TEST(Markov, LeaderElectionMatchesClosedFormExactly) {
    const auto protocol = make_leader_election_protocol();
    for (std::uint64_t n = 2; n <= 9; ++n) {
        const auto initial =
            CountConfiguration::from_input_counts(*protocol, {n});
        const double expected = expected_hitting_time(
            *protocol, initial, [](const CountConfiguration& c) { return c.count(1) == 1; });
        EXPECT_NEAR(expected, leader_election_expected_interactions(n), 1e-6)
            << "population " << n;
    }
}

TEST(Markov, ZeroTimeWhenStartingInTarget) {
    const auto protocol = make_leader_election_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {4});
    const double expected = expected_hitting_time(
        *protocol, initial, [](const CountConfiguration&) { return true; });
    EXPECT_EQ(expected, 0.0);
}

TEST(Markov, ThrowsWhenTargetUnreachable) {
    const auto protocol = make_leader_election_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {4});
    EXPECT_THROW(expected_hitting_time(
                     *protocol, initial,
                     [](const CountConfiguration& c) { return c.count(1) == 0; }),
                 std::runtime_error);
}

TEST(Markov, CountingProtocolAlertHittingTimeIsPositiveAndFinite) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {1, 2});
    const double expected = expected_hitting_time(
        *protocol, initial, [&](const CountConfiguration& c) {
            return c.count(2) == c.population_size();  // everyone alerted
        });
    EXPECT_GT(expected, 1.0);
    EXPECT_TRUE(std::isfinite(expected));
}

}  // namespace
}  // namespace popproto
