// The Sect. 3.4 division protocol: m = r + d*q invariant, exhaustive
// stable computation of floor(m / d), and silence of final configurations.

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/stable_computation.h"
#include "core/rng.h"
#include "core/simulator.h"
#include "protocols/division.h"
#include "test_util.h"

namespace popproto {
namespace {

TEST(DivisionProtocol, PaperDivideByThreeTransitions) {
    const auto protocol = make_division_protocol(3);
    // States are (r, j) encoded as r*2+j; (1,0)=2, (2,0)=4, (0,1)=1, (0,0)=0.
    // (1,0) + (1,0) -> (2,0), (0,0): consolidation.
    EXPECT_EQ(protocol->apply(2, 2), (StatePair{4, 0}));
    // (2,0) + (1,0): 3 >= 3 -> (0,0), (0,1): quotient deposit.
    EXPECT_EQ(protocol->apply(4, 2), (StatePair{0, 1}));
    // (2,0) + (2,0): 4 >= 3 -> (1,0), (0,1).
    EXPECT_EQ(protocol->apply(4, 4), (StatePair{2, 1}));
    // Quotient holders are inert.
    EXPECT_EQ(protocol->apply(1, 2), (StatePair{1, 2}));
    EXPECT_EQ(protocol->apply(4, 1), (StatePair{4, 1}));
}

using DivisionCase = std::tuple<std::uint32_t, std::uint64_t>;  // (divisor, n)

class DivisionStableComputation : public ::testing::TestWithParam<DivisionCase> {};

TEST_P(DivisionStableComputation, StableSignatureIsFloorQuotient) {
    const auto [divisor, population] = GetParam();
    const auto protocol = make_division_protocol(divisor);
    for (std::uint64_t ones = 0; ones <= population; ++ones) {
        const auto initial =
            CountConfiguration::from_input_counts(*protocol, {population - ones, ones});
        const StableComputationResult result = analyze_stable_computation(*protocol, initial);
        ASSERT_TRUE(result.always_converges) << "d=" << divisor << " m=" << ones;
        ASSERT_TRUE(result.single_valued()) << "d=" << divisor << " m=" << ones;
        // Output signature: counts of output symbols (0, 1); the represented
        // integer (integer output convention) is the count of 1-outputs.
        const std::uint64_t quotient = result.stable_signatures.front()[1];
        EXPECT_EQ(quotient, ones / divisor) << "d=" << divisor << " m=" << ones;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DivisionStableComputation,
                         ::testing::Combine(::testing::Values(2u, 3u, 4u),
                                            ::testing::Values(1u, 4u, 6u, 8u)));

TEST(DivisionProtocol, InvariantHoldsAlongRandomExecutions) {
    // m = remainder-sum + divisor * quotient-sum at every step
    // (the induction in Sect. 3.4).
    for (std::uint32_t divisor : {2u, 3u, 5u}) {
        const auto protocol = make_division_protocol(divisor);
        const std::uint64_t ones = 11;
        auto config = CountConfiguration::from_input_counts(*protocol, {4, ones});
        auto agents = AgentConfiguration::from_counts(config);
        Rng rng(divisor);
        for (int step = 0; step < 500; ++step) {
            const std::size_t i = rng.below(agents.size());
            std::size_t j = rng.below(agents.size() - 1);
            if (j >= i) ++j;
            agents.apply_interaction(*protocol, i, j);
            const DivisionReading reading =
                read_division(*protocol, agents.to_counts(protocol->num_states()), divisor);
            EXPECT_EQ(reading.remainder + divisor * reading.quotient, ones);
        }
    }
}

TEST(DivisionProtocol, SimulationConvergesToQuotient) {
    const std::uint32_t divisor = 3;
    const auto protocol = make_division_protocol(divisor);
    const std::uint64_t zeros = 40;
    const std::uint64_t ones = 35;
    const auto initial = CountConfiguration::from_input_counts(*protocol, {zeros, ones});
    RunOptions options;
    options.max_interactions = default_budget(zeros + ones);
    options.seed = 21;
    const RunResult result = simulate(*protocol, initial, options);
    EXPECT_EQ(result.stop_reason, StopReason::kSilent);
    const DivisionReading reading =
        read_division(*protocol, result.final_configuration, divisor);
    EXPECT_EQ(reading.quotient, ones / divisor);
    EXPECT_EQ(reading.remainder, ones % divisor);
}

TEST(DivisionProtocol, RejectsTrivialDivisor) {
    EXPECT_THROW(make_division_protocol(0), std::invalid_argument);
    EXPECT_THROW(make_division_protocol(1), std::invalid_argument);
}

}  // namespace
}  // namespace popproto
