// Parameterized theorem-level sweeps: each suite re-asserts one paper claim
// over a grid of populations/parameters, complementing the targeted tests.

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/stable_computation.h"
#include "graphs/graph_analysis.h"
#include "graphs/graph_simulation.h"
#include "presburger/compiler.h"
#include "protocols/counting.h"
#include "randomized/population_machine.h"
#include "machines/examples.h"
#include "test_util.h"

namespace popproto {
namespace {

// ---- Theorem 5 over a formula grid: every compiled atom pair stably
// computes on every input of every population up to 4.
struct FormulaCase {
    const char* name;
    Formula formula;
};

class TheoremFiveSweep : public ::testing::TestWithParam<int> {};

Formula formula_for(int index) {
    switch (index) {
        case 0:
            return Formula::threshold({1, -2}, 2);
        case 1:
            return Formula::congruence({2, 1}, 1, 3);
        case 2:
            return Formula::conjunction(Formula::threshold({1, 0}, 3),
                                        Formula::congruence({0, 1}, 0, 2));
        case 3:
            return Formula::negation(Formula::disjunction(
                Formula::at_least({1, 1}, 4), Formula::congruence({1, -1}, 0, 2)));
        default:
            return Formula::equals({1, -1}, 1);
    }
}

TEST_P(TheoremFiveSweep, CompiledProtocolIsExactlyTheFormula) {
    const Formula formula = formula_for(GetParam());
    const auto protocol = compile_formula(formula, 2);
    for (std::uint64_t n = 1; n <= 4; ++n) {
        testutil::for_each_composition(n, 2, [&](const std::vector<std::uint64_t>& counts) {
            const auto initial = CountConfiguration::from_input_counts(*protocol, counts);
            const bool expected = formula.evaluate(testutil::to_signed(counts));
            EXPECT_TRUE(stably_computes_bool(*protocol, initial, expected, 1u << 22))
                << formula.to_string() << " @ (" << counts[0] << "," << counts[1] << ")";
        });
    }
}

INSTANTIATE_TEST_SUITE_P(Formulas, TheoremFiveSweep, ::testing::Range(0, 5));

// ---- Theorem 7 over a topology grid: the lifted count-to-2 protocol is
// exactly verified on every 4-agent weakly-connected shape.
class TheoremSevenSweep : public ::testing::TestWithParam<int> {};

InteractionGraph topology_for(int index) {
    switch (index) {
        case 0:
            return InteractionGraph::line(4);
        case 1:
            return InteractionGraph::ring(4);
        case 2:
            return InteractionGraph::star(4);
        case 3:
            return InteractionGraph::grid(2, 2);
        default:
            return InteractionGraph::random_connected(4, 2, 17);
    }
}

TEST_P(TheoremSevenSweep, LiftedProtocolExactOnEveryTopology) {
    const InteractionGraph graph = topology_for(GetParam());
    ASSERT_TRUE(graph.is_weakly_connected());
    const auto base = make_counting_protocol(2);
    const auto lifted = make_graph_simulation_protocol(*base);
    for (std::uint64_t ones = 0; ones <= 4; ++ones) {
        std::vector<Symbol> inputs(4, kInputZero);
        for (std::uint64_t i = 0; i < ones; ++i) inputs[i] = kInputOne;
        EXPECT_TRUE(graph_stably_computes_bool(*lifted, graph, inputs, ones >= 2))
            << "topology " << GetParam() << " ones=" << ones;
    }
}

INSTANTIATE_TEST_SUITE_P(Topologies, TheoremSevenSweep, ::testing::Range(0, 5));

// ---- Theorem 9 over an (n, k) grid: the population machine halts and, in
// error-free runs, agrees with the deterministic counter machine.
using MachineCase = std::tuple<std::uint64_t, std::uint32_t>;

class TheoremNineSweep : public ::testing::TestWithParam<MachineCase> {};

TEST_P(TheoremNineSweep, HaltsAndAgreesWhenErrorFree) {
    const auto [population, k] = GetParam();
    const CounterProgram program = make_multiply_program(2);
    const CounterExecution reference = run_counter_machine(program, {5, 0}, 100000);
    ASSERT_TRUE(reference.halted);

    int error_free = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        PopulationMachineOptions options;
        options.timer_parameter = k;
        options.share_capacity = 4;
        options.max_interactions = 4'000'000'000ull;
        options.seed = seed;
        const PopulationMachineResult result =
            run_population_counter_machine(program, {5, 0}, population, options);
        ASSERT_TRUE(result.halted) << "n=" << population << " k=" << k << " seed=" << seed;
        if (result.zero_test_errors == 0) {
            ++error_free;
            EXPECT_EQ(result.counters, reference.counters)
                << "n=" << population << " k=" << k << " seed=" << seed;
        }
    }
    if (k >= 3) EXPECT_GE(error_free, 5) << "n=" << population << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Grid, TheoremNineSweep,
                         ::testing::Combine(::testing::Values(12ull, 20ull, 32ull),
                                            ::testing::Values(2u, 3u, 4u)));

}  // namespace
}  // namespace popproto
