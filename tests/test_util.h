// Shared helpers for the test suite.

#ifndef POPPROTO_TESTS_TEST_UTIL_H
#define POPPROTO_TESTS_TEST_UTIL_H

#include <cstdint>
#include <functional>
#include <vector>

namespace popproto::testutil {

/// Calls `visit` with every vector of `slots` non-negative integers summing
/// to exactly `total` (the input-count assignments of a population of size
/// `total` over `slots` input symbols).
inline void for_each_composition(std::uint64_t total, std::size_t slots,
                                 const std::function<void(const std::vector<std::uint64_t>&)>& visit) {
    std::vector<std::uint64_t> current(slots, 0);
    const std::function<void(std::size_t, std::uint64_t)> recurse =
        [&](std::size_t index, std::uint64_t remaining) {
            if (index + 1 == slots) {
                current[index] = remaining;
                visit(current);
                return;
            }
            for (std::uint64_t value = 0; value <= remaining; ++value) {
                current[index] = value;
                recurse(index + 1, remaining - value);
            }
        };
    if (slots == 0) return;
    recurse(0, total);
}

/// Signed copy of an unsigned count vector (for Formula::evaluate).
inline std::vector<std::int64_t> to_signed(const std::vector<std::uint64_t>& counts) {
    return {counts.begin(), counts.end()};
}

}  // namespace popproto::testutil

#endif  // POPPROTO_TESTS_TEST_UTIL_H
