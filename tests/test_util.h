// Shared helpers for the test suite.

#ifndef POPPROTO_TESTS_TEST_UTIL_H
#define POPPROTO_TESTS_TEST_UTIL_H

#include <cctype>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/tabulated_protocol.h"

namespace popproto::testutil {

// --- Minimal JSON validator (structure only) -----------------------------
//
// Enough to verify that JSONL lines, MetricsReport::to_json, and the Chrome
// trace exporter emit well-formed JSON without pulling in a JSON library.

class JsonChecker {
public:
    explicit JsonChecker(const std::string& text) : text_(text) {}

    bool valid() {
        pos_ = 0;
        skip_space();
        if (!value()) return false;
        skip_space();
        return pos_ == text_.size();
    }

private:
    bool value() {
        if (pos_ >= text_.size()) return false;
        const char c = text_[pos_];
        if (c == '{') return object();
        if (c == '[') return array();
        if (c == '"') return string();
        if (c == 't') return literal("true");
        if (c == 'f') return literal("false");
        if (c == 'n') return literal("null");
        return number();
    }

    bool object() {
        ++pos_;  // '{'
        skip_space();
        if (peek() == '}') return ++pos_, true;
        while (true) {
            skip_space();
            if (!string()) return false;
            skip_space();
            if (peek() != ':') return false;
            ++pos_;
            skip_space();
            if (!value()) return false;
            skip_space();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') return ++pos_, true;
            return false;
        }
    }

    bool array() {
        ++pos_;  // '['
        skip_space();
        if (peek() == ']') return ++pos_, true;
        while (true) {
            skip_space();
            if (!value()) return false;
            skip_space();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') return ++pos_, true;
            return false;
        }
    }

    bool string() {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (static_cast<unsigned char>(text_[pos_]) < 0x20) return false;
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) return false;
            }
            ++pos_;
        }
        if (pos_ >= text_.size()) return false;
        ++pos_;
        return true;
    }

    bool number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool literal(const std::string& word) {
        if (text_.compare(pos_, word.size(), word) != 0) return false;
        pos_ += word.size();
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void skip_space() {
        while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

/// Outcome of a chi-square goodness-of-fit test (chi_square_gof below).
struct ChiSquareResult {
    double statistic = 0.0;       ///< Pearson X^2 over the merged bins
    double critical = 0.0;        ///< 0.999 quantile of chi-square(df)
    std::size_t bins = 0;         ///< number of merged bins (df = bins - 1)
    bool pass = false;            ///< statistic <= critical

    std::string summary() const {
        return "X^2 = " + std::to_string(statistic) + " vs critical(0.999) = " +
               std::to_string(critical) + " with " + std::to_string(bins) + " bins";
    }
};

/// Pearson chi-square goodness-of-fit of observed category counts against
/// expected category probabilities (categories are index-aligned; the
/// probabilities may sum to < 1 — the missing tail becomes a final
/// category with observed count `total_draws - sum(observed)`).
///
/// Adjacent categories are merged until every bin's expected count is at
/// least 5 (the textbook validity rule), and the critical value is the
/// 0.999 chi-square quantile via the Wilson-Hilferty cube approximation —
/// a deterministic test with fixed seeds flakes never, and a wrong sampler
/// overshoots this threshold by orders of magnitude.
inline ChiSquareResult chi_square_gof(const std::vector<std::uint64_t>& observed,
                                      const std::vector<double>& expected_probability,
                                      std::uint64_t total_draws) {
    const double total = static_cast<double>(total_draws);

    // Fold the unlisted tail into one extra category.
    std::vector<double> expected;
    std::vector<double> obs;
    double prob_sum = 0.0;
    std::uint64_t obs_sum = 0;
    for (std::size_t i = 0; i < expected_probability.size(); ++i) {
        expected.push_back(expected_probability[i] * total);
        obs.push_back(i < observed.size() ? static_cast<double>(observed[i]) : 0.0);
        prob_sum += expected_probability[i];
        if (i < observed.size()) obs_sum += observed[i];
    }
    if (prob_sum < 1.0 - 1e-12 || obs_sum < total_draws) {
        expected.push_back((1.0 - prob_sum) * total);
        obs.push_back(static_cast<double>(total_draws - obs_sum));
    }

    // Merge adjacent categories until every bin expects >= 5.
    std::vector<double> bin_obs;
    std::vector<double> bin_exp;
    double acc_obs = 0.0;
    double acc_exp = 0.0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        acc_obs += obs[i];
        acc_exp += expected[i];
        if (acc_exp >= 5.0) {
            bin_obs.push_back(acc_obs);
            bin_exp.push_back(acc_exp);
            acc_obs = acc_exp = 0.0;
        }
    }
    if (acc_exp > 0.0 || acc_obs > 0.0) {
        if (!bin_exp.empty()) {
            bin_obs.back() += acc_obs;
            bin_exp.back() += acc_exp;
        } else {
            bin_obs.push_back(acc_obs);
            bin_exp.push_back(acc_exp);
        }
    }

    ChiSquareResult result;
    result.bins = bin_exp.size();
    for (std::size_t i = 0; i < bin_exp.size(); ++i) {
        const double diff = bin_obs[i] - bin_exp[i];
        result.statistic += diff * diff / bin_exp[i];
    }
    if (result.bins < 2) {
        // Everything collapsed into one bin: the distribution is (near-)
        // degenerate and any sample passes trivially.
        result.critical = 0.0;
        result.pass = result.statistic == 0.0;
        return result;
    }
    // Wilson-Hilferty: chi2_q(df) ~ df * (1 - 2/(9 df) + z sqrt(2/(9 df)))^3,
    // z = Phi^-1(0.999) = 3.0902.
    const double df = static_cast<double>(result.bins - 1);
    const double h = 2.0 / (9.0 * df);
    const double core = 1.0 - h + 3.0902 * std::sqrt(h);
    result.critical = df * core * core * core;
    result.pass = result.statistic <= result.critical;
    return result;
}

/// Calls `visit` with every vector of `slots` non-negative integers summing
/// to exactly `total` (the input-count assignments of a population of size
/// `total` over `slots` input symbols).
inline void for_each_composition(std::uint64_t total, std::size_t slots,
                                 const std::function<void(const std::vector<std::uint64_t>&)>& visit) {
    std::vector<std::uint64_t> current(slots, 0);
    const std::function<void(std::size_t, std::uint64_t)> recurse =
        [&](std::size_t index, std::uint64_t remaining) {
            if (index + 1 == slots) {
                current[index] = remaining;
                visit(current);
                return;
            }
            for (std::uint64_t value = 0; value <= remaining; ++value) {
                current[index] = value;
                recurse(index + 1, remaining - value);
            }
        };
    if (slots == 0) return;
    recurse(0, total);
}

/// Signed copy of an unsigned count vector (for Formula::evaluate).
inline std::vector<std::int64_t> to_signed(const std::vector<std::uint64_t>& counts) {
    return {counts.begin(), counts.end()};
}

/// Exact distribution of the configuration after `steps` interactions of
/// the uniform ordered-pair chain: P[(p, q)] = c_p (c_q - [p == q]) / n(n-1),
/// as a dynamic program over count vectors.  Feasible only for tiny
/// populations; that is the point — the batching engines' collision and
/// boundary-clamp paths dominate there, and their empirical distributions
/// are held to this law by chi_square_gof (collapsed_simulator_test.cpp,
/// parallel_collapsed_test.cpp).
inline std::map<std::vector<std::uint64_t>, double> exact_chain_distribution(
    const TabulatedProtocol& protocol, const std::vector<std::uint64_t>& initial,
    std::uint64_t steps) {
    const std::size_t num_states = protocol.num_states();
    std::uint64_t n = 0;
    for (const std::uint64_t count : initial) n += count;
    const double total_pairs = static_cast<double>(n) * static_cast<double>(n - 1);

    std::map<std::vector<std::uint64_t>, double> dist;
    dist[initial] = 1.0;
    for (std::uint64_t step = 0; step < steps; ++step) {
        std::map<std::vector<std::uint64_t>, double> next_dist;
        for (const auto& [config, prob] : dist) {
            for (State p = 0; p < num_states; ++p) {
                if (config[p] == 0) continue;
                for (State q = 0; q < num_states; ++q) {
                    const std::uint64_t pairs = config[p] * (config[q] - (p == q ? 1 : 0));
                    if (pairs == 0) continue;
                    const StatePair result = protocol.apply_fast(p, q);
                    std::vector<std::uint64_t> next = config;
                    --next[p];
                    --next[q];
                    ++next[result.initiator];
                    ++next[result.responder];
                    next_dist[next] += prob * static_cast<double>(pairs) / total_pairs;
                }
            }
        }
        dist = std::move(next_dist);
    }
    return dist;
}

}  // namespace popproto::testutil

#endif  // POPPROTO_TESTS_TEST_UTIL_H
