// Counter machines, the program builder, and Turing machines.

#include <gtest/gtest.h>

#include "machines/counter_machine.h"
#include "machines/examples.h"
#include "machines/program_builder.h"
#include "machines/turing_machine.h"

namespace popproto {
namespace {

TEST(CounterMachine, CountdownDrainsCounter) {
    const CounterProgram program = make_countdown_program();
    const CounterExecution run = run_counter_machine(program, {7}, 1000);
    EXPECT_TRUE(run.halted);
    EXPECT_EQ(run.exit_code, 0u);
    EXPECT_EQ(run.counters[0], 0u);
}

TEST(CounterMachine, MultiplyProgram) {
    for (std::uint32_t factor : {2u, 3u, 7u}) {
        const CounterProgram program = make_multiply_program(factor);
        for (std::uint64_t value : {0ull, 1ull, 5ull, 12ull}) {
            const CounterExecution run = run_counter_machine(program, {value, 0}, 100000);
            ASSERT_TRUE(run.halted) << factor << "*" << value;
            EXPECT_EQ(run.counters[0], value * factor);
            EXPECT_EQ(run.counters[1], 0u);  // aux drained
        }
    }
}

TEST(CounterMachine, DivmodProgram) {
    for (std::uint32_t divisor : {2u, 3u, 5u}) {
        const CounterProgram program = make_divmod_program(divisor);
        for (std::uint64_t value = 0; value <= 17; ++value) {
            const CounterExecution run = run_counter_machine(program, {value, 0, 0}, 100000);
            ASSERT_TRUE(run.halted) << value << "/" << divisor;
            EXPECT_EQ(run.counters[1], value / divisor);
            EXPECT_EQ(run.counters[0], value % divisor);
            EXPECT_EQ(run.exit_code, value % divisor);
        }
    }
}

TEST(CounterMachine, DecrementOfZeroThrows) {
    ProgramBuilder builder(1);
    builder.dec(0);
    builder.halt(0);
    const CounterProgram program = builder.build();
    EXPECT_THROW(run_counter_machine(program, {0}, 10), std::runtime_error);
}

TEST(CounterMachine, BudgetExhaustionReportsNotHalted) {
    ProgramBuilder builder(1);
    const Label loop = builder.make_label();
    builder.place(loop);
    builder.inc(0);
    builder.jump(loop);
    const CounterProgram program = builder.build();
    const CounterExecution run = run_counter_machine(program, {0}, 50);
    EXPECT_FALSE(run.halted);
    EXPECT_EQ(run.steps, 50u);
}

TEST(CounterMachine, ValidationCatchesBadPrograms) {
    CounterProgram empty;
    empty.num_counters = 1;
    EXPECT_THROW(empty.validate(), std::invalid_argument);

    CounterProgram bad_counter;
    bad_counter.num_counters = 1;
    bad_counter.instructions = {{CounterInstruction::Op::kInc, 5, 0}};
    EXPECT_THROW(bad_counter.validate(), std::invalid_argument);

    CounterProgram bad_jump;
    bad_jump.num_counters = 1;
    bad_jump.instructions = {{CounterInstruction::Op::kJump, 0, 9}};
    EXPECT_THROW(bad_jump.validate(), std::invalid_argument);
}

TEST(ProgramBuilder, UnboundLabelDetected) {
    ProgramBuilder builder(1);
    const Label label = builder.make_label();
    builder.jump(label);
    EXPECT_THROW(builder.build(), std::invalid_argument);
}

TEST(ProgramBuilder, DisassemblyContainsMnemonics) {
    const CounterProgram program = make_countdown_program();
    const std::string text = program.to_string();
    EXPECT_NE(text.find("jz"), std::string::npos);
    EXPECT_NE(text.find("dec"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(TuringMachine, UnaryModAcceptsMultiples) {
    for (std::uint32_t modulus : {2u, 3u, 5u}) {
        const TuringMachine machine = make_unary_mod_turing_machine(modulus);
        for (std::uint32_t x = 0; x <= 12; ++x) {
            const std::vector<std::uint32_t> input(x, 1);
            const TuringExecution run = run_turing_machine(machine, input, 10000);
            ASSERT_TRUE(run.halted) << "mod " << modulus << " x=" << x;
            EXPECT_EQ(run.accepted, x % modulus == 0) << "mod " << modulus << " x=" << x;
        }
    }
}

TEST(TuringMachine, UnaryThresholdCountsOnes) {
    for (std::uint32_t threshold : {1u, 3u, 5u}) {
        const TuringMachine machine = make_unary_threshold_turing_machine(threshold);
        for (std::uint32_t x = 0; x <= 8; ++x) {
            const std::vector<std::uint32_t> input(x, 1);
            const TuringExecution run = run_turing_machine(machine, input, 10000);
            ASSERT_TRUE(run.halted) << threshold << "," << x;
            EXPECT_EQ(run.accepted, x >= threshold) << threshold << "," << x;
        }
    }
    EXPECT_THROW(make_unary_threshold_turing_machine(0), std::invalid_argument);
}

TEST(TuringMachine, UnaryMajorityComparesBlocks) {
    const TuringMachine machine = make_unary_majority_turing_machine();
    for (std::uint32_t a = 0; a <= 5; ++a) {
        for (std::uint32_t b = 0; b <= 5; ++b) {
            std::vector<std::uint32_t> input;
            input.insert(input.end(), a, 1);
            input.insert(input.end(), b, 2);
            const TuringExecution run = run_turing_machine(machine, input, 100000);
            ASSERT_TRUE(run.halted) << a << " vs " << b;
            EXPECT_EQ(run.accepted, a > b) << a << " vs " << b;
        }
    }
}

TEST(TuringMachine, StepBudgetRespected) {
    const TuringMachine machine = make_unary_mod_turing_machine(2);
    const std::vector<std::uint32_t> input(50, 1);
    const TuringExecution run = run_turing_machine(machine, input, 5);
    EXPECT_FALSE(run.halted);
    EXPECT_EQ(run.steps, 5u);
}

TEST(TuringMachine, ValidationCatchesBadMachines) {
    TuringMachine machine = make_unary_mod_turing_machine(2);
    machine.rules[0].next_state = 99;
    EXPECT_THROW(machine.validate(), std::invalid_argument);

    TuringMachine same_halt = make_unary_mod_turing_machine(2);
    same_halt.reject_state = same_halt.accept_state;
    EXPECT_THROW(same_halt.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace popproto
