// The collapsed super-step engine (core/collapsed_simulator.h).
//
// Correctness is a *distributional* contract — the engine must sample final
// configurations from exactly the law of the uniform ordered-pair chain —
// so the centerpiece is an exact small-population check: a dynamic program
// over count vectors computes the true k-step distribution, and the
// empirical distribution of collapsed runs is held to it by chi-square,
// under several observation setups (unobserved, snapshot-clamped at every
// index, mixed, checkpoint-clamped).  Each setup exercises a different code
// path — full super-steps with collision resolution vs. boundary clamps —
// and all must agree with the same exact law.
//
// Pathwise guarantees are thinner by design (super-step boundaries shape
// the RNG stream), but checkpoint/resume *is* bit-identical against a
// baseline with the same checkpoint schedule, including cuts that land
// inside a super-step; that is tested here too, plus the engine-selection
// plumbing (run_simulation's kAuto size dispatch and RunResult::engine).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_simulator.h"
#include "core/collapsed_simulator.h"
#include "core/observer.h"
#include "core/run_loop.h"
#include "core/simulator.h"
#include "observe/trace_recorder.h"
#include "presburger/atom_protocols.h"
#include "protocols/counting.h"
#include "protocols/epidemic.h"
#include "test_util.h"

namespace popproto {
namespace {

using testutil::chi_square_gof;
using testutil::ChiSquareResult;

// ---------------------------------------------------------------------------
// Exact k-step distribution of the uniform ordered-pair chain
// (testutil::exact_chain_distribution, shared with parallel_collapsed_test)

using CountVector = std::vector<std::uint64_t>;
using Distribution = std::map<CountVector, double>;

class CollectingSink final : public CheckpointSink {
public:
    void on_checkpoint(const RunCheckpoint& checkpoint) override {
        checkpoints.push_back(checkpoint);
    }
    std::vector<RunCheckpoint> checkpoints;
};

/// How the exact-law runs are observed; each shape clamps super-steps at a
/// different boundary pattern (see the file comment).
enum class ObservationSetup { kUnobserved, kSnapshotEveryOne, kSnapshotEveryTwo, kCheckpointed };

const char* setup_label(ObservationSetup setup) {
    switch (setup) {
        case ObservationSetup::kUnobserved: return "unobserved";
        case ObservationSetup::kSnapshotEveryOne: return "snapshot_every_1";
        case ObservationSetup::kSnapshotEveryTwo: return "snapshot_every_2";
        case ObservationSetup::kCheckpointed: return "checkpoint_every_2";
    }
    return "?";
}

void expect_matches_exact_law(const TabulatedProtocol& protocol, const CountVector& initial_counts,
                              std::uint64_t steps, ObservationSetup setup) {
    SCOPED_TRACE(setup_label(setup));
    const Distribution exact = testutil::exact_chain_distribution(protocol, initial_counts, steps);
    const auto initial = CountConfiguration::from_state_counts(initial_counts);

    constexpr std::uint64_t kRuns = 4000;
    std::map<CountVector, std::uint64_t> tally;
    for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
        RunOptions options;
        options.max_interactions = steps;
        options.seed = seed;
        TraceRecorder recorder;
        CollectingSink sink;
        switch (setup) {
            case ObservationSetup::kUnobserved: break;
            case ObservationSetup::kSnapshotEveryOne:
                options.observer = &recorder;
                options.snapshots = SnapshotSchedule::every(1);
                break;
            case ObservationSetup::kSnapshotEveryTwo:
                options.observer = &recorder;
                options.snapshots = SnapshotSchedule::every(2);
                break;
            case ObservationSetup::kCheckpointed:
                options.checkpoint_every = 2;
                options.checkpoint_sink = &sink;
                break;
        }
        const RunResult result = simulate_collapsed(protocol, initial, options);
        // A silent stop before the budget freezes the configuration, so the
        // final counts still equal the configuration at index `steps`.
        ++tally[result.final_configuration.counts()];
    }

    // Every reachable configuration is in the exact support.
    std::vector<std::uint64_t> observed;
    std::vector<double> expected;
    for (const auto& [config, prob] : exact) {
        const auto it = tally.find(config);
        observed.push_back(it == tally.end() ? 0 : it->second);
        expected.push_back(prob);
        if (it != tally.end()) tally.erase(it);
    }
    EXPECT_TRUE(tally.empty()) << tally.size() << " configurations outside the exact support";

    const ChiSquareResult gof = chi_square_gof(observed, expected, kRuns);
    EXPECT_TRUE(gof.pass) << gof.summary();
}

TEST(CollapsedExactLaw, EpidemicMatchesEnumeratedDistribution) {
    // n = 5: the survival table has two entries, so nearly every unclamped
    // super-step executes a collision — the collision resolver and the
    // batch assignment are both load-bearing here.
    const auto protocol = make_epidemic_protocol();
    const CountVector initial = {4, 1};
    for (const ObservationSetup setup :
         {ObservationSetup::kUnobserved, ObservationSetup::kSnapshotEveryOne,
          ObservationSetup::kSnapshotEveryTwo, ObservationSetup::kCheckpointed}) {
        expect_matches_exact_law(*protocol, initial, /*steps=*/6, setup);
    }
}

TEST(CollapsedExactLaw, MajorityMatchesEnumeratedDistribution) {
    // Multi-state protocol ([x_0 - x_1 < 0] threshold atom): the
    // state-pair matrix cascade runs over more than two states.
    const auto protocol = make_threshold_protocol({1, -1}, 0);
    const auto config = CountConfiguration::from_input_counts(*protocol, {2, 3});
    for (const ObservationSetup setup :
         {ObservationSetup::kUnobserved, ObservationSetup::kSnapshotEveryOne,
          ObservationSetup::kCheckpointed}) {
        expect_matches_exact_law(*protocol, config.counts(), /*steps=*/5, setup);
    }
}

// ---------------------------------------------------------------------------
// Checkpoint / resume

void expect_same_run(const RunResult& actual, const RunResult& expected) {
    EXPECT_EQ(actual.stop_reason, expected.stop_reason);
    EXPECT_EQ(actual.interactions, expected.interactions);
    EXPECT_EQ(actual.effective_interactions, expected.effective_interactions);
    EXPECT_EQ(actual.last_output_change, expected.last_output_change);
    EXPECT_EQ(actual.final_configuration, expected.final_configuration);
    EXPECT_EQ(actual.consensus, expected.consensus);
    EXPECT_EQ(actual.engine, expected.engine);
}

TEST(CollapsedCheckpointResume, BitIdenticalAgainstCheckpointedBaseline) {
    // Unlike the per-interaction engines, the collapsed baseline must
    // itself be checkpointed: checkpoint boundaries clamp super-steps, so
    // only a resumed run with the *same* boundary sequence replays the
    // stream bit for bit (run_loop_test's harness, which compares against
    // an un-checkpointed baseline, intentionally does not apply).  With
    // checkpoint_every = 7 and E[L] ~ 0.63 sqrt(64) ~ 5, most boundaries
    // cut a proposed run mid-flight, exercising the clamped path.
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {57, 7});
    RunOptions options;
    options.seed = 11;
    options.max_interactions = 600;

    CollectingSink sink;
    options.checkpoint_every = 7;
    options.checkpoint_sink = &sink;
    const RunResult baseline = simulate_collapsed(*protocol, initial, options);
    ASSERT_FALSE(sink.checkpoints.empty());

    for (const RunCheckpoint& checkpoint : sink.checkpoints) {
        EXPECT_EQ(checkpoint.interactions % 7, 0u);
        // Resume from the text round-trip, exactly as a CLI would.
        const RunCheckpoint reloaded = checkpoint_from_string(checkpoint_to_string(checkpoint));
        CollectingSink resumed_sink;
        RunOptions resumed = options;
        resumed.checkpoint_sink = &resumed_sink;
        resumed.resume_from = &reloaded;
        expect_same_run(simulate_collapsed(*protocol, initial, resumed), baseline);

        // The resumed run's checkpoints must be the exact suffix of the
        // baseline's — same cuts, same RNG positions, same counts.
        std::vector<RunCheckpoint> expected_suffix;
        for (const RunCheckpoint& later : sink.checkpoints)
            if (later.interactions > checkpoint.interactions) expected_suffix.push_back(later);
        EXPECT_EQ(resumed_sink.checkpoints, expected_suffix)
            << "resumed from cut at " << checkpoint.interactions;
    }
}

TEST(CollapsedCheckpointResume, RejectsForeignCheckpoints) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 2});
    RunOptions options;
    options.seed = 2;
    CollectingSink sink;
    options.checkpoint_every = 20;
    options.checkpoint_sink = &sink;
    simulate_counts(*protocol, initial, options);
    ASSERT_FALSE(sink.checkpoints.empty());

    RunOptions resume;
    resume.resume_from = &sink.checkpoints.front();
    EXPECT_THROW(simulate_collapsed(*protocol, initial, resume), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Silence, validation, and accounting

TEST(CollapsedSimulator, EpidemicRunsSilentWithExactEffectiveCount) {
    // Every effective epidemic interaction infects exactly one susceptible,
    // so the aggregate effective count across batches and collisions must
    // come out to the initial susceptible count on the nose.
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {25, 5});
    RunOptions options;
    options.seed = 5;
    const RunResult result = simulate_collapsed(*protocol, initial, options);
    EXPECT_EQ(result.stop_reason, StopReason::kSilent);
    EXPECT_EQ(result.final_configuration.counts(), (CountVector{0, 30}));
    EXPECT_EQ(result.effective_interactions, 25u);
    ASSERT_TRUE(result.consensus.has_value());
    EXPECT_EQ(*result.consensus, 1u);
}

TEST(CollapsedSimulator, InitiallySilentConfigurationStopsAtZero) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {0, 30});
    RunOptions options;
    options.seed = 9;
    const RunResult result = simulate_collapsed(*protocol, initial, options);
    EXPECT_EQ(result.stop_reason, StopReason::kSilent);
    EXPECT_EQ(result.interactions, 0u);
    EXPECT_EQ(result.effective_interactions, 0u);
}

TEST(CollapsedSimulator, ValidatesInputs) {
    const auto protocol = make_epidemic_protocol();
    RunOptions options;
    // Population of one.
    EXPECT_THROW(simulate_collapsed(
                     *protocol, CountConfiguration::from_input_counts(*protocol, {1, 0}), options),
                 std::invalid_argument);
    // Configuration from a different protocol shape.
    const auto counting = make_counting_protocol(4);
    EXPECT_THROW(
        simulate_collapsed(*protocol,
                           CountConfiguration::from_input_counts(*counting, {5, 5}), options),
        std::invalid_argument);
    // Engine-field mismatch in both directions.
    const auto initial = CountConfiguration::from_input_counts(*protocol, {5, 5});
    options.engine = SimulationEngine::kCountBatch;
    EXPECT_THROW(simulate_collapsed(*protocol, initial, options), std::invalid_argument);
    options.engine = SimulationEngine::kCollapsedBatch;
    EXPECT_THROW(simulate_counts(*protocol, initial, options), std::invalid_argument);
    EXPECT_NO_THROW(simulate_collapsed(*protocol, initial, options));
}

TEST(CollapsedSimulator, EngineNameRoundTrips) {
    EXPECT_STREQ(observed_engine_name(ObservedEngine::kCollapsed), "collapsed");
    ObservedEngine parsed = ObservedEngine::kAgentArray;
    ASSERT_TRUE(observed_engine_from_name("collapsed", parsed));
    EXPECT_EQ(parsed, ObservedEngine::kCollapsed);
}

// ---------------------------------------------------------------------------
// run_simulation dispatch (RunResult::engine reports the executed engine)

TEST(RunSimulationDispatch, AutoSelectsBySize) {
    const auto protocol = make_epidemic_protocol();
    RunOptions options;
    options.seed = 3;
    options.max_interactions = 200;

    const auto run_auto = [&](std::uint64_t susceptible) {
        const auto initial =
            CountConfiguration::from_input_counts(*protocol, {susceptible, 1});
        return run_simulation(*protocol, initial, options).engine;
    };

    // Below the count-batch threshold: the reference agent array.
    EXPECT_EQ(run_auto(100), ObservedEngine::kAgentArray);
    EXPECT_EQ(run_auto(kAutoCountBatchThreshold - 2), ObservedEngine::kAgentArray);
    // At and above it: count-batch, up to the collapsed threshold.
    EXPECT_EQ(run_auto(kAutoCountBatchThreshold - 1), ObservedEngine::kCountBatch);
    EXPECT_EQ(run_auto(kAutoCollapsedThreshold - 2), ObservedEngine::kCountBatch);
    // At and above the collapsed threshold: the phase-adaptive dispatcher
    // (which picks collapsed or count-batch segments by density).
    EXPECT_EQ(run_auto(kAutoCollapsedThreshold - 1), ObservedEngine::kAdaptive);
}

TEST(RunSimulationDispatch, PinnedEnginesAreHonoredAtAnySize) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {60, 4});
    RunOptions options;
    options.seed = 3;
    options.max_interactions = 100;

    options.engine = SimulationEngine::kAgentArray;
    EXPECT_EQ(run_simulation(*protocol, initial, options).engine, ObservedEngine::kAgentArray);
    options.engine = SimulationEngine::kCountBatch;
    EXPECT_EQ(run_simulation(*protocol, initial, options).engine, ObservedEngine::kCountBatch);
    options.engine = SimulationEngine::kCollapsedBatch;
    EXPECT_EQ(run_simulation(*protocol, initial, options).engine, ObservedEngine::kCollapsed);
}

TEST(RunSimulationDispatch, DirectEntryPointsReportTheirEngine) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {20, 2});
    RunOptions options;
    options.seed = 4;
    options.max_interactions = 50;
    EXPECT_EQ(simulate(*protocol, initial, options).engine, ObservedEngine::kAgentArray);
    EXPECT_EQ(simulate_counts(*protocol, initial, options).engine, ObservedEngine::kCountBatch);
    EXPECT_EQ(simulate_collapsed(*protocol, initial, options).engine,
              ObservedEngine::kCollapsed);
}

}  // namespace
}  // namespace popproto
