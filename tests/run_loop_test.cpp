// The shared run-loop kernel (core/run_loop.h): RNG stream save/restore,
// checkpoint serialization, and the headline guarantee — suspending a run at
// a checkpoint and resuming it is bit-identical to the uninterrupted run on
// every engine, including cuts inside the batch engine's geometric null
// skips and cuts landing exactly on snapshot boundaries.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_simulator.h"
#include "core/rng.h"
#include "core/run_loop.h"
#include "core/schedulers.h"
#include "core/simulator.h"
#include "graphs/graph_simulation.h"
#include "graphs/interaction_graph.h"
#include "protocols/counting.h"
#include "protocols/epidemic.h"

namespace popproto {
namespace {

TEST(RngState, SaveRestoreReproducesStreamBitForBit) {
    Rng rng(42);
    for (int i = 0; i < 100; ++i) rng();  // advance to an arbitrary position

    const Rng::StreamState state = rng.save_state();
    std::vector<std::uint64_t> raw, bounded, skips;
    std::vector<double> uniforms;
    for (int i = 0; i < 50; ++i) {
        raw.push_back(rng());
        bounded.push_back(rng.below(977));
        uniforms.push_back(rng.uniform01());
        skips.push_back(rng.geometric_skips(0.01));
    }

    rng.restore_state(state);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(rng(), raw[i]) << i;
        EXPECT_EQ(rng.below(977), bounded[i]) << i;
        EXPECT_EQ(rng.uniform01(), uniforms[i]) << i;
        EXPECT_EQ(rng.geometric_skips(0.01), skips[i]) << i;
    }

    // Restoring into a *different* generator works just as well.
    Rng other(7);
    other.restore_state(state);
    EXPECT_EQ(other(), raw[0]);
}

TEST(RngState, AllZeroStateIsNudgedToAValidOne) {
    Rng rng(1);
    rng.restore_state(Rng::StreamState{});  // corrupt checkpoint: all zeros
    // xoshiro256** is stuck at zero forever from the all-zero state; the
    // nudge must make the generator produce varying output again.
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    EXPECT_TRUE(a != 0 || b != 0);
}

TEST(RunCheckpointIO, CountPayloadRoundTrips) {
    RunCheckpoint checkpoint;
    checkpoint.engine = ObservedEngine::kCountBatch;
    checkpoint.population = 1000;
    checkpoint.num_states = 3;
    checkpoint.rng.words = {1, 2, 0xffffffffffffffffULL, 4};
    checkpoint.interactions = 123456;
    checkpoint.effective_interactions = 789;
    checkpoint.last_output_change = 100000;
    checkpoint.next_silence_check = 130000;
    checkpoint.changed_since_silence_check = false;
    checkpoint.has_pending_skip = true;
    checkpoint.pending_null_skips = 4242;
    checkpoint.counts = {998, 0, 2};

    EXPECT_EQ(checkpoint_from_string(checkpoint_to_string(checkpoint)), checkpoint);
}

TEST(RunCheckpointIO, AgentPayloadRoundTrips) {
    RunCheckpoint checkpoint;
    checkpoint.engine = ObservedEngine::kGraph;
    checkpoint.population = 5;
    checkpoint.num_states = 8;
    checkpoint.rng.words = {9, 8, 7, 6};
    checkpoint.interactions = 17;
    checkpoint.agent_states = {0, 3, 7, 7, 1};

    EXPECT_EQ(checkpoint_from_string(checkpoint_to_string(checkpoint)), checkpoint);
}

/// Parses malformed checkpoint text and returns the exception message; the
/// parse succeeding is a test failure.
std::string parse_error_message(const std::string& text) {
    try {
        checkpoint_from_string(text);
    } catch (const std::invalid_argument& error) {
        return error.what();
    }
    ADD_FAILURE() << "parse unexpectedly succeeded for: " << text;
    return {};
}

TEST(RunCheckpointIO, RejectsMalformedInputWithLineAndToken) {
    // Every diagnostic names the line and the offending token, so a
    // corrupted spill file is diagnosable from the message alone.
    EXPECT_EQ(parse_error_message(""),
              "read_checkpoint: line 1: unexpected end of file, expected "
              "'popproto-checkpoint'");
    EXPECT_EQ(parse_error_message("not a checkpoint"),
              "read_checkpoint: line 1: not a popproto checkpoint (got 'not')");
    EXPECT_EQ(parse_error_message("popproto-checkpoint v999\n"),
              "read_checkpoint: line 1: unsupported checkpoint format version 'v999'");

    RunCheckpoint checkpoint;
    checkpoint.counts = {2, 3};
    const std::string text = checkpoint_to_string(checkpoint);

    // Truncated file: the message points past the last surviving line.
    const std::size_t cut = text.find("interactions ");
    ASSERT_NE(cut, std::string::npos);
    const std::string truncated = text.substr(0, cut);  // ends at a line boundary
    const std::string truncated_message = parse_error_message(truncated);
    EXPECT_EQ(truncated_message.rfind("read_checkpoint: line ", 0), 0u) << truncated_message;
    EXPECT_NE(truncated_message.find("unexpected end of file"), std::string::npos)
        << truncated_message;

    // A corrupted numeric field names the key and echoes the bad token.
    std::string corrupt = text;
    const std::size_t population_at = corrupt.find("population 0");
    ASSERT_NE(population_at, std::string::npos);
    corrupt.replace(population_at, std::string("population 0").size(), "population zero");
    EXPECT_EQ(parse_error_message(corrupt),
              "read_checkpoint: line 3: bad value for 'population': got 'zero'");

    // A misplaced key names what was expected and what was found.
    std::string wrong_key = text;
    const std::size_t engine_at = wrong_key.find("engine ");
    ASSERT_NE(engine_at, std::string::npos);
    wrong_key.replace(engine_at, 7, "motor ");
    EXPECT_EQ(parse_error_message(wrong_key),
              "read_checkpoint: line 2: expected 'engine', got 'motor'");

    // Trailing garbage after a complete line is rejected, not ignored.
    std::string trailing = text;
    const std::size_t interactions_end = trailing.find('\n', trailing.find("interactions "));
    ASSERT_NE(interactions_end, std::string::npos);
    trailing.insert(interactions_end, " 99");
    EXPECT_EQ(parse_error_message(trailing),
              "read_checkpoint: line 6: unexpected trailing token '99'");
}

TEST(RunCheckpointIO, AtomicWriteFailurePathNamesTheFile) {
    // write_checkpoint_atomic into a directory that does not exist cannot
    // open its temporary; the exception must name the path it tried.
    RunCheckpoint checkpoint;
    checkpoint.counts = {2, 3};
    const std::string path = "no-such-dir-for-checkpoints/run.ckpt";
    try {
        write_checkpoint_atomic(path, checkpoint);
        FAIL() << "write into a missing directory unexpectedly succeeded";
    } catch (const std::runtime_error& error) {
        const std::string message = error.what();
        const std::string prefix = "write_checkpoint_atomic: cannot open " + path + ".tmp";
        EXPECT_EQ(message.rfind(prefix, 0), 0u) << message;
    }
    // No stray temporary may survive the failure.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    try {
        read_checkpoint_file(path);
        FAIL() << "read of a missing file unexpectedly succeeded";
    } catch (const std::runtime_error& error) {
        const std::string message = error.what();
        const std::string prefix = "read_checkpoint_file: cannot open " + path;
        EXPECT_EQ(message.rfind(prefix, 0), 0u) << message;
    }
}

TEST(RunCheckpointIO, AtomicWriteRoundTripsThroughTheFilesystem) {
    RunCheckpoint checkpoint;
    checkpoint.engine = ObservedEngine::kCountBatch;
    checkpoint.population = 12;
    checkpoint.num_states = 3;
    checkpoint.rng.words = {5, 6, 7, 8};
    checkpoint.interactions = 77;
    checkpoint.counts = {9, 0, 3};

    const std::string path =
        (std::filesystem::temp_directory_path() / "popproto_atomic_roundtrip.ckpt").string();
    write_checkpoint_atomic(path, checkpoint);
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // renamed, not left behind
    EXPECT_EQ(read_checkpoint_file(path), checkpoint);
    std::filesystem::remove(path);
}

/// Collects every checkpoint a run emits.
class CollectingSink final : public CheckpointSink {
public:
    void on_checkpoint(const RunCheckpoint& checkpoint) override {
        checkpoints.push_back(checkpoint);
    }
    std::vector<RunCheckpoint> checkpoints;
};

/// Records the snapshot trace (index, configuration) of a run.
class TraceObserver final : public RunObserver {
public:
    void on_snapshot(std::uint64_t interaction_index,
                     const CountConfiguration& configuration) override {
        snapshots.emplace_back(interaction_index, configuration);
    }
    std::vector<std::pair<std::uint64_t, CountConfiguration>> snapshots;
};

void expect_same_run(const RunResult& actual, const RunResult& expected) {
    EXPECT_EQ(actual.stop_reason, expected.stop_reason);
    EXPECT_EQ(actual.interactions, expected.interactions);
    EXPECT_EQ(actual.effective_interactions, expected.effective_interactions);
    EXPECT_EQ(actual.last_output_change, expected.last_output_change);
    EXPECT_EQ(actual.final_configuration, expected.final_configuration);
    EXPECT_EQ(actual.consensus, expected.consensus);
}

/// Shared bit-identity harness: runs `run` once uninterrupted, once with
/// checkpointing (must not perturb the result), then resumes from every
/// collected checkpoint and demands the identical RunResult each time.
/// Returns the collected checkpoints for engine-specific assertions.
template <typename RunFn>
std::vector<RunCheckpoint> check_resume_bit_identity(RunFn&& run, RunOptions options,
                                                     std::uint64_t checkpoint_every) {
    const RunResult baseline = run(options);

    CollectingSink sink;
    options.checkpoint_every = checkpoint_every;
    options.checkpoint_sink = &sink;
    const RunResult checkpointed = run(options);
    expect_same_run(checkpointed, baseline);
    EXPECT_FALSE(sink.checkpoints.empty());

    options.checkpoint_every = 0;
    options.checkpoint_sink = nullptr;
    for (const RunCheckpoint& checkpoint : sink.checkpoints) {
        // Serialization must not lose precision either: resume from the
        // text round-trip of the checkpoint, exactly as a CLI would.
        const RunCheckpoint reloaded =
            checkpoint_from_string(checkpoint_to_string(checkpoint));
        options.resume_from = &reloaded;
        expect_same_run(run(options), baseline);
    }
    return sink.checkpoints;
}

TEST(CheckpointResume, BitIdenticalOnAgentArray) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {40, 8});
    RunOptions options;
    options.seed = 11;
    check_resume_bit_identity(
        [&](const RunOptions& opts) { return simulate(*protocol, initial, opts); }, options,
        /*checkpoint_every=*/97);  // coprime to everything: cuts land mid-everything
}

TEST(CheckpointResume, BitIdenticalOnCountBatchInsideNullSkips) {
    // Two token holders among 1000 agents: almost every interaction is null,
    // so the checkpoint boundaries overwhelmingly fall *inside* geometric
    // jumps and must materialize the pending remainder exactly.
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {998, 2});
    RunOptions options;
    options.seed = 3;
    const auto checkpoints = check_resume_bit_identity(
        [&](const RunOptions& opts) { return simulate_counts(*protocol, initial, opts); },
        options, /*checkpoint_every=*/10000);

    bool any_pending = false;
    for (const RunCheckpoint& checkpoint : checkpoints)
        any_pending = any_pending || checkpoint.has_pending_skip;
    EXPECT_TRUE(any_pending) << "no cut landed inside a geometric null skip";
}

TEST(CheckpointResume, BitIdenticalOnWeighted) {
    const auto protocol = make_counting_protocol(3);
    std::vector<Symbol> inputs(30, 0);
    for (int i = 0; i < 6; ++i) inputs[i * 5] = 1;
    const auto initial = AgentConfiguration::from_inputs(*protocol, inputs);
    std::vector<double> weights(inputs.size());
    for (std::size_t i = 0; i < weights.size(); ++i)
        weights[i] = 1.0 + static_cast<double>(i % 7);
    RunOptions options;
    options.seed = 5;
    check_resume_bit_identity(
        [&](const RunOptions& opts) {
            return simulate_weighted(*protocol, initial, weights, opts);
        },
        options, /*checkpoint_every=*/113);
}

TEST(CheckpointResume, BitIdenticalOnGraph) {
    const auto base = make_counting_protocol(2);
    const auto protocol = make_graph_simulation_protocol(*base);
    const InteractionGraph graph = InteractionGraph::ring(12);
    const std::vector<Symbol> inputs(12, 1);
    RunOptions options;
    options.seed = 17;
    options.max_interactions = 5000;  // graph runs never fall silent

    // The graph entry point returns per-agent state, which the RunResult
    // comparison cannot see; compare it through the checkpoint-shaped lens.
    std::vector<State> baseline_states;
    const auto run = [&](const RunOptions& opts) {
        GraphRunResult graph_result = simulate_on_graph(*protocol, graph, inputs, opts);
        if (opts.resume_from == nullptr && opts.checkpoint_sink == nullptr)
            baseline_states = graph_result.final_configuration.states();
        else
            EXPECT_EQ(graph_result.final_configuration.states(), baseline_states);
        return RunResult{graph_result.final_configuration.to_counts(protocol->num_states()),
                         graph_result.stop_reason, graph_result.interactions,
                         graph_result.effective_interactions, graph_result.last_output_change,
                         graph_result.consensus};
    };
    check_resume_bit_identity(run, options, /*checkpoint_every=*/333);
}

TEST(CheckpointResume, CutExactlyOnSnapshotBoundaryPreservesTrace) {
    // checkpoint_every is a multiple of the snapshot period, so every cut
    // lands exactly on a snapshot boundary.  The boundary snapshot belongs
    // to the suspended prefix; the resumed run must emit exactly the
    // remaining suffix of the uninterrupted trace.
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {40, 8});
    RunOptions options;
    options.seed = 23;
    options.snapshots = SnapshotSchedule::every(64);

    TraceObserver uninterrupted;
    options.observer = &uninterrupted;
    const RunResult baseline = simulate(*protocol, initial, options);

    CollectingSink sink;
    TraceObserver checkpointed_trace;
    options.observer = &checkpointed_trace;
    options.checkpoint_every = 256;
    options.checkpoint_sink = &sink;
    expect_same_run(simulate(*protocol, initial, options), baseline);
    EXPECT_EQ(checkpointed_trace.snapshots, uninterrupted.snapshots);
    ASSERT_FALSE(sink.checkpoints.empty());

    options.checkpoint_every = 0;
    options.checkpoint_sink = nullptr;
    for (const RunCheckpoint& checkpoint : sink.checkpoints) {
        EXPECT_EQ(checkpoint.interactions % 256, 0u);
        TraceObserver resumed_trace;
        options.observer = &resumed_trace;
        options.resume_from = &checkpoint;
        expect_same_run(simulate(*protocol, initial, options), baseline);

        // prefix (<= cut) + resumed == uninterrupted, with no boundary
        // snapshot duplicated or dropped.
        std::vector<std::pair<std::uint64_t, CountConfiguration>> stitched;
        for (const auto& snapshot : uninterrupted.snapshots)
            if (snapshot.first <= checkpoint.interactions) stitched.push_back(snapshot);
        stitched.insert(stitched.end(), resumed_trace.snapshots.begin(),
                        resumed_trace.snapshots.end());
        EXPECT_EQ(stitched, uninterrupted.snapshots) << "cut at " << checkpoint.interactions;
    }
}

TEST(CheckpointResume, ValidatesCheckpointAgainstTheRun) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 2});
    RunOptions options;
    options.seed = 2;

    CollectingSink sink;
    options.checkpoint_every = 50;
    options.checkpoint_sink = &sink;
    simulate(*protocol, initial, options);
    ASSERT_FALSE(sink.checkpoints.empty());
    const RunCheckpoint checkpoint = sink.checkpoints.front();

    options.checkpoint_every = 0;
    options.checkpoint_sink = nullptr;
    options.resume_from = &checkpoint;
    // Wrong engine: an agent-array checkpoint cannot resume the batch engine.
    EXPECT_THROW(simulate_counts(*protocol, initial, options), std::invalid_argument);
    // Wrong population.
    const auto larger = CountConfiguration::from_input_counts(*protocol, {20, 2});
    EXPECT_THROW(simulate(*protocol, larger, options), std::invalid_argument);
    // Budget below the cut.
    options.max_interactions = checkpoint.interactions - 1;
    EXPECT_THROW(simulate(*protocol, initial, options), std::invalid_argument);
    options.max_interactions = 0;
    EXPECT_NO_THROW(simulate(*protocol, initial, options));

    // checkpoint_every without a sink is rejected up front.
    RunOptions no_sink;
    no_sink.checkpoint_every = 10;
    EXPECT_THROW(simulate(*protocol, initial, no_sink), std::invalid_argument);
}

// A Scheduler that keeps the default checkpoint hooks (checkpointable()
// false): checkpoint/resume must be rejected up front for it, while the
// built-in schedulers — which serialize through the interaction-model layer —
// are accepted (their bit-identity is proven in interaction_model_test.cpp).
TEST(CheckpointResume, NonCheckpointableSchedulerRejectsCheckpointing) {
    class FirstPairScheduler final : public Scheduler {
    public:
        AgentPair next(const AgentConfiguration&) override { return {0, 1}; }
    };
    const auto protocol = make_counting_protocol(2);
    const auto initial =
        AgentConfiguration::from_inputs(*protocol, std::vector<Symbol>{1, 1, 0, 0});
    FirstPairScheduler scheduler;
    CollectingSink sink;
    RunOptions options;
    options.max_interactions = 100;
    options.checkpoint_every = 10;
    options.checkpoint_sink = &sink;
    EXPECT_THROW(simulate_with_scheduler(*protocol, initial, scheduler, options),
                 std::invalid_argument);

    // The same run without checkpointing is fine.
    RunOptions plain;
    plain.max_interactions = 100;
    EXPECT_NO_THROW(simulate_with_scheduler(*protocol, initial, scheduler, plain));

    // Built-in schedulers accept checkpointing now.
    RoundRobinScheduler round_robin(4);
    EXPECT_NO_THROW(simulate_with_scheduler(*protocol, initial, round_robin, options));
    EXPECT_FALSE(sink.checkpoints.empty());
    EXPECT_EQ(sink.checkpoints.front().interaction_model, "round_robin");
}

TEST(RunLoop, ResolvesZeroBudgetAndPeriodDefaults) {
    RunOptions options;  // both 0
    EXPECT_EQ(resolved_budget(options, 100), default_budget(100));
    EXPECT_EQ(resolved_silence_check_period(options, 100), 1024u);
    EXPECT_EQ(resolved_silence_check_period(options, 1000), 4000u);
    options.max_interactions = 7;
    options.silence_check_period = 9;
    EXPECT_EQ(resolved_budget(options, 100), 7u);
    EXPECT_EQ(resolved_silence_check_period(options, 100), 9u);
}

/// Runs `run` to completion in pause_after quanta on the absolute grid
/// `(done/quantum + 1) * quantum` — exactly how the service daemon slices a
/// session — chaining each pause checkpoint into the next segment.  Returns
/// the terminal RunResult and the number of quanta executed.
template <typename RunFn>
std::pair<RunResult, int> run_in_quanta(RunFn&& run, RunOptions options,
                                        std::uint64_t quantum) {
    CollectingSink sink;
    options.checkpoint_sink = &sink;
    RunCheckpoint current;
    bool resuming = false;
    for (int quanta = 1; quanta < 100000; ++quanta) {
        options.resume_from = resuming ? &current : nullptr;
        const std::uint64_t done = resuming ? current.interactions : 0;
        options.pause_after = (done / quantum + 1) * quantum;
        const RunResult result = run(options);
        if (result.stop_reason != StopReason::kPaused) return {result, quanta};
        EXPECT_FALSE(sink.checkpoints.empty());
        EXPECT_EQ(sink.checkpoints.back().interactions, options.pause_after);
        current = sink.checkpoints.back();
        resuming = true;
    }
    ADD_FAILURE() << "run never reached a terminal state";
    options.pause_after = 0;
    options.resume_from = nullptr;
    return {run(options), 0};
}

TEST(PauseResume, ChainedQuantaBitIdenticalOnAgentArray) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {40, 8});
    RunOptions options;
    options.seed = 11;
    const RunResult baseline = simulate(*protocol, initial, options);

    const auto run = [&](const RunOptions& opts) { return simulate(*protocol, initial, opts); };
    const auto [sliced, quanta] = run_in_quanta(run, options, /*quantum=*/97);
    expect_same_run(sliced, baseline);
    EXPECT_GT(quanta, 1) << "quantum too large to exercise slicing";
}

TEST(PauseResume, ChainedQuantaBitIdenticalInsideNullSkips) {
    // Token-sparse population: quantum boundaries overwhelmingly cut inside
    // the batch engine's geometric null skips, which must clamp (not
    // redraw) for the sliced run to stay bit-identical.
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {998, 2});
    RunOptions options;
    options.seed = 3;
    const RunResult baseline = simulate_counts(*protocol, initial, options);

    const auto run = [&](const RunOptions& opts) {
        return simulate_counts(*protocol, initial, opts);
    };
    const auto [sliced, quanta] = run_in_quanta(run, options, /*quantum=*/10000);
    expect_same_run(sliced, baseline);
    EXPECT_GT(quanta, 1);
}

TEST(PauseResume, TerminalRunIgnoresALaterPauseIndex) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 2});
    RunOptions options;
    options.seed = 2;
    const RunResult baseline = simulate(*protocol, initial, options);

    CollectingSink sink;
    options.checkpoint_sink = &sink;
    options.pause_after = baseline.interactions + 1000000;  // beyond the natural stop
    const RunResult result = simulate(*protocol, initial, options);
    expect_same_run(result, baseline);
    EXPECT_NE(result.stop_reason, StopReason::kPaused);
    EXPECT_TRUE(sink.checkpoints.empty());
}

TEST(PauseResume, PauseRequiresACheckpointSink) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 2});
    RunOptions options;
    options.pause_after = 100;  // no checkpoint_sink
    EXPECT_THROW(simulate(*protocol, initial, options), std::invalid_argument);
}

/// Raises a stop flag from inside the run, at the first snapshot at or past
/// a trigger index — a deterministic stand-in for a signal arriving mid-run.
class FlagRaisingObserver final : public RunObserver {
public:
    FlagRaisingObserver(std::atomic<bool>& flag, std::uint64_t trigger)
        : flag_(flag), trigger_(trigger) {}
    void on_snapshot(std::uint64_t interaction_index, const CountConfiguration&) override {
        if (interaction_index >= trigger_) flag_.store(true, std::memory_order_relaxed);
    }

private:
    std::atomic<bool>& flag_;
    std::uint64_t trigger_;
};

TEST(PauseResume, StopFlagDeliversAResumableCheckpoint) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {40, 8});
    RunOptions options;
    options.seed = 7;
    const RunResult baseline = simulate(*protocol, initial, options);
    ASSERT_GT(baseline.interactions, 200u);

    std::atomic<bool> stop{false};
    FlagRaisingObserver raiser(stop, /*trigger=*/100);
    CollectingSink sink;
    options.snapshots = SnapshotSchedule::every(50);
    options.observer = &raiser;
    options.stop_flag = &stop;
    options.checkpoint_sink = &sink;
    const RunResult interrupted = simulate(*protocol, initial, options);
    EXPECT_EQ(interrupted.stop_reason, StopReason::kPaused);
    EXPECT_LT(interrupted.interactions, baseline.interactions);
    ASSERT_FALSE(sink.checkpoints.empty());

    // Resuming from the interrupt checkpoint with the flag lowered finishes
    // exactly like the run that was never interrupted.
    const RunCheckpoint resume_point = sink.checkpoints.back();
    RunOptions resumed_options;
    resumed_options.seed = 7;
    resumed_options.resume_from = &resume_point;
    expect_same_run(simulate(*protocol, initial, resumed_options), baseline);
}

TEST(PauseResume, StopFlagAlreadyRaisedStopsBeforeAnyInteraction) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 2});
    std::atomic<bool> stop{true};
    CollectingSink sink;
    RunOptions options;
    options.seed = 4;
    options.stop_flag = &stop;
    options.checkpoint_sink = &sink;
    const RunResult paused = simulate(*protocol, initial, options);
    EXPECT_EQ(paused.stop_reason, StopReason::kPaused);
    EXPECT_EQ(paused.interactions, 0u);
    ASSERT_FALSE(sink.checkpoints.empty());

    const RunResult baseline = [&] {
        RunOptions plain;
        plain.seed = 4;
        return simulate(*protocol, initial, plain);
    }();
    const RunCheckpoint resume_point = sink.checkpoints.back();
    RunOptions resumed_options;
    resumed_options.seed = 4;
    resumed_options.resume_from = &resume_point;
    expect_same_run(simulate(*protocol, initial, resumed_options), baseline);
}

TEST(RunLoop, DefaultBudgetSaturatesInsteadOfOverflowing) {
    // 64 n^2 (ln n + 1) clears 2^64 before n = 2^28; the old float->int
    // cast was undefined there and resolved n = 2^30 to a budget of 1.
    EXPECT_EQ(default_budget(std::uint64_t{1} << 30), ~std::uint64_t{0});
    EXPECT_EQ(default_budget(std::uint64_t{1} << 40), ~std::uint64_t{0});
    // Below the overflow point the formula is untouched and monotone.
    EXPECT_LT(default_budget(1 << 20), default_budget(1 << 22));
    EXPECT_LT(default_budget(1 << 22), ~std::uint64_t{0});
}

}  // namespace
}  // namespace popproto
