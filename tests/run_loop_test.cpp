// The shared run-loop kernel (core/run_loop.h): RNG stream save/restore,
// checkpoint serialization, and the headline guarantee — suspending a run at
// a checkpoint and resuming it is bit-identical to the uninterrupted run on
// every engine, including cuts inside the batch engine's geometric null
// skips and cuts landing exactly on snapshot boundaries.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/batch_simulator.h"
#include "core/rng.h"
#include "core/run_loop.h"
#include "core/schedulers.h"
#include "core/simulator.h"
#include "graphs/graph_simulation.h"
#include "graphs/interaction_graph.h"
#include "protocols/counting.h"
#include "protocols/epidemic.h"

namespace popproto {
namespace {

TEST(RngState, SaveRestoreReproducesStreamBitForBit) {
    Rng rng(42);
    for (int i = 0; i < 100; ++i) rng();  // advance to an arbitrary position

    const Rng::StreamState state = rng.save_state();
    std::vector<std::uint64_t> raw, bounded, skips;
    std::vector<double> uniforms;
    for (int i = 0; i < 50; ++i) {
        raw.push_back(rng());
        bounded.push_back(rng.below(977));
        uniforms.push_back(rng.uniform01());
        skips.push_back(rng.geometric_skips(0.01));
    }

    rng.restore_state(state);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(rng(), raw[i]) << i;
        EXPECT_EQ(rng.below(977), bounded[i]) << i;
        EXPECT_EQ(rng.uniform01(), uniforms[i]) << i;
        EXPECT_EQ(rng.geometric_skips(0.01), skips[i]) << i;
    }

    // Restoring into a *different* generator works just as well.
    Rng other(7);
    other.restore_state(state);
    EXPECT_EQ(other(), raw[0]);
}

TEST(RngState, AllZeroStateIsNudgedToAValidOne) {
    Rng rng(1);
    rng.restore_state(Rng::StreamState{});  // corrupt checkpoint: all zeros
    // xoshiro256** is stuck at zero forever from the all-zero state; the
    // nudge must make the generator produce varying output again.
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    EXPECT_TRUE(a != 0 || b != 0);
}

TEST(RunCheckpointIO, CountPayloadRoundTrips) {
    RunCheckpoint checkpoint;
    checkpoint.engine = ObservedEngine::kCountBatch;
    checkpoint.population = 1000;
    checkpoint.num_states = 3;
    checkpoint.rng.words = {1, 2, 0xffffffffffffffffULL, 4};
    checkpoint.interactions = 123456;
    checkpoint.effective_interactions = 789;
    checkpoint.last_output_change = 100000;
    checkpoint.next_silence_check = 130000;
    checkpoint.changed_since_silence_check = false;
    checkpoint.has_pending_skip = true;
    checkpoint.pending_null_skips = 4242;
    checkpoint.counts = {998, 0, 2};

    EXPECT_EQ(checkpoint_from_string(checkpoint_to_string(checkpoint)), checkpoint);
}

TEST(RunCheckpointIO, AgentPayloadRoundTrips) {
    RunCheckpoint checkpoint;
    checkpoint.engine = ObservedEngine::kGraph;
    checkpoint.population = 5;
    checkpoint.num_states = 8;
    checkpoint.rng.words = {9, 8, 7, 6};
    checkpoint.interactions = 17;
    checkpoint.agent_states = {0, 3, 7, 7, 1};

    EXPECT_EQ(checkpoint_from_string(checkpoint_to_string(checkpoint)), checkpoint);
}

TEST(RunCheckpointIO, RejectsMalformedInput) {
    EXPECT_THROW(checkpoint_from_string(""), std::invalid_argument);
    EXPECT_THROW(checkpoint_from_string("not a checkpoint"), std::invalid_argument);
    EXPECT_THROW(checkpoint_from_string("popproto-checkpoint v999\n"), std::invalid_argument);

    RunCheckpoint checkpoint;
    checkpoint.counts = {2, 3};
    std::string text = checkpoint_to_string(checkpoint);
    text.resize(text.size() / 2);  // truncated file
    EXPECT_THROW(checkpoint_from_string(text), std::invalid_argument);
}

/// Collects every checkpoint a run emits.
class CollectingSink final : public CheckpointSink {
public:
    void on_checkpoint(const RunCheckpoint& checkpoint) override {
        checkpoints.push_back(checkpoint);
    }
    std::vector<RunCheckpoint> checkpoints;
};

/// Records the snapshot trace (index, configuration) of a run.
class TraceObserver final : public RunObserver {
public:
    void on_snapshot(std::uint64_t interaction_index,
                     const CountConfiguration& configuration) override {
        snapshots.emplace_back(interaction_index, configuration);
    }
    std::vector<std::pair<std::uint64_t, CountConfiguration>> snapshots;
};

void expect_same_run(const RunResult& actual, const RunResult& expected) {
    EXPECT_EQ(actual.stop_reason, expected.stop_reason);
    EXPECT_EQ(actual.interactions, expected.interactions);
    EXPECT_EQ(actual.effective_interactions, expected.effective_interactions);
    EXPECT_EQ(actual.last_output_change, expected.last_output_change);
    EXPECT_EQ(actual.final_configuration, expected.final_configuration);
    EXPECT_EQ(actual.consensus, expected.consensus);
}

/// Shared bit-identity harness: runs `run` once uninterrupted, once with
/// checkpointing (must not perturb the result), then resumes from every
/// collected checkpoint and demands the identical RunResult each time.
/// Returns the collected checkpoints for engine-specific assertions.
template <typename RunFn>
std::vector<RunCheckpoint> check_resume_bit_identity(RunFn&& run, RunOptions options,
                                                     std::uint64_t checkpoint_every) {
    const RunResult baseline = run(options);

    CollectingSink sink;
    options.checkpoint_every = checkpoint_every;
    options.checkpoint_sink = &sink;
    const RunResult checkpointed = run(options);
    expect_same_run(checkpointed, baseline);
    EXPECT_FALSE(sink.checkpoints.empty());

    options.checkpoint_every = 0;
    options.checkpoint_sink = nullptr;
    for (const RunCheckpoint& checkpoint : sink.checkpoints) {
        // Serialization must not lose precision either: resume from the
        // text round-trip of the checkpoint, exactly as a CLI would.
        const RunCheckpoint reloaded =
            checkpoint_from_string(checkpoint_to_string(checkpoint));
        options.resume_from = &reloaded;
        expect_same_run(run(options), baseline);
    }
    return sink.checkpoints;
}

TEST(CheckpointResume, BitIdenticalOnAgentArray) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {40, 8});
    RunOptions options;
    options.seed = 11;
    check_resume_bit_identity(
        [&](const RunOptions& opts) { return simulate(*protocol, initial, opts); }, options,
        /*checkpoint_every=*/97);  // coprime to everything: cuts land mid-everything
}

TEST(CheckpointResume, BitIdenticalOnCountBatchInsideNullSkips) {
    // Two token holders among 1000 agents: almost every interaction is null,
    // so the checkpoint boundaries overwhelmingly fall *inside* geometric
    // jumps and must materialize the pending remainder exactly.
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {998, 2});
    RunOptions options;
    options.seed = 3;
    const auto checkpoints = check_resume_bit_identity(
        [&](const RunOptions& opts) { return simulate_counts(*protocol, initial, opts); },
        options, /*checkpoint_every=*/10000);

    bool any_pending = false;
    for (const RunCheckpoint& checkpoint : checkpoints)
        any_pending = any_pending || checkpoint.has_pending_skip;
    EXPECT_TRUE(any_pending) << "no cut landed inside a geometric null skip";
}

TEST(CheckpointResume, BitIdenticalOnWeighted) {
    const auto protocol = make_counting_protocol(3);
    std::vector<Symbol> inputs(30, 0);
    for (int i = 0; i < 6; ++i) inputs[i * 5] = 1;
    const auto initial = AgentConfiguration::from_inputs(*protocol, inputs);
    std::vector<double> weights(inputs.size());
    for (std::size_t i = 0; i < weights.size(); ++i)
        weights[i] = 1.0 + static_cast<double>(i % 7);
    RunOptions options;
    options.seed = 5;
    check_resume_bit_identity(
        [&](const RunOptions& opts) {
            return simulate_weighted(*protocol, initial, weights, opts);
        },
        options, /*checkpoint_every=*/113);
}

TEST(CheckpointResume, BitIdenticalOnGraph) {
    const auto base = make_counting_protocol(2);
    const auto protocol = make_graph_simulation_protocol(*base);
    const InteractionGraph graph = InteractionGraph::ring(12);
    const std::vector<Symbol> inputs(12, 1);
    RunOptions options;
    options.seed = 17;
    options.max_interactions = 5000;  // graph runs never fall silent

    // The graph entry point returns per-agent state, which the RunResult
    // comparison cannot see; compare it through the checkpoint-shaped lens.
    std::vector<State> baseline_states;
    const auto run = [&](const RunOptions& opts) {
        GraphRunResult graph_result = simulate_on_graph(*protocol, graph, inputs, opts);
        if (opts.resume_from == nullptr && opts.checkpoint_sink == nullptr)
            baseline_states = graph_result.final_configuration.states();
        else
            EXPECT_EQ(graph_result.final_configuration.states(), baseline_states);
        return RunResult{graph_result.final_configuration.to_counts(protocol->num_states()),
                         graph_result.stop_reason, graph_result.interactions,
                         graph_result.effective_interactions, graph_result.last_output_change,
                         graph_result.consensus};
    };
    check_resume_bit_identity(run, options, /*checkpoint_every=*/333);
}

TEST(CheckpointResume, CutExactlyOnSnapshotBoundaryPreservesTrace) {
    // checkpoint_every is a multiple of the snapshot period, so every cut
    // lands exactly on a snapshot boundary.  The boundary snapshot belongs
    // to the suspended prefix; the resumed run must emit exactly the
    // remaining suffix of the uninterrupted trace.
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {40, 8});
    RunOptions options;
    options.seed = 23;
    options.snapshots = SnapshotSchedule::every(64);

    TraceObserver uninterrupted;
    options.observer = &uninterrupted;
    const RunResult baseline = simulate(*protocol, initial, options);

    CollectingSink sink;
    TraceObserver checkpointed_trace;
    options.observer = &checkpointed_trace;
    options.checkpoint_every = 256;
    options.checkpoint_sink = &sink;
    expect_same_run(simulate(*protocol, initial, options), baseline);
    EXPECT_EQ(checkpointed_trace.snapshots, uninterrupted.snapshots);
    ASSERT_FALSE(sink.checkpoints.empty());

    options.checkpoint_every = 0;
    options.checkpoint_sink = nullptr;
    for (const RunCheckpoint& checkpoint : sink.checkpoints) {
        EXPECT_EQ(checkpoint.interactions % 256, 0u);
        TraceObserver resumed_trace;
        options.observer = &resumed_trace;
        options.resume_from = &checkpoint;
        expect_same_run(simulate(*protocol, initial, options), baseline);

        // prefix (<= cut) + resumed == uninterrupted, with no boundary
        // snapshot duplicated or dropped.
        std::vector<std::pair<std::uint64_t, CountConfiguration>> stitched;
        for (const auto& snapshot : uninterrupted.snapshots)
            if (snapshot.first <= checkpoint.interactions) stitched.push_back(snapshot);
        stitched.insert(stitched.end(), resumed_trace.snapshots.begin(),
                        resumed_trace.snapshots.end());
        EXPECT_EQ(stitched, uninterrupted.snapshots) << "cut at " << checkpoint.interactions;
    }
}

TEST(CheckpointResume, ValidatesCheckpointAgainstTheRun) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 2});
    RunOptions options;
    options.seed = 2;

    CollectingSink sink;
    options.checkpoint_every = 50;
    options.checkpoint_sink = &sink;
    simulate(*protocol, initial, options);
    ASSERT_FALSE(sink.checkpoints.empty());
    const RunCheckpoint checkpoint = sink.checkpoints.front();

    options.checkpoint_every = 0;
    options.checkpoint_sink = nullptr;
    options.resume_from = &checkpoint;
    // Wrong engine: an agent-array checkpoint cannot resume the batch engine.
    EXPECT_THROW(simulate_counts(*protocol, initial, options), std::invalid_argument);
    // Wrong population.
    const auto larger = CountConfiguration::from_input_counts(*protocol, {20, 2});
    EXPECT_THROW(simulate(*protocol, larger, options), std::invalid_argument);
    // Budget below the cut.
    options.max_interactions = checkpoint.interactions - 1;
    EXPECT_THROW(simulate(*protocol, initial, options), std::invalid_argument);
    options.max_interactions = 0;
    EXPECT_NO_THROW(simulate(*protocol, initial, options));

    // checkpoint_every without a sink is rejected up front.
    RunOptions no_sink;
    no_sink.checkpoint_every = 10;
    EXPECT_THROW(simulate(*protocol, initial, no_sink), std::invalid_argument);
}

TEST(CheckpointResume, SchedulerEngineRejectsCheckpointing) {
    const auto protocol = make_counting_protocol(2);
    const auto initial =
        AgentConfiguration::from_inputs(*protocol, std::vector<Symbol>{1, 1, 0, 0});
    RoundRobinScheduler scheduler(4);
    CollectingSink sink;
    RunOptions options;
    options.max_interactions = 100;
    options.checkpoint_every = 10;
    options.checkpoint_sink = &sink;
    EXPECT_THROW(simulate_with_scheduler(*protocol, initial, scheduler, options),
                 std::invalid_argument);
}

TEST(RunLoop, ResolvesZeroBudgetAndPeriodDefaults) {
    RunOptions options;  // both 0
    EXPECT_EQ(resolved_budget(options, 100), default_budget(100));
    EXPECT_EQ(resolved_silence_check_period(options, 100), 1024u);
    EXPECT_EQ(resolved_silence_check_period(options, 1000), 4000u);
    options.max_interactions = 7;
    options.silence_check_period = 9;
    EXPECT_EQ(resolved_budget(options, 100), 7u);
    EXPECT_EQ(resolved_silence_check_period(options, 100), 9u);
}

TEST(RunLoop, DefaultBudgetSaturatesInsteadOfOverflowing) {
    // 64 n^2 (ln n + 1) clears 2^64 before n = 2^28; the old float->int
    // cast was undefined there and resolved n = 2^30 to a budget of 1.
    EXPECT_EQ(default_budget(std::uint64_t{1} << 30), ~std::uint64_t{0});
    EXPECT_EQ(default_budget(std::uint64_t{1} << 40), ~std::uint64_t{0});
    // Below the overflow point the formula is untouched and monotone.
    EXPECT_LT(default_budget(1 << 20), default_budget(1 << 22));
    EXPECT_LT(default_budget(1 << 22), ~std::uint64_t{0});
}

}  // namespace
}  // namespace popproto
