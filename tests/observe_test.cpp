// Run-trace instrumentation: schedules, observers, and the
// observation-never-perturbs contract (core/observer.h, src/observe).

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch_simulator.h"
#include "core/observer.h"
#include "core/simulator.h"
#include "graphs/graph_simulation.h"
#include "graphs/interaction_graph.h"
#include "observe/jsonl_writer.h"
#include "observe/metrics.h"
#include "observe/trace_recorder.h"
#include "protocols/counting.h"
#include "protocols/epidemic.h"
#include "randomized/trials.h"
#include "test_util.h"

namespace popproto {
namespace {

using testutil::JsonChecker;

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
}

// Count lines whose "event" field is `event` (relies on the writer always
// leading with {"event":"...").
std::uint64_t count_events(const std::vector<std::string>& lines, const std::string& event) {
    const std::string prefix = "{\"event\":\"" + event + "\"";
    std::uint64_t count = 0;
    for (const std::string& line : lines) {
        if (line.compare(0, prefix.size(), prefix) == 0) ++count;
    }
    return count;
}

bool results_equal(const RunResult& a, const RunResult& b) {
    return a.stop_reason == b.stop_reason && a.interactions == b.interactions &&
           a.effective_interactions == b.effective_interactions &&
           a.last_output_change == b.last_output_change && a.consensus == b.consensus &&
           a.final_configuration.counts() == b.final_configuration.counts();
}

// --- SnapshotSchedule ----------------------------------------------------

TEST(SnapshotSchedule, DisabledNeverFires) {
    const SnapshotSchedule schedule;
    EXPECT_FALSE(schedule.enabled());
    EXPECT_EQ(schedule.first_index(), SnapshotSchedule::kNever);
    EXPECT_EQ(schedule.next_after(0), SnapshotSchedule::kNever);
    EXPECT_EQ(schedule.next_after(1u << 20), SnapshotSchedule::kNever);
}

TEST(SnapshotSchedule, FixedPeriodArithmetic) {
    const SnapshotSchedule schedule = SnapshotSchedule::every(100);
    EXPECT_TRUE(schedule.enabled());
    EXPECT_EQ(schedule.first_index(), 100u);
    EXPECT_EQ(schedule.next_after(0), 100u);
    EXPECT_EQ(schedule.next_after(99), 100u);
    EXPECT_EQ(schedule.next_after(100), 200u);
    EXPECT_EQ(schedule.next_after(101), 200u);
    EXPECT_EQ(schedule.next_after(1000), 1100u);
    // Near-overflow indices saturate to kNever instead of wrapping.
    EXPECT_EQ(schedule.next_after(SnapshotSchedule::kNever - 1), SnapshotSchedule::kNever);
}

TEST(SnapshotSchedule, LogSpacedIsStrictlyIncreasing) {
    const SnapshotSchedule schedule = SnapshotSchedule::log_spaced(1.5, 4);
    EXPECT_EQ(schedule.first_index(), 4u);
    std::uint64_t index = 0;
    std::vector<std::uint64_t> scheduled;
    for (int i = 0; i < 30; ++i) {
        const std::uint64_t next = schedule.next_after(index);
        ASSERT_GT(next, index);
        scheduled.push_back(next);
        index = next;
    }
    // First few indices: 4, 6, 9, 14, 21, ... (v -> max(v+1, ceil(1.5 v))).
    EXPECT_EQ(scheduled[0], 4u);
    EXPECT_EQ(scheduled[1], 6u);
    EXPECT_EQ(scheduled[2], 9u);
    EXPECT_EQ(scheduled[3], 14u);
    // next_after is stateless: querying mid-range lands on the same grid.
    EXPECT_EQ(schedule.next_after(scheduled[5] - 1), scheduled[5]);
    EXPECT_EQ(schedule.next_after(scheduled[5]), scheduled[6]);
}

TEST(SnapshotSchedule, RejectsDegenerateParameters) {
    EXPECT_THROW(SnapshotSchedule::every(0), std::exception);
    EXPECT_THROW(SnapshotSchedule::log_spaced(1.0), std::exception);
    EXPECT_THROW(SnapshotSchedule::log_spaced(0.5), std::exception);
    EXPECT_THROW(SnapshotSchedule::log_spaced(2.0, 0), std::exception);
}

// --- Observation does not perturb any engine -----------------------------

RunOptions base_options(std::uint64_t budget, std::uint64_t seed) {
    RunOptions options;
    options.max_interactions = budget;
    options.seed = seed;
    return options;
}

TEST(Observe, ObservationDoesNotPerturbAgentArray) {
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {57, 7});
    const RunOptions plain = base_options(default_budget(64), 21);
    const RunResult unobserved = simulate(*protocol, initial, plain);

    TraceRecorder recorder;
    RunOptions observed = plain;
    observed.observer = &recorder;
    observed.snapshots = SnapshotSchedule::every(64);
    const RunResult result = simulate(*protocol, initial, observed);

    EXPECT_TRUE(results_equal(result, unobserved));
    EXPECT_TRUE(recorder.finished());
    EXPECT_TRUE(results_equal(*recorder.result(), unobserved));
}

TEST(Observe, ObservationDoesNotPerturbBatchEngine) {
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {57, 7});
    const RunOptions plain = base_options(default_budget(64), 22);
    const RunResult unobserved = simulate_counts(*protocol, initial, plain);

    TraceRecorder recorder;
    RunOptions observed = plain;
    observed.observer = &recorder;
    observed.snapshots = SnapshotSchedule::log_spaced(1.3);
    const RunResult result = simulate_counts(*protocol, initial, observed);

    EXPECT_TRUE(results_equal(result, unobserved));
    // Null-run accounting: the recorder saw exactly the skipped interactions.
    EXPECT_EQ(recorder.total_null_skips(), result.interactions - result.effective_interactions);
}

TEST(Observe, ObservationDoesNotPerturbWeightedEngine) {
    const auto protocol = make_epidemic_protocol();
    std::vector<Symbol> inputs(20, 0);
    inputs[0] = 1;
    const auto initial = AgentConfiguration::from_inputs(*protocol, inputs);
    std::vector<double> weights(20);
    for (std::size_t i = 0; i < weights.size(); ++i) weights[i] = 1.0 + 0.25 * (i % 4);

    const RunOptions plain = base_options(default_budget(20), 23);
    const RunResult unobserved = simulate_weighted(*protocol, initial, weights, plain);

    TraceRecorder recorder;
    RunOptions observed = plain;
    observed.observer = &recorder;
    observed.snapshots = SnapshotSchedule::every(50);
    const RunResult result = simulate_weighted(*protocol, initial, weights, observed);

    EXPECT_TRUE(results_equal(result, unobserved));
    EXPECT_EQ(recorder.engine(), ObservedEngine::kWeighted);
    EXPECT_EQ(recorder.population(), 20u);
}

TEST(Observe, ObservationDoesNotPerturbGraphEngine) {
    const auto protocol = make_epidemic_protocol();
    const InteractionGraph graph = InteractionGraph::ring(16);
    std::vector<Symbol> inputs(16, 0);
    inputs[3] = 1;
    RunOptions plain = base_options(default_budget(16), 24);
    plain.stop_after_stable_outputs = 2000;
    const GraphRunResult unobserved = simulate_on_graph(*protocol, graph, inputs, plain);

    TraceRecorder recorder;
    RunOptions observed = plain;
    observed.observer = &recorder;
    observed.snapshots = SnapshotSchedule::every(32);
    const GraphRunResult result = simulate_on_graph(*protocol, graph, inputs, observed);

    EXPECT_EQ(result.stop_reason, unobserved.stop_reason);
    EXPECT_EQ(result.interactions, unobserved.interactions);
    EXPECT_EQ(result.effective_interactions, unobserved.effective_interactions);
    EXPECT_EQ(result.last_output_change, unobserved.last_output_change);
    EXPECT_EQ(result.consensus, unobserved.consensus);
    EXPECT_EQ(result.final_configuration.states(), unobserved.final_configuration.states());

    EXPECT_EQ(recorder.engine(), ObservedEngine::kGraph);
    ASSERT_TRUE(recorder.finished());
    EXPECT_EQ(recorder.result()->interactions, result.interactions);
    EXPECT_EQ(recorder.result()->final_configuration.counts(),
              result.final_configuration.to_counts(protocol->num_states()).counts());
}

// --- TraceRecorder -------------------------------------------------------

TEST(Observe, TraceRecorderCapturesEpidemicTrajectory) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {63, 1});

    TraceRecorder recorder;
    RunOptions options = base_options(default_budget(64), 5);
    options.observer = &recorder;
    options.snapshots = SnapshotSchedule::every(25);
    const RunResult result = simulate(*protocol, initial, options);

    ASSERT_TRUE(recorder.started());
    ASSERT_TRUE(recorder.finished());
    EXPECT_EQ(recorder.engine(), ObservedEngine::kAgentArray);
    EXPECT_EQ(recorder.population(), 64u);
    EXPECT_EQ(recorder.seed(), 5u);
    EXPECT_EQ(recorder.initial_counts(), initial.counts());
    EXPECT_GE(recorder.wall_seconds(), 0.0);
    EXPECT_GE(recorder.silence_checks(), 1u);

    // Snapshots land exactly on the schedule, strictly before the stop index.
    ASSERT_FALSE(recorder.snapshots().empty());
    std::uint64_t expected_index = 25;
    for (const TraceSnapshot& snapshot : recorder.snapshots()) {
        EXPECT_EQ(snapshot.interaction_index, expected_index);
        expected_index += 25;
        // Conservation: every snapshot is a configuration of all 64 agents.
        std::uint64_t total = 0;
        for (const std::uint64_t count : snapshot.counts) total += count;
        EXPECT_EQ(total, 64u);
    }
    EXPECT_LE(recorder.snapshots().back().interaction_index, result.interactions);

    // Epidemics are monotone: infected counts never decrease along the run.
    std::uint64_t previous_infected = initial.count(1);
    for (const TraceSnapshot& snapshot : recorder.snapshots()) {
        EXPECT_GE(snapshot.counts[1], previous_infected);
        previous_infected = snapshot.counts[1];
    }

    // Output changes: one per infection, the last one at the recorded
    // convergence time.
    ASSERT_FALSE(recorder.output_changes().empty());
    EXPECT_EQ(recorder.output_changes().size(), 63u);
    EXPECT_EQ(recorder.output_changes().back(), result.last_output_change);
}

TEST(Observe, TraceRecorderClearsBetweenRuns) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {15, 1});

    TraceRecorder recorder;
    RunOptions options = base_options(default_budget(16), 9);
    options.observer = &recorder;
    options.snapshots = SnapshotSchedule::every(10);
    simulate(*protocol, initial, options);
    const std::size_t first_snapshots = recorder.snapshots().size();

    // on_start clears implicitly: a second run does not accumulate.
    options.seed = 10;
    simulate_counts(*protocol, initial, options);
    EXPECT_EQ(recorder.engine(), ObservedEngine::kCountBatch);
    EXPECT_EQ(recorder.seed(), 10u);
    EXPECT_TRUE(recorder.finished());
    EXPECT_LT(recorder.snapshots().size(), first_snapshots + 100);

    recorder.clear();
    EXPECT_FALSE(recorder.started());
    EXPECT_FALSE(recorder.finished());
    EXPECT_TRUE(recorder.snapshots().empty());
    EXPECT_TRUE(recorder.output_changes().empty());
    EXPECT_EQ(recorder.total_null_skips(), 0u);
}

// --- Batch engine: snapshots inside geometric null jumps -----------------

TEST(Observe, BatchSnapshotsInsideNullRunsKeepCountsConstant) {
    // A dense schedule on a null-heavy epidemic run: most scheduled indices
    // fall inside geometric null jumps and must be emitted anyway — stamped
    // with their exact index, with the counts the jump left unchanged.
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {31, 1});

    TraceRecorder recorder;
    RunOptions options = base_options(50'000, 77);
    options.observer = &recorder;
    options.snapshots = SnapshotSchedule::every(7);
    const RunResult result = simulate_counts(*protocol, initial, options);

    // The epidemic completes long before 50k interactions; W == 0 then
    // stops the run exactly at the last effective interaction.
    ASSERT_EQ(result.stop_reason, StopReason::kSilent);
    ASSERT_GT(result.interactions, result.effective_interactions)
        << "test needs null runs to be meaningful";

    // Every scheduled index <= the stop index appears, exactly once, in
    // order — including the ones inside null jumps.
    ASSERT_EQ(recorder.snapshots().size(), result.interactions / 7);
    std::uint64_t expected_index = 7;
    std::uint64_t previous_infected = 1;
    for (const TraceSnapshot& snapshot : recorder.snapshots()) {
        EXPECT_EQ(snapshot.interaction_index, expected_index);
        expected_index += 7;
        // Monotone infection plus conservation: null-run snapshots repeat
        // the configuration, effective ones advance it by one infection.
        EXPECT_GE(snapshot.counts[1], previous_infected);
        EXPECT_EQ(snapshot.counts[0] + snapshot.counts[1], 32u);
        previous_infected = snapshot.counts[1];
    }
}

TEST(Observe, BatchBudgetStopEmitsSnapshotsThroughBudget) {
    // A budget far past silence: scheduled indices between the last
    // effective interaction and the budget fall inside the final (cut) null
    // run and must still be emitted when the run is budget-limited.
    const auto protocol = make_counting_protocol(3);
    auto initial = CountConfiguration::from_input_counts(*protocol, {6, 2});

    TraceRecorder recorder;
    RunOptions options = base_options(4'096, 3);
    options.observer = &recorder;
    options.snapshots = SnapshotSchedule::every(512);
    const RunResult result = simulate_counts(*protocol, initial, options);

    if (result.stop_reason == StopReason::kSilent) {
        // Silence stops the run exactly at the last effective interaction;
        // snapshots past it are not emitted (the run is over).
        for (const TraceSnapshot& snapshot : recorder.snapshots()) {
            EXPECT_LE(snapshot.interaction_index, result.interactions);
        }
    } else {
        // Budget stop: every scheduled index <= budget appears.
        EXPECT_EQ(result.interactions, 4'096u);
        ASSERT_EQ(recorder.snapshots().size(), 8u);
        EXPECT_EQ(recorder.snapshots().back().interaction_index, 4'096u);
    }
}

// --- MetricsCollector ----------------------------------------------------

TEST(Observe, MetricsCollectorAggregatesAcrossThreadedTrials) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {20, 4});

    MetricsCollector metrics;
    TrialOptions options;
    options.base.max_interactions = default_budget(24);
    options.base.seed = 500;
    options.base.engine = SimulationEngine::kCountBatch;
    options.base.observer = &metrics;
    options.base.snapshots = SnapshotSchedule::every(200);
    options.trials = 24;
    options.threads = 4;
    options.keep_records = true;
    const TrialSummary summary = measure_trials(*protocol, initial, options);

    const MetricsReport report = metrics.report();
    EXPECT_EQ(report.runs_started, 24u);
    EXPECT_EQ(report.runs_finished, 24u);
    EXPECT_EQ(report.stops_silent, summary.silent);
    EXPECT_EQ(report.stops_stable_outputs, summary.stable_outputs);
    EXPECT_EQ(report.stops_budget, summary.budget);
    EXPECT_EQ(report.stops_silent + report.stops_stable_outputs + report.stops_budget, 24u);

    // Totals cross-check against the independently retained records.
    std::uint64_t interactions = 0;
    std::uint64_t effective = 0;
    for (const TrialRecord& record : summary.records) {
        interactions += record.interactions;
        effective += record.effective_interactions;
    }
    EXPECT_EQ(report.interactions, interactions);
    EXPECT_EQ(report.effective_interactions, effective);

    // Null-run accounting (batch engine): skipped == total - effective, and
    // the histogram holds one entry per reported run.
    EXPECT_EQ(report.null_interactions_skipped, interactions - effective);
    std::uint64_t histogram_total = 0;
    for (const std::uint64_t bucket : report.null_run_length_log2) histogram_total += bucket;
    EXPECT_EQ(histogram_total, report.null_runs);

    EXPECT_GT(report.snapshots, 0u);
    EXPECT_GE(report.wall_seconds_total, report.wall_seconds_max);
    EXPECT_LE(report.wall_seconds_min, report.wall_seconds_max);

    const std::string text = report.to_string();
    EXPECT_NE(text.find("runs"), std::string::npos);

    metrics.reset();
    EXPECT_EQ(metrics.report().runs_started, 0u);
}

TEST(Observe, MetricsReportExportsValidJson) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {30, 2});

    MetricsCollector metrics;
    RunOptions options = base_options(default_budget(32), 21);
    options.observer = &metrics;
    options.snapshots = SnapshotSchedule::every(64);
    simulate_counts(*protocol, initial, options);

    const MetricsReport report = metrics.report();
    const std::string json = report.to_json();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    // Single line (embeds cleanly in JSONL streams), with the headline
    // counters and the sparse histogram object present.
    EXPECT_EQ(json.find('\n'), std::string::npos);
    // The schema version leads every export so downstream consumers can
    // dispatch before parsing the rest.
    EXPECT_EQ(json.rfind("{\"schema_version\":" + std::to_string(MetricsReport::kSchemaVersion),
                         0),
              0u);
    EXPECT_NE(json.find("\"runs_finished\":1"), std::string::npos);
    EXPECT_NE(json.find("\"interactions\":" + std::to_string(report.interactions)),
              std::string::npos);
    EXPECT_NE(json.find("\"null_run_length_log2\":{"), std::string::npos);

    // An empty report is still valid JSON (all-zero counters, no buckets).
    metrics.reset();
    const std::string empty = metrics.report().to_json();
    JsonChecker empty_checker(empty);
    EXPECT_TRUE(empty_checker.valid()) << empty;
    EXPECT_NE(empty.find("\"null_run_length_log2\":{}"), std::string::npos);
}

// --- JsonlTraceWriter and TeeObserver ------------------------------------

TEST(Observe, JsonlWriterEmitsValidJsonl) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {31, 1});

    std::ostringstream out;
    JsonlTraceWriter writer(out);
    TraceRecorder recorder;
    TeeObserver tee({&writer, &recorder});

    RunOptions options = base_options(default_budget(32), 11);
    options.observer = &tee;
    options.snapshots = SnapshotSchedule::log_spaced(1.4, 8);
    const RunResult result = simulate_counts(*protocol, initial, options);

    const std::vector<std::string> lines = split_lines(out.str());
    ASSERT_GE(lines.size(), 3u);
    for (const std::string& line : lines) {
        JsonChecker checker(line);
        EXPECT_TRUE(checker.valid()) << "invalid JSON line: " << line;
    }

    // Event bookkeeping against the tee'd recorder: same run, same counts.
    EXPECT_EQ(count_events(lines, "start"), 1u);
    EXPECT_EQ(count_events(lines, "stop"), 1u);
    EXPECT_EQ(count_events(lines, "snapshot"), recorder.snapshots().size());
    EXPECT_EQ(count_events(lines, "output_change"), recorder.output_changes().size());

    // Spot-check content: the start line names the engine, the stop line
    // the reason.
    EXPECT_NE(lines.front().find("\"engine\":\"count_batch\""), std::string::npos);
    EXPECT_NE(lines.back().find(result.stop_reason == StopReason::kSilent ? "\"silent\""
                                                                          : "\"budget\""),
              std::string::npos);
}

TEST(Observe, JsonlWriterHandlesMinimalStartInfo) {
    std::ostringstream out;
    {
        JsonlTraceWriter writer(out);
        RunStartInfo info;
        info.engine = ObservedEngine::kAgentArray;
        info.population = 2;
        info.num_states = 2;
        writer.on_start(info);
    }
    const std::vector<std::string> lines = split_lines(out.str());
    ASSERT_EQ(lines.size(), 1u);
    JsonChecker checker(lines.front());
    EXPECT_TRUE(checker.valid());
}

TEST(Observe, TeeObserverRejectsNullEntries) {
    EXPECT_THROW(TeeObserver({nullptr}), std::exception);
}

}  // namespace
}  // namespace popproto
