// The Presburger formula text parser.

#include <gtest/gtest.h>

#include "presburger/parser.h"

namespace popproto {
namespace {

/// Checks that `text` parses and agrees with `expected` on a grid of small
/// non-negative assignments.
void expect_equivalent(const std::string& text, const Formula& expected,
                       std::size_t variables) {
    const Formula parsed = parse_formula(text);
    std::vector<std::int64_t> values(variables, 0);
    const std::function<void(std::size_t)> sweep = [&](std::size_t index) {
        if (index == variables) {
            EXPECT_EQ(parsed.evaluate(values), expected.evaluate(values))
                << text << " at x=(" << values[0] << ",...)";
            return;
        }
        for (std::int64_t v = 0; v <= 4; ++v) {
            values[index] = v;
            sweep(index + 1);
        }
    };
    sweep(0);
}

TEST(Parser, SimpleThreshold) {
    expect_equivalent("x0 < 3", Formula::threshold({1}, 3), 1);
    expect_equivalent("2*x0 - x1 < 3", Formula::threshold({2, -1}, 3), 2);
    expect_equivalent("2 x0 - x1 < 3", Formula::threshold({2, -1}, 3), 2);
}

TEST(Parser, ComparisonDirections) {
    expect_equivalent("x0 <= 2", Formula::at_most({1}, 2), 1);
    expect_equivalent("x0 >= 2", Formula::at_least({1}, 2), 1);
    expect_equivalent("x0 > 2", Formula::negation(Formula::at_most({1}, 2)), 1);
    expect_equivalent("x0 = 2", Formula::equals({1}, 2), 1);
    expect_equivalent("x0 == 2", Formula::equals({1}, 2), 1);
    expect_equivalent("x0 != 2", Formula::negation(Formula::equals({1}, 2)), 1);
}

TEST(Parser, ConstantsOnBothSides) {
    // x0 + 1 < x1 + 3  <=>  x0 - x1 < 2.
    expect_equivalent("x0 + 1 < x1 + 3", Formula::threshold({1, -1}, 2), 2);
    // 5 < x0 means x0 > 5.
    expect_equivalent("5 < x0", Formula::negation(Formula::at_most({1}, 5)), 1);
}

TEST(Parser, LeadingMinusAndRepeatedVariables) {
    expect_equivalent("-x0 + x0 + x1 < 2", Formula::threshold({0, 1}, 2), 2);
    expect_equivalent("-2*x1 < 0", Formula::threshold({0, -2}, 0), 2);
}

TEST(Parser, Congruence) {
    expect_equivalent("x0 = 1 mod 3", Formula::congruence({1}, 1, 3), 1);
    expect_equivalent("x0 - 2 x1 = 0 mod 3", Formula::congruence({1, -2}, 0, 3), 2);
    // Constants fold into the residue: x0 + 1 = 0 mod 2 <=> x0 = 1 mod 2.
    expect_equivalent("x0 + 1 = 0 mod 2", Formula::congruence({1}, 1, 2), 1);
    // Both sides: x0 = x1 mod 2 <=> x0 - x1 = 0 mod 2.
    expect_equivalent("x0 = x1 mod 2", Formula::congruence({1, -1}, 0, 2), 2);
}

TEST(Parser, BooleanStructureAndPrecedence) {
    // & binds tighter than |.
    const Formula expected = Formula::disjunction(
        Formula::conjunction(Formula::threshold({1}, 1), Formula::threshold({0, 1}, 1)),
        Formula::at_least({1, 1}, 5));
    expect_equivalent("x0 < 1 & x1 < 1 | x0 + x1 >= 5", expected, 2);

    expect_equivalent("!(x0 < 2)", Formula::negation(Formula::threshold({1}, 2)), 1);
    expect_equivalent("!!(x0 < 2)",
                      Formula::negation(Formula::negation(Formula::threshold({1}, 2))), 1);
    expect_equivalent("(x0 < 2) & ((x1 < 1) | (x0 = 0 mod 2))",
                      Formula::conjunction(
                          Formula::threshold({1}, 2),
                          Formula::disjunction(Formula::threshold({0, 1}, 1),
                                               Formula::congruence({1}, 0, 2))),
                      2);
}

TEST(Parser, PaperFeverPredicate) {
    // 20 x1 >= x0 + x1 is the Sect. 4.2 example.
    const Formula parsed = parse_formula("20 x1 >= x0 + x1");
    const Formula expected = Formula::at_least({-1, 19}, 0);
    for (std::int64_t x0 = 0; x0 <= 25; ++x0)
        for (std::int64_t x1 = 0; x1 <= 3; ++x1)
            EXPECT_EQ(parsed.evaluate({x0, x1}), expected.evaluate({x0, x1}))
                << x0 << "," << x1;
}

TEST(Parser, RoundTripsThroughToString) {
    for (const std::string text :
         {"x0 - 19 x1 < 1", "(x0 < 3) & !(x1 = 0 mod 2)", "x0 + x1 >= 4 | x0 = 2 mod 5"}) {
        const Formula once = parse_formula(text);
        const Formula twice = parse_formula(once.to_string());
        for (std::int64_t a = 0; a <= 5; ++a)
            for (std::int64_t b = 0; b <= 5; ++b)
                EXPECT_EQ(once.evaluate({a, b}), twice.evaluate({a, b})) << text;
    }
}

TEST(Parser, Errors) {
    EXPECT_THROW(parse_formula(""), std::invalid_argument);
    EXPECT_THROW(parse_formula("x0"), std::invalid_argument);           // no comparison
    EXPECT_THROW(parse_formula("x0 < "), std::invalid_argument);        // missing rhs
    EXPECT_THROW(parse_formula("x0 < 3 x1 < 4"), std::invalid_argument);  // trailing input
    EXPECT_THROW(parse_formula("(x0 < 3"), std::invalid_argument);      // unbalanced paren
    EXPECT_THROW(parse_formula("y0 < 3"), std::invalid_argument);       // unknown identifier
    EXPECT_THROW(parse_formula("x0 = 1 mod"), std::invalid_argument);   // missing modulus
    EXPECT_THROW(parse_formula("x0 = 1 mod 1"), std::invalid_argument); // modulus < 2
}

TEST(Parser, ModIsAKeywordNotAPrefix) {
    // "mod" must not be recognized inside identifiers; "x0 = 1 modx" fails.
    EXPECT_THROW(parse_formula("x0 = 1 modx"), std::invalid_argument);
}

}  // namespace
}  // namespace popproto
