// Randomized property tests.
//
// Two families:
//   * random small protocols: the analyzer's verdict must match a
//     brute-force implementation of the definitions (output-stability by
//     direct reachability, convergence by Lemma 1), and the simulator must
//     agree with the multiset semantics step by step;
//   * random Presburger formulas: compile and check against the evaluator
//     on every small input (an end-to-end compiler fuzz).

#include <gtest/gtest.h>

#include <deque>

#include "analysis/stable_computation.h"
#include "core/rng.h"
#include "core/protocol_io.h"
#include "core/simulator.h"
#include "presburger/compiler.h"
#include "test_util.h"

namespace popproto {
namespace {

std::unique_ptr<TabulatedProtocol> random_protocol(Rng& rng, std::size_t num_states) {
    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    tables.initial = {static_cast<State>(rng.below(num_states)),
                      static_cast<State>(rng.below(num_states))};
    tables.output.resize(num_states);
    for (State q = 0; q < num_states; ++q) tables.output[q] = static_cast<Symbol>(rng.below(2));
    tables.delta.resize(num_states * num_states);
    for (std::size_t i = 0; i < tables.delta.size(); ++i) {
        // Bias toward null interactions so random protocols are not pure noise.
        if (rng.below(3) == 0) {
            tables.delta[i] = {static_cast<State>(rng.below(num_states)),
                               static_cast<State>(rng.below(num_states))};
        } else {
            tables.delta[i] = {static_cast<State>(i / num_states),
                               static_cast<State>(i % num_states)};
        }
    }
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

/// Brute-force convergence check straight from the definitions: a protocol
/// always converges from `initial` iff from every reachable configuration an
/// output-stable configuration remains reachable AND every *final* behavior
/// is captured...  Implemented via Lemma 1 semantics computed naively:
/// for every reachable C, compute its reachable set; C is output-stable iff
/// all configurations reachable from C share C's signature.  Every fair
/// computation converges iff for every reachable C whose reachable set
/// contains no way out (i.e. C lies in a final SCC computed naively), the
/// signatures in C's SCC are uniform.
bool brute_force_always_converges(const TabulatedProtocol& protocol,
                                  const ConfigurationGraph& graph) {
    const std::size_t n = graph.size();
    // reach[i] = set of configs reachable from i (including i).
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
    for (ConfigId start = 0; start < n; ++start) {
        std::deque<ConfigId> queue{start};
        reach[start][start] = true;
        while (!queue.empty()) {
            const ConfigId v = queue.front();
            queue.pop_front();
            for (ConfigId w : graph.successors[v]) {
                if (!reach[start][w]) {
                    reach[start][w] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    // C and D are in the same SCC iff they reach each other; C's SCC is
    // final iff everything reachable from C reaches C back.
    for (ConfigId c = 0; c < n; ++c) {
        bool is_final = true;
        for (ConfigId d = 0; d < n; ++d)
            if (reach[c][d] && !reach[d][c]) is_final = false;
        if (!is_final) continue;
        const auto signature = graph.configs[c].output_counts(protocol);
        for (ConfigId d = 0; d < n; ++d) {
            if (reach[c][d] && graph.configs[d].output_counts(protocol) != signature)
                return false;  // a fair run trapped here oscillates outputs
        }
    }
    return true;
}

TEST(Fuzz, AnalyzerMatchesBruteForceOnRandomProtocols) {
    Rng rng(20040725);  // PODC'04
    int analyzed = 0;
    for (int round = 0; round < 120; ++round) {
        const std::size_t num_states = 2 + rng.below(3);
        const auto protocol = random_protocol(rng, num_states);
        const std::uint64_t zeros = rng.below(4);
        const std::uint64_t ones = 1 + rng.below(3);
        const auto initial =
            CountConfiguration::from_input_counts(*protocol, {zeros, ones});
        if (initial.population_size() == 0) continue;
        const ConfigurationGraph graph = explore_reachable(*protocol, initial, 4000);
        if (!graph.complete || graph.size() > 150) continue;  // keep brute force cheap
        ++analyzed;
        const StableComputationResult fast = analyze_stable_computation(*protocol, initial);
        EXPECT_EQ(fast.always_converges, brute_force_always_converges(*protocol, graph))
            << "round " << round;
    }
    EXPECT_GT(analyzed, 60);  // the filter must not eat the test
}

TEST(Fuzz, SimulatedRunsLandInStableSignaturesWhenConvergent) {
    Rng rng(424242);
    int convergent_checked = 0;
    for (int round = 0; round < 80 && convergent_checked < 25; ++round) {
        const auto protocol = random_protocol(rng, 2 + rng.below(3));
        const std::uint64_t zeros = 1 + rng.below(3);
        const std::uint64_t ones = 1 + rng.below(3);
        const auto initial =
            CountConfiguration::from_input_counts(*protocol, {zeros, ones});
        StableComputationResult analysis;
        try {
            analysis = analyze_stable_computation(*protocol, initial, 4000);
        } catch (const std::runtime_error&) {
            continue;
        }
        if (!analysis.always_converges) continue;
        ++convergent_checked;

        RunOptions options;
        options.max_interactions = 200000;
        options.seed = 999 + round;
        const RunResult run = simulate(*protocol, initial, options);
        if (run.stop_reason != StopReason::kSilent) continue;
        // A silent final configuration is output-stable; its signature must
        // be one of the analyzer's stable signatures.
        const auto signature = run.final_configuration.output_counts(*protocol);
        EXPECT_NE(std::find(analysis.stable_signatures.begin(),
                            analysis.stable_signatures.end(), signature),
                  analysis.stable_signatures.end())
            << "round " << round;
    }
    EXPECT_GE(convergent_checked, 10);
}

TEST(Fuzz, CountAndAgentSemanticsAgree) {
    // Applying the same interaction sequence through AgentConfiguration and
    // CountConfiguration keeps the multiset in lockstep.
    Rng rng(7);
    for (int round = 0; round < 30; ++round) {
        const auto protocol = random_protocol(rng, 3);
        auto agents = AgentConfiguration::from_inputs(
            *protocol, {0, 1, 1, 0, 1});
        auto counts = agents.to_counts(protocol->num_states());
        for (int step = 0; step < 60; ++step) {
            const std::size_t i = rng.below(agents.size());
            std::size_t j = rng.below(agents.size() - 1);
            if (j >= i) ++j;
            const State p = agents.state(i);
            const State q = agents.state(j);
            agents.apply_interaction(*protocol, i, j);
            counts.apply_interaction(*protocol, p, q);
            ASSERT_EQ(agents.to_counts(protocol->num_states()), counts)
                << "round " << round << " step " << step;
        }
    }
}

TEST(Fuzz, SerializationRoundTripsRandomProtocols) {
    Rng rng(111);
    for (int round = 0; round < 40; ++round) {
        const auto protocol = random_protocol(rng, 2 + rng.below(4));
        const auto reloaded = deserialize_protocol(serialize_protocol(*protocol));
        ASSERT_EQ(reloaded->num_states(), protocol->num_states()) << round;
        for (State p = 0; p < protocol->num_states(); ++p) {
            EXPECT_EQ(reloaded->output_fast(p), protocol->output_fast(p)) << round;
            for (State q = 0; q < protocol->num_states(); ++q)
                EXPECT_EQ(reloaded->apply_fast(p, q), protocol->apply_fast(p, q)) << round;
        }
    }
}

Formula random_formula(Rng& rng, int depth) {
    const auto random_coefficients = [&rng]() {
        std::vector<std::int64_t> coefficients(2);
        for (auto& a : coefficients) a = static_cast<std::int64_t>(rng.below(5)) - 2;
        if (coefficients[0] == 0 && coefficients[1] == 0) coefficients[0] = 1;
        return coefficients;
    };
    if (depth == 0 || rng.below(3) == 0) {
        if (rng.below(2) == 0) {
            return Formula::threshold(random_coefficients(),
                                      static_cast<std::int64_t>(rng.below(7)) - 3);
        }
        return Formula::congruence(random_coefficients(),
                                   static_cast<std::int64_t>(rng.below(4)),
                                   2 + static_cast<std::int64_t>(rng.below(2)));
    }
    switch (rng.below(3)) {
        case 0:
            return Formula::conjunction(random_formula(rng, depth - 1),
                                        random_formula(rng, depth - 1));
        case 1:
            return Formula::disjunction(random_formula(rng, depth - 1),
                                        random_formula(rng, depth - 1));
        default:
            return Formula::negation(random_formula(rng, depth - 1));
    }
}

TEST(Fuzz, CompiledRandomFormulasMatchEvaluator) {
    Rng rng(31337);
    for (int round = 0; round < 12; ++round) {
        const Formula formula = random_formula(rng, 2);
        const auto protocol = compile_formula(formula, 2);
        if (protocol->num_states() > 3000) continue;  // keep the sweep cheap
        for (std::uint64_t n = 1; n <= 3; ++n) {
            testutil::for_each_composition(n, 2, [&](const std::vector<std::uint64_t>& counts) {
                const auto initial =
                    CountConfiguration::from_input_counts(*protocol, counts);
                const bool expected = formula.evaluate(testutil::to_signed(counts));
                EXPECT_TRUE(stably_computes_bool(*protocol, initial, expected, 1u << 22))
                    << "round " << round << " formula " << formula.to_string() << " n=" << n;
            });
        }
    }
}

}  // namespace
}  // namespace popproto
