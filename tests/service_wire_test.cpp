// The service wire layer: JSON parsing/serialization, request framing and
// dispatch, spec validation, and the socket transport end to end
// (WireServer + ServiceClient over loopback TCP and a Unix-domain socket).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/json.h"
#include "service/registry.h"
#include "service/server.h"
#include "service/session.h"
#include "service/wire.h"

namespace popproto::service {
namespace {

// ---------------------------------------------------------------------------
// JSON.

TEST(Json, RoundTripsScalarsArraysAndObjects) {
    const std::string text =
        "{\"a\":true,\"b\":null,\"c\":18446744073709551615,\"d\":-7,"
        "\"e\":1.5,\"f\":\"hi\\n\\\"there\\\"\",\"g\":[1,2,3],\"h\":{\"k\":\"v\"}}";
    const JsonValue value = parse_json(text);
    ASSERT_TRUE(value.is_object());
    EXPECT_TRUE(value.find("a")->as_bool("a"));
    EXPECT_TRUE(value.find("b")->is_null());
    // Full uint64 precision survives — seeds exceed the double-exact range.
    EXPECT_EQ(value.find("c")->as_u64("c"), 18446744073709551615ull);
    EXPECT_EQ(value.find("e")->as_double("e"), 1.5);
    EXPECT_EQ(value.find("f")->as_string("f"), "hi\n\"there\"");
    EXPECT_EQ(value.find("g")->as_array("g").size(), 3u);
    EXPECT_EQ(value.find("h")->find("k")->as_string("k"), "v");
    // Compact re-serialization is the identity on compact input.
    EXPECT_EQ(value.to_string(), text);
}

TEST(Json, ParseErrorsCarryByteOffsets) {
    const auto error_message = [](const std::string& text) -> std::string {
        try {
            parse_json(text);
        } catch (const std::invalid_argument& error) {
            return error.what();
        }
        ADD_FAILURE() << "parse unexpectedly succeeded: " << text;
        return {};
    };
    EXPECT_EQ(error_message("{\"a\" 1}").rfind("json: offset ", 0), 0u);
    EXPECT_EQ(error_message("[1,]").rfind("json: offset ", 0), 0u);
    EXPECT_EQ(error_message("{} trailing").rfind("json: offset ", 0), 0u);
    EXPECT_EQ(error_message("").rfind("json: offset ", 0), 0u);
}

TEST(Json, TypedAccessorsNameTheField) {
    const JsonValue value = parse_json("{\"seed\":\"oops\",\"n\":-1}");
    try {
        value.find("seed")->as_u64("'seed'");
        FAIL() << "as_u64 on a string unexpectedly succeeded";
    } catch (const std::invalid_argument& error) {
        EXPECT_NE(std::string(error.what()).find("'seed'"), std::string::npos);
    }
    EXPECT_THROW(value.find("n")->as_u64("'n'"), std::invalid_argument);  // negative
}

TEST(Json, QuoteEscapesControlCharacters) {
    EXPECT_EQ(json_quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
}

// ---------------------------------------------------------------------------
// Request framing and spec parsing.

TEST(Wire, ParsesRequestsAndEchoesCorrelationIds) {
    const WireRequest request = parse_request("{\"cmd\":\"status\",\"id\":\"r7\"}");
    EXPECT_EQ(request.command, "status");
    ASSERT_TRUE(request.request_id.has_value());
    EXPECT_EQ(*request.request_id, "r7");

    EXPECT_THROW(parse_request("[1,2]"), std::invalid_argument);     // not an object
    EXPECT_THROW(parse_request("{\"x\":1}"), std::invalid_argument);  // no cmd
    EXPECT_THROW(parse_request("{\"cmd\":1}"), std::invalid_argument);

    EXPECT_EQ(ok_response(std::nullopt), "{\"ok\":true}");
    EXPECT_EQ(ok_response(std::string("r1")), "{\"ok\":true,\"id\":\"r1\"}");
    EXPECT_EQ(error_response(std::string("r1"), "bad"),
              "{\"ok\":false,\"id\":\"r1\",\"error\":\"bad\"}");
}

TEST(Wire, SessionSpecParsesAndValidates) {
    const JsonValue payload = parse_json(
        "{\"cmd\":\"submit\",\"protocol\":\"counting\",\"threshold\":3,"
        "\"counts\":[40,8],\"engine\":\"agent\",\"seed\":11,\"quantum\":97,"
        "\"weight\":2,\"name\":\"demo\"}");
    const SessionSpec spec = parse_session_spec(payload);
    EXPECT_EQ(spec.protocol, "counting");
    EXPECT_EQ(spec.threshold, 3u);
    EXPECT_EQ(spec.counts, (std::vector<std::uint64_t>{40, 8}));
    EXPECT_EQ(spec.engine, "agent");
    EXPECT_EQ(spec.seed, 11u);
    EXPECT_EQ(spec.quantum, 97u);
    EXPECT_EQ(spec.weight, 2u);
    EXPECT_EQ(spec.name, "demo");

    // The spec survives the manifest round trip verbatim.
    const SessionSpec reparsed = parse_session_spec(session_spec_to_json(spec));
    EXPECT_EQ(session_spec_to_json(reparsed).to_string(),
              session_spec_to_json(spec).to_string());

    const auto expect_rejected = [](const std::string& text, const std::string& field) {
        try {
            parse_session_spec(parse_json(text));
            ADD_FAILURE() << "spec unexpectedly accepted: " << text;
        } catch (const std::invalid_argument& error) {
            EXPECT_NE(std::string(error.what()).find(field), std::string::npos)
                << error.what();
        }
    };
    expect_rejected("{\"cmd\":\"submit\"}", "counts");
    expect_rejected("{\"counts\":[]}", "counts");
    expect_rejected("{\"counts\":[10,2],\"weight\":0}", "weight");
    expect_rejected("{\"counts\":[10,2],\"seed\":\"x\"}", "seed");
}

TEST(Wire, ScenarioModelSpecsRoundTripAndValidate) {
    // Every scenario knob survives the manifest round trip.
    const JsonValue payload = parse_json(
        "{\"cmd\":\"submit\",\"protocol\":\"epidemic\",\"counts\":[30,2],"
        "\"seed\":7,\"model\":\"dynamic_graph\",\"phases\":[\"ring\",\"star\"],"
        "\"phase_length\":50}");
    const SessionSpec spec = parse_session_spec(payload);
    EXPECT_EQ(spec.model, "dynamic_graph");
    EXPECT_EQ(spec.phases, (std::vector<std::string>{"ring", "star"}));
    EXPECT_EQ(spec.phase_length, 50u);
    const SessionSpec reparsed = parse_session_spec(session_spec_to_json(spec));
    EXPECT_EQ(session_spec_to_json(reparsed).to_string(),
              session_spec_to_json(spec).to_string());

    // The default model leaves the manifest untouched — old manifests stay
    // byte-identical.
    SessionSpec plain;
    plain.counts = {10, 2};
    EXPECT_EQ(session_spec_to_json(plain).to_string().find("\"model\""),
              std::string::npos);

    const auto expect_rejected = [](const std::string& text, const std::string& needle) {
        try {
            parse_session_spec(parse_json(text));
            ADD_FAILURE() << "spec unexpectedly accepted: " << text;
        } catch (const std::invalid_argument& error) {
            EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
                << error.what();
        }
    };
    expect_rejected("{\"counts\":[10,2],\"model\":\"teleport\"}", "unknown model");
    expect_rejected("{\"counts\":[10,2],\"model\":\"sweep\",\"engine\":\"batch\"}",
                    "engine");
    expect_rejected("{\"counts\":[10,2],\"model\":\"sweep\",\"threads\":4}", "threads");
    expect_rejected("{\"counts\":[10,2],\"model\":\"dynamic_graph\"}", "phases");
}

TEST(Wire, QueueFullRejectionsAreStructured) {
    RegistryOptions options;
    options.workers = 1;
    options.max_queued = 1;
    options.spill_dir =
        (std::filesystem::temp_directory_path() / "popproto_wire_queue_full").string();
    std::filesystem::remove_all(options.spill_dir);
    RunRegistry registry(options);

    // One long-budget session fills the bounded admission queue.
    const std::string submit =
        "{\"cmd\":\"submit\",\"id\":\"q1\",\"protocol\":\"epidemic\","
        "\"counts\":[1048575,1],\"engine\":\"agent\",\"seed\":3,"
        "\"quantum\":65536,\"budget\":1073741824}";
    const auto first = dispatch_request(registry, parse_request(submit));
    ASSERT_TRUE(first.has_value());
    EXPECT_NE(first->find("\"ok\":true"), std::string::npos) << *first;

    const auto second = dispatch_request(registry, parse_request(submit));
    ASSERT_TRUE(second.has_value());
    const JsonValue rejection = parse_json(*second);
    EXPECT_FALSE(rejection.find("ok")->as_bool("ok"));
    EXPECT_EQ(rejection.find("id")->as_string("id"), "q1");
    EXPECT_EQ(rejection.find("code")->as_string("code"), "queue_full");
    EXPECT_EQ(rejection.find("queued")->as_u64("queued"), 1u);
    EXPECT_EQ(rejection.find("max_queued")->as_u64("max_queued"), 1u);
    EXPECT_NE(rejection.find("error")->as_string("error").find("admission queue"),
              std::string::npos);

    for (const SessionStatus& status : registry.list()) registry.cancel(status.id);
    registry.wait_idle();
    std::filesystem::remove_all(options.spill_dir);
}

TEST(Wire, DispatchesCommandsAgainstARegistry) {
    RegistryOptions options;
    options.spill_dir =
        (std::filesystem::temp_directory_path() / "popproto_wire_dispatch").string();
    std::filesystem::remove_all(options.spill_dir);
    RunRegistry registry(options);

    const auto dispatch = [&](const std::string& line) {
        const auto response = dispatch_request(registry, parse_request(line));
        EXPECT_TRUE(response.has_value()) << line;
        return response.value_or(std::string());
    };

    EXPECT_EQ(dispatch("{\"cmd\":\"ping\",\"id\":\"p\"}"), "{\"ok\":true,\"id\":\"p\"}");

    const std::string submitted = dispatch(
        "{\"cmd\":\"submit\",\"protocol\":\"epidemic\",\"counts\":[63,1],"
        "\"engine\":\"agent\",\"seed\":5}");
    EXPECT_EQ(submitted.rfind("{\"ok\":true,\"session\":\"s-", 0), 0u) << submitted;
    registry.wait_idle();

    const std::string status = dispatch("{\"cmd\":\"status\",\"session\":\"s-1\"}");
    EXPECT_NE(status.find("\"state\":\"done\""), std::string::npos) << status;
    EXPECT_NE(status.find("\"stop_reason\""), std::string::npos) << status;

    const std::string list = dispatch("{\"cmd\":\"list\"}");
    EXPECT_NE(list.find("\"sessions\":[{"), std::string::npos) << list;

    const std::string stats = dispatch("{\"cmd\":\"stats\"}");
    EXPECT_NE(stats.find("\"stats\":{\"sessions\":{"), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"metrics\":{"), std::string::npos) << stats;
    EXPECT_NO_THROW(parse_json(stats));  // the raw splice still yields valid JSON

    // Errors become {"ok":false,...} responses, never exceptions.
    const std::string missing = dispatch("{\"cmd\":\"status\",\"session\":\"s-404\"}");
    EXPECT_EQ(missing.rfind("{\"ok\":false,\"error\":", 0), 0u) << missing;
    const std::string unknown = dispatch("{\"cmd\":\"warp\"}");
    EXPECT_NE(unknown.find("unknown command \\\"warp\\\""), std::string::npos) << unknown;
    const std::string bad_submit = dispatch("{\"cmd\":\"submit\",\"counts\":[1]}");
    EXPECT_EQ(bad_submit.rfind("{\"ok\":false,", 0), 0u) << bad_submit;

    // Transport-level commands are not dispatched here.
    EXPECT_FALSE(dispatch_request(registry, parse_request("{\"cmd\":\"subscribe\"}")));
    EXPECT_FALSE(dispatch_request(registry, parse_request("{\"cmd\":\"shutdown\"}")));
    std::filesystem::remove_all(options.spill_dir);
}

// ---------------------------------------------------------------------------
// Socket transport, end to end.

bool line_has(const std::string& line, const std::string& needle) {
    return line.find(needle) != std::string::npos;
}

/// Polls `status` through the client until the session is terminal.
std::string wait_terminal(ServiceClient& client, const std::string& id) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
        const std::string status =
            client.request("{\"cmd\":\"status\",\"session\":" + json_quote(id) + "}");
        if (line_has(status, "\"state\":\"done\"") ||
            line_has(status, "\"state\":\"failed\"") ||
            line_has(status, "\"state\":\"cancelled\""))
            return status;
        if (std::chrono::steady_clock::now() > deadline) {
            ADD_FAILURE() << "session " << id << " never settled: " << status;
            return status;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

std::string session_id_of(const std::string& submit_response) {
    const JsonValue parsed = parse_json(submit_response);
    const JsonValue* session = parsed.find("session");
    return session != nullptr ? session->as_string("session") : std::string();
}

void exercise_server(RunRegistry& registry, WireServer& server, ServiceClient client) {
    EXPECT_EQ(client.request("{\"cmd\":\"ping\"}"), "{\"ok\":true}");

    const std::string submitted = client.request(
        "{\"cmd\":\"submit\",\"id\":\"r1\",\"protocol\":\"counting\","
        "\"threshold\":3,\"counts\":[40,8],\"engine\":\"agent\",\"seed\":11,"
        "\"snapshot_every\":64}");
    EXPECT_TRUE(line_has(submitted, "\"ok\":true")) << submitted;
    EXPECT_TRUE(line_has(submitted, "\"id\":\"r1\"")) << submitted;
    const std::string id = session_id_of(submitted);
    ASSERT_FALSE(id.empty());

    const std::string final_status = wait_terminal(client, id);
    EXPECT_TRUE(line_has(final_status, "\"state\":\"done\"")) << final_status;

    // Subscribing to the settled session streams the synthetic state event
    // on the same connection, after the subscribe ack.
    const std::string ack =
        client.request("{\"cmd\":\"subscribe\",\"session\":" + json_quote(id) + "}");
    EXPECT_TRUE(line_has(ack, "\"ok\":true")) << ack;
    EXPECT_TRUE(line_has(ack, "\"token\"")) << ack;
    const std::string event = client.read_line();
    EXPECT_TRUE(line_has(event, "\"session\":" + json_quote(id))) << event;
    EXPECT_TRUE(line_has(event, "\"state\":\"done\"")) << event;

    const std::string stats = client.request("{\"cmd\":\"stats\"}");
    EXPECT_TRUE(line_has(stats, "\"submitted\":")) << stats;

    // Malformed frames are answered, not fatal to the connection.
    const std::string bad = client.request("this is not json");
    EXPECT_EQ(bad.rfind("{\"ok\":false,", 0), 0u) << bad;
    EXPECT_EQ(client.request("{\"cmd\":\"ping\"}"), "{\"ok\":true}");

    EXPECT_FALSE(server.shutdown_requested());
    EXPECT_TRUE(line_has(client.request("{\"cmd\":\"shutdown\"}"), "\"ok\":true"));
    EXPECT_TRUE(server.shutdown_requested());
    (void)registry;
}

TEST(WireServerTest, ServesClientsOverLoopbackTcp) {
    RegistryOptions registry_options;
    registry_options.spill_dir =
        (std::filesystem::temp_directory_path() / "popproto_wire_tcp").string();
    std::filesystem::remove_all(registry_options.spill_dir);
    RunRegistry registry(registry_options);

    ServerOptions server_options;
    server_options.tcp_port = 0;  // ephemeral
    WireServer server(registry, server_options);
    server.start();
    ASSERT_GT(server.tcp_port(), 0);

    exercise_server(registry, server,
                    ServiceClient::connect_tcp("127.0.0.1", server.tcp_port()));
    server.stop();
    std::filesystem::remove_all(registry_options.spill_dir);
}

TEST(WireServerTest, ServesClientsOverAUnixSocket) {
    RegistryOptions registry_options;
    registry_options.spill_dir =
        (std::filesystem::temp_directory_path() / "popproto_wire_unix").string();
    std::filesystem::remove_all(registry_options.spill_dir);
    RunRegistry registry(registry_options);

    // Keep the path short: sockaddr_un caps it around 100 bytes.
    const std::string socket_path =
        (std::filesystem::temp_directory_path() / "popproto_wire_test.sock").string();
    std::filesystem::remove(socket_path);
    ServerOptions server_options;
    server_options.unix_path = socket_path;
    WireServer server(registry, server_options);
    server.start();

    exercise_server(registry, server, ServiceClient::connect_unix(socket_path));
    server.stop();
    EXPECT_FALSE(std::filesystem::exists(socket_path)) << "socket not unlinked on stop";
    std::filesystem::remove_all(registry_options.spill_dir);
}

TEST(WireServerTest, LiveSubscribersStreamTraceEventsUntilStop) {
    RegistryOptions registry_options;
    registry_options.spill_dir =
        (std::filesystem::temp_directory_path() / "popproto_wire_stream").string();
    std::filesystem::remove_all(registry_options.spill_dir);
    RunRegistry registry(registry_options);

    ServerOptions server_options;
    server_options.tcp_port = 0;
    WireServer server(registry, server_options);
    server.start();
    ServiceClient client = ServiceClient::connect_tcp("127.0.0.1", server.tcp_port());

    // Budget-bound mid-epidemic work (the budget, 8n, is far below the
    // ~16n silence point), so the run spans 8 quanta and the subscriber
    // attaches while it is in flight on most machines; the terminal-state
    // fallback keeps it deterministic either way.  n = 2^16 caps the
    // event volume structurally: at most n output changes fit under the
    // read-loop guard below.
    const std::string submitted = client.request(
        "{\"cmd\":\"submit\",\"protocol\":\"epidemic\","
        "\"counts\":[65535,1],\"engine\":\"agent\",\"seed\":21,"
        "\"quantum\":65536,\"budget\":524288,\"snapshot_every\":131072}");
    const std::string id = session_id_of(submitted);
    ASSERT_FALSE(id.empty()) << submitted;
    const std::string ack =
        client.request("{\"cmd\":\"subscribe\",\"session\":" + json_quote(id) + "}");
    ASSERT_TRUE(line_has(ack, "\"ok\":true")) << ack;

    // Read events until the run settles; every line is session-tagged.
    std::vector<std::string> events;
    for (int guard = 0; guard < 100000; ++guard) {
        const std::string line = client.read_line();
        EXPECT_TRUE(line_has(line, "\"session\":" + json_quote(id))) << line;
        events.push_back(line);
        if (line_has(line, "\"event\":\"stop\"") ||
            (line_has(line, "\"event\":\"state\"") && line_has(line, "\"state\":\"done\"")))
            break;
    }
    ASSERT_FALSE(events.empty());
    EXPECT_TRUE(line_has(events.back(), "\"event\":\"stop\"") ||
                line_has(events.back(), "\"state\":\"done\""))
        << events.back();

    server.stop();
    std::filesystem::remove_all(registry_options.spill_dir);
}

}  // namespace
}  // namespace popproto::service
