// Urn automata (the Sect. 8 / TR-1280 extension).

#include <gtest/gtest.h>

#include <cmath>

#include "randomized/urn.h"
#include "randomized/urn_automaton.h"

namespace popproto {
namespace {

TEST(UrnAutomaton, ParityIsExact) {
    const UrnAutomaton automaton = make_parity_urn_automaton();
    Rng rng(1);
    for (std::uint64_t tokens = 0; tokens <= 20; ++tokens) {
        const UrnAutomatonRun run = run_urn_automaton(automaton, {tokens}, 1000, rng);
        ASSERT_TRUE(run.halted) << tokens;
        EXPECT_EQ(run.exit_code, tokens % 2) << tokens;
        EXPECT_EQ(run.draws, tokens) << tokens;  // each draw consumes one token
        EXPECT_EQ(run.tokens[0], 0u);
    }
}

TEST(UrnAutomaton, ZeroTestMatchesLemma11ClosedForm) {
    // The zero-test automaton is the Lemma 11 urn process by construction;
    // its loss rate must match (N-1)/(m N^k + N-1-m).
    const std::uint64_t tokens = 16;
    const std::uint64_t counters = 2;
    for (std::uint32_t k : {1u, 2u, 3u}) {
        const UrnAutomaton automaton = make_zero_test_urn_automaton(k);
        Rng rng(100 + k);
        const int trials = 200000;
        int losses = 0;
        for (int trial = 0; trial < trials; ++trial) {
            const UrnAutomatonRun run = run_urn_automaton(
                automaton, {1, counters, tokens - 1 - counters}, 1u << 24, rng);
            ASSERT_TRUE(run.halted);
            if (run.exit_code == 1) ++losses;
        }
        const double closed = urn_loss_probability(tokens, counters, k);
        const double observed = static_cast<double>(losses) / trials;
        EXPECT_NEAR(observed, closed, 3 * std::sqrt(closed / trials) + 5e-4) << "k=" << k;
    }
}

TEST(UrnAutomaton, ZeroTestPreservesTheUrn) {
    const UrnAutomaton automaton = make_zero_test_urn_automaton(2);
    Rng rng(5);
    const std::vector<std::uint64_t> initial{1, 3, 6};
    const UrnAutomatonRun run = run_urn_automaton(automaton, initial, 1u << 24, rng);
    ASSERT_TRUE(run.halted);
    EXPECT_EQ(run.tokens, initial);  // every drawn token was re-inserted
}

TEST(UrnAutomaton, EmptyUrnOnZeroTestReportsZero) {
    const UrnAutomaton automaton = make_zero_test_urn_automaton(2);
    Rng rng(6);
    const UrnAutomatonRun run = run_urn_automaton(automaton, {0, 0, 0}, 10, rng);
    ASSERT_TRUE(run.halted);
    EXPECT_EQ(run.exit_code, 1u);
    EXPECT_EQ(run.draws, 0u);
}

TEST(UrnAutomaton, BudgetExhaustionReportsNotHalted) {
    // A one-state automaton that always re-inserts never halts.
    UrnAutomaton automaton;
    automaton.num_states = 1;
    automaton.num_token_types = 1;
    automaton.initial_state = 0;
    automaton.rules = {UrnRule{0, {0}}};
    automaton.halt_exit = {std::nullopt};
    automaton.empty_exit = {0};
    Rng rng(7);
    const UrnAutomatonRun run = run_urn_automaton(automaton, {5}, 100, rng);
    EXPECT_FALSE(run.halted);
    EXPECT_EQ(run.draws, 100u);
}

TEST(UrnAutomaton, UrnCanGrow) {
    // Doubling automaton: each drawn token is replaced by two "output"
    // tokens; halts on empty with the input consumed and 2x tokens present.
    UrnAutomaton automaton;
    automaton.num_states = 1;
    automaton.num_token_types = 2;
    automaton.initial_state = 0;
    automaton.rules = {
        UrnRule{0, {1, 1}},  // input token -> two output tokens
        UrnRule{0, {}},      // output tokens are consumed (drain phase)
    };
    automaton.halt_exit = {std::nullopt};
    automaton.empty_exit = {0};
    Rng rng(8);
    const UrnAutomatonRun run = run_urn_automaton(automaton, {4, 0}, 10000, rng);
    ASSERT_TRUE(run.halted);
    // All tokens eventually drain (outputs are consumed when drawn).
    EXPECT_EQ(run.tokens[0], 0u);
    EXPECT_EQ(run.tokens[1], 0u);
}

TEST(UrnAutomaton, Validation) {
    UrnAutomaton automaton = make_parity_urn_automaton();
    automaton.rules[0].next_state = 9;
    EXPECT_THROW(automaton.validate(), std::invalid_argument);

    UrnAutomaton bad_insert = make_parity_urn_automaton();
    bad_insert.rules[0].insert = {7};
    EXPECT_THROW(bad_insert.validate(), std::invalid_argument);

    const UrnAutomaton good = make_parity_urn_automaton();
    Rng rng(9);
    EXPECT_THROW(run_urn_automaton(good, {1, 2}, 10, rng), std::invalid_argument);
    EXPECT_THROW(run_urn_automaton(good, {1}, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace popproto
