// Formula AST: evaluation, derived comparisons, substitution, rendering.

#include <gtest/gtest.h>

#include "presburger/formula.h"

namespace popproto {
namespace {

TEST(Formula, ThresholdAtomEvaluates) {
    // 2x0 - x1 < 3
    const Formula f = Formula::threshold({2, -1}, 3);
    EXPECT_TRUE(f.evaluate({0, 0}));
    EXPECT_TRUE(f.evaluate({1, 0}));
    EXPECT_FALSE(f.evaluate({2, 0}));
    EXPECT_TRUE(f.evaluate({2, 2}));
    EXPECT_EQ(f.num_variables(), 2u);
    EXPECT_EQ(f.num_atoms(), 1u);
}

TEST(Formula, CongruenceAtomEvaluates) {
    // x0 + x1 = 2 (mod 3)
    const Formula f = Formula::congruence({1, 1}, 2, 3);
    EXPECT_FALSE(f.evaluate({0, 0}));
    EXPECT_TRUE(f.evaluate({1, 1}));
    EXPECT_TRUE(f.evaluate({5, 0}));
    EXPECT_FALSE(f.evaluate({3, 0}));
}

TEST(Formula, CongruenceHandlesNegativeSums) {
    // -x0 = 2 (mod 3): x0 = 1 satisfies (-1 = 2 mod 3).
    const Formula f = Formula::congruence({-1}, 2, 3);
    EXPECT_TRUE(f.evaluate({1}));
    EXPECT_FALSE(f.evaluate({2}));
    EXPECT_TRUE(f.evaluate({4}));
}

TEST(Formula, DerivedComparisons) {
    const std::vector<std::int64_t> coeffs{1};
    EXPECT_TRUE(Formula::at_most(coeffs, 3).evaluate({3}));
    EXPECT_FALSE(Formula::at_most(coeffs, 3).evaluate({4}));
    EXPECT_TRUE(Formula::at_least(coeffs, 3).evaluate({3}));
    EXPECT_FALSE(Formula::at_least(coeffs, 3).evaluate({2}));
    EXPECT_TRUE(Formula::equals(coeffs, 3).evaluate({3}));
    EXPECT_FALSE(Formula::equals(coeffs, 3).evaluate({2}));
    EXPECT_FALSE(Formula::equals(coeffs, 3).evaluate({4}));
}

TEST(Formula, BooleanConnectives) {
    const Formula even = Formula::congruence({1}, 0, 2);
    const Formula small = Formula::threshold({1}, 5);
    const Formula both = Formula::conjunction(even, small);
    const Formula either = Formula::disjunction(even, small);
    const Formula odd = Formula::negation(even);

    EXPECT_TRUE(both.evaluate({4}));
    EXPECT_FALSE(both.evaluate({6}));
    EXPECT_TRUE(either.evaluate({6}));
    EXPECT_FALSE(either.evaluate({7}));
    EXPECT_TRUE(odd.evaluate({7}));
    EXPECT_FALSE(odd.evaluate({6}));
    EXPECT_EQ(both.num_atoms(), 2u);
    EXPECT_EQ(odd.num_atoms(), 1u);
}

TEST(Formula, MajorityFromPaperExample) {
    // "At least 5% of the birds have fevers": 20 x1 >= x0 + x1, i.e.
    // x0 - 19 x1 < 1 when rewritten; use at_least directly.
    const Formula f = Formula::at_least({-1, 19}, 0);
    EXPECT_TRUE(f.evaluate({19, 1}));
    EXPECT_FALSE(f.evaluate({20, 1}));
    EXPECT_TRUE(f.evaluate({0, 0}));
}

TEST(Formula, SubstituteTokensImplementsCorollary3) {
    // Phi(y1, y2) = (y1 - 2 y2 = 0 mod 3), tokens from the paper's example:
    // X = {(0,0), (1,0), (-1,0), (0,1), (0,-1)}.
    const Formula phi = Formula::congruence({1, -2}, 0, 3);
    const std::vector<std::vector<std::int64_t>> tokens = {
        {0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}};
    const Formula phi_tokens = phi.substitute_tokens(tokens);
    EXPECT_EQ(phi_tokens.num_variables(), 5u);

    // Token counts (z0..z4) represent y1 = z1 - z2, y2 = z3 - z4.
    const auto check = [&](std::vector<std::int64_t> z) {
        const std::int64_t y1 = z[1] - z[2];
        const std::int64_t y2 = z[3] - z[4];
        EXPECT_EQ(phi_tokens.evaluate(z), phi.evaluate({y1, y2}))
            << "z = (" << z[0] << "," << z[1] << "," << z[2] << "," << z[3] << "," << z[4] << ")";
    };
    for (std::int64_t a = 0; a <= 2; ++a)
        for (std::int64_t b = 0; b <= 2; ++b)
            for (std::int64_t c = 0; c <= 2; ++c)
                for (std::int64_t d = 0; d <= 2; ++d) check({1, a, b, c, d});
}

TEST(Formula, SubstituteRejectsRaggedTokens) {
    const Formula f = Formula::threshold({1, 1}, 3);
    EXPECT_THROW(f.substitute_tokens({{1, 0}, {1}}), std::invalid_argument);
    EXPECT_THROW(f.substitute_tokens({}), std::invalid_argument);
    EXPECT_THROW(f.substitute_tokens({{1}}), std::invalid_argument);
}

TEST(Formula, ToStringRendersStructure) {
    const Formula f = Formula::conjunction(Formula::threshold({2, -1}, 3),
                                           Formula::negation(Formula::congruence({1}, 1, 2)));
    const std::string text = f.to_string();
    EXPECT_NE(text.find("2 x0"), std::string::npos);
    EXPECT_NE(text.find("< 3"), std::string::npos);
    EXPECT_NE(text.find("mod 2"), std::string::npos);
    EXPECT_NE(text.find("&"), std::string::npos);
    EXPECT_NE(text.find("!"), std::string::npos);
}

TEST(Formula, AccessorsEnforceKind) {
    const Formula atom = Formula::threshold({1}, 0);
    EXPECT_THROW(atom.left(), std::invalid_argument);
    EXPECT_THROW(atom.child(), std::invalid_argument);
    EXPECT_THROW(atom.congruence_atom(), std::invalid_argument);
    const Formula neg = Formula::negation(atom);
    EXPECT_NO_THROW(neg.child());
    EXPECT_THROW(neg.right(), std::invalid_argument);
}

TEST(Formula, ConstructorsValidate) {
    EXPECT_THROW(Formula::threshold({}, 0), std::invalid_argument);
    EXPECT_THROW(Formula::congruence({1}, 0, 1), std::invalid_argument);
    EXPECT_THROW(Formula::congruence({1}, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace popproto
