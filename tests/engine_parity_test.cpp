// Engine parity under observation.
//
// The agent-array, count-batch, and collapsed engines intentionally consume
// different RNG streams (batch_simulator.h: "a fixed seed yields a
// different, equally valid trajectory"), so a same-seed run cannot produce
// pathwise-identical count vectors across engines.  This file verifies the
// strongest parity that *is* true, which together pins down the observation
// contract:
//
//  1. Snapshot *indices* are identical across engines for budget-pinned
//     runs: the schedule is deterministic and trajectory-independent, and
//     every engine emits every scheduled index up to the stop index — the
//     batch engine by clamping its geometric null jumps at snapshot
//     boundaries, the collapsed engine by clamping its super-steps there.
//  2. Per-engine snapshot *count vectors* are exact: the snapshot at index
//     k equals the final configuration of the same-seed run truncated at
//     max_interactions = k (the truncated run replays an identical RNG
//     prefix).  For the batch engine this directly validates the clamping
//     logic — most tested indices fall inside null jumps.  For the
//     collapsed engine the truncated run must keep the identical snapshot
//     schedule: super-step boundaries shape the stream itself, so only a
//     replay with the same boundary sequence is bit-identical
//     (collapsed_simulator.h — equivalence across *different* observation
//     setups is distributional, which is what test 3 checks).
//  3. Across engines the trajectories agree *distributionally*: the mean
//     epidemic infection level at a fixed snapshot index matches across all
//     three engines over many seeds.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/batch_simulator.h"
#include "core/collapsed_simulator.h"
#include "core/observer.h"
#include "core/simulator.h"
#include "observe/trace_recorder.h"
#include "presburger/atom_protocols.h"
#include "protocols/counting.h"
#include "protocols/epidemic.h"

namespace popproto {
namespace {

struct ParityCase {
    std::string name;
    std::unique_ptr<TabulatedProtocol> protocol;
    CountConfiguration initial;
    std::uint64_t budget;  // chosen so runs stay budget-limited (no stop rule fires first)
};

std::vector<ParityCase> parity_cases() {
    std::vector<ParityCase> cases;
    {
        auto protocol = make_counting_protocol(5);
        auto initial = CountConfiguration::from_input_counts(*protocol, {57, 7});
        cases.push_back({"counting", std::move(protocol), std::move(initial), 500});
    }
    {
        // Majority-style threshold atom: [ x_0 - x_1 < 0 ].
        auto protocol = make_threshold_protocol({1, -1}, 0);
        auto initial = CountConfiguration::from_input_counts(*protocol, {20, 30});
        cases.push_back({"majority", std::move(protocol), std::move(initial), 700});
    }
    {
        auto protocol = make_epidemic_protocol();
        auto initial = CountConfiguration::from_input_counts(*protocol, {63, 1});
        cases.push_back({"epidemic", std::move(protocol), std::move(initial), 120});
    }
    return cases;
}

constexpr SimulationEngine kParityEngines[] = {SimulationEngine::kAgentArray,
                                               SimulationEngine::kCountBatch,
                                               SimulationEngine::kCollapsedBatch};

const char* engine_label(SimulationEngine engine) {
    switch (engine) {
        case SimulationEngine::kAgentArray: return "agent_array";
        case SimulationEngine::kCountBatch: return "count_batch";
        case SimulationEngine::kCollapsedBatch: return "collapsed";
        case SimulationEngine::kAuto: return "auto";
    }
    return "?";
}

RunResult run_engine(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                     SimulationEngine engine, const RunOptions& options) {
    switch (engine) {
        case SimulationEngine::kAgentArray: return simulate(protocol, initial, options);
        case SimulationEngine::kCollapsedBatch:
            return simulate_collapsed(protocol, initial, options);
        default: return simulate_counts(protocol, initial, options);
    }
}

std::vector<std::uint64_t> snapshot_indices(const TraceRecorder& recorder) {
    std::vector<std::uint64_t> indices;
    indices.reserve(recorder.snapshots().size());
    for (const TraceSnapshot& snapshot : recorder.snapshots())
        indices.push_back(snapshot.interaction_index);
    return indices;
}

/// All scheduled indices <= limit, straight from the schedule definition.
std::vector<std::uint64_t> expected_indices(const SnapshotSchedule& schedule,
                                            std::uint64_t limit) {
    std::vector<std::uint64_t> indices;
    for (std::uint64_t index = schedule.first_index(); index <= limit;
         index = schedule.next_after(index)) {
        indices.push_back(index);
    }
    return indices;
}

TEST(EngineParity, SnapshotIndicesAgreeAcrossEngines) {
    const std::vector<SnapshotSchedule> schedules = {SnapshotSchedule::every(97),
                                                     SnapshotSchedule::log_spaced(1.6, 5)};
    for (const ParityCase& test_case : parity_cases()) {
        for (std::size_t s = 0; s < schedules.size(); ++s) {
            SCOPED_TRACE(test_case.name + ", schedule " + std::to_string(s));

            RunOptions options;
            options.max_interactions = test_case.budget;
            options.seed = 42;
            options.snapshots = schedules[s];

            const std::vector<std::uint64_t> expected =
                expected_indices(schedules[s], test_case.budget);
            for (const SimulationEngine engine : kParityEngines) {
                SCOPED_TRACE(engine_label(engine));
                TraceRecorder trace;
                options.observer = &trace;
                const RunResult result =
                    run_engine(*test_case.protocol, test_case.initial, engine, options);

                // Budget-pinned by construction: every engine ran the full
                // budget, so every engine saw the complete scheduled prefix.
                ASSERT_EQ(result.stop_reason, StopReason::kBudget);
                ASSERT_EQ(result.interactions, test_case.budget);
                EXPECT_EQ(snapshot_indices(trace), expected);

                // Snapshots of every engine describe the same population.
                for (const TraceSnapshot& snapshot : trace.snapshots()) {
                    std::uint64_t total = 0;
                    for (const std::uint64_t count : snapshot.counts) total += count;
                    EXPECT_EQ(total, test_case.initial.population_size());
                }
            }
        }
    }
}

TEST(EngineParity, SnapshotsEqualTruncatedRunFinalConfigurations) {
    // The snapshot at index k must equal the final configuration of the
    // same-seed run truncated at max_interactions = k: the truncated run
    // consumes an identical RNG prefix, so any mismatch means observation
    // perturbed the run or a snapshot was stamped at the wrong index.  For
    // the batch engine most k fall inside geometric null jumps, so this is
    // the sharpest test of the jump-clamping logic.
    //
    // The collapsed engine's prefix identity is conditional: super-step
    // clamping shapes the RNG stream, so the truncated run must keep the
    // identical snapshot schedule (every scheduled index <= k is a clamp
    // boundary in both runs, and k itself clamps the crossing super-step —
    // as the budget in the truncated run, as a snapshot in the observed
    // one).  Dropping the schedule, as the per-interaction engines may,
    // would change the boundary sequence and yield a different (equally
    // valid) trajectory.
    for (const ParityCase& test_case : parity_cases()) {
        for (const SimulationEngine engine : kParityEngines) {
            SCOPED_TRACE(test_case.name + ", " + engine_label(engine));

            RunOptions options;
            options.max_interactions = test_case.budget;
            options.seed = 271828;
            options.snapshots = SnapshotSchedule::log_spaced(1.5, 8);

            TraceRecorder recorder;
            options.observer = &recorder;
            run_engine(*test_case.protocol, test_case.initial, engine, options);
            ASSERT_FALSE(recorder.snapshots().empty());

            for (const TraceSnapshot& snapshot : recorder.snapshots()) {
                RunOptions truncated = options;
                TraceRecorder replay_trace;
                if (engine == SimulationEngine::kCollapsedBatch) {
                    truncated.observer = &replay_trace;  // keep the schedule
                } else {
                    truncated.observer = nullptr;
                    truncated.snapshots = SnapshotSchedule();
                }
                truncated.max_interactions = snapshot.interaction_index;
                const RunResult replay =
                    run_engine(*test_case.protocol, test_case.initial, engine, truncated);
                ASSERT_EQ(replay.interactions, snapshot.interaction_index);
                EXPECT_EQ(replay.final_configuration.counts(), snapshot.counts)
                    << "snapshot at index " << snapshot.interaction_index
                    << " does not match the truncated replay";
            }
        }
    }
}

TEST(EngineParity, EpidemicTrajectoriesAgreeDistributionally) {
    // Same-seed pathwise equality across engines is impossible (different
    // RNG streams); what must hold is that the *distribution* of the
    // trajectory agrees.  Compare the mean infected count at a fixed
    // snapshot index over many seeds.
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {99, 1});
    constexpr std::uint64_t kSnapshotIndex = 300;
    constexpr int kSeeds = 40;

    const auto mean_infected_at_snapshot = [&](SimulationEngine engine) {
        double total = 0.0;
        for (int seed = 1; seed <= kSeeds; ++seed) {
            TraceRecorder recorder;
            RunOptions options;
            options.max_interactions = kSnapshotIndex;
            options.seed = static_cast<std::uint64_t>(seed);
            options.observer = &recorder;
            options.snapshots = SnapshotSchedule::every(kSnapshotIndex);
            const RunResult result = run_engine(*protocol, initial, engine, options);
            if (!recorder.snapshots().empty()) {
                // Budget == snapshot index: one snapshot, at the budget.
                EXPECT_EQ(recorder.snapshots().front().interaction_index, kSnapshotIndex);
                total += static_cast<double>(recorder.snapshots().front().counts[1]);
            } else {
                // The batch engine detects silence exactly and may stop
                // before the snapshot; a silent configuration is frozen, so
                // its counts are the configuration at the snapshot index too.
                EXPECT_EQ(result.stop_reason, StopReason::kSilent);
                total += static_cast<double>(result.final_configuration.counts()[1]);
            }
        }
        return total / kSeeds;
    };

    const double agent_mean = mean_infected_at_snapshot(SimulationEngine::kAgentArray);
    EXPECT_GT(agent_mean, 1.0);
    for (const SimulationEngine engine :
         {SimulationEngine::kCountBatch, SimulationEngine::kCollapsedBatch}) {
        const double engine_mean = mean_infected_at_snapshot(engine);
        EXPECT_GT(engine_mean, 1.0);
        EXPECT_NEAR(agent_mean, engine_mean, 0.15 * agent_mean)
            << "agent_array mean " << agent_mean << " vs " << engine_label(engine)
            << " mean " << engine_mean;
    }
}

}  // namespace
}  // namespace popproto
