// Chi-square goodness-of-fit coverage for the exact Rng samplers: the new
// binomial / hypergeometric inverse-CDF walks powering the collapsed
// super-step engine, and (retroactively) geometric_skips.  All tests use
// fixed seeds and the 0.999-quantile helper from test_util.h, so they are
// deterministic; a wrong sampler overshoots the critical value by orders
// of magnitude.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.h"
#include "test_util.h"

namespace popproto {
namespace {

using testutil::chi_square_gof;
using testutil::ChiSquareResult;

std::vector<double> binomial_pmf(std::uint64_t t, double p) {
    // f(0) = (1-p)^t, f(k+1) = f(k) (t-k)/(k+1) p/(1-p); computed in logs
    // for numerical headroom at large t.
    std::vector<double> pmf(t + 1);
    const double lp = std::log(p);
    const double lq = std::log1p(-p);
    double lc = 0.0;  // log C(t, k)
    for (std::uint64_t k = 0; k <= t; ++k) {
        pmf[k] = std::exp(lc + static_cast<double>(k) * lp +
                          static_cast<double>(t - k) * lq);
        if (k < t)
            lc += std::log(static_cast<double>(t - k)) - std::log(static_cast<double>(k + 1));
    }
    return pmf;
}

std::vector<double> hypergeometric_pmf(std::uint64_t succ, std::uint64_t fail,
                                       std::uint64_t draws) {
    const auto lchoose = [](double a, double b) {
        return std::lgamma(a + 1.0) - std::lgamma(b + 1.0) - std::lgamma(a - b + 1.0);
    };
    const std::uint64_t lo = draws > fail ? draws - fail : 0;
    const std::uint64_t hi = draws < succ ? draws : succ;
    std::vector<double> pmf(hi + 1, 0.0);
    for (std::uint64_t k = lo; k <= hi; ++k) {
        pmf[k] = std::exp(lchoose(static_cast<double>(succ), static_cast<double>(k)) +
                          lchoose(static_cast<double>(fail), static_cast<double>(draws - k)) -
                          lchoose(static_cast<double>(succ + fail),
                                  static_cast<double>(draws)));
    }
    return pmf;
}

constexpr std::uint64_t kDraws = 40000;

TEST(RngBinomial, MatchesPmfAcrossRegimes) {
    struct Case {
        std::uint64_t trials;
        double p;
    };
    // Mean >> 1 (t p = 35), mean << 1 (t p = 0.5), symmetric, skewed both
    // ways, and a single trial.
    const std::vector<Case> cases = {{50, 0.7}, {500, 0.001}, {40, 0.5},
                                     {20, 0.05}, {20, 0.95},  {1, 0.3}};
    std::uint64_t seed = 7;
    for (const Case& c : cases) {
        SCOPED_TRACE("binomial(" + std::to_string(c.trials) + ", " + std::to_string(c.p) + ")");
        Rng rng(seed++);
        std::vector<std::uint64_t> observed(c.trials + 1, 0);
        for (std::uint64_t i = 0; i < kDraws; ++i) {
            const std::uint64_t k = rng.binomial(c.trials, c.p);
            ASSERT_LE(k, c.trials);
            ++observed[k];
        }
        const ChiSquareResult gof =
            chi_square_gof(observed, binomial_pmf(c.trials, c.p), kDraws);
        EXPECT_TRUE(gof.pass) << gof.summary();
    }
}

TEST(RngBinomial, BoundariesConsumeNoRandomness) {
    Rng rng(11);
    const Rng::StreamState before = rng.save_state();
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
    EXPECT_EQ(rng.binomial(100, 0.0), 0u);
    EXPECT_EQ(rng.binomial(100, -0.5), 0u);
    EXPECT_EQ(rng.binomial(100, 1.0), 100u);
    EXPECT_EQ(rng.binomial(100, 1.5), 100u);
    EXPECT_EQ(rng.save_state(), before);
}

TEST(RngHypergeometric, MatchesPmfAcrossRegimes) {
    struct Case {
        std::uint64_t succ;
        std::uint64_t fail;
        std::uint64_t draws;
    };
    // Balanced, lower-support-truncated (draws > fail forces k >= 10),
    // near-complete draw, tiny population, success-heavy, and mean << 1.
    const std::vector<Case> cases = {{30, 70, 20}, {40, 10, 20}, {25, 25, 48},
                                     {4, 3, 5},    {1000, 10, 5}, {2, 1000, 30}};
    std::uint64_t seed = 23;
    for (const Case& c : cases) {
        SCOPED_TRACE("hypergeometric(" + std::to_string(c.succ) + ", " +
                     std::to_string(c.fail) + ", " + std::to_string(c.draws) + ")");
        Rng rng(seed++);
        const std::uint64_t hi = c.draws < c.succ ? c.draws : c.succ;
        std::vector<std::uint64_t> observed(hi + 1, 0);
        for (std::uint64_t i = 0; i < kDraws; ++i) {
            const std::uint64_t k = rng.hypergeometric(c.succ, c.fail, c.draws);
            ASSERT_LE(k, hi);
            ASSERT_GE(k + c.fail, c.draws);  // k >= draws - fail
            ++observed[k];
        }
        const ChiSquareResult gof =
            chi_square_gof(observed, hypergeometric_pmf(c.succ, c.fail, c.draws), kDraws);
        EXPECT_TRUE(gof.pass) << gof.summary();
    }
}

TEST(RngHypergeometric, BoundariesConsumeNoRandomness) {
    Rng rng(13);
    const Rng::StreamState before = rng.save_state();
    EXPECT_EQ(rng.hypergeometric(10, 20, 0), 0u);   // draws == 0
    EXPECT_EQ(rng.hypergeometric(0, 20, 5), 0u);    // no successes
    EXPECT_EQ(rng.hypergeometric(10, 0, 5), 5u);    // no failures
    EXPECT_EQ(rng.hypergeometric(10, 20, 30), 10u); // draw everything
    EXPECT_EQ(rng.hypergeometric(10, 20, 99), 10u); // clamped overdraw
    EXPECT_EQ(rng.hypergeometric(3, 1, 4), 3u);     // degenerate support
    EXPECT_EQ(rng.save_state(), before);
}

TEST(RngGeometricSkips, MatchesPmfAcrossRegimes) {
    // Retroactive GOF for the PR 1 sampler: P[k skips] = p (1-p)^k.
    const std::vector<double> probabilities = {0.5, 0.05, 0.9};
    std::uint64_t seed = 31;
    for (const double p : probabilities) {
        SCOPED_TRACE("geometric_skips(" + std::to_string(p) + ")");
        Rng rng(seed++);
        constexpr std::size_t kCategories = 256;  // tail folds into the helper's extra bin
        std::vector<std::uint64_t> observed(kCategories, 0);
        std::vector<double> pmf(kCategories, 0.0);
        double mass = p;
        for (std::size_t k = 0; k < kCategories; ++k) {
            pmf[k] = mass;
            mass *= 1.0 - p;
        }
        for (std::uint64_t i = 0; i < kDraws; ++i) {
            const std::uint64_t k = rng.geometric_skips(p);
            if (k < kCategories) ++observed[k];
        }
        const ChiSquareResult gof = chi_square_gof(observed, pmf, kDraws);
        EXPECT_TRUE(gof.pass) << gof.summary();
    }
}

TEST(RngGeometricSkips, CertainSuccessConsumesNoRandomness) {
    Rng rng(17);
    const Rng::StreamState before = rng.save_state();
    EXPECT_EQ(rng.geometric_skips(1.0), 0u);
    EXPECT_EQ(rng.geometric_skips(2.0), 0u);
    EXPECT_EQ(rng.save_state(), before);
}

TEST(RngSamplers, SaveRestoreReplaysExactly) {
    // The samplers are stateless apart from the stream position, so a
    // saved state replays an interleaved draw sequence bit for bit — the
    // property collapsed-engine checkpoints rely on.
    Rng rng(101);
    rng.binomial(37, 0.42);  // advance to an arbitrary position
    const Rng::StreamState cut = rng.save_state();

    std::vector<std::uint64_t> first;
    for (int i = 0; i < 50; ++i) {
        first.push_back(rng.binomial(100, 0.3));
        first.push_back(rng.hypergeometric(60, 40, 25));
        first.push_back(rng.geometric_skips(0.125));
    }

    rng.restore_state(cut);
    std::vector<std::uint64_t> second;
    for (int i = 0; i < 50; ++i) {
        second.push_back(rng.binomial(100, 0.3));
        second.push_back(rng.hypergeometric(60, 40, 25));
        second.push_back(rng.geometric_skips(0.125));
    }
    EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------------
// jump / split: the stream-partitioning substrate of the parallel collapsed
// engine (K successive splits = K pairwise-disjoint 2^128-draw blocks).

TEST(RngJump, IsDeterministicAndMovesTheStream) {
    Rng jumped(42);
    Rng jumped_again(42);
    Rng stayed(42);
    jumped.jump();
    jumped_again.jump();
    // Same seed + jump lands on the same position...
    EXPECT_EQ(jumped.save_state(), jumped_again.save_state());
    for (int i = 0; i < 64; ++i) EXPECT_EQ(jumped(), jumped_again());
    // ...which is a different position than the unjumped stream.
    EXPECT_NE(jumped.save_state(), stayed.save_state());
    bool any_difference = false;
    for (int i = 0; i < 64; ++i) any_difference |= (jumped() != stayed());
    EXPECT_TRUE(any_difference);
}

TEST(RngSplit, ChildContinuesTheParentStreamAndParentJumpsPast) {
    // split() hands the child the parent's current position and jumps the
    // parent 2^128 ahead: the child replays exactly what the unsplit parent
    // would have produced, and the parent equals a jumped copy.
    Rng parent(7);
    Rng unsplit(7);
    Rng jumped(7);
    jumped.jump();
    Rng child = parent.split();
    for (int i = 0; i < 256; ++i) EXPECT_EQ(child(), unsplit());
    EXPECT_EQ(parent.save_state(), jumped.save_state());
}

TEST(RngSplit, SuccessiveSplitsAreDistinctAndOrderDeterministic) {
    Rng parent_a(99);
    Rng parent_b(99);
    std::vector<Rng> children_a;
    std::vector<Rng> children_b;
    for (int k = 0; k < 4; ++k) {
        children_a.push_back(parent_a.split());
        children_b.push_back(parent_b.split());
    }
    for (int k = 0; k < 4; ++k) {
        // Deterministic in (parent state, split order)...
        EXPECT_EQ(children_a[k].save_state(), children_b[k].save_state());
        // ...and each child starts a distinct block.
        for (int j = k + 1; j < 4; ++j)
            EXPECT_NE(children_a[k].save_state(), children_a[j].save_state());
    }
}

TEST(RngSplit, ChildStreamsSaveAndRestoreLikeAnyRng) {
    // Checkpoints of the parallel engine carry shard (= child) streams;
    // a restored child must replay interleaved sampler draws bit for bit.
    Rng parent(2024);
    parent.split();  // discard one block so the child below is mid-sequence
    Rng child = parent.split();
    child.binomial(91, 0.77);  // advance to an arbitrary position
    const Rng::StreamState cut = child.save_state();

    std::vector<std::uint64_t> first;
    for (int i = 0; i < 40; ++i) {
        first.push_back(child());
        first.push_back(child.hypergeometric(33, 21, 17));
        first.push_back(child.binomial(64, 0.5));
    }

    Rng fresh(1);  // restore into an unrelated generator
    fresh.restore_state(cut);
    std::vector<std::uint64_t> second;
    for (int i = 0; i < 40; ++i) {
        second.push_back(fresh());
        second.push_back(fresh.hypergeometric(33, 21, 17));
        second.push_back(fresh.binomial(64, 0.5));
    }
    EXPECT_EQ(first, second);
}

TEST(RngSplit, InterleavedChildDrawsStayUniform) {
    // Round-robin over 4 sibling child streams and chi-square the low six
    // bits of each draw: a broken jump polynomial (overlapping or
    // correlated blocks) skews this wildly, a correct one is uniform over
    // the 64 buckets.
    Rng parent(31337);
    std::vector<Rng> children;
    for (int k = 0; k < 4; ++k) children.push_back(parent.split());

    constexpr std::uint64_t kPerChild = 10000;
    std::vector<std::uint64_t> buckets(64, 0);
    for (std::uint64_t i = 0; i < kPerChild; ++i)
        for (Rng& child : children) ++buckets[child() % 64];

    const std::vector<double> uniform(64, 1.0 / 64.0);
    const ChiSquareResult gof = chi_square_gof(buckets, uniform, 4 * kPerChild);
    EXPECT_TRUE(gof.pass) << gof.summary();
}

}  // namespace
}  // namespace popproto
