// Mean-field engine: drift extraction, RK45 integration, and simulation
// cross-validation (src/meanfield; DESIGN.md "The mean-field engine").

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/batch_simulator.h"
#include "core/configuration.h"
#include "core/observer.h"
#include "core/simulator.h"
#include "meanfield/comparator.h"
#include "meanfield/drift.h"
#include "meanfield/integrator.h"
#include "presburger/atom_protocols.h"
#include "protocols/counting.h"
#include "protocols/epidemic.h"
#include "protocols/leader_election.h"
#include "randomized/trials.h"

namespace popproto {
namespace {

/// The built-in protocol zoo the drift property tests sweep over.
std::vector<std::pair<std::string, std::unique_ptr<TabulatedProtocol>>> builtin_protocols() {
    std::vector<std::pair<std::string, std::unique_ptr<TabulatedProtocol>>> zoo;
    zoo.emplace_back("epidemic", make_epidemic_protocol());
    zoo.emplace_back("one_way_epidemic", make_one_way_epidemic_protocol());
    zoo.emplace_back("counting5", make_counting_protocol(5));
    zoo.emplace_back("majority", make_threshold_protocol({1, -1}, 0));
    zoo.emplace_back("leader_election", make_leader_election_protocol());
    zoo.emplace_back("remainder_mod3", make_remainder_protocol({1}, 0, 3));
    zoo.emplace_back("threshold_signed", make_threshold_protocol({2, -3}, 1));
    return zoo;
}

/// Random density vector (uniform on the simplex via exponential spacings).
std::vector<double> random_density(std::size_t dim, std::mt19937_64& rng) {
    std::exponential_distribution<double> exponential(1.0);
    std::vector<double> density(dim);
    double total = 0.0;
    for (double& x : density) {
        x = exponential(rng);
        total += x;
    }
    for (double& x : density) x /= total;
    return density;
}

// --- Drift properties (satellite: all built-in protocols) ---------------

TEST(MeanfieldDrift, ConservesDensityOnAllBuiltins) {
    std::mt19937_64 rng(20040725);
    for (const auto& [name, protocol] : builtin_protocols()) {
        const DriftField drift(*protocol);
        for (int trial = 0; trial < 32; ++trial) {
            const std::vector<double> x = random_density(protocol->num_states(), rng);
            const std::vector<double> f = drift(x);
            double total = 0.0;
            for (double component : f) total += component;
            EXPECT_NEAR(total, 0.0, 1e-12) << name << " trial " << trial;
        }
    }
}

TEST(MeanfieldDrift, VanishesAtSingleStateFixedPointsOnAllBuiltins) {
    for (const auto& [name, protocol] : builtin_protocols()) {
        const DriftField drift(*protocol);
        for (State q = 0; q < protocol->num_states(); ++q) {
            std::vector<double> pure(protocol->num_states(), 0.0);
            pure[q] = 1.0;
            const StatePair next = protocol->apply(q, q);
            if (next == StatePair{q, q}) {
                // delta fixes (q, q): the all-q configuration is silent and
                // its density must be exactly stationary.
                EXPECT_EQ(drift.sup_norm(pure), 0.0)
                    << name << " state " << protocol->state_name(q);
            } else {
                // delta moves (q, q): the fluid limit must flow away.
                EXPECT_GT(drift.sup_norm(pure), 0.0)
                    << name << " state " << protocol->state_name(q);
            }
        }
    }
}

TEST(MeanfieldDrift, EpidemicDriftIsLogisticField) {
    const auto protocol = make_epidemic_protocol();
    const DriftField drift(*protocol);
    EXPECT_EQ(drift.num_states(), 2u);
    // Ordered pairs (S,I) and (I,S) each infect one agent: dI/dt = 2 S I.
    for (double y : {0.015625, 0.25, 0.5, 0.875}) {
        const std::vector<double> f = drift({1.0 - y, y});
        EXPECT_NEAR(f[1], 2.0 * y * (1.0 - y), 1e-15);
        EXPECT_NEAR(f[0], -2.0 * y * (1.0 - y), 1e-15);
    }
}

// --- Integrator accuracy ------------------------------------------------

double logistic(double y0, double rate, double t) {
    return y0 / (y0 + (1.0 - y0) * std::exp(-rate * t));
}

TEST(MeanfieldIntegrator, EpidemicMatchesClosedFormLogistic) {
    const auto protocol = make_epidemic_protocol();
    const std::uint64_t n = 4096;
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n - 64, 64});
    FluidOptions options;
    options.t_end = 6.0;
    const FluidResult result = solve_fluid(*protocol, initial, options);
    EXPECT_EQ(result.stop_reason, FluidStopReason::kHorizon);
    EXPECT_DOUBLE_EQ(result.t_reached, 6.0);

    // Dense output vs the logistic closed form on a fine grid: the
    // acceptance bar of the engine is sup-norm <= 1e-6.
    const double y0 = 64.0 / static_cast<double>(n);
    double sup = 0.0;
    for (int i = 0; i <= 2000; ++i) {
        const double t = 6.0 * i / 2000.0;
        const double exact = logistic(y0, 2.0, t);
        const std::vector<double> density = result.solution.density_at(t);
        sup = std::max(sup, std::abs(density[1] - exact));
        sup = std::max(sup, std::abs(density[0] - (1.0 - exact)));
    }
    EXPECT_LE(sup, 1e-6);
    EXPECT_NEAR(result.final_density[1], logistic(y0, 2.0, 6.0), 1e-8);
}

TEST(MeanfieldIntegrator, OneWayEpidemicHalvesTheRate) {
    const auto protocol = make_one_way_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {96, 32});
    FluidOptions options;
    options.t_end = 8.0;
    const FluidResult result = solve_fluid(*protocol, initial, options);
    // Only (I, S) infects: dI/dt = S I, the rate-1 logistic curve.
    for (int i = 0; i <= 100; ++i) {
        const double t = 8.0 * i / 100.0;
        EXPECT_NEAR(result.solution.density_at(t, 1), logistic(0.25, 1.0, t), 1e-7) << t;
    }
}

TEST(MeanfieldIntegrator, LeaderElectionMatchesHyperbolicDecay) {
    const auto protocol = make_leader_election_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {256});
    FluidOptions options;
    options.t_end = 50.0;
    const FluidResult result = solve_fluid(*protocol, initial, options);
    // The only effective ordered pair is (L, L) -> (L, F), so the fluid
    // limit is dL/dt = -L^2 with exact solution L(t) = 1 / (1/L0 + t).
    for (double t : {0.0, 0.5, 2.0, 10.0, 50.0}) {
        const State leader = 1;  // state/output 1 = leader
        EXPECT_NEAR(result.solution.density_at(t, leader), 1.0 / (1.0 + t), 1e-7) << t;
    }
}

TEST(MeanfieldIntegrator, EquilibriumDetectorStopsEarly) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {192, 64});
    FluidOptions options;
    options.t_end = 1000.0;
    // eps must sit above the solver's own error floor (~abs_tol): below
    // it the integrated density jitters across the threshold forever.
    options.equilibrium_eps = 1e-6;
    options.equilibrium_window = 2.0;
    const FluidResult result = solve_fluid(*protocol, initial, options);
    EXPECT_EQ(result.stop_reason, FluidStopReason::kEquilibrium);
    EXPECT_LT(result.t_reached, 100.0);
    EXPECT_NEAR(result.final_density[1], 1.0, 1e-5);
    EXPECT_LT(result.final_drift_norm, 1e-6);
}

TEST(MeanfieldIntegrator, SilentInitialDensityIsStationary) {
    // All agents already infected: the configuration is silent, the drift
    // is identically zero, and the detector fires after exactly the window.
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {0, 64});
    FluidOptions options;
    options.t_end = 100.0;
    options.equilibrium_eps = 1e-12;
    options.equilibrium_window = 1.0;
    const FluidResult result = solve_fluid(*protocol, initial, options);
    EXPECT_EQ(result.stop_reason, FluidStopReason::kEquilibrium);
    EXPECT_EQ(result.final_density[1], 1.0);
    EXPECT_EQ(result.final_drift_norm, 0.0);
}

TEST(MeanfieldIntegrator, DenseOutputClampsOutsideSpan) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {3, 1});
    FluidOptions options;
    options.t_end = 2.0;
    const FluidResult result = solve_fluid(*protocol, initial, options);
    EXPECT_EQ(result.solution.density_at(-1.0), result.solution.density_at(0.0));
    EXPECT_EQ(result.solution.density_at(99.0), result.final_density);
    EXPECT_DOUBLE_EQ(result.solution.density_at(0.0, 1), 0.25);
}

TEST(MeanfieldIntegrator, RejectsBadInputs) {
    const auto protocol = make_epidemic_protocol();
    const DriftField drift(*protocol);
    FluidOptions options;  // t_end unset
    EXPECT_THROW(solve_fluid(drift, {0.5, 0.5}, options), std::invalid_argument);
    options.t_end = 1.0;
    EXPECT_THROW(solve_fluid(drift, {0.9, 0.9}, options), std::invalid_argument);
    EXPECT_THROW(solve_fluid(drift, {0.5, 0.5, 0.0}, options), std::invalid_argument);
    const auto empty = CountConfiguration(2);
    EXPECT_THROW(solve_fluid(*protocol, empty, options), std::invalid_argument);
}

// --- Cross-validation against the simulation engines --------------------

TEST(MeanfieldComparator, NormalizedTrajectoryRescalesARecordedRun) {
    const auto protocol = make_epidemic_protocol();
    const std::uint64_t n = 1024;
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n - 16, 16});
    TraceRecorder recorder;
    RunOptions options;
    options.max_interactions = 16 * n;
    options.seed = 7;
    options.observer = &recorder;
    options.snapshots = SnapshotSchedule::every(n);
    simulate_counts(*protocol, initial, options);

    const EmpiricalTrajectory trajectory = normalized_trajectory(recorder);
    ASSERT_GE(trajectory.times.size(), 3u);
    EXPECT_EQ(trajectory.population, n);
    EXPECT_DOUBLE_EQ(trajectory.times.front(), 0.0);
    EXPECT_DOUBLE_EQ(trajectory.densities.front()[1], 16.0 / static_cast<double>(n));
    // Fluid times are interaction indices over n; snapshot 1 sits at t = 1.
    EXPECT_DOUBLE_EQ(trajectory.times[1], 1.0);
    for (std::size_t k = 0; k < trajectory.times.size(); ++k) {
        double total = 0.0;
        for (double x : trajectory.densities[k]) total += x;
        EXPECT_NEAR(total, 1.0, 1e-12);
    }
}

TEST(MeanfieldComparator, DeviationShrinksWithPopulation) {
    // The Bournez et al. fluid limit: the same initial *density* simulated
    // at growing n must hug the ODE ever tighter (O(1/sqrt(n))).  The
    // seeds are fixed, so this is deterministic.
    const auto protocol = make_epidemic_protocol();
    FluidOptions fluid_options;
    fluid_options.t_end = 8.0;

    double previous = std::numeric_limits<double>::infinity();
    for (const std::uint64_t n : {std::uint64_t{256}, std::uint64_t{2048}, std::uint64_t{16384}}) {
        const auto initial = CountConfiguration::from_input_counts(*protocol, {n - n / 64, n / 64});
        const FluidResult fluid = solve_fluid(*protocol, initial, fluid_options);

        TrialOptions trial_options;
        trial_options.trials = 4;
        trial_options.base.engine = SimulationEngine::kCountBatch;
        trial_options.base.seed = 1;
        trial_options.base.max_interactions = 8 * n + 1;
        trial_options.base.snapshots = SnapshotSchedule::every(std::max<std::uint64_t>(1, n / 8));
        const EmpiricalTrajectory simulated =
            mean_normalized_trajectory(*protocol, initial, trial_options);
        const TrajectoryDeviation deviation = compare_to_fluid(fluid.solution, simulated);

        // Runs go silent before the 8n budget, so the shared snapshot grid
        // truncates at the earliest-stopping trial; it still has to cover a
        // meaningful stretch of the trajectory.
        EXPECT_GT(deviation.points, 20u);
        EXPECT_LT(deviation.sup, previous) << "n=" << n;
        previous = deviation.sup;
    }
    // At the largest size the trajectory is already tight in absolute terms.
    EXPECT_LT(previous, 0.02);
}

TEST(MeanfieldComparator, AgentAndBatchEnginesValidateEqually) {
    // The comparator is engine-agnostic: both engines' mean trajectories
    // stay within the same O(1/sqrt(n)) band of the ODE.
    const auto protocol = make_epidemic_protocol();
    const std::uint64_t n = 2048;
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n - 32, 32});
    FluidOptions fluid_options;
    fluid_options.t_end = 8.0;
    const FluidResult fluid = solve_fluid(*protocol, initial, fluid_options);

    for (const SimulationEngine engine :
         {SimulationEngine::kAgentArray, SimulationEngine::kCountBatch}) {
        TrialOptions trial_options;
        trial_options.trials = 4;
        trial_options.base.engine = engine;
        trial_options.base.seed = 11;
        trial_options.base.max_interactions = 8 * n + 1;
        trial_options.base.snapshots = SnapshotSchedule::every(n / 8);
        const EmpiricalTrajectory simulated =
            mean_normalized_trajectory(*protocol, initial, trial_options);
        const TrajectoryDeviation deviation = compare_to_fluid(fluid.solution, simulated);
        EXPECT_LT(deviation.sup, 0.05) << static_cast<int>(engine);
        EXPECT_GT(deviation.points, 20u);
    }
}

TEST(MeanfieldComparator, MajorityFluidLimitPredictsConsensusDensities) {
    // Lemma 5 majority (x1 > x0): at a 3:1 vote split the fluid limit and
    // the simulated runs must agree on the final output densities.
    const auto protocol = make_threshold_protocol({1, -1}, 0);
    const std::uint64_t n = 4096;
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n / 4, 3 * n / 4});
    FluidOptions fluid_options;
    fluid_options.t_end = 64.0;
    fluid_options.equilibrium_eps = 1e-9;
    const FluidResult fluid = solve_fluid(*protocol, initial, fluid_options);

    TrialOptions trial_options;
    trial_options.trials = 2;
    trial_options.base.engine = SimulationEngine::kCountBatch;
    trial_options.base.seed = 3;
    trial_options.base.max_interactions = 64 * n + 1;
    trial_options.base.snapshots = SnapshotSchedule::every(n);
    const EmpiricalTrajectory simulated =
        mean_normalized_trajectory(*protocol, initial, trial_options);
    const TrajectoryDeviation deviation = compare_to_fluid(fluid.solution, simulated);
    EXPECT_LT(deviation.sup, 0.1);

    // Both sides agree the "true" output dominates at the end: sum the
    // final densities of output-1 states.
    double ode_true = 0.0;
    const std::vector<double>& last = simulated.densities.back();
    double sim_true = 0.0;
    for (State q = 0; q < protocol->num_states(); ++q) {
        if (protocol->output(q) == kOutputTrue) {
            ode_true += fluid.solution.density_at(simulated.times.back(), q);
            sim_true += last[q];
        }
    }
    EXPECT_GT(ode_true, 0.95);
    EXPECT_GT(sim_true, 0.95);
}

}  // namespace
}  // namespace popproto
