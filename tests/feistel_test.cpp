// FeistelPermutation and the lazy epoch permutations built on it:
// bijectivity over awkward domains, chi-square parity with the materialized
// Fisher-Yates shuffle it replaced, sweep epoch cover and mid-epoch
// save/restore, exact-silence parity with the scheduler path, and the
// memory headline — sweep/adversarial epochs at n = 2^16, where the
// materialized permutation alone was ~34 GB.

#include <array>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/feistel.h"
#include "core/interaction_model.h"
#include "core/rng.h"
#include "core/run_loop.h"
#include "core/schedulers.h"
#include "core/simulator.h"
#include "protocols/epidemic.h"
#include "scenarios/adversarial.h"
#include "scenarios/scenario_spec.h"

namespace popproto {
namespace {

TEST(FeistelPermutation, IsABijectionOnAwkwardDomains) {
    Rng rng(17);
    // Powers of two, one-off-from-powers, tiny and prime domains: the
    // cycle-walking has to close over each one exactly.
    for (const std::uint64_t domain : {1ull, 2ull, 3ull, 5ull, 12ull, 97ull, 380ull,
                                       1000ull, 4095ull, 4096ull, 4097ull}) {
        const FeistelPermutation perm(domain, rng);
        std::set<std::uint64_t> images;
        for (std::uint64_t index = 0; index < domain; ++index) {
            const std::uint64_t image = perm(index);
            EXPECT_LT(image, domain);
            images.insert(image);
        }
        EXPECT_EQ(images.size(), domain) << "domain " << domain;
    }
}

TEST(FeistelPermutation, SaveRestoreKeysReproduceTheMap) {
    Rng rng(5);
    const FeistelPermutation original(380, rng);
    const FeistelPermutation restored(380, original.keys());
    for (std::uint64_t index = 0; index < 380; ++index)
        EXPECT_EQ(original(index), restored(index));
}

/// Chi-square statistic of an observed histogram against the uniform
/// expectation over `cells`.
double chi_square(const std::vector<std::uint64_t>& histogram, double samples_per_cell) {
    double chi2 = 0.0;
    for (const std::uint64_t observed : histogram) {
        const double delta = static_cast<double>(observed) - samples_per_cell;
        chi2 += delta * delta / samples_per_cell;
    }
    return chi2;
}

// Parity with the materialized shuffle: over many rekeys, the image of a
// fixed position must be uniform over the domain, exactly like the first
// element of a Fisher-Yates permutation.  Both statistics stay under the
// same df=29 threshold (chi2_{0.999,29} ~ 58.3 — a 1-in-1000 flake bound,
// pinned by fixed seeds).
TEST(FeistelPermutation, ChiSquareParityWithFisherYates) {
    constexpr std::uint64_t kDomain = 30;
    constexpr int kTrials = 3000;
    constexpr double kThreshold = 58.3;

    Rng rng(23);
    for (const std::uint64_t position : {std::uint64_t{0}, std::uint64_t{17}}) {
        std::vector<std::uint64_t> feistel_hist(kDomain, 0);
        for (int trial = 0; trial < kTrials; ++trial) {
            const FeistelPermutation perm(kDomain, rng);
            ++feistel_hist[perm(position)];
        }
        EXPECT_LT(chi_square(feistel_hist, static_cast<double>(kTrials) / kDomain),
                  kThreshold)
            << "position " << position;
    }

    // The reference: Fisher-Yates from the same generator.
    std::vector<std::uint64_t> shuffle_hist(kDomain, 0);
    std::vector<std::uint64_t> permutation(kDomain);
    for (int trial = 0; trial < kTrials; ++trial) {
        for (std::uint64_t v = 0; v < kDomain; ++v) permutation[v] = v;
        for (std::size_t i = kDomain; i > 1; --i)
            std::swap(permutation[i - 1], permutation[rng.below(i)]);
        ++shuffle_hist[permutation[0]];
    }
    EXPECT_LT(chi_square(shuffle_hist, static_cast<double>(kTrials) / kDomain), kThreshold);
}

TEST(SweepPairModel, EachEpochCoversEveryOrderedPairOnce) {
    constexpr std::uint64_t kAgents = 5;
    constexpr std::uint64_t kPairs = kAgents * (kAgents - 1);
    SweepPairModel model(kAgents, 42);
    for (int epoch = 0; epoch < 3; ++epoch) {
        std::set<AgentPair> seen;
        for (std::uint64_t step = 0; step < kPairs; ++step) {
            const AgentPair pair = model.next_pair();
            EXPECT_NE(pair.first, pair.second);
            EXPECT_LT(pair.first, kAgents);
            EXPECT_LT(pair.second, kAgents);
            seen.insert(pair);
        }
        EXPECT_EQ(seen.size(), kPairs) << "epoch " << epoch;
    }
}

TEST(SweepPairModel, MidEpochSaveRestoreContinuesTheSequence) {
    SweepPairModel original(6, 9);
    for (int step = 0; step < 13; ++step) original.next_pair();

    std::vector<std::uint64_t> words;
    original.save_state(words);
    // O(1) state: rng (4) + cursor (1) + round keys (8) regardless of n.
    EXPECT_EQ(words.size(), 5 + FeistelPermutation::kRounds);

    SweepPairModel restored(6, 1234);  // different seed: state must overwrite it
    restored.restore_state(words);
    for (int step = 0; step < 100; ++step)
        EXPECT_EQ(restored.next_pair(), original.next_pair()) << "step " << step;
}

TEST(SweepPairModel, RestoreValidatesCursorAndLength) {
    SweepPairModel model(4, 7);  // 12 pairs
    std::vector<std::uint64_t> words;
    model.save_state(words);

    std::vector<std::uint64_t> bad_cursor = words;
    bad_cursor[4] = 10000;
    EXPECT_THROW(model.restore_state(bad_cursor), std::invalid_argument);

    std::vector<std::uint64_t> truncated = words;
    truncated.pop_back();
    EXPECT_THROW(model.restore_state(truncated), std::invalid_argument);
}

// The memory headline: at n = 2^16 an epoch spans 4.29e9 ordered pairs.
// Materialized, that permutation alone was ~34 GB; lazily it is 13 words,
// so the models construct and step instantly in test-sized memory.
TEST(LazyEpochPermutations, SweepAndAdversarialRunAtSixtyFourKAgents) {
    constexpr std::uint64_t kAgents = 1 << 16;

    SweepPairModel sweep(kAgents, 3);
    std::set<AgentPair> sweep_pairs;
    for (int step = 0; step < 4096; ++step) {
        const AgentPair pair = sweep.next_pair();
        ASSERT_NE(pair.first, pair.second);
        ASSERT_LT(pair.first, kAgents);
        ASSERT_LT(pair.second, kAgents);
        sweep_pairs.insert(pair);
    }
    // One epoch never repeats a pair, so a 4096-step prefix is all distinct.
    EXPECT_EQ(sweep_pairs.size(), 4096u);

    const auto protocol = make_epidemic_protocol();
    AdversarialCoverModel adversarial(*protocol, kAgents, 16);
    std::vector<State> states(kAgents, 0);
    states.back() = 1;  // one infected agent
    Rng rng(3);
    for (int step = 0; step < 4096; ++step) {
        const AgentPair pair = adversarial.propose_pair(rng, states);
        ASSERT_NE(pair.first, pair.second);
        ASSERT_LT(pair.first, kAgents);
        ASSERT_LT(pair.second, kAgents);
    }

    // And an actual kernel run: a capped-budget scenario run at n = 2^16
    // completes without materializing anything quadratic.
    ScenarioSpec spec;
    spec.model = "sweep";
    RunOptions options;
    options.seed = 3;
    options.max_interactions = 1 << 16;
    const auto initial =
        CountConfiguration::from_input_counts(*protocol, {kAgents - 1, 1});
    const RunResult result = run_scenario(*protocol, initial, spec, options);
    EXPECT_EQ(result.stop_reason, StopReason::kBudget);
    EXPECT_EQ(result.interactions, std::uint64_t{1} << 16);
}

// Exact silence unpins the deterministic cover models from the periodic
// probe: the run halts at the very interaction that produced silence
// (interactions == last_output_change for the epidemic, whose final
// infection is an output change), and the trajectory agrees with the
// legacy scheduler path, which probes periodically and so can only halt
// later.
TEST(ExactSilence, HaltsAtFirstSilentConfigurationAndMatchesSchedulerPath) {
    const auto protocol = make_epidemic_protocol();
    constexpr std::uint64_t kAgents = 20;
    const auto initial =
        CountConfiguration::from_input_counts(*protocol, {kAgents - 1, 1});

    for (const char* model : {"round_robin", "sweep"}) {
        ScenarioSpec spec;
        spec.model = model;
        RunOptions options;
        options.seed = 3;
        const RunResult exact = run_scenario(*protocol, initial, spec, options);
        EXPECT_EQ(exact.stop_reason, StopReason::kSilent) << model;
        EXPECT_EQ(exact.interactions, exact.last_output_change) << model;
        EXPECT_EQ(exact.effective_interactions, kAgents - 1) << model;

        RunOptions scheduler_options;
        scheduler_options.seed = 3;
        RoundRobinScheduler round_robin(kAgents);
        SweepScheduler sweep(kAgents, scheduler_options.seed);
        Scheduler& scheduler =
            spec.model == "sweep" ? static_cast<Scheduler&>(sweep) : round_robin;
        const RunResult via_scheduler = simulate_with_scheduler(
            *protocol, AgentConfiguration::from_counts(initial), scheduler,
            scheduler_options);
        EXPECT_EQ(via_scheduler.stop_reason, StopReason::kSilent) << model;
        // Same trajectory: identical final configuration and effective
        // count; the periodic probe can only stop at or after the exact
        // halt index.
        EXPECT_EQ(via_scheduler.final_configuration, exact.final_configuration) << model;
        EXPECT_EQ(via_scheduler.effective_interactions, exact.effective_interactions)
            << model;
        EXPECT_GE(via_scheduler.interactions, exact.interactions) << model;
    }
}

}  // namespace
}  // namespace popproto
