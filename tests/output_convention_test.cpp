// Theorem 2: the zero/non-zero output convention is no stronger than the
// all-agents convention.

#include <gtest/gtest.h>

#include "analysis/stable_computation.h"
#include "core/simulator.h"
#include "protocols/output_convention.h"
#include "test_util.h"

namespace popproto {
namespace {

/// A protocol with *no* transitions whose output is the agent's own input
/// bit.  Under the zero/non-zero convention it stably computes OR of the
/// inputs; under the all-agents convention it computes nothing (agents
/// disagree whenever inputs are mixed).
std::unique_ptr<TabulatedProtocol> make_identity_bit_protocol() {
    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    tables.initial = {0, 1};
    tables.output = {0, 1};
    tables.delta = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

TEST(OutputConvention, BaseProtocolDisagreesOnMixedInputs) {
    const auto base = make_identity_bit_protocol();
    const auto mixed = CountConfiguration::from_input_counts(*base, {2, 2});
    EXPECT_FALSE(mixed.consensus_output(*base).has_value());
}

TEST(OutputConvention, TransformedProtocolComputesOrExhaustively) {
    const auto base = make_identity_bit_protocol();
    const auto all_agents = make_all_agents_protocol(*base);
    for (std::uint64_t n = 1; n <= 6; ++n) {
        testutil::for_each_composition(n, 2, [&](const std::vector<std::uint64_t>& counts) {
            const auto initial = CountConfiguration::from_input_counts(*all_agents, counts);
            const bool expected = counts[1] > 0;  // OR of the input bits
            EXPECT_TRUE(stably_computes_bool(*all_agents, initial, expected))
                << counts[0] << "," << counts[1];
        });
    }
}

TEST(OutputConvention, TransformedProtocolConvergesUnderSimulation) {
    const auto base = make_identity_bit_protocol();
    const auto all_agents = make_all_agents_protocol(*base);
    for (const auto& [zeros, ones] :
         std::vector<std::pair<std::uint64_t, std::uint64_t>>{{50, 0}, {49, 1}, {0, 50}}) {
        const auto initial =
            CountConfiguration::from_input_counts(*all_agents, {zeros, ones});
        RunOptions options;
        options.max_interactions = default_budget(zeros + ones);
        options.stop_after_stable_outputs = 200 * (zeros + ones);
        options.seed = 13 + ones;
        const RunResult result = simulate(*all_agents, initial, options);
        ASSERT_TRUE(result.consensus.has_value()) << zeros << "," << ones;
        EXPECT_EQ(*result.consensus, ones > 0 ? kOutputTrue : kOutputFalse);
    }
}

TEST(OutputConvention, StateSpaceIsFourTimesBase) {
    const auto base = make_identity_bit_protocol();
    const auto all_agents = make_all_agents_protocol(*base);
    EXPECT_EQ(all_agents->num_states(), 4 * base->num_states());
    EXPECT_EQ(all_agents->num_input_symbols(), base->num_input_symbols());
}

TEST(OutputConvention, SingleWitnessComputesZeroOneInteger) {
    // Sect. 3.6 closing remark: true is represented by exactly one agent
    // outputting 1.  Verified exactly via the integer output convention.
    const auto base = make_identity_bit_protocol();
    const auto witness = make_single_witness_protocol(*base);
    const IntegerOutputConvention zero_one{{{0}, {1}}};
    for (std::uint64_t n = 1; n <= 5; ++n) {
        testutil::for_each_composition(n, 2, [&](const std::vector<std::uint64_t>& counts) {
            const auto initial = CountConfiguration::from_input_counts(*witness, counts);
            const std::int64_t expected = counts[1] > 0 ? 1 : 0;
            EXPECT_TRUE(
                stably_computes_integer_function(*witness, initial, zero_one, {expected}))
                << counts[0] << "," << counts[1];
        });
    }
}

TEST(OutputConvention, SingleWitnessSimulationHasOneWitness) {
    const auto base = make_identity_bit_protocol();
    const auto witness = make_single_witness_protocol(*base);
    const auto initial = CountConfiguration::from_input_counts(*witness, {30, 10});
    RunOptions options;
    options.max_interactions = default_budget(40);
    options.stop_after_stable_outputs = 40 * 200;
    options.seed = 6;
    const RunResult result = simulate(*witness, initial, options);
    const auto outputs = result.final_configuration.output_counts(*witness);
    EXPECT_EQ(outputs[kOutputTrue], 1u);   // exactly one witness
    EXPECT_EQ(outputs[kOutputFalse], 39u);
}

TEST(OutputConvention, RequiresBooleanBase) {
    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 3;
    tables.initial = {0};
    tables.output = {0};
    tables.delta = {{0, 0}};
    const TabulatedProtocol base(std::move(tables));
    EXPECT_THROW(make_all_agents_protocol(base), std::invalid_argument);
}

}  // namespace
}  // namespace popproto
