// The count-based batch simulation engine: agreement with the agent-array
// reference simulator, exact silence detection, null-interaction skipping,
// and the stop rules.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/batch_simulator.h"
#include "core/simulator.h"
#include "presburger/atom_protocols.h"
#include "protocols/counting.h"
#include "protocols/epidemic.h"

namespace popproto {
namespace {

/// A protocol that reaches output consensus quickly but keeps churning its
/// state multiset forever at a low rate, for exercising the
/// stop_after_stable_outputs rule (including the batch engine's jump over
/// the stability window).  States: I (inert), P / P2 (a two-state
/// oscillator driven by meetings with the single Q agent), Q, and Z (the
/// only state with output "false"; meeting an inert agent converts it).
std::unique_ptr<TabulatedProtocol> make_churn_protocol() {
    const State kI = 0, kP = 1, kP2 = 2, kQ = 3, kZ = 4;
    TabulatedProtocol::Tables tables;
    tables.initial = {kI, kP, kQ, kZ};
    tables.output = {1, 1, 1, 1, 0};
    tables.num_output_symbols = 2;
    tables.delta.resize(25);
    for (State p = 0; p < 5; ++p)
        for (State q = 0; q < 5; ++q) tables.delta[p * 5 + q] = {p, q};
    tables.delta[kZ * 5 + kI] = {kI, kI};
    tables.delta[kI * 5 + kZ] = {kI, kI};
    tables.delta[kP * 5 + kQ] = {kP2, kQ};
    tables.delta[kP2 * 5 + kQ] = {kP, kQ};
    tables.delta[kQ * 5 + kP] = {kQ, kP2};
    tables.delta[kQ * 5 + kP2] = {kQ, kP};
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

TEST(BatchSimulator, AgreesWithReferenceOnCounting) {
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {55, 9});
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        RunOptions options;
        options.max_interactions = default_budget(64);
        options.seed = seed;
        const RunResult reference = simulate(*protocol, initial, options);
        const RunResult batch = simulate_counts(*protocol, initial, options);
        EXPECT_EQ(reference.stop_reason, StopReason::kSilent) << seed;
        EXPECT_EQ(batch.stop_reason, StopReason::kSilent) << seed;
        ASSERT_TRUE(reference.consensus && batch.consensus) << seed;
        EXPECT_EQ(*batch.consensus, *reference.consensus) << seed;
        EXPECT_EQ(*batch.consensus, kOutputTrue) << seed;
    }
}

TEST(BatchSimulator, AgreesWithReferenceOnMajority) {
    const auto protocol = make_threshold_protocol({1, -1}, 0);  // x0 < x1
    for (const auto& [zeros, ones] :
         std::vector<std::pair<std::uint64_t, std::uint64_t>>{{20, 30}, {30, 20}}) {
        const auto initial = CountConfiguration::from_input_counts(*protocol, {zeros, ones});
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            RunOptions options;
            options.max_interactions = default_budget(50, 256.0);
            options.seed = seed;
            const RunResult reference = simulate(*protocol, initial, options);
            const RunResult batch = simulate_counts(*protocol, initial, options);
            ASSERT_TRUE(reference.consensus && batch.consensus) << zeros << "," << seed;
            EXPECT_EQ(*batch.consensus, *reference.consensus) << zeros << "," << seed;
            EXPECT_EQ(*batch.consensus, zeros < ones ? kOutputTrue : kOutputFalse);
        }
    }
}

TEST(BatchSimulator, AgreesWithReferenceOnEpidemic) {
    // The epidemic has a unique silent configuration (everyone infected),
    // so the engines must agree on the exact final counts as well.
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {30, 1});
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        RunOptions options;
        options.max_interactions = default_budget(31);
        options.seed = seed;
        const RunResult reference = simulate(*protocol, initial, options);
        const RunResult batch = simulate_counts(*protocol, initial, options);
        EXPECT_EQ(reference.stop_reason, StopReason::kSilent) << seed;
        EXPECT_EQ(batch.stop_reason, StopReason::kSilent) << seed;
        EXPECT_EQ(batch.final_configuration, reference.final_configuration) << seed;
    }
}

TEST(BatchSimulator, ConvergenceTimeMatchesEpidemicClosedForm) {
    // Distribution equivalence beyond the verdict: the mean completion time
    // of the epidemic under the batch engine lands on the same closed form
    // the agent-array engine is validated against in trials_test.
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {30, 1});
    const double expected = epidemic_expected_interactions(31, 1);
    double total = 0.0;
    const int trials = 40;
    for (int trial = 0; trial < trials; ++trial) {
        RunOptions options;
        options.max_interactions = default_budget(31);
        options.seed = 1000 + trial;
        const RunResult result = simulate_counts(*protocol, initial, options);
        EXPECT_EQ(result.stop_reason, StopReason::kSilent);
        total += static_cast<double>(result.last_output_change);
    }
    EXPECT_NEAR(total / trials, expected, 0.35 * expected);
}

TEST(BatchSimulator, AlreadySilentConfigurationStopsImmediately) {
    const auto protocol = make_counting_protocol(5);
    CountConfiguration initial(protocol->num_states());
    initial.add(0, 10);  // ten agents in q_0: (q_0, q_0) -> (q_0, q_0)
    RunOptions options;
    options.max_interactions = 1000;
    const RunResult batch = simulate_counts(*protocol, initial, options);
    EXPECT_EQ(batch.stop_reason, StopReason::kSilent);
    EXPECT_EQ(batch.interactions, 0u);
    EXPECT_EQ(batch.effective_interactions, 0u);
}

TEST(BatchSimulator, NullSkipMakesSparseEffectivePairsCheap) {
    // Two token holders among 1000 agents: the reference engine needs
    // ~n^2/2 draws just to make them meet; the batch engine jumps the null
    // runs, so the reported interactions vastly exceed the effective ones.
    const auto protocol = make_counting_protocol(2);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {998, 2});
    RunOptions options;
    options.max_interactions = default_budget(1000);
    options.seed = 3;
    const RunResult batch = simulate_counts(*protocol, initial, options);
    EXPECT_EQ(batch.stop_reason, StopReason::kSilent);
    ASSERT_TRUE(batch.consensus.has_value());
    EXPECT_EQ(*batch.consensus, kOutputTrue);
    // Exactly one merge plus the alert epidemic: ~n effective interactions,
    // but the merge alone waits ~n^2/2 interactions in expectation.
    EXPECT_LT(batch.effective_interactions, 5000u);
    EXPECT_GT(batch.interactions, 20u * batch.effective_interactions);
}

TEST(BatchSimulator, BudgetStopsAtExactInteractionCount) {
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {30, 1});
    RunOptions options;
    options.max_interactions = 25;  // far below the ~160 needed to finish
    options.seed = 9;
    const RunResult batch = simulate_counts(*protocol, initial, options);
    EXPECT_EQ(batch.stop_reason, StopReason::kBudget);
    EXPECT_EQ(batch.interactions, 25u);
}

TEST(BatchSimulator, StableOutputStopMatchesReferenceSemantics) {
    // Both engines must stop exactly `window` interactions after the last
    // output change; for the batch engine the window is crossed inside a
    // geometric null jump (the churn pair has probability ~2/n^2).
    const auto protocol = make_churn_protocol();
    const auto initial =
        CountConfiguration::from_input_counts(*protocol, {61, 1, 1, 1});
    const std::uint64_t window = 4096;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        RunOptions options;
        options.max_interactions = default_budget(64, 256.0);
        options.stop_after_stable_outputs = window;
        options.seed = seed;
        const RunResult reference = simulate(*protocol, initial, options);
        const RunResult batch = simulate_counts(*protocol, initial, options);
        EXPECT_EQ(reference.stop_reason, StopReason::kStableOutputs) << seed;
        EXPECT_EQ(batch.stop_reason, StopReason::kStableOutputs) << seed;
        EXPECT_EQ(reference.interactions, reference.last_output_change + window) << seed;
        EXPECT_EQ(batch.interactions, batch.last_output_change + window) << seed;
        ASSERT_TRUE(reference.consensus && batch.consensus) << seed;
        EXPECT_EQ(*batch.consensus, *reference.consensus) << seed;
    }
}

TEST(BatchSimulator, DeterministicGivenSeed) {
    const auto protocol = make_counting_protocol(5);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {40, 8});
    RunOptions options;
    options.max_interactions = default_budget(48);
    options.seed = 77;
    const RunResult a = simulate_counts(*protocol, initial, options);
    const RunResult b = simulate_counts(*protocol, initial, options);
    EXPECT_EQ(a.interactions, b.interactions);
    EXPECT_EQ(a.effective_interactions, b.effective_interactions);
    EXPECT_EQ(a.last_output_change, b.last_output_change);
    EXPECT_EQ(a.final_configuration, b.final_configuration);
}

TEST(BatchSimulator, RunSimulationDispatchesOnEngine) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 5});
    RunOptions options;
    options.max_interactions = default_budget(15);
    options.seed = 4;
    options.engine = SimulationEngine::kCountBatch;
    const RunResult batch = run_simulation(*protocol, initial, options);
    // Same seed, same engine => identical to the direct entry point.
    const RunResult direct_batch = simulate_counts(*protocol, initial, options);
    options.engine = SimulationEngine::kAgentArray;
    const RunResult reference = run_simulation(*protocol, initial, options);
    const RunResult direct_reference = simulate(*protocol, initial, options);
    EXPECT_EQ(batch.interactions, direct_batch.interactions);
    EXPECT_EQ(reference.interactions, direct_reference.interactions);
    EXPECT_EQ(batch.final_configuration, direct_batch.final_configuration);
    // The historical footgun is closed: a direct entry point refuses a
    // RunOptions that names the *other* engine instead of silently running.
    EXPECT_THROW(simulate_counts(*protocol, initial, options), std::invalid_argument);
    options.engine = SimulationEngine::kCountBatch;
    EXPECT_THROW(simulate(*protocol, initial, options), std::invalid_argument);
    options.engine = SimulationEngine::kAuto;
    EXPECT_NO_THROW(simulate_counts(*protocol, initial, options));
    EXPECT_NO_THROW(simulate(*protocol, initial, options));
}

TEST(BatchSimulator, Validation) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {10, 5});
    RunOptions options;
    // max_interactions == 0 resolves to default_budget(n) instead of being
    // rejected; the counting protocol falls silent well inside that budget.
    options.max_interactions = 0;
    EXPECT_EQ(simulate_counts(*protocol, initial, options).stop_reason, StopReason::kSilent);
    options.max_interactions = 100;
    CountConfiguration lonely(protocol->num_states());
    lonely.add(0, 1);
    EXPECT_THROW(simulate_counts(*protocol, lonely, options), std::invalid_argument);
    const auto other = make_counting_protocol(7);
    const auto mismatched = CountConfiguration::from_input_counts(*other, {4, 4});
    EXPECT_THROW(simulate_counts(*protocol, mismatched, options), std::invalid_argument);
}

}  // namespace
}  // namespace popproto
