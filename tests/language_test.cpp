// Language acceptance (Sect. 3.5, Lemma 2, Corollaries 1 and 4).

#include <gtest/gtest.h>

#include "presburger/compiler.h"
#include "presburger/language.h"
#include "presburger/semilinear.h"
#include "test_util.h"

namespace popproto {
namespace {

TEST(Language, ParikhImageCountsSymbols) {
    EXPECT_EQ(parikh_image({0, 1, 0, 1, 1, 1}, 2), (std::vector<std::uint64_t>{2, 4}));
    EXPECT_EQ(parikh_image({}, 3), (std::vector<std::uint64_t>{0, 0, 0}));
    EXPECT_THROW(parikh_image({5}, 2), std::invalid_argument);
}

/// Enumerates every word over {0, 1} of length `length` into `visit`.
void for_each_word(std::size_t length, const std::function<void(const std::vector<Symbol>&)>& visit) {
    std::vector<Symbol> word(length, 0);
    const std::uint64_t total = 1ull << length;
    for (std::uint64_t mask = 0; mask < total; ++mask) {
        for (std::size_t i = 0; i < length; ++i) word[i] = (mask >> i) & 1;
        visit(word);
    }
}

TEST(Language, Corollary4EqualCounts) {
    // L = { w in {a,b}* : #a(w) = #b(w) }, a symmetric language whose Parikh
    // image is the semilinear set base (0,0) + period (1,1).  Corollary 4:
    // the compiled Presburger protocol accepts exactly L.
    const SemilinearSet image{{LinearSet{{0, 0}, {{1, 1}}}}};
    const Formula formula = Formula::equals({1, -1}, 0);
    const auto protocol = compile_formula(formula, 2);

    for (std::size_t length = 1; length <= 6; ++length) {
        for_each_word(length, [&](const std::vector<Symbol>& word) {
            const auto image_vector = parikh_image(word, 2);
            const bool in_language = image.contains(image_vector);
            EXPECT_EQ(accepts_word(*protocol, word), in_language);
            EXPECT_EQ(rejects_word(*protocol, word), !in_language);
        });
    }
}

TEST(Language, Corollary1AcceptanceIsPermutationInvariant) {
    // All permutations of a word share the Parikh image, hence the verdict.
    const Formula formula = Formula::congruence({0, 1}, 0, 2);  // even number of b's
    const auto protocol = compile_formula(formula, 2);
    const std::vector<std::vector<Symbol>> permutations = {
        {1, 1, 0, 0}, {0, 1, 0, 1}, {0, 0, 1, 1}, {1, 0, 1, 0}};
    const bool first = accepts_word(*protocol, permutations.front());
    for (const auto& word : permutations)
        EXPECT_EQ(accepts_word(*protocol, word), first);
    EXPECT_TRUE(first);  // two b's: even
}

TEST(Language, CountToFiveStyleThresholdLanguage) {
    // L = { w : #1(w) >= 2 } via the compiler.
    const Formula formula = Formula::at_least({0, 1}, 2);
    const auto protocol = compile_formula(formula, 2);
    EXPECT_TRUE(accepts_word(*protocol, {1, 0, 1}));
    EXPECT_FALSE(accepts_word(*protocol, {1, 0, 0}));
    EXPECT_TRUE(rejects_word(*protocol, {0, 0}));
}

TEST(Language, EmptyWordIsNeverAccepted) {
    const auto protocol = compile_formula(Formula::at_least({1}, 0), 1);
    EXPECT_FALSE(accepts_word(*protocol, {}));
    EXPECT_FALSE(rejects_word(*protocol, {}));
}

}  // namespace
}  // namespace popproto
