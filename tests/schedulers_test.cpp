// Deterministic schedulers: correctness of stably-computing protocols under
// round-robin and sweep activation (and the footnote-2 caveat, documented).

#include <gtest/gtest.h>

#include "core/debug.h"
#include "core/schedulers.h"
#include "presburger/atom_protocols.h"
#include "protocols/counting.h"

namespace popproto {
namespace {

AgentConfiguration counting_inputs(const TabulatedProtocol& protocol, std::size_t zeros,
                                   std::size_t ones) {
    std::vector<Symbol> inputs(zeros, kInputZero);
    inputs.insert(inputs.end(), ones, kInputOne);
    return AgentConfiguration::from_inputs(protocol, inputs);
}

TEST(Schedulers, RoundRobinCyclesAllOrderedPairs) {
    const auto protocol = make_counting_protocol(2);
    const auto agents = counting_inputs(*protocol, 2, 1);
    RoundRobinScheduler scheduler(3);
    std::set<AgentPair> seen;
    for (int step = 0; step < 6; ++step) seen.insert(scheduler.next(agents));
    EXPECT_EQ(seen.size(), 6u);  // all 3*2 ordered pairs in one cycle
    // The cycle repeats.
    EXPECT_EQ(scheduler.next(agents), (AgentPair{0, 1}));
}

TEST(Schedulers, RoundRobinConvergesCounting) {
    const auto protocol = make_counting_protocol(3);
    const auto initial = counting_inputs(*protocol, 9, 4);
    RoundRobinScheduler scheduler(13);
    RunOptions options;
    options.max_interactions = default_budget(13);
    const RunResult result = simulate_with_scheduler(*protocol, initial, scheduler, options);
    EXPECT_EQ(result.stop_reason, StopReason::kSilent);
    ASSERT_TRUE(result.consensus.has_value());
    EXPECT_EQ(*result.consensus, kOutputTrue);
}

TEST(Schedulers, RoundRobinConvergesMajority) {
    const auto protocol = make_threshold_protocol({1, -1}, 0);
    std::vector<Symbol> inputs(7, 0);
    inputs.insert(inputs.end(), 9, 1);
    const auto initial = AgentConfiguration::from_inputs(*protocol, inputs);
    RoundRobinScheduler scheduler(16);
    RunOptions options;
    options.max_interactions = default_budget(16, 256.0);
    const RunResult result = simulate_with_scheduler(*protocol, initial, scheduler, options);
    ASSERT_TRUE(result.consensus.has_value());
    EXPECT_EQ(*result.consensus, kOutputTrue);  // 7 < 9
}

TEST(Schedulers, SweepSchedulerConverges) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = counting_inputs(*protocol, 10, 3);
    SweepScheduler scheduler(13, 5);
    RunOptions options;
    options.max_interactions = default_budget(13);
    const RunResult result = simulate_with_scheduler(*protocol, initial, scheduler, options);
    ASSERT_TRUE(result.consensus.has_value());
    EXPECT_EQ(*result.consensus, kOutputTrue);
}

TEST(Schedulers, SweepCoversEveryPairEachSweep) {
    const auto protocol = make_counting_protocol(2);
    const auto agents = counting_inputs(*protocol, 3, 1);
    SweepScheduler scheduler(4, 9);
    std::set<AgentPair> seen;
    for (int step = 0; step < 12; ++step) seen.insert(scheduler.next(agents));
    EXPECT_EQ(seen.size(), 12u);
}

TEST(Schedulers, DeterministicRoundRobinIsReproducible) {
    const auto protocol = make_counting_protocol(2);
    const auto initial = counting_inputs(*protocol, 6, 2);
    RunOptions options;
    options.max_interactions = default_budget(8);
    RoundRobinScheduler a(8);
    RoundRobinScheduler b(8);
    const RunResult ra = simulate_with_scheduler(*protocol, initial, a, options);
    const RunResult rb = simulate_with_scheduler(*protocol, initial, b, options);
    EXPECT_EQ(ra.interactions, rb.interactions);
    EXPECT_EQ(ra.final_configuration, rb.final_configuration);
}

TEST(Schedulers, PopulationSizeMismatchDetected) {
    const auto protocol = make_counting_protocol(2);
    const auto agents = counting_inputs(*protocol, 2, 1);
    RoundRobinScheduler scheduler(5);  // built for 5 agents, given 3
    EXPECT_THROW(scheduler.next(agents), std::invalid_argument);
}

TEST(Debug, DescribeProtocolListsTransitions) {
    const auto protocol = make_counting_protocol(2);
    const std::string text = describe_protocol(*protocol);
    EXPECT_NE(text.find("states (3)"), std::string::npos);
    EXPECT_NE(text.find("(q1, q1) -> (q2, q2)"), std::string::npos);
    EXPECT_NE(text.find("inputs  (2)"), std::string::npos);
}

TEST(Debug, DotExportIsWellFormed) {
    const auto protocol = make_counting_protocol(2);
    const std::string dot = protocol_to_dot(*protocol);
    EXPECT_EQ(dot.rfind("digraph protocol {", 0), 0u);
    EXPECT_NE(dot.find("q1 -> q2"), std::string::npos);
    EXPECT_NE(dot.find("}\n"), std::string::npos);
}

}  // namespace
}  // namespace popproto
