// Exhaustive model checking of protocols on explicit interaction graphs -
// in particular, exact verification of the Theorem 7 construction on small
// restricted topologies (every fair schedule, not sampled runs).

#include <gtest/gtest.h>

#include "graphs/graph_analysis.h"
#include "graphs/graph_simulation.h"
#include "protocols/counting.h"
#include "presburger/atom_protocols.h"

namespace popproto {
namespace {

TEST(GraphAnalysis, MatchesMultisetAnalyzerOnCompleteGraph) {
    // On the complete graph the explicit-vector verdict must agree with the
    // anonymous multiset verdict.
    const auto protocol = make_counting_protocol(2);
    const InteractionGraph complete = InteractionGraph::complete(4);
    for (std::uint64_t ones = 0; ones <= 4; ++ones) {
        std::vector<Symbol> inputs(4, kInputZero);
        for (std::uint64_t i = 0; i < ones; ++i) inputs[i] = kInputOne;
        EXPECT_TRUE(graph_stably_computes_bool(*protocol, complete, inputs, ones >= 2))
            << ones;
    }
}

/// "Handshake": true iff some A-agent and some B-agent ever meet.  A and B
/// never move, so on a line with A and B at the far ends the raw protocol is
/// stuck - the canonical protocol that needs the Theorem 7 lift.
std::unique_ptr<TabulatedProtocol> make_handshake_protocol() {
    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    // States/inputs: 0 = N (neutral), 1 = A, 2 = B, state 3 = C (alert).
    tables.initial = {0, 1, 2};
    tables.output = {0, 0, 0, 1};
    tables.state_names = {"N", "A", "B", "C"};
    tables.delta.assign(16, StatePair{});
    for (State p = 0; p < 4; ++p)
        for (State q = 0; q < 4; ++q) tables.delta[p * 4 + q] = StatePair{p, q};
    tables.delta[1 * 4 + 2] = {3, 3};  // (A, B) -> (C, C)
    tables.delta[2 * 4 + 1] = {3, 3};  // (B, A) -> (C, C)
    for (State q = 0; q < 4; ++q) {
        tables.delta[3 * 4 + q] = {3, 3};  // C is epidemic
        tables.delta[q * 4 + 3] = {3, 3};
    }
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

TEST(GraphAnalysis, HandshakeWorksOnCompleteGraph) {
    const auto protocol = make_handshake_protocol();
    const InteractionGraph complete = InteractionGraph::complete(4);
    EXPECT_TRUE(graph_stably_computes_bool(*protocol, complete, {1, 0, 0, 2}, true));
    EXPECT_TRUE(graph_stably_computes_bool(*protocol, complete, {1, 0, 0, 1}, false));
}

TEST(GraphAnalysis, HandshakeAloneFailsOnALine) {
    // A and B at the ends of a line can never become adjacent: every fair
    // execution stabilizes to all-false although the complete-graph answer
    // is true.  This is exactly the gap Theorem 7 closes.
    const auto protocol = make_handshake_protocol();
    const InteractionGraph line = InteractionGraph::line(4);
    const std::vector<Symbol> inputs{1, 0, 0, 2};  // A . . B
    EXPECT_FALSE(graph_stably_computes_bool(*protocol, line, inputs, true));
    // Indeed it stabilizes - to the wrong (false) verdict.
    EXPECT_TRUE(graph_stably_computes_bool(*protocol, line, inputs, false));
}

TEST(GraphAnalysis, LiftedHandshakeComputesOnALine) {
    const auto base = make_handshake_protocol();
    const auto lifted = make_graph_simulation_protocol(*base);
    const InteractionGraph line = InteractionGraph::line(4);
    EXPECT_TRUE(graph_stably_computes_bool(*lifted, line, {1, 0, 0, 2}, true));
    EXPECT_TRUE(graph_stably_computes_bool(*lifted, line, {1, 0, 0, 1}, false));
}

TEST(GraphAnalysis, Theorem7LiftComputesCountingOnLine) {
    const auto base = make_counting_protocol(2);
    const auto lifted = make_graph_simulation_protocol(*base);
    const InteractionGraph line = InteractionGraph::line(4);
    for (std::uint64_t ones = 0; ones <= 4; ++ones) {
        // Spread the ones adversarially (ends first).
        std::vector<Symbol> inputs(4, kInputZero);
        const std::vector<std::size_t> order{0, 3, 1, 2};
        for (std::uint64_t i = 0; i < ones; ++i) inputs[order[i]] = kInputOne;
        EXPECT_TRUE(graph_stably_computes_bool(*lifted, line, inputs, ones >= 2))
            << "ones=" << ones;
    }
}

TEST(GraphAnalysis, Theorem7LiftComputesCountingOnStarAndRing) {
    const auto base = make_counting_protocol(2);
    const auto lifted = make_graph_simulation_protocol(*base);
    for (const InteractionGraph& graph :
         {InteractionGraph::star(4), InteractionGraph::ring(4)}) {
        for (std::uint64_t ones : {1ull, 2ull, 3ull}) {
            std::vector<Symbol> inputs(4, kInputZero);
            for (std::uint64_t i = 0; i < ones; ++i) inputs[i] = kInputOne;
            EXPECT_TRUE(graph_stably_computes_bool(*lifted, graph, inputs, ones >= 2))
                << "ones=" << ones;
        }
    }
}

TEST(GraphAnalysis, Theorem7LiftComputesParityOnLine) {
    const auto base = make_remainder_protocol({0, 1}, 0, 2);
    const auto lifted = make_graph_simulation_protocol(*base);
    const InteractionGraph line = InteractionGraph::line(3);
    for (std::uint64_t ones = 0; ones <= 3; ++ones) {
        std::vector<Symbol> inputs(3, 0);
        for (std::uint64_t i = 0; i < ones; ++i) inputs[i] = 1;
        EXPECT_TRUE(graph_stably_computes_bool(*lifted, line, inputs, ones % 2 == 0))
            << "ones=" << ones;
    }
}

TEST(GraphAnalysis, OneDirectionalLineIsStillWeaklyConnected) {
    // Theorem 7 only needs *weak* connectivity: check the lift on a line
    // whose edges all point one way.
    InteractionGraph one_way(3);
    one_way.add_edge(0, 1);
    one_way.add_edge(1, 2);
    ASSERT_TRUE(one_way.is_weakly_connected());

    const auto base = make_counting_protocol(2);
    const auto lifted = make_graph_simulation_protocol(*base);
    for (std::uint64_t ones = 0; ones <= 3; ++ones) {
        std::vector<Symbol> inputs(3, kInputZero);
        for (std::uint64_t i = 0; i < ones; ++i) inputs[i] = kInputOne;
        EXPECT_TRUE(graph_stably_computes_bool(*lifted, one_way, inputs, ones >= 2))
            << "ones=" << ones;
    }
}

TEST(GraphAnalysis, ReportsConfigurationCounts) {
    const auto protocol = make_counting_protocol(2);
    const InteractionGraph line = InteractionGraph::line(3);
    const StableComputationResult result = analyze_graph_stable_computation(
        *protocol, line, {kInputOne, kInputZero, kInputOne});
    EXPECT_GT(result.reachable_configurations, 1u);
    EXPECT_TRUE(result.always_converges);
}

TEST(GraphAnalysis, RespectsConfigurationLimit) {
    const auto base = make_counting_protocol(2);
    const auto lifted = make_graph_simulation_protocol(*base);
    const InteractionGraph line = InteractionGraph::line(4);
    EXPECT_THROW(analyze_graph_stable_computation(
                     *lifted, line, {kInputOne, kInputOne, kInputZero, kInputZero}, 10),
                 std::runtime_error);
}

TEST(GraphAnalysis, ValidatesArguments) {
    const auto protocol = make_counting_protocol(2);
    const InteractionGraph line = InteractionGraph::line(3);
    EXPECT_THROW(
        analyze_graph_stable_computation(*protocol, line, {kInputZero, kInputOne}),
        std::invalid_argument);
}

}  // namespace
}  // namespace popproto
