// Semilinear sets and their equivalence with Presburger formulas on
// enumerated vectors (spot-checks of Theorem 3, Ginsburg & Spanier).

#include <gtest/gtest.h>

#include "presburger/formula.h"
#include "presburger/semilinear.h"
#include "test_util.h"

namespace popproto {
namespace {

TEST(LinearSet, BaseOnly) {
    const LinearSet set{{2, 1}, {}};
    EXPECT_TRUE(set.contains({2, 1}));
    EXPECT_FALSE(set.contains({2, 2}));
    EXPECT_FALSE(set.contains({1, 1}));
}

TEST(LinearSet, SinglePeriod) {
    // {(1, 0) + k (2, 1)} = {(1+2k, k)}.
    const LinearSet set{{1, 0}, {{2, 1}}};
    EXPECT_TRUE(set.contains({1, 0}));
    EXPECT_TRUE(set.contains({3, 1}));
    EXPECT_TRUE(set.contains({7, 3}));
    EXPECT_FALSE(set.contains({5, 1}));
    EXPECT_FALSE(set.contains({2, 0}));
}

TEST(LinearSet, MultiplePeriodsRequireSearch) {
    // base (0,0), periods (2,1) and (1,2): reachable = {a(2,1)+b(1,2)}.
    const LinearSet set{{0, 0}, {{2, 1}, {1, 2}}};
    EXPECT_TRUE(set.contains({0, 0}));
    EXPECT_TRUE(set.contains({3, 3}));   // (2,1)+(1,2)
    EXPECT_TRUE(set.contains({4, 2}));   // 2(2,1)
    EXPECT_TRUE(set.contains({5, 4}));   // 2(2,1)+(1,2)
    EXPECT_FALSE(set.contains({1, 0}));
    EXPECT_FALSE(set.contains({2, 0}));
}

TEST(LinearSet, IgnoresZeroPeriods) {
    const LinearSet set{{1}, {{0}, {2}}};
    EXPECT_TRUE(set.contains({5}));
    EXPECT_FALSE(set.contains({4}));
}

TEST(LinearSet, DimensionMismatchThrows) {
    const LinearSet set{{1, 2}, {}};
    EXPECT_THROW(set.contains({1}), std::invalid_argument);
}

TEST(SemilinearSet, UnionOfComponents) {
    // Even numbers union {5}.
    const SemilinearSet set{{LinearSet{{0}, {{2}}}, LinearSet{{5}, {}}}};
    EXPECT_TRUE(set.contains({0}));
    EXPECT_TRUE(set.contains({8}));
    EXPECT_TRUE(set.contains({5}));
    EXPECT_FALSE(set.contains({3}));
}

TEST(SemilinearSet, CongruenceMatchesFormula) {
    // x = 1 (mod 3) as the linear set {1 + 3k}.
    const SemilinearSet set{{LinearSet{{1}, {{3}}}}};
    const Formula formula = Formula::congruence({1}, 1, 3);
    for (std::uint64_t x = 0; x <= 30; ++x)
        EXPECT_EQ(set.contains({x}), formula.evaluate({static_cast<std::int64_t>(x)})) << x;
}

TEST(SemilinearSet, MajorityMatchesFormula) {
    // { (x0, x1) : x1 > x0 } = base (0,1) + periods (1,1), (0,1).
    const SemilinearSet set{{LinearSet{{0, 1}, {{1, 1}, {0, 1}}}}};
    const Formula formula = Formula::threshold({1, -1}, 0);  // x0 - x1 < 0
    for (std::uint64_t n = 0; n <= 12; ++n) {
        testutil::for_each_composition(n, 2, [&](const std::vector<std::uint64_t>& counts) {
            EXPECT_EQ(set.contains(counts), formula.evaluate(testutil::to_signed(counts)))
                << counts[0] << "," << counts[1];
        });
    }
}

TEST(SemilinearSet, ThresholdMatchesFormula) {
    // { x : x >= 5 } = base 5 + period 1.
    const SemilinearSet set{{LinearSet{{5}, {{1}}}}};
    const Formula formula = Formula::at_least({1}, 5);
    for (std::uint64_t x = 0; x <= 20; ++x)
        EXPECT_EQ(set.contains({x}), formula.evaluate({static_cast<std::int64_t>(x)})) << x;
}

TEST(SemilinearSet, BooleanCombinationMatchesFormula) {
    // (x even) OR (x >= 7): semilinear union; formula disjunction.
    const SemilinearSet set{{LinearSet{{0}, {{2}}}, LinearSet{{7}, {{1}}}}};
    const Formula formula =
        Formula::disjunction(Formula::congruence({1}, 0, 2), Formula::at_least({1}, 7));
    for (std::uint64_t x = 0; x <= 25; ++x)
        EXPECT_EQ(set.contains({x}), formula.evaluate({static_cast<std::int64_t>(x)})) << x;
}

}  // namespace
}  // namespace popproto
