// Absorption probabilities: the exact machinery behind Theorem 11
// ("computes with probability p" reduces to a linear-system solve over
// polynomially many multiset configurations).

#include <gtest/gtest.h>

#include "analysis/markov.h"
#include "analysis/stable_computation.h"
#include "core/simulator.h"
#include "protocols/counting.h"

namespace popproto {
namespace {

/// The "epidemic war" protocol: R converts S and S converts R, depending on
/// who initiates.  With r agents in state R out of n, the count of R is a
/// fair random walk, so P(all-R eventually) = r/n.  This is a protocol that
/// does NOT stably compute anything; it computes each outcome with a
/// nontrivial probability - exactly what absorption_probability measures.
std::unique_ptr<TabulatedProtocol> make_war_protocol() {
    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    tables.initial = {0, 1};  // input 0 -> state R(0), input 1 -> state S(1)
    tables.output = {0, 1};
    tables.state_names = {"R", "S"};
    tables.delta = {
        {0, 0},  // (R, R) no-op
        {0, 0},  // (R, S) -> initiator converts responder
        {1, 1},  // (S, R) -> initiator converts responder
        {1, 1},  // (S, S) no-op
    };
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

TEST(Absorption, WarProtocolIsAFairRandomWalk) {
    const auto protocol = make_war_protocol();
    for (std::uint64_t n : {3ull, 5ull, 8ull}) {
        for (std::uint64_t r = 1; r < n; ++r) {
            const auto initial =
                CountConfiguration::from_input_counts(*protocol, {r, n - r});
            const double p = absorption_probability(
                *protocol, initial,
                [n](const CountConfiguration& c) { return c.count(0) == n; });
            EXPECT_NEAR(p, static_cast<double>(r) / static_cast<double>(n), 1e-9)
                << "n=" << n << " r=" << r;
        }
    }
}

TEST(Absorption, ComplementarySidesSumToOne) {
    const auto protocol = make_war_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {2, 4});
    const double all_r = absorption_probability(
        *protocol, initial, [](const CountConfiguration& c) { return c.count(1) == 0; });
    const double all_s = absorption_probability(
        *protocol, initial, [](const CountConfiguration& c) { return c.count(0) == 0; });
    EXPECT_NEAR(all_r + all_s, 1.0, 1e-9);
}

TEST(Absorption, StableProtocolAbsorbsWithProbabilityOne) {
    // Count-to-3 with 4 ones: the alert epidemic is inevitable under random
    // pairing, so the all-alert final class has probability exactly 1.
    const auto protocol = make_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {2, 4});
    const double p = absorption_probability(
        *protocol, initial, [&](const CountConfiguration& c) {
            return c.count(3) == c.population_size();
        });
    EXPECT_NEAR(p, 1.0, 1e-9);
}

TEST(Absorption, InitialAlreadyAbsorbed) {
    const auto protocol = make_war_protocol();
    auto initial = CountConfiguration(protocol->num_states());
    initial.add(0, 4);  // all R: a final SCC on its own
    const double p = absorption_probability(
        *protocol, initial, [](const CountConfiguration& c) { return c.count(1) == 0; });
    EXPECT_EQ(p, 1.0);
}

TEST(Absorption, RejectsTargetInconsistentOnFinalScc) {
    // An oscillator whose single final SCC cycles through the multisets
    // {0,0} -> {0,1} -> {1,1} -> {0,0}; a predicate that distinguishes them
    // cannot define an absorption event.
    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = 2;
    tables.initial = {0};
    tables.output = {0, 1};
    tables.delta = {
        {0, 1},  // (0,0) -> (0,1)
        {1, 1},  // (0,1) -> (1,1)
        {1, 0},  // (1,0) -> no-op
        {0, 0},  // (1,1) -> (0,0)
    };
    const TabulatedProtocol protocol(std::move(tables));
    auto initial = CountConfiguration(2);
    initial.add(0, 2);
    EXPECT_THROW(absorption_probability(
                     protocol, initial,
                     [](const CountConfiguration& c) { return c.count(1) == 2; }),
                 std::runtime_error);
}

TEST(Absorption, AgreesWithMonteCarloOnWar) {
    const auto protocol = make_war_protocol();
    const std::uint64_t n = 6;
    const std::uint64_t r = 2;
    const auto initial = CountConfiguration::from_input_counts(*protocol, {r, n - r});
    const double exact = absorption_probability(
        *protocol, initial, [n](const CountConfiguration& c) { return c.count(0) == n; });

    int all_r = 0;
    const int trials = 20000;
    for (int trial = 0; trial < trials; ++trial) {
        RunOptions options;
        options.max_interactions = 1u << 20;
        options.seed = 50 + trial;
        const RunResult result = simulate(*protocol, initial, options);
        if (result.final_configuration.count(0) == n) ++all_r;
    }
    const double observed = static_cast<double>(all_r) / trials;
    EXPECT_NEAR(observed, exact, 0.02);
}

}  // namespace
}  // namespace popproto
