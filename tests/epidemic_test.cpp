// The epidemic broadcast primitive and its exact expected completion times.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analysis/markov.h"
#include "analysis/stable_computation.h"
#include "core/simulator.h"
#include "protocols/epidemic.h"
#include "protocols/one_way.h"

namespace popproto {
namespace {

TEST(Epidemic, TransitionTables) {
    const auto two_way = make_epidemic_protocol();
    EXPECT_EQ(two_way->apply(1, 0), (StatePair{1, 1}));
    EXPECT_EQ(two_way->apply(0, 1), (StatePair{1, 1}));
    EXPECT_TRUE(two_way->is_null_interaction(0, 0));
    EXPECT_TRUE(two_way->is_null_interaction(1, 1));

    const auto one_way = make_one_way_epidemic_protocol();
    EXPECT_EQ(one_way->apply(1, 0), (StatePair{1, 1}));
    EXPECT_TRUE(one_way->is_null_interaction(0, 1));
    EXPECT_TRUE(is_one_way(*one_way));
    EXPECT_FALSE(is_one_way(*two_way));
}

TEST(Epidemic, StablyInfectsEveryoneIffSeeded) {
    const auto protocol = make_epidemic_protocol();
    for (std::uint64_t n = 2; n <= 7; ++n) {
        for (std::uint64_t infected = 0; infected <= n; ++infected) {
            const auto initial =
                CountConfiguration::from_input_counts(*protocol, {n - infected, infected});
            EXPECT_TRUE(stably_computes_bool(*protocol, initial, infected > 0))
                << n << "," << infected;
        }
    }
}

using EpidemicCase = std::tuple<std::uint64_t, std::uint64_t>;  // (n, initially infected)

class EpidemicExpectation : public ::testing::TestWithParam<EpidemicCase> {};

TEST_P(EpidemicExpectation, MarkovMatchesClosedForm) {
    const auto [n, infected] = GetParam();
    const auto protocol = make_epidemic_protocol();
    const auto initial =
        CountConfiguration::from_input_counts(*protocol, {n - infected, infected});
    const double exact = expected_hitting_time(
        *protocol, initial,
        [n = n](const CountConfiguration& c) { return c.count(1) == n; });
    EXPECT_NEAR(exact, epidemic_expected_interactions(n, infected), 1e-9)
        << "n=" << n << " i=" << infected;
}

TEST_P(EpidemicExpectation, OneWayIsExactlyTwiceAsSlow) {
    const auto [n, infected] = GetParam();
    const auto protocol = make_one_way_epidemic_protocol();
    const auto initial =
        CountConfiguration::from_input_counts(*protocol, {n - infected, infected});
    const double exact = expected_hitting_time(
        *protocol, initial,
        [n = n](const CountConfiguration& c) { return c.count(1) == n; });
    EXPECT_NEAR(exact, one_way_epidemic_expected_interactions(n, infected), 1e-9);
    EXPECT_NEAR(exact, 2.0 * epidemic_expected_interactions(n, infected), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, EpidemicExpectation,
                         ::testing::Combine(::testing::Values(3ull, 5ull, 8ull, 12ull),
                                            ::testing::Values(1ull, 2ull)));

TEST(Epidemic, SimulatedMeanTracksClosedForm) {
    const std::uint64_t n = 64;
    const auto protocol = make_epidemic_protocol();
    const auto initial = CountConfiguration::from_input_counts(*protocol, {n - 1, 1});
    const int trials = 400;
    double total = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
        RunOptions options;
        options.max_interactions = 1u << 22;
        options.seed = 5000 + trial;
        const RunResult result = simulate(*protocol, initial, options);
        EXPECT_EQ(result.stop_reason, StopReason::kSilent);
        total += static_cast<double>(result.last_output_change);
    }
    const double mean = total / trials;
    const double expected = epidemic_expected_interactions(n, 1);
    EXPECT_NEAR(mean, expected, 0.08 * expected);
}

TEST(Epidemic, ClosedFormIsThetaNLogN) {
    // The Theorem 8 log factor: E[n] / (n ln n) should be ~1 for large n.
    for (std::uint64_t n : {64ull, 256ull, 1024ull}) {
        const double ratio = epidemic_expected_interactions(n, 1) /
                             (static_cast<double>(n) * std::log(static_cast<double>(n)));
        EXPECT_GT(ratio, 0.8) << n;
        EXPECT_LT(ratio, 1.3) << n;
    }
}

TEST(Epidemic, ClosedFormValidation) {
    EXPECT_THROW(epidemic_expected_interactions(1, 1), std::invalid_argument);
    EXPECT_THROW(epidemic_expected_interactions(5, 0), std::invalid_argument);
    EXPECT_THROW(epidemic_expected_interactions(5, 6), std::invalid_argument);
    EXPECT_EQ(epidemic_expected_interactions(5, 5), 0.0);
}

}  // namespace
}  // namespace popproto
