// The leader-driven population counter machine (Theorems 9 and 10).

#include <gtest/gtest.h>

#include "machines/examples.h"
#include "machines/minsky.h"
#include "randomized/population_machine.h"

namespace popproto {
namespace {

PopulationMachineOptions options_for(std::uint64_t population, std::uint32_t k,
                                     std::uint64_t seed) {
    PopulationMachineOptions options;
    options.timer_parameter = k;
    options.share_capacity = 4;
    options.max_interactions = 200ull * population * population * (k + 1) * 100;
    options.seed = seed;
    return options;
}

TEST(PopulationMachine, CountdownHalts) {
    const CounterProgram program = make_countdown_program();
    const auto result =
        run_population_counter_machine(program, {9}, 16, options_for(16, 3, 1));
    EXPECT_TRUE(result.halted);
    EXPECT_FALSE(result.stuck);
    EXPECT_EQ(result.counters[0], 0u);
    EXPECT_GT(result.interactions, 0u);
    EXPECT_GE(result.interactions, result.leader_encounters);
}

TEST(PopulationMachine, MultiplyMatchesDeterministicWhenNoErrors) {
    const CounterProgram program = make_multiply_program(3);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto result =
            run_population_counter_machine(program, {6, 0}, 24, options_for(24, 4, seed));
        ASSERT_TRUE(result.halted) << seed;
        if (result.zero_test_errors == 0) {
            EXPECT_EQ(result.counters[0], 18u) << seed;
            EXPECT_EQ(result.counters[1], 0u) << seed;
        }
    }
}

TEST(PopulationMachine, HighTimerParameterIsReliable) {
    // With k = 4 on a 30-agent population, the Theta(n^-k / m) error rate is
    // negligible; all runs should compute 5 * 4 = 20.  (The two terminal
    // zero verdicts each wait about (n-1)^4 leader encounters, so give the
    // run an explicit generous budget.)
    const CounterProgram program = make_multiply_program(5);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        PopulationMachineOptions options = options_for(30, 4, seed);
        options.max_interactions = 2'000'000'000ull;
        const auto result = run_population_counter_machine(program, {4, 0}, 30, options);
        ASSERT_TRUE(result.halted) << seed;
        EXPECT_EQ(result.zero_test_errors, 0u) << seed;
        EXPECT_EQ(result.counters[0], 20u) << seed;
    }
}

TEST(PopulationMachine, LowTimerParameterErrsNoticeably) {
    // k = 1 makes the zero test a coin-flip-grade heuristic: across many
    // runs we must observe at least one premature zero verdict.
    const CounterProgram program = make_multiply_program(2);
    std::uint64_t total_errors = 0;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        const auto result =
            run_population_counter_machine(program, {8, 0}, 12, options_for(12, 1, seed));
        total_errors += result.zero_test_errors;
    }
    EXPECT_GT(total_errors, 0u);
}

TEST(PopulationMachine, ZeroTestsAreCounted) {
    const CounterProgram program = make_countdown_program();
    const auto result =
        run_population_counter_machine(program, {5, }, 16, options_for(16, 3, 3));
    // Countdown performs one zero test per loop iteration plus the final one.
    EXPECT_GE(result.zero_tests, 6u);
}

TEST(PopulationMachine, CapacityValidation) {
    const CounterProgram program = make_countdown_program();
    PopulationMachineOptions options = options_for(5, 2, 1);
    options.share_capacity = 1;
    // Population 5 => 3 carriers of capacity 1; counter value 9 cannot fit.
    EXPECT_THROW(run_population_counter_machine(program, {9}, 5, options),
                 std::invalid_argument);
}

TEST(PopulationMachine, PureJumpLoopIsDetected) {
    CounterProgram spin;
    spin.num_counters = 1;
    spin.instructions = {{CounterInstruction::Op::kJump, 0, 0}};
    const auto result = run_population_counter_machine(spin, {0}, 8, options_for(8, 2, 1));
    EXPECT_FALSE(result.halted);
    EXPECT_TRUE(result.stuck);
}

TEST(PopulationMachine, BudgetExhaustionReportsStuck) {
    const CounterProgram program = make_multiply_program(3);
    PopulationMachineOptions options = options_for(16, 3, 1);
    options.max_interactions = 5;
    const auto result = run_population_counter_machine(program, {6, 0}, 16, options);
    EXPECT_FALSE(result.halted);
    EXPECT_TRUE(result.stuck);
}

TEST(PopulationMachine, LeaderElectionPrologueRunsAndReports) {
    const CounterProgram program = make_countdown_program();
    PopulationMachineOptions options = options_for(32, 4, 7);
    options.leader_election_prologue = true;
    const auto result = run_population_counter_machine(program, {6}, 32, options);
    EXPECT_TRUE(result.halted);
    EXPECT_GT(result.election_interactions, 0u);
    // The unrest phase costs Theta(n^2); sanity band around (n-1)^2.
    EXPECT_GT(result.election_interactions, 100u);
    EXPECT_LT(result.election_interactions, 40000u);
}

TEST(PopulationMachine, PrologueInitializationUsuallyCompletes) {
    const CounterProgram program = make_countdown_program();
    int incomplete = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        PopulationMachineOptions options = options_for(24, 4, seed);
        options.leader_election_prologue = true;
        const auto result = run_population_counter_machine(program, {4}, 24, options);
        if (result.initialization_incomplete) ++incomplete;
    }
    // With k = 4 the coupon-collector phase almost always finishes first.
    EXPECT_LE(incomplete, 4);
}

TEST(PopulationMachine, EndToEndMinskyParity) {
    // Theorem 10 end to end: simulate the parity TM via its Minsky program on
    // a population, with a high timer parameter for reliability.
    const TuringMachine machine = make_unary_mod_turing_machine(2);
    const MinskyProgram compiled = compile_turing_machine(machine);
    for (std::uint32_t x : {3u, 4u}) {
        const std::vector<std::uint32_t> input(x, 1);
        PopulationMachineOptions options;
        options.timer_parameter = 4;
        options.share_capacity = 8;
        options.max_interactions = 50'000'000'000ull;
        options.seed = 100 + x;
        const auto result = run_population_counter_machine(
            compiled.program, compiled.initial_counters(input), 25, options);
        ASSERT_TRUE(result.halted) << x;
        EXPECT_EQ(result.exit_code == MinskyProgram::kAcceptExitCode, x % 2 == 0) << x;
    }
}

}  // namespace
}  // namespace popproto
