// One-way (responder-only) threshold protocol from the Sect. 8 discussion.

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/stable_computation.h"
#include "core/simulator.h"
#include "protocols/counting.h"
#include "protocols/one_way.h"

namespace popproto {
namespace {

TEST(OneWay, ProtocolIsActuallyOneWay) {
    for (std::uint32_t k : {1u, 2u, 4u}) {
        const auto protocol = make_one_way_counting_protocol(k);
        EXPECT_TRUE(is_one_way(*protocol)) << k;
    }
}

TEST(OneWay, TwoWayCountingIsNotOneWay) {
    const auto protocol = make_counting_protocol(5);
    EXPECT_FALSE(is_one_way(*protocol));
}

using OneWayCase = std::tuple<std::uint32_t, std::uint64_t>;  // (threshold k, n)

class OneWayStableComputation : public ::testing::TestWithParam<OneWayCase> {};

TEST_P(OneWayStableComputation, ComputesThresholdExhaustively) {
    const auto [threshold, population] = GetParam();
    const auto protocol = make_one_way_counting_protocol(threshold);
    for (std::uint64_t ones = 0; ones <= population; ++ones) {
        const auto initial =
            CountConfiguration::from_input_counts(*protocol, {population - ones, ones});
        const bool expected = ones >= threshold;
        EXPECT_TRUE(stably_computes_bool(*protocol, initial, expected))
            << "k=" << threshold << " n=" << population << " ones=" << ones;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OneWayStableComputation,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                                            ::testing::Values(1u, 3u, 5u, 6u)));

TEST(OneWay, LevelNeverExceedsNumberOfOnes) {
    // The structural fact behind correctness: in every reachable
    // configuration the maximum level is at most the number of 1-inputs.
    const std::uint32_t k = 4;
    const auto protocol = make_one_way_counting_protocol(k);
    for (std::uint64_t ones = 0; ones <= 3; ++ones) {
        const auto initial = CountConfiguration::from_input_counts(*protocol, {2, ones});
        const ConfigurationGraph graph = explore_reachable(*protocol, initial);
        ASSERT_TRUE(graph.complete);
        for (const CountConfiguration& config : graph.configs) {
            for (State level = static_cast<State>(ones) + 1; level <= k; ++level)
                EXPECT_EQ(config.count(level), 0u)
                    << "ones=" << ones << " level=" << level;
        }
    }
}

TEST(OneWay, ConvergesUnderSimulation) {
    const auto protocol = make_one_way_counting_protocol(3);
    const auto initial = CountConfiguration::from_input_counts(*protocol, {40, 10});
    RunOptions options;
    options.max_interactions = default_budget(50);
    options.seed = 5;
    const RunResult result = simulate(*protocol, initial, options);
    ASSERT_TRUE(result.consensus.has_value());
    EXPECT_EQ(*result.consensus, kOutputTrue);
}

}  // namespace
}  // namespace popproto
