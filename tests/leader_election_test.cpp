// Leader election: stable computation, exact (n-1)^2 expected interactions
// (Markov solve), and simulation agreement.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/markov.h"
#include "analysis/stable_computation.h"
#include "core/rng.h"
#include "core/simulator.h"
#include "protocols/leader_election.h"

namespace popproto {
namespace {

TEST(LeaderElection, TransitionTable) {
    const auto protocol = make_leader_election_protocol();
    EXPECT_EQ(protocol->apply(1, 1), (StatePair{1, 0}));  // responder abdicates
    EXPECT_TRUE(protocol->is_null_interaction(1, 0));
    EXPECT_TRUE(protocol->is_null_interaction(0, 1));
    EXPECT_TRUE(protocol->is_null_interaction(0, 0));
}

TEST(LeaderElection, StabilizesToExactlyOneLeader) {
    const auto protocol = make_leader_election_protocol();
    for (std::uint64_t n = 1; n <= 8; ++n) {
        const auto initial = CountConfiguration::from_input_counts(*protocol, {n});
        const StableComputationResult result = analyze_stable_computation(*protocol, initial);
        ASSERT_TRUE(result.single_valued()) << n;
        EXPECT_EQ(result.stable_signatures.front()[1], 1u) << n;  // one leader
    }
}

TEST(LeaderElection, ClosedFormMatchesMarkovChain) {
    const auto protocol = make_leader_election_protocol();
    for (std::uint64_t n : {2ull, 4ull, 7ull, 10ull}) {
        const auto initial = CountConfiguration::from_input_counts(*protocol, {n});
        const double exact = expected_hitting_time(
            *protocol, initial,
            [](const CountConfiguration& c) { return c.count(1) == 1; });
        EXPECT_NEAR(exact, leader_election_expected_interactions(n), 1e-6) << n;
    }
}

TEST(LeaderElection, SimulatedMeanTracksClosedForm) {
    // Monte Carlo mean over many runs of n = 24 should land within a few
    // percent of (n-1)^2 = 529.
    const auto protocol = make_leader_election_protocol();
    const std::uint64_t n = 24;
    const int trials = 400;
    double total = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
        const auto initial = CountConfiguration::from_input_counts(*protocol, {n});
        RunOptions options;
        options.max_interactions = 1u << 22;
        options.seed = 1000 + trial;
        const RunResult result = simulate(*protocol, initial, options);
        EXPECT_EQ(result.stop_reason, StopReason::kSilent);
        // The election finishes at the last effective interaction; with only
        // leader-leader transitions, that is last_output_change.
        total += static_cast<double>(result.last_output_change);
    }
    const double mean = total / trials;
    const double expected = leader_election_expected_interactions(n);
    EXPECT_NEAR(mean, expected, 0.1 * expected);
}

TEST(LeaderElection, CountLeadersHelper) {
    const auto protocol = make_leader_election_protocol();
    auto config = CountConfiguration::from_input_counts(*protocol, {5});
    EXPECT_EQ(count_leaders(config), 5u);
    config.apply_interaction(*protocol, 1, 1);
    EXPECT_EQ(count_leaders(config), 4u);
    CountConfiguration wrong(3);
    EXPECT_THROW(count_leaders(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace popproto
