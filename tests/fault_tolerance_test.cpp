// Fault injection (the Sect. 8 fault-tolerance discussion).
//
// The paper observes that the *model* tolerates crashes gracefully (the
// remaining agents' interactions are unaffected) but most of its algorithms
// do not: killing the agent that has accumulated the count, or the unique
// leader, silently corrupts the computation, while epidemic-style phases are
// robust.  These tests demonstrate each observation exactly, by removing
// agents from configurations and re-running the analyzer.

#include <gtest/gtest.h>

#include "analysis/stable_computation.h"
#include "core/simulator.h"
#include "protocols/counting.h"
#include "protocols/leader_election.h"
#include "presburger/atom_protocols.h"

namespace popproto {
namespace {

TEST(FaultTolerance, KillingTheTokenHolderLosesTheCount) {
    // 4 ones merge into a single q4 token; if that agent dies, the surviving
    // population stabilizes to "fewer than 5" even if a fifth one arrives
    // later... here: the count is simply gone.
    const auto protocol = make_counting_protocol(5);
    auto config = CountConfiguration(protocol->num_states());
    config.add(4, 1);  // the accumulated token
    config.add(0, 5);  // drained agents

    // Healthy population: adding one more 1-token would eventually alert.
    auto healthy = config;
    healthy.add(1, 1);
    EXPECT_TRUE(stably_computes_bool(*protocol, healthy, true));

    // Crash the token holder first, then the same 1-token arrives: the
    // count restarts from scratch and the verdict is (wrongly) false.
    auto crashed = config;
    crashed.remove(4, 1);
    crashed.add(1, 1);
    EXPECT_TRUE(stably_computes_bool(*protocol, crashed, false));
}

TEST(FaultTolerance, AlertEpidemicSurvivesArbitraryCrashes) {
    // Once one alert agent exists, killing any subset of the *other* agents
    // never changes the verdict: the epidemic phase is fault-tolerant.
    const auto protocol = make_counting_protocol(3);
    auto config = CountConfiguration(protocol->num_states());
    config.add(3, 1);  // one alert agent
    config.add(0, 4);
    config.add(1, 2);

    for (std::uint64_t dead_zeros = 0; dead_zeros <= 4; ++dead_zeros) {
        for (std::uint64_t dead_ones = 0; dead_ones <= 2; ++dead_ones) {
            auto crashed = config;
            crashed.remove(0, dead_zeros);
            crashed.remove(1, dead_ones);
            EXPECT_TRUE(stably_computes_bool(*protocol, crashed, true))
                << dead_zeros << "," << dead_ones;
        }
    }
}

TEST(FaultTolerance, KillingTheUniqueLeaderStallsForever) {
    // After election finishes, the leader is a single point of failure: the
    // all-follower configuration is silent with zero leaders, and no
    // interaction can ever mint a new one.
    const auto protocol = make_leader_election_protocol();
    auto elected = CountConfiguration(protocol->num_states());
    elected.add(1, 1);  // the leader
    elected.add(0, 5);  // followers

    auto crashed = elected;
    crashed.remove(1, 1);
    EXPECT_TRUE(crashed.is_silent(*protocol));
    EXPECT_EQ(count_leaders(crashed), 0u);
    const StableComputationResult result = analyze_stable_computation(*protocol, crashed);
    ASSERT_TRUE(result.single_valued());
    EXPECT_EQ(result.stable_signatures.front()[1], 0u);  // leaderless forever
}

TEST(FaultTolerance, ThresholdProtocolLeaderDeathFreezesOutputs) {
    // In the Lemma 5 threshold protocol, killing the unique leader freezes
    // every survivor's output at its last broadcast value - consistent but
    // permanently stale.
    const auto protocol = make_threshold_protocol({1}, 2);  // x0 < 2
    // Run to a stable configuration first.
    const auto initial = CountConfiguration::from_input_counts(*protocol, {4});
    RunOptions options;
    options.max_interactions = default_budget(4);
    options.seed = 3;
    const RunResult result = simulate(*protocol, initial, options);
    ASSERT_TRUE(result.consensus.has_value());
    ASSERT_EQ(*result.consensus, kOutputFalse);  // 4 >= 2

    // Identify and kill the leader (states with leader bit set: q / (2s+1)
    // >= 2 under the atom-protocol layout; here s = 3).
    const std::int64_t s = 3;
    auto crashed = result.final_configuration;
    bool removed = false;
    for (State q = 0; q < crashed.num_states() && !removed; ++q) {
        if (crashed.count(q) > 0 && q / (2 * s + 1) >= 2) {
            crashed.remove(q, 1);
            removed = true;
        }
    }
    ASSERT_TRUE(removed);
    // Leaderless survivors are silent: outputs can never change again.
    EXPECT_TRUE(crashed.is_silent(*protocol));
}

TEST(FaultTolerance, CrashesDoNotAffectSurvivorSemantics) {
    // The model-level claim: removing agents yields a *bona fide* population
    // of the same protocol - the analyzer accepts the crashed configuration
    // and all invariants still hold.
    const auto protocol = make_counting_protocol(3);
    auto config = CountConfiguration::from_input_counts(*protocol, {3, 4});
    config.remove(1, 2);  // two 1-agents die before interacting
    const StableComputationResult result = analyze_stable_computation(*protocol, config);
    EXPECT_TRUE(result.always_converges);
    // Only 2 ones survive: the correct surviving verdict is false.
    EXPECT_TRUE(stably_computes_bool(*protocol, config, false));
}

}  // namespace
}  // namespace popproto
