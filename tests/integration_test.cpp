// Cross-module integration: each test exercises a full pipeline spanning
// several libraries, the way a downstream user would compose them.

#include <gtest/gtest.h>

#include "analysis/markov.h"
#include "analysis/stable_computation.h"
#include "core/protocol_io.h"
#include "core/schedulers.h"
#include "core/simulator.h"
#include "graphs/graph_simulation.h"
#include "graphs/interaction_graph.h"
#include "machines/examples.h"
#include "machines/minsky.h"
#include "presburger/atom_protocols.h"
#include "presburger/compiler.h"
#include "presburger/parser.h"
#include "protocols/division.h"
#include "randomized/population_machine.h"
#include "test_util.h"

namespace popproto {
namespace {

TEST(Integration, ParseCompileVerifySimulateSerializeRoundTrip) {
    // Text formula -> compiler -> exact verification -> random simulation ->
    // serialization -> reload -> exact verification again.
    const Formula formula = parse_formula("x0 = 1 mod 3 | x0 >= 7");
    const auto protocol = compile_formula(formula, 1);

    for (std::uint64_t n = 1; n <= 9; ++n) {
        const auto initial = CountConfiguration::from_input_counts(*protocol, {n});
        const bool expected = formula.evaluate({static_cast<std::int64_t>(n)});
        EXPECT_TRUE(stably_computes_bool(*protocol, initial, expected)) << n;
    }

    const auto initial = CountConfiguration::from_input_counts(*protocol, {100});
    RunOptions options;
    options.max_interactions = default_budget(100, 128.0);
    options.seed = 2;
    const RunResult run = simulate(*protocol, initial, options);
    ASSERT_TRUE(run.consensus.has_value());
    EXPECT_EQ(*run.consensus, formula.evaluate({100}) ? kOutputTrue : kOutputFalse);

    const auto reloaded = deserialize_protocol(serialize_protocol(*protocol));
    for (std::uint64_t n = 1; n <= 6; ++n) {
        const auto config = CountConfiguration::from_input_counts(*reloaded, {n});
        EXPECT_TRUE(stably_computes_bool(*reloaded, config,
                                         formula.evaluate({static_cast<std::int64_t>(n)})))
            << n;
    }
}

TEST(Integration, TuringToPopulationWithElectionPrologue) {
    // TM -> Minsky counter program -> leader-driven population with the full
    // Sect. 6.1 prologue, majority-voted across seeds for reliability.
    const TuringMachine machine = make_unary_mod_turing_machine(3);
    const MinskyProgram compiled = compile_turing_machine(machine);
    for (std::uint32_t x : {3u, 4u}) {
        const std::vector<std::uint32_t> input(x, 1);
        const TuringExecution direct = run_turing_machine(machine, input, 100000);

        int accept_votes = 0;
        int votes = 0;
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            PopulationMachineOptions options;
            options.timer_parameter = 4;
            options.share_capacity = 8;
            options.max_interactions = 60'000'000'000ull;
            options.leader_election_prologue = true;
            options.seed = 10 * x + seed;
            const PopulationMachineResult result = run_population_counter_machine(
                compiled.program, compiled.initial_counters(input), 25, options);
            if (!result.halted) continue;
            ++votes;
            if (result.exit_code == MinskyProgram::kAcceptExitCode) ++accept_votes;
        }
        ASSERT_GT(votes, 0) << x;
        EXPECT_EQ(accept_votes * 2 > votes, direct.accepted) << x;
    }
}

TEST(Integration, CompiledPredicateLiftedToARandomGraph) {
    // Presburger compiler -> Theorem 7 lift -> random weakly-connected
    // deployment -> correct consensus.
    const Formula parity = parse_formula("x1 = 0 mod 2");
    const auto base = compile_formula(parity, 2);
    const auto lifted = make_graph_simulation_protocol(*base);
    const InteractionGraph graph = InteractionGraph::random_connected(14, 6, 3);

    for (std::uint64_t ones : {5ull, 6ull}) {
        std::vector<Symbol> inputs(14, 0);
        for (std::uint64_t i = 0; i < ones; ++i) inputs[i] = 1;
        RunOptions options;
        options.max_interactions = 60'000'000;
        options.stop_after_stable_outputs = 400'000;
        options.seed = 70 + ones;
        const GraphRunResult result = simulate_on_graph(*lifted, graph, inputs, options);
        ASSERT_TRUE(result.consensus.has_value()) << ones;
        EXPECT_EQ(*result.consensus, ones % 2 == 0 ? kOutputTrue : kOutputFalse) << ones;
    }
}

TEST(Integration, DivisionUnderRoundRobinDecodesViaConvention) {
    // Function protocol + deterministic scheduler + Sect. 3.4 decoding.
    const std::uint32_t divisor = 4;
    const auto protocol = make_divmod_protocol(divisor);
    const IntegerOutputConvention convention = divmod_output_convention(divisor);

    std::vector<Symbol> inputs(9, 1);
    inputs.insert(inputs.end(), 6, 0);
    const auto agents = AgentConfiguration::from_inputs(*protocol, inputs);
    RoundRobinScheduler scheduler(15);
    RunOptions options;
    options.max_interactions = default_budget(15);
    const RunResult result = simulate_with_scheduler(*protocol, agents, scheduler, options);
    EXPECT_EQ(result.stop_reason, StopReason::kSilent);
    const auto decoded =
        convention.decode(result.final_configuration.output_counts(*protocol));
    EXPECT_EQ(decoded, (std::vector<std::int64_t>{9 % divisor, 9 / divisor}));
}

TEST(Integration, WeightedSamplingOfCompiledFormula) {
    const Formula fever = parse_formula("20 x1 >= x0 + x1");
    const auto protocol = compile_formula(fever);
    std::vector<Symbol> inputs(95, 0);
    inputs.insert(inputs.end(), 5, 1);
    const auto agents = AgentConfiguration::from_inputs(*protocol, inputs);
    std::vector<double> weights(100);
    for (std::size_t i = 0; i < 100; ++i) weights[i] = 1.0 + (i % 5);

    RunOptions options;
    options.max_interactions = default_budget(100, 512.0);
    options.seed = 19;
    const RunResult result = simulate_weighted(*protocol, agents, weights, options);
    ASSERT_TRUE(result.consensus.has_value());
    EXPECT_EQ(*result.consensus, kOutputTrue);  // 5 of 100 is exactly 5%
}

TEST(Integration, AbsorptionProbabilityOfAStableProtocolIsOne) {
    // The Theorem 11 machinery applied to a compiled predicate: a stably
    // computing protocol reaches its correct consensus class w.p. exactly 1.
    const auto protocol = compile_formula(parse_formula("x0 < x1"));
    const auto initial = CountConfiguration::from_input_counts(*protocol, {2, 3});
    const double p = absorption_probability(
        *protocol, initial, [&](const CountConfiguration& config) {
            const auto consensus = config.consensus_output(*protocol);
            return consensus.has_value() && *consensus == kOutputTrue;
        });
    EXPECT_NEAR(p, 1.0, 1e-9);
}

TEST(Integration, ExpectedLeaderMergeTimeIsUniversalAcrossLeaderProtocols) {
    // The (n-1)^2 claim holds inside the Lemma 5 remainder protocol too:
    // its leader field follows exactly the pairwise-elimination dynamics.
    const std::int64_t modulus = 3;
    const auto protocol = make_remainder_protocol({1}, 0, modulus);
    const auto leader_count = [&](const CountConfiguration& config) {
        std::uint64_t leaders = 0;
        for (State q = 0; q < config.num_states(); ++q)
            if (q / modulus >= 2) leaders += config.count(q);  // (leader,b,u) layout
        return leaders;
    };
    for (std::uint64_t n : {3ull, 5ull}) {
        const auto initial = CountConfiguration::from_input_counts(*protocol, {n});
        const double expected = expected_hitting_time(
            *protocol, initial,
            [&](const CountConfiguration& c) { return leader_count(c) == 1; });
        EXPECT_NEAR(expected, static_cast<double>((n - 1) * (n - 1)), 1e-6) << n;
    }
}

}  // namespace
}  // namespace popproto
