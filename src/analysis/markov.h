// Exact expected-interaction analysis of randomized executions (Sect. 6).
//
// Under uniform random pairing the configuration process is a Markov chain
// over multiset configurations: from configuration C the ordered state pair
// (p, q) is drawn with probability c_p (c_q - [p == q]) / (n (n - 1)).
// This module computes exact expected hitting times to a target set of
// configurations by solving the standard first-step linear system with
// Gaussian elimination.  It is used to verify closed-form claims such as the
// (n-1)^2 expected interactions of leader election on small populations.

#ifndef POPPROTO_ANALYSIS_MARKOV_H
#define POPPROTO_ANALYSIS_MARKOV_H

#include <functional>

#include "analysis/reachability.h"
#include "core/tabulated_protocol.h"

namespace popproto {

/// Predicate over configurations selecting the target (absorbing) set.
using ConfigPredicate = std::function<bool(const CountConfiguration&)>;

/// Expected number of interactions (counting null interactions), starting
/// from `graph.configs[initial]`, until a configuration satisfying `target`
/// is first reached.  Throws std::runtime_error if some reachable
/// configuration cannot reach the target (the expectation would be infinite)
/// or if the transient system is too large (> `max_transient` states).
double expected_hitting_time(const TabulatedProtocol& protocol, const ConfigurationGraph& graph,
                             ConfigId initial, const ConfigPredicate& target,
                             std::size_t max_transient = 4096);

/// Convenience wrapper: explores from `initial_config` and computes the
/// expected hitting time from it.
double expected_hitting_time(const TabulatedProtocol& protocol,
                             const CountConfiguration& initial_config,
                             const ConfigPredicate& target, std::size_t max_configs = 1u << 18,
                             std::size_t max_transient = 4096);

/// Probability that the random-pairing chain started at `initial` is
/// eventually absorbed into a *final SCC* whose configurations satisfy
/// `target`.  This is the exact quantity behind Theorem 11: with
/// polynomially many multiset configurations, "computes with probability p"
/// is a linear-system solve.  `target` must be constant on each final SCC
/// (throws std::runtime_error otherwise).
double absorption_probability(const TabulatedProtocol& protocol, const ConfigurationGraph& graph,
                              ConfigId initial, const ConfigPredicate& target,
                              std::size_t max_transient = 4096);

/// Convenience wrapper over a fresh exploration from `initial_config`.
double absorption_probability(const TabulatedProtocol& protocol,
                              const CountConfiguration& initial_config,
                              const ConfigPredicate& target, std::size_t max_configs = 1u << 18,
                              std::size_t max_transient = 4096);

}  // namespace popproto

#endif  // POPPROTO_ANALYSIS_MARKOV_H
