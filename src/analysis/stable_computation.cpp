#include "analysis/stable_computation.h"

#include <algorithm>
#include <stdexcept>

#include "core/require.h"

namespace popproto {

std::optional<Symbol> StableComputationResult::consensus() const {
    if (!single_valued()) return std::nullopt;
    const OutputSignature& signature = stable_signatures.front();
    std::optional<Symbol> only;
    for (Symbol y = 0; y < signature.size(); ++y) {
        if (signature[y] == 0) continue;
        if (only) return std::nullopt;
        only = y;
    }
    return only;
}

SccDecomposition condense_edges(const std::vector<std::vector<ConfigId>>& successors) {
    const std::size_t n = successors.size();
    SccDecomposition result;
    result.component.assign(n, 0);

    // Iterative Tarjan.
    constexpr std::uint32_t kUnvisited = ~std::uint32_t{0};
    std::vector<std::uint32_t> index(n, kUnvisited);
    std::vector<std::uint32_t> lowlink(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<ConfigId> stack;
    std::uint32_t next_index = 0;

    struct Frame {
        ConfigId node;
        std::size_t edge;
    };
    std::vector<Frame> call_stack;

    for (ConfigId root = 0; root < n; ++root) {
        if (index[root] != kUnvisited) continue;
        call_stack.push_back({root, 0});
        index[root] = lowlink[root] = next_index++;
        stack.push_back(root);
        on_stack[root] = true;

        while (!call_stack.empty()) {
            Frame& frame = call_stack.back();
            const ConfigId v = frame.node;
            if (frame.edge < successors[v].size()) {
                const ConfigId w = successors[v][frame.edge++];
                if (index[w] == kUnvisited) {
                    index[w] = lowlink[w] = next_index++;
                    stack.push_back(w);
                    on_stack[w] = true;
                    call_stack.push_back({w, 0});
                } else if (on_stack[w]) {
                    lowlink[v] = std::min(lowlink[v], index[w]);
                }
            } else {
                if (lowlink[v] == index[v]) {
                    const auto component = static_cast<std::uint32_t>(result.num_components++);
                    ConfigId w;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        on_stack[w] = false;
                        result.component[w] = component;
                    } while (w != v);
                }
                call_stack.pop_back();
                if (!call_stack.empty()) {
                    const ConfigId parent = call_stack.back().node;
                    lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
                }
            }
        }
    }

    result.is_final.assign(result.num_components, true);
    for (ConfigId v = 0; v < n; ++v) {
        for (ConfigId w : successors[v]) {
            if (result.component[v] != result.component[w])
                result.is_final[result.component[v]] = false;
        }
    }
    return result;
}

SccDecomposition condense(const ConfigurationGraph& graph) {
    return condense_edges(graph.successors);
}

StableComputationResult summarize_stable_computation(
    const std::vector<std::vector<ConfigId>>& successors,
    const std::vector<OutputSignature>& signatures) {
    require(successors.size() == signatures.size(),
            "summarize_stable_computation: one signature per configuration required");
    const SccDecomposition sccs = condense_edges(successors);

    StableComputationResult result;
    result.reachable_configurations = successors.size();
    result.always_converges = true;

    std::vector<std::optional<OutputSignature>> scc_signature(sccs.num_components);
    std::vector<bool> scc_uniform(sccs.num_components, true);
    for (ConfigId v = 0; v < successors.size(); ++v) {
        const std::uint32_t s = sccs.component[v];
        if (!sccs.is_final[s]) continue;
        if (!scc_signature[s]) {
            scc_signature[s] = signatures[v];
        } else if (*scc_signature[s] != signatures[v]) {
            scc_uniform[s] = false;
        }
    }

    for (std::uint32_t s = 0; s < sccs.num_components; ++s) {
        if (!sccs.is_final[s] || !scc_signature[s]) continue;
        if (!scc_uniform[s]) {
            result.always_converges = false;
            continue;
        }
        result.stable_signatures.push_back(*scc_signature[s]);
    }
    std::sort(result.stable_signatures.begin(), result.stable_signatures.end());
    result.stable_signatures.erase(
        std::unique(result.stable_signatures.begin(), result.stable_signatures.end()),
        result.stable_signatures.end());
    return result;
}

StableComputationResult analyze_stable_computation(const TabulatedProtocol& protocol,
                                                   const CountConfiguration& initial,
                                                   std::size_t max_configs) {
    const ConfigurationGraph graph = explore_reachable(protocol, initial, max_configs);
    if (!graph.complete) {
        throw std::runtime_error(
            "analyze_stable_computation: reachable set exceeds max_configs; "
            "verdict would be unsound");
    }
    std::vector<OutputSignature> signatures;
    signatures.reserve(graph.size());
    for (const CountConfiguration& config : graph.configs)
        signatures.push_back(config.output_counts(protocol));
    return summarize_stable_computation(graph.successors, signatures);
}

bool stably_computes_integer_function(const TabulatedProtocol& protocol,
                                      const CountConfiguration& initial,
                                      const IntegerOutputConvention& convention,
                                      const std::vector<std::int64_t>& expected,
                                      std::size_t max_configs) {
    const StableComputationResult result =
        analyze_stable_computation(protocol, initial, max_configs);
    if (!result.always_converges || result.stable_signatures.empty()) return false;
    for (const OutputSignature& signature : result.stable_signatures)
        if (convention.decode(signature) != expected) return false;
    return true;
}

bool stably_computes_bool(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                          bool expected, std::size_t max_configs) {
    require(protocol.num_output_symbols() == 2,
            "stably_computes_bool: protocol must have Boolean outputs");
    const StableComputationResult result =
        analyze_stable_computation(protocol, initial, max_configs);
    const std::optional<Symbol> consensus = result.consensus();
    if (!consensus) return false;
    return *consensus == (expected ? kOutputTrue : kOutputFalse);
}

}  // namespace popproto
