#include "analysis/markov.h"

#include <cmath>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "analysis/stable_computation.h"
#include "core/require.h"

namespace popproto {

namespace {

/// Transition probabilities out of one configuration, aggregated per
/// successor configuration.  The missing mass (null interactions and pure
/// swaps) is an implicit self-loop.
std::unordered_map<ConfigId, double> transition_row(
    const TabulatedProtocol& protocol, const ConfigurationGraph& graph,
    const std::unordered_map<CountConfiguration, ConfigId, CountConfigurationHash>& index,
    ConfigId from) {
    const CountConfiguration& config = graph.configs[from];
    const double n = static_cast<double>(config.population_size());
    const double pairs = n * (n - 1.0);

    std::unordered_map<ConfigId, double> row;
    for (State p = 0; p < config.num_states(); ++p) {
        const std::uint64_t cp = config.count(p);
        if (cp == 0) continue;
        for (State q = 0; q < config.num_states(); ++q) {
            const std::uint64_t cq = config.count(q) - (p == q ? 1 : 0);
            if (cq == 0) continue;
            const StatePair next = protocol.apply_fast(p, q);
            if (next.initiator == p && next.responder == q) continue;  // self mass
            CountConfiguration successor = config;
            successor.remove(p);
            successor.remove(q);
            successor.add(next.initiator);
            successor.add(next.responder);
            if (successor == config) continue;  // pure swap: self mass
            const auto it = index.find(successor);
            ensure(it != index.end(), "transition_row: successor missing from graph");
            row[it->second] += static_cast<double>(cp) * static_cast<double>(cq) / pairs;
        }
    }
    return row;
}

/// Solves `matrix * x = rhs` (row-major, m x m) in place by Gaussian
/// elimination with partial pivoting; returns x.
std::vector<double> solve_linear(std::vector<double>& matrix, std::vector<double>& rhs,
                                 std::size_t m) {
    for (std::size_t col = 0; col < m; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < m; ++row)
            if (std::fabs(matrix[row * m + col]) > std::fabs(matrix[pivot * m + col]))
                pivot = row;
        if (std::fabs(matrix[pivot * m + col]) < 1e-14)
            throw std::runtime_error("solve_linear: singular system");
        if (pivot != col) {
            for (std::size_t k = col; k < m; ++k)
                std::swap(matrix[pivot * m + k], matrix[col * m + k]);
            std::swap(rhs[pivot], rhs[col]);
        }
        const double diagonal = matrix[col * m + col];
        for (std::size_t row = col + 1; row < m; ++row) {
            const double factor = matrix[row * m + col] / diagonal;
            if (factor == 0.0) continue;
            for (std::size_t k = col; k < m; ++k)
                matrix[row * m + k] -= factor * matrix[col * m + k];
            rhs[row] -= factor * rhs[col];
        }
    }
    std::vector<double> solution(m, 0.0);
    for (std::size_t row = m; row-- > 0;) {
        double sum = rhs[row];
        for (std::size_t k = row + 1; k < m; ++k) sum -= matrix[row * m + k] * solution[k];
        solution[row] = sum / matrix[row * m + row];
    }
    return solution;
}

}  // namespace

double expected_hitting_time(const TabulatedProtocol& protocol, const ConfigurationGraph& graph,
                             ConfigId initial, const ConfigPredicate& target,
                             std::size_t max_transient) {
    require(graph.complete, "expected_hitting_time: incomplete configuration graph");
    require(initial < graph.size(), "expected_hitting_time: initial id out of range");

    if (target(graph.configs[initial])) return 0.0;

    // Index configurations for successor lookup.
    std::unordered_map<CountConfiguration, ConfigId, CountConfigurationHash> index;
    for (ConfigId c = 0; c < graph.size(); ++c) index.emplace(graph.configs[c], c);

    // Verify every reachable configuration can reach the target (else the
    // expectation is infinite): reverse BFS from target states.
    std::vector<std::vector<ConfigId>> predecessors(graph.size());
    for (ConfigId c = 0; c < graph.size(); ++c)
        for (ConfigId d : graph.successors[c]) predecessors[d].push_back(c);
    std::vector<bool> reaches_target(graph.size(), false);
    std::deque<ConfigId> queue;
    for (ConfigId c = 0; c < graph.size(); ++c) {
        if (target(graph.configs[c])) {
            reaches_target[c] = true;
            queue.push_back(c);
        }
    }
    if (queue.empty())
        throw std::runtime_error("expected_hitting_time: target unreachable");
    while (!queue.empty()) {
        const ConfigId c = queue.front();
        queue.pop_front();
        for (ConfigId p : predecessors[c]) {
            if (!reaches_target[p]) {
                reaches_target[p] = true;
                queue.push_back(p);
            }
        }
    }
    for (ConfigId c = 0; c < graph.size(); ++c) {
        if (!reaches_target[c])
            throw std::runtime_error(
                "expected_hitting_time: a reachable configuration cannot reach "
                "the target; expectation is infinite");
    }

    // Enumerate transient configurations.
    std::vector<ConfigId> transient;
    std::vector<std::int64_t> transient_index(graph.size(), -1);
    for (ConfigId c = 0; c < graph.size(); ++c) {
        if (!target(graph.configs[c])) {
            transient_index[c] = static_cast<std::int64_t>(transient.size());
            transient.push_back(c);
        }
    }
    const std::size_t m = transient.size();
    if (m > max_transient)
        throw std::runtime_error("expected_hitting_time: transient system too large");

    // Build (I - P_transient) t = 1 and solve by Gaussian elimination with
    // partial pivoting.
    std::vector<double> matrix(m * m, 0.0);
    std::vector<double> rhs(m, 1.0);
    for (std::size_t row = 0; row < m; ++row) {
        matrix[row * m + row] = 1.0;
        const auto probabilities = transition_row(protocol, graph, index, transient[row]);
        double outgoing = 0.0;
        for (const auto& [succ, prob] : probabilities) {
            outgoing += prob;
            if (transient_index[succ] >= 0)
                matrix[row * m + static_cast<std::size_t>(transient_index[succ])] -= prob;
        }
        // Self-loop mass (1 - outgoing) folds into the diagonal.
        matrix[row * m + row] -= (1.0 - outgoing);
    }

    const std::vector<double> times = solve_linear(matrix, rhs, m);

    const std::int64_t initial_row = transient_index[initial];
    ensure(initial_row >= 0, "expected_hitting_time: initial vanished");
    return times[static_cast<std::size_t>(initial_row)];
}

double expected_hitting_time(const TabulatedProtocol& protocol,
                             const CountConfiguration& initial_config,
                             const ConfigPredicate& target, std::size_t max_configs,
                             std::size_t max_transient) {
    const ConfigurationGraph graph = explore_reachable(protocol, initial_config, max_configs);
    if (!graph.complete)
        throw std::runtime_error("expected_hitting_time: reachable set exceeds max_configs");
    return expected_hitting_time(protocol, graph, 0, target, max_transient);
}

double absorption_probability(const TabulatedProtocol& protocol, const ConfigurationGraph& graph,
                              ConfigId initial, const ConfigPredicate& target,
                              std::size_t max_transient) {
    require(graph.complete, "absorption_probability: incomplete configuration graph");
    require(initial < graph.size(), "absorption_probability: initial id out of range");

    const SccDecomposition sccs = condense(graph);

    // Classify final SCCs and insist the target predicate is constant on
    // each (otherwise "absorbed into a target component" is ill-defined).
    enum class Verdict : std::uint8_t { kUnseen, kTarget, kOther };
    std::vector<Verdict> final_verdict(sccs.num_components, Verdict::kUnseen);
    for (ConfigId c = 0; c < graph.size(); ++c) {
        const std::uint32_t s = sccs.component[c];
        if (!sccs.is_final[s]) continue;
        const Verdict verdict = target(graph.configs[c]) ? Verdict::kTarget : Verdict::kOther;
        if (final_verdict[s] == Verdict::kUnseen) {
            final_verdict[s] = verdict;
        } else if (final_verdict[s] != verdict) {
            throw std::runtime_error(
                "absorption_probability: target is not constant on a final SCC");
        }
    }

    const auto absorbed_value = [&](ConfigId c) -> double {
        return final_verdict[sccs.component[c]] == Verdict::kTarget ? 1.0 : 0.0;
    };
    if (sccs.is_final[sccs.component[initial]]) return absorbed_value(initial);

    std::unordered_map<CountConfiguration, ConfigId, CountConfigurationHash> index;
    for (ConfigId c = 0; c < graph.size(); ++c) index.emplace(graph.configs[c], c);

    // Transient configurations: everything outside final SCCs.
    std::vector<ConfigId> transient;
    std::vector<std::int64_t> transient_index(graph.size(), -1);
    for (ConfigId c = 0; c < graph.size(); ++c) {
        if (!sccs.is_final[sccs.component[c]]) {
            transient_index[c] = static_cast<std::int64_t>(transient.size());
            transient.push_back(c);
        }
    }
    const std::size_t m = transient.size();
    if (m > max_transient)
        throw std::runtime_error("absorption_probability: transient system too large");

    // h = P_tt h + P_ta * value  ->  (I - P_tt) h = b.
    std::vector<double> matrix(m * m, 0.0);
    std::vector<double> rhs(m, 0.0);
    for (std::size_t row = 0; row < m; ++row) {
        matrix[row * m + row] = 1.0;
        const auto probabilities = transition_row(protocol, graph, index, transient[row]);
        double outgoing = 0.0;
        for (const auto& [succ, prob] : probabilities) {
            outgoing += prob;
            if (transient_index[succ] >= 0) {
                matrix[row * m + static_cast<std::size_t>(transient_index[succ])] -= prob;
            } else {
                rhs[row] += prob * absorbed_value(succ);
            }
        }
        matrix[row * m + row] -= (1.0 - outgoing);  // self-loop mass
    }
    const std::vector<double> probabilities = solve_linear(matrix, rhs, m);
    return probabilities[static_cast<std::size_t>(transient_index[initial])];
}

double absorption_probability(const TabulatedProtocol& protocol,
                              const CountConfiguration& initial_config,
                              const ConfigPredicate& target, std::size_t max_configs,
                              std::size_t max_transient) {
    const ConfigurationGraph graph = explore_reachable(protocol, initial_config, max_configs);
    if (!graph.complete)
        throw std::runtime_error("absorption_probability: reachable set exceeds max_configs");
    return absorption_probability(protocol, graph, 0, target, max_transient);
}

}  // namespace popproto
