// Stable-computation verification (Sect. 3.2, Lemma 1).
//
// A computation converges iff it reaches an output-stable configuration, and
// by Lemma 1 every fair computation ends up inside a *final* strongly
// connected component of the transition graph.  Hence a protocol stably
// computes output y on input x iff every final SCC reachable from I(x)
// consists of configurations with one common output signature, and that
// signature represents y.  This module decides exactly that by SCC
// condensation of the explored configuration graph.

#ifndef POPPROTO_ANALYSIS_STABLE_COMPUTATION_H
#define POPPROTO_ANALYSIS_STABLE_COMPUTATION_H

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/reachability.h"
#include "core/configuration.h"
#include "core/conventions.h"
#include "core/tabulated_protocol.h"

namespace popproto {

/// Per-output-symbol agent counts; the "output assignment modulo renaming".
using OutputSignature = std::vector<std::uint64_t>;

/// Result of analyzing all fair executions from one initial configuration.
struct StableComputationResult {
    /// True iff every fair computation converges, i.e. every reachable final
    /// SCC has one uniform output signature across its configurations.
    bool always_converges = false;

    /// The distinct signatures of the reachable final SCCs (each uniform SCC
    /// contributes one entry; a non-uniform SCC sets always_converges =
    /// false and contributes nothing).  Sorted and deduplicated.
    std::vector<OutputSignature> stable_signatures;

    /// Number of reachable configurations explored.
    std::size_t reachable_configurations = 0;

    /// Convenience: true iff always_converges and exactly one stable
    /// signature exists (single-valued stable computation).
    bool single_valued() const { return always_converges && stable_signatures.size() == 1; }

    /// If the computation is single-valued and all agents agree on one output
    /// symbol in the stable signature, that symbol; otherwise nullopt.
    /// This is the all-agents predicate output convention (Sect. 3.4).
    std::optional<Symbol> consensus() const;
};

/// Analyzes the transition graph below `initial` exactly.  Throws
/// std::runtime_error if the reachable set exceeds `max_configs`
/// (the verdict would otherwise be unsound).
StableComputationResult analyze_stable_computation(const TabulatedProtocol& protocol,
                                                   const CountConfiguration& initial,
                                                   std::size_t max_configs = 1u << 20);

/// True iff the protocol stably computes the Boolean value `expected` from
/// `initial` under the all-agents predicate output convention.
bool stably_computes_bool(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                          bool expected, std::size_t max_configs = 1u << 20);

/// Exact function-computation check for the integer-based output convention
/// (Sect. 3.4): true iff every fair computation from `initial` converges and
/// every stable output signature decodes to `expected`.  Distinct stable
/// signatures are fine as long as their decodings agree (representative
/// independence).
bool stably_computes_integer_function(const TabulatedProtocol& protocol,
                                      const CountConfiguration& initial,
                                      const IntegerOutputConvention& convention,
                                      const std::vector<std::int64_t>& expected,
                                      std::size_t max_configs = 1u << 20);

/// Tarjan SCC condensation of a configuration graph.  Exposed for tests and
/// for reuse by other analyses.
struct SccDecomposition {
    /// component[c] = SCC index of configuration c (indices are in reverse
    /// topological order of the condensation: successors have lower index).
    std::vector<std::uint32_t> component;
    std::size_t num_components = 0;
    /// is_final[s] = true iff no edge leaves component s (Sect. 3.1 "final").
    std::vector<bool> is_final;
};

SccDecomposition condense(const ConfigurationGraph& graph);

/// Condensation of an arbitrary successor relation (nodes 0..n-1).  Used by
/// both the multiset analyzer and the explicit-graph analyzer.
SccDecomposition condense_edges(const std::vector<std::vector<ConfigId>>& successors);

/// Shared Lemma 1 verdict: given the successor relation and each node's
/// output signature, decides convergence and collects the stable signatures
/// of the final SCCs (see StableComputationResult).
StableComputationResult summarize_stable_computation(
    const std::vector<std::vector<ConfigId>>& successors,
    const std::vector<OutputSignature>& signatures);

}  // namespace popproto

#endif  // POPPROTO_ANALYSIS_STABLE_COMPUTATION_H
