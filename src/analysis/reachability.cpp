#include "analysis/reachability.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "core/require.h"

namespace popproto {

ConfigurationGraph explore_reachable(const TabulatedProtocol& protocol,
                                     const CountConfiguration& initial,
                                     std::size_t max_configs) {
    require(initial.num_states() == protocol.num_states(),
            "explore_reachable: configuration does not match protocol");
    require(initial.population_size() >= 1, "explore_reachable: empty population");
    require(max_configs >= 1, "explore_reachable: zero configuration limit");

    ConfigurationGraph graph;
    std::unordered_map<CountConfiguration, ConfigId, CountConfigurationHash> index;

    const auto intern = [&](const CountConfiguration& config) -> ConfigId {
        auto it = index.find(config);
        if (it != index.end()) return it->second;
        const auto id = static_cast<ConfigId>(graph.configs.size());
        index.emplace(config, id);
        graph.configs.push_back(config);
        graph.successors.emplace_back();
        return id;
    };

    intern(initial);
    std::deque<ConfigId> frontier{0};

    while (!frontier.empty()) {
        const ConfigId current = frontier.front();
        frontier.pop_front();

        // Collect present states once; the config vector may relocate as we
        // intern successors, so copy the counts we need.
        std::vector<State> present;
        for (State q = 0; q < protocol.num_states(); ++q)
            if (graph.configs[current].count(q) > 0) present.push_back(q);
        const std::vector<std::uint64_t> counts = graph.configs[current].counts();

        // Note: interning successors may reallocate graph.successors, so
        // collect edges locally and store them afterwards.
        std::vector<ConfigId> out_edges;
        for (State p : present) {
            for (State q : present) {
                if (p == q && counts[p] < 2) continue;
                const StatePair next = protocol.apply_fast(p, q);
                if (next.initiator == p && next.responder == q) continue;  // null
                CountConfiguration successor = graph.configs[current];
                successor.remove(p);
                successor.remove(q);
                successor.add(next.initiator);
                successor.add(next.responder);
                if (successor == graph.configs[current]) continue;  // e.g. pure swap
                const bool is_new = index.find(successor) == index.end();
                const ConfigId succ_id = intern(successor);
                out_edges.push_back(succ_id);
                if (is_new) {
                    if (graph.configs.size() > max_configs) {
                        graph.complete = false;
                        return graph;
                    }
                    frontier.push_back(succ_id);
                }
            }
        }
        std::sort(out_edges.begin(), out_edges.end());
        out_edges.erase(std::unique(out_edges.begin(), out_edges.end()), out_edges.end());
        graph.successors[current] = std::move(out_edges);
    }
    return graph;
}

}  // namespace popproto
