// Exact reachability over multiset configurations.
//
// Because stably computable predicates are invariant under agent renaming
// (Theorem 1), a configuration of the standard population is fully described
// by its multiset of states, and the whole transition graph G(A, P_n)
// (Sect. 3.1) can be explored as a graph over count vectors.  This is the
// executable counterpart of the Theorem 6 argument that stable computation is
// decidable by reachability over |Q| counters of log n bits.

#ifndef POPPROTO_ANALYSIS_REACHABILITY_H
#define POPPROTO_ANALYSIS_REACHABILITY_H

#include <cstdint>
#include <vector>

#include "core/configuration.h"
#include "core/tabulated_protocol.h"

namespace popproto {

/// Dense index of a configuration inside a ConfigurationGraph.
using ConfigId = std::uint32_t;

/// The reachable part of the transition graph from one initial configuration.
struct ConfigurationGraph {
    /// Reachable configurations; index 0 is the initial configuration.
    std::vector<CountConfiguration> configs;

    /// successors[c] = distinct configurations reachable from configs[c] in
    /// one non-null interaction, excluding c itself.
    std::vector<std::vector<ConfigId>> successors;

    /// True iff exploration finished within the configuration limit.  When
    /// false the graph is a partial prefix and must not be used for
    /// stable-computation verdicts.
    bool complete = true;

    std::size_t size() const { return configs.size(); }
};

/// Breadth-first exploration of all configurations reachable from `initial`.
/// Stops (with complete == false) once more than `max_configs`
/// configurations have been discovered.
ConfigurationGraph explore_reachable(const TabulatedProtocol& protocol,
                                     const CountConfiguration& initial,
                                     std::size_t max_configs = 1u << 20);

}  // namespace popproto

#endif  // POPPROTO_ANALYSIS_REACHABILITY_H
