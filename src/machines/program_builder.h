// Small assembler for counter programs.
//
// Counter programs (especially the Minsky-compiled ones) are full of forward
// jumps; ProgramBuilder provides labels with fixups plus the handful of
// macro-instructions the Sect. 6.1 constructions rely on: transfer,
// multiply-by-constant, and divide-with-remainder-branching.

#ifndef POPPROTO_MACHINES_PROGRAM_BUILDER_H
#define POPPROTO_MACHINES_PROGRAM_BUILDER_H

#include <cstdint>
#include <vector>

#include "machines/counter_machine.h"

namespace popproto {

/// Label handle; valid only with the builder that created it.
using Label = std::uint32_t;

class ProgramBuilder {
public:
    explicit ProgramBuilder(std::uint32_t num_counters);

    /// Allocates an unbound label.
    Label make_label();

    /// Binds `label` to the next emitted instruction.
    void place(Label label);

    // Primitive instructions ------------------------------------------------
    void inc(std::uint32_t counter);
    void dec(std::uint32_t counter);
    void jump_if_zero(std::uint32_t counter, Label target);
    void jump(Label target);
    void halt(std::uint32_t exit_code);

    // Macro instructions (Sect. 6.1) ----------------------------------------

    /// while (from > 0) { --from; ++to; }  -- moves `from` into `to`.
    void emit_transfer(std::uint32_t from, std::uint32_t to);

    /// counter := counter * factor, using `aux` (which must be zero before
    /// and is zero after).  This is the paper's product loop: repeatedly
    /// decrement `counter` and increment `aux` `factor` times, then transfer
    /// back.
    void emit_multiply(std::uint32_t counter, std::uint32_t factor, std::uint32_t aux);

    /// counter := counter + addend.
    void emit_add(std::uint32_t counter, std::uint32_t addend);

    /// Divides `counter` by `base` (the paper's quotient loop): afterwards
    /// `counter` holds the quotient, `aux` is zero, and control continues at
    /// the returned label for the remainder value r (r in [0, base)).  The
    /// caller must place every returned label.
    std::vector<Label> emit_divmod(std::uint32_t counter, std::uint32_t base, std::uint32_t aux);

    /// Resolves all fixups and returns the finished program.  Throws if some
    /// placed jump targets an unbound label.
    CounterProgram build();

    /// Next instruction index (useful for size accounting).
    std::uint32_t current_pc() const { return static_cast<std::uint32_t>(instructions_.size()); }

private:
    std::uint32_t num_counters_;
    std::vector<CounterInstruction> instructions_;
    std::vector<std::int64_t> label_positions_;          // -1 = unbound
    std::vector<std::pair<std::uint32_t, Label>> fixups_;  // (pc, label)
};

}  // namespace popproto

#endif  // POPPROTO_MACHINES_PROGRAM_BUILDER_H
