#include "machines/counter_machine.h"

#include <stdexcept>

#include "core/require.h"

namespace popproto {

void CounterProgram::validate() const {
    require(!instructions.empty(), "CounterProgram: empty program");
    require(num_counters > 0, "CounterProgram: no counters");
    for (const CounterInstruction& instruction : instructions) {
        switch (instruction.op) {
            case CounterInstruction::Op::kInc:
            case CounterInstruction::Op::kDec:
                require(instruction.counter < num_counters,
                        "CounterProgram: counter operand out of range");
                break;
            case CounterInstruction::Op::kJumpIfZero:
                require(instruction.counter < num_counters,
                        "CounterProgram: counter operand out of range");
                require(instruction.target < instructions.size(),
                        "CounterProgram: jump target out of range");
                break;
            case CounterInstruction::Op::kJump:
                require(instruction.target < instructions.size(),
                        "CounterProgram: jump target out of range");
                break;
            case CounterInstruction::Op::kHalt:
                break;
        }
    }
}

std::string CounterProgram::to_string() const {
    std::string text;
    for (std::size_t pc = 0; pc < instructions.size(); ++pc) {
        const CounterInstruction& instruction = instructions[pc];
        text += std::to_string(pc) + ": ";
        switch (instruction.op) {
            case CounterInstruction::Op::kInc:
                text += "inc c" + std::to_string(instruction.counter);
                break;
            case CounterInstruction::Op::kDec:
                text += "dec c" + std::to_string(instruction.counter);
                break;
            case CounterInstruction::Op::kJumpIfZero:
                text += "jz  c" + std::to_string(instruction.counter) + " -> " +
                        std::to_string(instruction.target);
                break;
            case CounterInstruction::Op::kJump:
                text += "jmp -> " + std::to_string(instruction.target);
                break;
            case CounterInstruction::Op::kHalt:
                text += "halt " + std::to_string(instruction.target);
                break;
        }
        text += "\n";
    }
    return text;
}

CounterExecution run_counter_machine(const CounterProgram& program,
                                     std::vector<std::uint64_t> initial_counters,
                                     std::uint64_t max_steps) {
    program.validate();
    require(initial_counters.size() == program.num_counters,
            "run_counter_machine: wrong number of initial counters");

    CounterExecution execution;
    execution.counters = std::move(initial_counters);

    std::uint32_t pc = 0;
    while (execution.steps < max_steps) {
        const CounterInstruction& instruction = program.instructions[pc];
        ++execution.steps;
        switch (instruction.op) {
            case CounterInstruction::Op::kInc:
                ++execution.counters[instruction.counter];
                ++pc;
                break;
            case CounterInstruction::Op::kDec:
                if (execution.counters[instruction.counter] == 0)
                    throw std::runtime_error("run_counter_machine: decrement of zero counter");
                --execution.counters[instruction.counter];
                ++pc;
                break;
            case CounterInstruction::Op::kJumpIfZero:
                pc = (execution.counters[instruction.counter] == 0) ? instruction.target : pc + 1;
                break;
            case CounterInstruction::Op::kJump:
                pc = instruction.target;
                break;
            case CounterInstruction::Op::kHalt:
                execution.halted = true;
                execution.exit_code = instruction.target;
                return execution;
        }
        ensure(pc < program.instructions.size(), "run_counter_machine: fell off the program");
    }
    return execution;
}

}  // namespace popproto
