#include "machines/minsky.h"

#include "core/require.h"
#include "machines/program_builder.h"

namespace popproto {

std::vector<std::uint64_t> MinskyProgram::initial_counters(
    const std::vector<std::uint32_t>& input) const {
    return {0, encode_tape(input, base), 0};
}

std::uint64_t encode_tape(const std::vector<std::uint32_t>& symbols, std::uint32_t base) {
    require(base >= 2, "encode_tape: base must be at least 2");
    std::uint64_t value = 0;
    for (std::size_t i = symbols.size(); i-- > 0;) {
        require(symbols[i] < base, "encode_tape: symbol out of range");
        value = value * base + symbols[i];
    }
    return value;
}

std::vector<std::uint32_t> decode_tape(std::uint64_t value, std::uint32_t base) {
    require(base >= 2, "decode_tape: base must be at least 2");
    std::vector<std::uint32_t> symbols;
    while (value != 0) {
        symbols.push_back(static_cast<std::uint32_t>(value % base));
        value /= base;
    }
    return symbols;
}

MinskyProgram compile_turing_machine(const TuringMachine& machine) {
    machine.validate();
    const std::uint32_t base = machine.num_symbols;
    constexpr std::uint32_t kL = MinskyProgram::kLeftCounter;
    constexpr std::uint32_t kR = MinskyProgram::kRightCounter;
    constexpr std::uint32_t kAux = MinskyProgram::kAuxCounter;

    ProgramBuilder builder(3);

    // One entry label per TM state; accept/reject states become halts.
    std::vector<Label> state_entry(machine.num_states);
    for (std::uint32_t s = 0; s < machine.num_states; ++s) state_entry[s] = builder.make_label();

    builder.jump(state_entry[machine.initial_state]);

    for (std::uint32_t s = 0; s < machine.num_states; ++s) {
        builder.place(state_entry[s]);
        if (s == machine.accept_state) {
            builder.halt(MinskyProgram::kAcceptExitCode);
            continue;
        }
        if (s == machine.reject_state) {
            builder.halt(MinskyProgram::kRejectExitCode);
            continue;
        }

        // Pop the current symbol off R; control branches per symbol.
        const std::vector<Label> cases = builder.emit_divmod(kR, base, kAux);
        for (std::uint32_t symbol = 0; symbol < base; ++symbol) {
            builder.place(cases[symbol]);
            const TuringRule& rule = machine.rule(s, symbol);
            switch (rule.move) {
                case Move::kRight:
                    // The written symbol lands immediately left of the new
                    // head position: push onto L.
                    builder.emit_multiply(kL, base, kAux);
                    builder.emit_add(kL, rule.write);
                    break;
                case Move::kLeft:
                    // Push the written symbol back onto R, then pop L and
                    // push that cell onto R as the new current symbol.
                    builder.emit_multiply(kR, base, kAux);
                    builder.emit_add(kR, rule.write);
                    {
                        const std::vector<Label> left_cases =
                            builder.emit_divmod(kL, base, kAux);
                        const Label join = builder.make_label();
                        for (std::uint32_t cell = 0; cell < base; ++cell) {
                            builder.place(left_cases[cell]);
                            builder.emit_multiply(kR, base, kAux);
                            builder.emit_add(kR, cell);
                            builder.jump(join);
                        }
                        builder.place(join);
                    }
                    break;
                case Move::kStay:
                    builder.emit_multiply(kR, base, kAux);
                    builder.emit_add(kR, rule.write);
                    break;
            }
            builder.jump(state_entry[rule.next_state]);
        }
    }

    MinskyProgram result;
    result.program = builder.build();
    result.base = base;
    return result;
}

}  // namespace popproto
