// Single-tape Turing machines (the source model of Theorem 10).
//
// Symbol 0 is the blank.  The machine halts by entering the accept or reject
// state.  run_turing_machine is the deterministic reference executor; the
// Minsky reduction (minsky.h) compiles the same machine to a counter
// program, and Theorem 10 runs that program on a population.

#ifndef POPPROTO_MACHINES_TURING_MACHINE_H
#define POPPROTO_MACHINES_TURING_MACHINE_H

#include <cstdint>
#include <vector>

namespace popproto {

/// Head movement.
enum class Move : std::int8_t { kLeft = -1, kStay = 0, kRight = 1 };

/// One transition rule.
struct TuringRule {
    std::uint32_t write = 0;
    Move move = Move::kStay;
    std::uint32_t next_state = 0;
};

struct TuringMachine {
    std::uint32_t num_states = 0;
    std::uint32_t num_symbols = 2;  ///< symbol 0 is blank
    std::uint32_t initial_state = 0;
    std::uint32_t accept_state = 0;
    std::uint32_t reject_state = 0;

    /// rules[state * num_symbols + symbol]; entries for accept/reject states
    /// are ignored.
    std::vector<TuringRule> rules;

    void validate() const;
    const TuringRule& rule(std::uint32_t state, std::uint32_t symbol) const;
};

struct TuringExecution {
    bool halted = false;
    bool accepted = false;
    std::uint64_t steps = 0;
    /// Tape contents from the leftmost to the rightmost visited cell.
    std::vector<std::uint32_t> tape;
};

/// Runs `machine` on `input` (head starts on input[0]) for at most
/// `max_steps` steps.
TuringExecution run_turing_machine(const TuringMachine& machine,
                                   const std::vector<std::uint32_t>& input,
                                   std::uint64_t max_steps);

}  // namespace popproto

#endif  // POPPROTO_MACHINES_TURING_MACHINE_H
