// Minsky's Turing-machine-to-counter-machine reduction (Theorem 10).
//
// The tape is split into two stacks Goedel-coded in base b = num_symbols:
// counter L holds the cells left of the head (top digit = the cell
// immediately to the left) and counter R holds the current cell and
// everything to its right (top digit = the current cell).  Because blank is
// symbol 0, the infinitely blank tape ends are exactly the leading zeros of
// the encodings.  Pushing a symbol x is c := c * b + x (the paper's product
// loop); popping is c := floor(c / b) with the remainder recovered in the
// finite control (the paper's quotient loop).  One auxiliary counter serves
// both loops, for a total of three counters.

#ifndef POPPROTO_MACHINES_MINSKY_H
#define POPPROTO_MACHINES_MINSKY_H

#include <cstdint>
#include <vector>

#include "machines/counter_machine.h"
#include "machines/turing_machine.h"

namespace popproto {

/// A compiled Turing machine.
struct MinskyProgram {
    static constexpr std::uint32_t kLeftCounter = 0;
    static constexpr std::uint32_t kRightCounter = 1;
    static constexpr std::uint32_t kAuxCounter = 2;
    static constexpr std::uint32_t kAcceptExitCode = 1;
    static constexpr std::uint32_t kRejectExitCode = 0;

    CounterProgram program;
    std::uint32_t base = 2;  ///< Goedel base = num_symbols of the source TM

    /// Initial counter values (L, R, aux) for a given tape input with the
    /// head on input[0].
    std::vector<std::uint64_t> initial_counters(const std::vector<std::uint32_t>& input) const;
};

/// Compiles `machine` into a 3-counter program whose exit code is
/// kAcceptExitCode iff the machine accepts.
MinskyProgram compile_turing_machine(const TuringMachine& machine);

/// Goedel encoding of a tape suffix: symbols[0] is the top digit.
std::uint64_t encode_tape(const std::vector<std::uint32_t>& symbols, std::uint32_t base);

/// Inverse of encode_tape, without trailing blanks.
std::vector<std::uint32_t> decode_tape(std::uint64_t value, std::uint32_t base);

}  // namespace popproto

#endif  // POPPROTO_MACHINES_MINSKY_H
