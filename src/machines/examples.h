// Example machines used by tests, benches, and the example applications.
//
// The Turing machines read unary inputs (symbol 1 repeated x times), which
// is exactly the Theorem 10 setting: logspace functions of inputs presented
// in unary.

#ifndef POPPROTO_MACHINES_EXAMPLES_H
#define POPPROTO_MACHINES_EXAMPLES_H

#include <cstdint>

#include "machines/counter_machine.h"
#include "machines/turing_machine.h"

namespace popproto {

/// Unary-mod machine: accepts iff the number of 1 symbols on the tape is
/// congruent to 0 modulo `modulus` (modulus >= 2).  make_unary_mod(2) is the
/// parity machine.  Runs in one left-to-right scan (logspace: O(1) work
/// tape would suffice).
TuringMachine make_unary_mod_turing_machine(std::uint32_t modulus);

/// Unary-threshold machine: accepts iff the tape holds at least `threshold`
/// 1-symbols (threshold >= 1); a single rightward scan with a counter in the
/// finite control.  The TM counterpart of the flock-of-birds predicate.
TuringMachine make_unary_threshold_turing_machine(std::uint32_t threshold);

/// Unary-comparison machine over symbols {blank, a, b}: accepts iff the tape
/// holds a block of a's followed by a block of b's with strictly more a's
/// than b's.  Repeatedly crosses off one a and one b (a genuinely
/// two-directional machine, exercising left moves in the Minsky reduction).
TuringMachine make_unary_majority_turing_machine();

/// Counter program: c0 := c0 * factor (via c1), then halt with exit code 0.
CounterProgram make_multiply_program(std::uint32_t factor);

/// Counter program: c1 := floor(c0 / divisor), c0 := c0 mod divisor, halt
/// with exit code = remainder.
CounterProgram make_divmod_program(std::uint32_t divisor);

/// Counter program: drains c0 to zero and halts with exit code 0.
CounterProgram make_countdown_program();

}  // namespace popproto

#endif  // POPPROTO_MACHINES_EXAMPLES_H
