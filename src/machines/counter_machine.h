// Counter (register) machines (Sect. 6.1).
//
// A counter machine has O(1) non-negative counters and a finite program of
// increment, decrement, zero-test-jump, jump, and halt instructions.  The
// paper simulates such machines with a leader-driven population protocol
// (Theorem 9) and uses Minsky's reduction to lift the simulation to Turing
// machines (Theorem 10).  This header defines the machine and a
// deterministic reference executor against which the randomized population
// runtime is validated.

#ifndef POPPROTO_MACHINES_COUNTER_MACHINE_H
#define POPPROTO_MACHINES_COUNTER_MACHINE_H

#include <cstdint>
#include <string>
#include <vector>

namespace popproto {

/// One counter-machine instruction.
struct CounterInstruction {
    enum class Op : std::uint8_t {
        kInc,         ///< counters[counter] += 1
        kDec,         ///< counters[counter] -= 1; counter must be positive
        kJumpIfZero,  ///< if counters[counter] == 0 jump to `target`
        kJump,        ///< unconditional jump to `target`
        kHalt,        ///< stop with exit code `target`
    };

    Op op = Op::kHalt;
    std::uint32_t counter = 0;  ///< operand counter (kInc/kDec/kJumpIfZero)
    std::uint32_t target = 0;   ///< jump destination, or exit code for kHalt
};

/// A complete program over `num_counters` counters.
struct CounterProgram {
    std::uint32_t num_counters = 0;
    std::vector<CounterInstruction> instructions;

    /// Throws std::invalid_argument if any operand or jump target is out of
    /// range or the program is empty.
    void validate() const;

    /// Disassembly for debugging.
    std::string to_string() const;
};

/// Result of a deterministic execution.
struct CounterExecution {
    bool halted = false;          ///< false = step budget exhausted
    std::uint32_t exit_code = 0;  ///< kHalt operand, when halted
    std::vector<std::uint64_t> counters;
    std::uint64_t steps = 0;
};

/// Runs `program` from `initial_counters` for at most `max_steps`
/// instructions.  Throws std::runtime_error on a decrement of a zero counter
/// (programs are expected to guard decrements with zero tests).
CounterExecution run_counter_machine(const CounterProgram& program,
                                     std::vector<std::uint64_t> initial_counters,
                                     std::uint64_t max_steps);

}  // namespace popproto

#endif  // POPPROTO_MACHINES_COUNTER_MACHINE_H
