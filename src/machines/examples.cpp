#include "machines/examples.h"

#include "core/require.h"
#include "machines/program_builder.h"

namespace popproto {

TuringMachine make_unary_mod_turing_machine(std::uint32_t modulus) {
    require(modulus >= 2, "make_unary_mod_turing_machine: modulus must be at least 2");
    TuringMachine machine;
    machine.num_symbols = 2;  // blank, one
    machine.num_states = modulus + 2;
    machine.initial_state = 0;
    machine.accept_state = modulus;
    machine.reject_state = modulus + 1;
    machine.rules.resize(static_cast<std::size_t>(machine.num_states) * machine.num_symbols);
    for (std::uint32_t r = 0; r < modulus; ++r) {
        // On a one: count it (mod m) and keep scanning right.
        machine.rules[r * 2 + 1] = TuringRule{1, Move::kRight, (r + 1) % modulus};
        // On blank: the scan is over; accept iff the count is 0 mod m.
        machine.rules[r * 2 + 0] =
            TuringRule{0, Move::kStay, r == 0 ? machine.accept_state : machine.reject_state};
    }
    return machine;
}

TuringMachine make_unary_threshold_turing_machine(std::uint32_t threshold) {
    require(threshold >= 1, "make_unary_threshold_turing_machine: threshold must be positive");
    // States 0..threshold-1 count 1-symbols seen; state threshold = accept,
    // threshold + 1 = reject.
    TuringMachine machine;
    machine.num_symbols = 2;
    machine.num_states = threshold + 2;
    machine.initial_state = 0;
    machine.accept_state = threshold;
    machine.reject_state = threshold + 1;
    machine.rules.resize(static_cast<std::size_t>(machine.num_states) * machine.num_symbols);
    for (std::uint32_t seen = 0; seen < threshold; ++seen) {
        machine.rules[seen * 2 + 1] = TuringRule{1, Move::kRight, seen + 1};
        machine.rules[seen * 2 + 0] = TuringRule{0, Move::kStay, machine.reject_state};
    }
    return machine;
}

TuringMachine make_unary_majority_turing_machine() {
    // Symbols: 0 = blank, 1 = 'a', 2 = 'b', 3 = crossed off.
    // States: 0 = find an a, 1 = find a b, 2 = rewind, 3 = accept, 4 = reject.
    TuringMachine machine;
    machine.num_symbols = 4;
    machine.num_states = 5;
    machine.initial_state = 0;
    machine.accept_state = 3;
    machine.reject_state = 4;
    machine.rules.resize(static_cast<std::size_t>(machine.num_states) * machine.num_symbols);

    const auto set = [&](std::uint32_t state, std::uint32_t symbol, TuringRule rule) {
        machine.rules[state * machine.num_symbols + symbol] = rule;
    };

    // State 0: scan right for an uncrossed a.
    set(0, 0, {0, Move::kStay, 4});   // blank: everything paired, a's not in excess
    set(0, 1, {3, Move::kRight, 1});  // cross off the a, go find a b
    set(0, 2, {2, Move::kStay, 4});   // a's exhausted before b's
    set(0, 3, {3, Move::kRight, 0});  // skip crossed cells

    // State 1: scan right for an uncrossed b.
    set(1, 0, {0, Move::kStay, 3});   // no b left for our extra a: majority!
    set(1, 1, {1, Move::kRight, 1});  // skip remaining a's
    set(1, 2, {3, Move::kLeft, 2});   // cross off the b, rewind
    set(1, 3, {3, Move::kRight, 1});  // skip crossed cells

    // State 2: rewind to the left end (first blank), then restart.
    set(2, 0, {0, Move::kRight, 0});
    set(2, 1, {1, Move::kLeft, 2});
    set(2, 2, {2, Move::kLeft, 2});
    set(2, 3, {3, Move::kLeft, 2});

    return machine;
}

CounterProgram make_multiply_program(std::uint32_t factor) {
    ProgramBuilder builder(2);
    builder.emit_multiply(0, factor, 1);
    builder.halt(0);
    return builder.build();
}

CounterProgram make_divmod_program(std::uint32_t divisor) {
    ProgramBuilder builder(3);
    const std::vector<Label> cases = builder.emit_divmod(0, divisor, 2);
    for (std::uint32_t remainder = 0; remainder < divisor; ++remainder) {
        builder.place(cases[remainder]);
        builder.emit_transfer(0, 1);         // quotient into c1
        builder.emit_add(0, remainder);      // remainder back into c0
        builder.halt(remainder);
    }
    return builder.build();
}

CounterProgram make_countdown_program() {
    ProgramBuilder builder(1);
    const Label loop = builder.make_label();
    const Label done = builder.make_label();
    builder.place(loop);
    builder.jump_if_zero(0, done);
    builder.dec(0);
    builder.jump(loop);
    builder.place(done);
    builder.halt(0);
    return builder.build();
}

}  // namespace popproto
