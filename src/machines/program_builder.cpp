#include "machines/program_builder.h"

#include "core/require.h"

namespace popproto {

ProgramBuilder::ProgramBuilder(std::uint32_t num_counters) : num_counters_(num_counters) {
    require(num_counters > 0, "ProgramBuilder: no counters");
}

Label ProgramBuilder::make_label() {
    label_positions_.push_back(-1);
    return static_cast<Label>(label_positions_.size() - 1);
}

void ProgramBuilder::place(Label label) {
    require(label < label_positions_.size(), "ProgramBuilder::place: unknown label");
    require(label_positions_[label] < 0, "ProgramBuilder::place: label placed twice");
    label_positions_[label] = static_cast<std::int64_t>(instructions_.size());
}

void ProgramBuilder::inc(std::uint32_t counter) {
    require(counter < num_counters_, "ProgramBuilder::inc: counter out of range");
    instructions_.push_back({CounterInstruction::Op::kInc, counter, 0});
}

void ProgramBuilder::dec(std::uint32_t counter) {
    require(counter < num_counters_, "ProgramBuilder::dec: counter out of range");
    instructions_.push_back({CounterInstruction::Op::kDec, counter, 0});
}

void ProgramBuilder::jump_if_zero(std::uint32_t counter, Label target) {
    require(counter < num_counters_, "ProgramBuilder::jump_if_zero: counter out of range");
    fixups_.emplace_back(static_cast<std::uint32_t>(instructions_.size()), target);
    instructions_.push_back({CounterInstruction::Op::kJumpIfZero, counter, 0});
}

void ProgramBuilder::jump(Label target) {
    fixups_.emplace_back(static_cast<std::uint32_t>(instructions_.size()), target);
    instructions_.push_back({CounterInstruction::Op::kJump, 0, 0});
}

void ProgramBuilder::halt(std::uint32_t exit_code) {
    instructions_.push_back({CounterInstruction::Op::kHalt, 0, exit_code});
}

void ProgramBuilder::emit_transfer(std::uint32_t from, std::uint32_t to) {
    const Label loop = make_label();
    const Label done = make_label();
    place(loop);
    jump_if_zero(from, done);
    dec(from);
    inc(to);
    jump(loop);
    place(done);
}

void ProgramBuilder::emit_multiply(std::uint32_t counter, std::uint32_t factor,
                                   std::uint32_t aux) {
    require(counter != aux, "ProgramBuilder::emit_multiply: counter and aux must differ");
    const Label loop = make_label();
    const Label done = make_label();
    place(loop);
    jump_if_zero(counter, done);
    dec(counter);
    for (std::uint32_t i = 0; i < factor; ++i) inc(aux);
    jump(loop);
    place(done);
    emit_transfer(aux, counter);
}

void ProgramBuilder::emit_add(std::uint32_t counter, std::uint32_t addend) {
    for (std::uint32_t i = 0; i < addend; ++i) inc(counter);
}

std::vector<Label> ProgramBuilder::emit_divmod(std::uint32_t counter, std::uint32_t base,
                                               std::uint32_t aux) {
    require(base >= 2, "ProgramBuilder::emit_divmod: base must be at least 2");
    require(counter != aux, "ProgramBuilder::emit_divmod: counter and aux must differ");

    std::vector<Label> remainder_cases(base);
    std::vector<Label> found(base);
    for (std::uint32_t r = 0; r < base; ++r) {
        remainder_cases[r] = make_label();
        found[r] = make_label();
    }

    const Label round = make_label();
    place(round);
    for (std::uint32_t r = 0; r < base; ++r) {
        jump_if_zero(counter, found[r]);
        dec(counter);
    }
    inc(aux);
    jump(round);

    for (std::uint32_t r = 0; r < base; ++r) {
        place(found[r]);
        // counter == 0 and aux holds the quotient: restore it, then continue
        // at the caller's per-remainder code.
        emit_transfer(aux, counter);
        jump(remainder_cases[r]);
    }
    return remainder_cases;
}

CounterProgram ProgramBuilder::build() {
    for (const auto& [pc, label] : fixups_) {
        require(label < label_positions_.size(), "ProgramBuilder::build: unknown label");
        require(label_positions_[label] >= 0, "ProgramBuilder::build: unbound label");
        instructions_[pc].target = static_cast<std::uint32_t>(label_positions_[label]);
    }
    CounterProgram program;
    program.num_counters = num_counters_;
    program.instructions = instructions_;
    program.validate();
    return program;
}

}  // namespace popproto
