#include "machines/turing_machine.h"

#include <deque>

#include "core/require.h"

namespace popproto {

void TuringMachine::validate() const {
    require(num_states > 0, "TuringMachine: no states");
    require(num_symbols >= 2, "TuringMachine: need blank plus one symbol");
    require(initial_state < num_states, "TuringMachine: initial state out of range");
    require(accept_state < num_states, "TuringMachine: accept state out of range");
    require(reject_state < num_states, "TuringMachine: reject state out of range");
    require(accept_state != reject_state, "TuringMachine: accept and reject must differ");
    require(rules.size() == static_cast<std::size_t>(num_states) * num_symbols,
            "TuringMachine: rule table must have num_states * num_symbols entries");
    for (const TuringRule& rule : rules) {
        require(rule.write < num_symbols, "TuringMachine: written symbol out of range");
        require(rule.next_state < num_states, "TuringMachine: next state out of range");
    }
}

const TuringRule& TuringMachine::rule(std::uint32_t state, std::uint32_t symbol) const {
    require(state < num_states && symbol < num_symbols, "TuringMachine::rule: out of range");
    return rules[static_cast<std::size_t>(state) * num_symbols + symbol];
}

TuringExecution run_turing_machine(const TuringMachine& machine,
                                   const std::vector<std::uint32_t>& input,
                                   std::uint64_t max_steps) {
    machine.validate();
    for (std::uint32_t symbol : input)
        require(symbol < machine.num_symbols, "run_turing_machine: input symbol out of range");

    std::deque<std::uint32_t> tape(input.begin(), input.end());
    if (tape.empty()) tape.push_back(0);
    std::size_t head = 0;
    std::uint32_t state = machine.initial_state;

    TuringExecution execution;
    while (execution.steps < max_steps) {
        if (state == machine.accept_state || state == machine.reject_state) {
            execution.halted = true;
            execution.accepted = (state == machine.accept_state);
            break;
        }
        const TuringRule& rule = machine.rule(state, tape[head]);
        tape[head] = rule.write;
        state = rule.next_state;
        ++execution.steps;
        switch (rule.move) {
            case Move::kLeft:
                if (head == 0) {
                    tape.push_front(0);
                } else {
                    --head;
                }
                break;
            case Move::kRight:
                ++head;
                if (head == tape.size()) tape.push_back(0);
                break;
            case Move::kStay:
                break;
        }
    }
    if (!execution.halted &&
        (state == machine.accept_state || state == machine.reject_state)) {
        execution.halted = true;
        execution.accepted = (state == machine.accept_state);
    }
    execution.tape.assign(tape.begin(), tape.end());
    return execution;
}

}  // namespace popproto
