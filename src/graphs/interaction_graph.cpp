#include "graphs/interaction_graph.h"

#include <deque>

#include "core/require.h"
#include "core/rng.h"

namespace popproto {

InteractionGraph::InteractionGraph(std::uint32_t num_agents) : num_agents_(num_agents) {
    require(num_agents >= 1, "InteractionGraph: empty population");
}

void InteractionGraph::add_edge(std::uint32_t initiator, std::uint32_t responder) {
    require(initiator < num_agents_ && responder < num_agents_,
            "InteractionGraph::add_edge: agent out of range");
    require(initiator != responder, "InteractionGraph::add_edge: edges must be irreflexive");
    edges_.emplace_back(initiator, responder);
}

bool InteractionGraph::is_weakly_connected() const {
    if (num_agents_ == 1) return true;
    std::vector<std::vector<std::uint32_t>> adjacency(num_agents_);
    for (const Edge& edge : edges_) {
        adjacency[edge.first].push_back(edge.second);
        adjacency[edge.second].push_back(edge.first);
    }
    std::vector<bool> seen(num_agents_, false);
    std::deque<std::uint32_t> queue{0};
    seen[0] = true;
    std::uint32_t visited = 1;
    while (!queue.empty()) {
        const std::uint32_t u = queue.front();
        queue.pop_front();
        for (std::uint32_t v : adjacency[u]) {
            if (!seen[v]) {
                seen[v] = true;
                ++visited;
                queue.push_back(v);
            }
        }
    }
    return visited == num_agents_;
}

InteractionGraph InteractionGraph::complete(std::uint32_t num_agents) {
    InteractionGraph graph(num_agents);
    for (std::uint32_t u = 0; u < num_agents; ++u)
        for (std::uint32_t v = 0; v < num_agents; ++v)
            if (u != v) graph.add_edge(u, v);
    return graph;
}

InteractionGraph InteractionGraph::line(std::uint32_t num_agents) {
    InteractionGraph graph(num_agents);
    for (std::uint32_t u = 0; u + 1 < num_agents; ++u) {
        graph.add_edge(u, u + 1);
        graph.add_edge(u + 1, u);
    }
    return graph;
}

InteractionGraph InteractionGraph::ring(std::uint32_t num_agents) {
    require(num_agents >= 3, "InteractionGraph::ring: need at least 3 agents");
    InteractionGraph graph(num_agents);
    for (std::uint32_t u = 0; u < num_agents; ++u) {
        const std::uint32_t v = (u + 1) % num_agents;
        graph.add_edge(u, v);
        graph.add_edge(v, u);
    }
    return graph;
}

InteractionGraph InteractionGraph::star(std::uint32_t num_agents) {
    require(num_agents >= 2, "InteractionGraph::star: need at least 2 agents");
    InteractionGraph graph(num_agents);
    for (std::uint32_t leaf = 1; leaf < num_agents; ++leaf) {
        graph.add_edge(0, leaf);
        graph.add_edge(leaf, 0);
    }
    return graph;
}

InteractionGraph InteractionGraph::grid(std::uint32_t rows, std::uint32_t columns) {
    require(rows >= 1 && columns >= 1, "InteractionGraph::grid: empty grid");
    require(static_cast<std::uint64_t>(rows) * columns >= 2,
            "InteractionGraph::grid: need at least two agents");
    InteractionGraph graph(rows * columns);
    const auto id = [columns](std::uint32_t r, std::uint32_t c) { return r * columns + c; };
    for (std::uint32_t r = 0; r < rows; ++r) {
        for (std::uint32_t c = 0; c < columns; ++c) {
            if (c + 1 < columns) {
                graph.add_edge(id(r, c), id(r, c + 1));
                graph.add_edge(id(r, c + 1), id(r, c));
            }
            if (r + 1 < rows) {
                graph.add_edge(id(r, c), id(r + 1, c));
                graph.add_edge(id(r + 1, c), id(r, c));
            }
        }
    }
    return graph;
}

InteractionGraph InteractionGraph::random_connected(std::uint32_t num_agents,
                                                    std::uint32_t extra_edges,
                                                    std::uint64_t seed) {
    require(num_agents >= 2, "InteractionGraph::random_connected: need at least 2 agents");
    InteractionGraph graph(num_agents);
    Rng rng(seed);
    // Random spanning tree: attach each new agent to a uniformly random
    // earlier agent.
    for (std::uint32_t u = 1; u < num_agents; ++u) {
        const auto parent = static_cast<std::uint32_t>(rng.below(u));
        graph.add_edge(parent, u);
        graph.add_edge(u, parent);
    }
    for (std::uint32_t k = 0; k < extra_edges; ++k) {
        const auto u = static_cast<std::uint32_t>(rng.below(num_agents));
        auto v = static_cast<std::uint32_t>(rng.below(num_agents - 1));
        if (v >= u) ++v;
        graph.add_edge(u, v);
        graph.add_edge(v, u);
    }
    return graph;
}

}  // namespace popproto
