// Interaction graphs (Sect. 3.1, Sect. 5).
//
// A population is an agent set with an irreflexive directed edge relation E;
// edge (u, v) means u may initiate an interaction with v.  The complete
// graph is the default model; Theorem 7 concerns arbitrary weakly-connected
// graphs, for which this module provides generators and a connectivity test.

#ifndef POPPROTO_GRAPHS_INTERACTION_GRAPH_H
#define POPPROTO_GRAPHS_INTERACTION_GRAPH_H

#include <cstdint>
#include <utility>
#include <vector>

namespace popproto {

/// Directed edge: (initiator agent, responder agent).
using Edge = std::pair<std::uint32_t, std::uint32_t>;

class InteractionGraph {
public:
    /// Graph on agents 0..num_agents-1 with no edges.
    explicit InteractionGraph(std::uint32_t num_agents);

    std::uint32_t num_agents() const { return num_agents_; }

    /// Adds directed edge (initiator, responder); must be irreflexive and
    /// within range.  Duplicate edges are permitted but pointless.
    void add_edge(std::uint32_t initiator, std::uint32_t responder);

    const std::vector<Edge>& edges() const { return edges_; }

    /// True iff the underlying undirected graph is connected (and the
    /// population is nonempty).  Theorem 7 requires weak connectivity.
    bool is_weakly_connected() const;

    // Generators ------------------------------------------------------------

    /// All ordered pairs of distinct agents (the standard population).
    static InteractionGraph complete(std::uint32_t num_agents);

    /// Path 0 - 1 - ... - (n-1); bidirectional edges.
    static InteractionGraph line(std::uint32_t num_agents);

    /// Cycle on n agents; bidirectional edges.
    static InteractionGraph ring(std::uint32_t num_agents);

    /// Star with center 0; bidirectional edges.
    static InteractionGraph star(std::uint32_t num_agents);

    /// rows x columns grid (the classic planar sensor deployment);
    /// bidirectional edges between 4-neighbors.  Population = rows * columns.
    static InteractionGraph grid(std::uint32_t rows, std::uint32_t columns);

    /// Random connected graph: a random spanning tree plus `extra_edges`
    /// random edges, all bidirectional.
    static InteractionGraph random_connected(std::uint32_t num_agents, std::uint32_t extra_edges,
                                             std::uint64_t seed);

private:
    std::uint32_t num_agents_;
    std::vector<Edge> edges_;
};

}  // namespace popproto

#endif  // POPPROTO_GRAPHS_INTERACTION_GRAPH_H
