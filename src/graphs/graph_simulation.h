// Theorem 7: the complete graph is the weakest interaction graph.
//
// make_graph_simulation_protocol implements the Fig. 1 construction: from
// any protocol A it builds A' over states Q x {D, S, R, -} such that A'
// stably computes the same predicate on every weakly-connected interaction
// graph.  Simulated A-agents migrate via state swaps; two batons S and R
// (distilled from the initial D marks) select which encounter performs a
// real A-transition.
//
// simulate_on_graph runs any protocol on an arbitrary interaction graph with
// uniform random edge activation (the natural randomized scheduler for
// restricted graphs).

#ifndef POPPROTO_GRAPHS_GRAPH_SIMULATION_H
#define POPPROTO_GRAPHS_GRAPH_SIMULATION_H

#include <cstdint>
#include <memory>
#include <optional>

#include "core/configuration.h"
#include "core/simulator.h"
#include "core/tabulated_protocol.h"
#include "graphs/interaction_graph.h"

namespace popproto {

/// Baton field values of the Theorem 7 construction.
enum class Baton : std::uint32_t { kD = 0, kS = 1, kR = 2, kBlank = 3 };

/// Builds A' from `base` (Fig. 1).  States are (q, baton) pairs; inputs map
/// to (I(x), D); the output of (q, b) is O(q).
std::unique_ptr<TabulatedProtocol> make_graph_simulation_protocol(const Protocol& base);

/// Decodes the baton field of a simulation-protocol state.
Baton baton_of(const Protocol& base, State simulation_state);

/// Decodes the embedded base state of a simulation-protocol state.
State base_state_of(const Protocol& base, State simulation_state);

/// Result of a run on an explicit interaction graph.
struct GraphRunResult {
    AgentConfiguration final_configuration;
    StopReason stop_reason = StopReason::kBudget;
    std::uint64_t interactions = 0;
    std::uint64_t effective_interactions = 0;
    std::uint64_t last_output_change = 0;
    std::optional<Symbol> consensus;
};

/// Runs `protocol` from per-agent `inputs` on `graph`, activating a uniformly
/// random edge at each step.  Graph protocols generally never become silent
/// (group (d) swaps fire forever), so termination relies on
/// options.stop_after_stable_outputs and options.max_interactions (0 resolves
/// to default_budget(n), like every engine); the silence-related options are
/// ignored.  Runs on the shared run-loop kernel (core/run_loop.h), so
/// checkpoint/resume and observers work exactly as on the complete-graph
/// engines.  Requires options.engine == kAuto.
GraphRunResult simulate_on_graph(const TabulatedProtocol& protocol,
                                 const InteractionGraph& graph,
                                 const std::vector<Symbol>& inputs, const RunOptions& options);

}  // namespace popproto

#endif  // POPPROTO_GRAPHS_GRAPH_SIMULATION_H
