#include "graphs/graph_analysis.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "core/require.h"

namespace popproto {

namespace {

struct VectorHash {
    std::size_t operator()(const std::vector<State>& states) const noexcept {
        std::size_t hash = 1469598103934665603ULL;
        for (State q : states) {
            hash ^= q + 0x9e3779b97f4a7c15ULL;
            hash *= 1099511628211ULL;
        }
        return hash;
    }
};

}  // namespace

StableComputationResult analyze_graph_stable_computation(const TabulatedProtocol& protocol,
                                                         const InteractionGraph& graph,
                                                         const std::vector<Symbol>& inputs,
                                                         std::size_t max_configs) {
    require(inputs.size() == graph.num_agents(),
            "analyze_graph_stable_computation: one input per agent required");
    require(!graph.edges().empty(), "analyze_graph_stable_computation: graph has no edges");

    std::vector<State> initial;
    initial.reserve(inputs.size());
    for (Symbol x : inputs) initial.push_back(protocol.initial_state(x));

    std::vector<std::vector<State>> configs;
    std::vector<std::vector<ConfigId>> successors;
    std::unordered_map<std::vector<State>, ConfigId, VectorHash> index;

    const auto intern = [&](const std::vector<State>& config) -> ConfigId {
        auto it = index.find(config);
        if (it != index.end()) return it->second;
        const auto id = static_cast<ConfigId>(configs.size());
        index.emplace(config, id);
        configs.push_back(config);
        successors.emplace_back();
        return id;
    };

    intern(initial);
    std::deque<ConfigId> frontier{0};
    while (!frontier.empty()) {
        const ConfigId current = frontier.front();
        frontier.pop_front();
        const std::vector<State> config = configs[current];  // copy: vector may relocate
        std::vector<ConfigId> out_edges;
        for (const Edge& edge : graph.edges()) {
            const State p = config[edge.first];
            const State q = config[edge.second];
            const StatePair next = protocol.apply_fast(p, q);
            if (next.initiator == p && next.responder == q) continue;
            std::vector<State> successor = config;
            successor[edge.first] = next.initiator;
            successor[edge.second] = next.responder;
            const bool is_new = index.find(successor) == index.end();
            const ConfigId succ_id = intern(successor);
            if (succ_id != current) out_edges.push_back(succ_id);
            if (is_new) {
                if (configs.size() > max_configs)
                    throw std::runtime_error(
                        "analyze_graph_stable_computation: reachable set exceeds max_configs");
                frontier.push_back(succ_id);
            }
        }
        std::sort(out_edges.begin(), out_edges.end());
        out_edges.erase(std::unique(out_edges.begin(), out_edges.end()), out_edges.end());
        successors[current] = std::move(out_edges);
    }

    std::vector<OutputSignature> signatures;
    signatures.reserve(configs.size());
    for (const std::vector<State>& config : configs) {
        OutputSignature signature(protocol.num_output_symbols(), 0);
        for (State q : config) ++signature[protocol.output_fast(q)];
        signatures.push_back(std::move(signature));
    }
    return summarize_stable_computation(successors, signatures);
}

bool graph_stably_computes_bool(const TabulatedProtocol& protocol, const InteractionGraph& graph,
                                const std::vector<Symbol>& inputs, bool expected,
                                std::size_t max_configs) {
    require(protocol.num_output_symbols() == 2,
            "graph_stably_computes_bool: protocol must have Boolean outputs");
    const StableComputationResult result =
        analyze_graph_stable_computation(protocol, graph, inputs, max_configs);
    const std::optional<Symbol> consensus = result.consensus();
    if (!consensus) return false;
    return *consensus == (expected ? kOutputTrue : kOutputFalse);
}

}  // namespace popproto
