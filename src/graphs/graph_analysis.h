// Exact stable-computation verification on explicit interaction graphs.
//
// On a restricted interaction graph agents are no longer interchangeable,
// so the multiset analyzer does not apply; here the state space is the full
// per-agent configuration vector Q^n restricted to what is reachable along
// the graph's edges.  This is exponentially larger than the multiset space,
// but for small populations it allows *exhaustive* verification of
// Theorem 7: the lifted protocol A' stably computes A's predicate on every
// weakly-connected graph, checked over all fair schedules rather than
// sampled ones.

#ifndef POPPROTO_GRAPHS_GRAPH_ANALYSIS_H
#define POPPROTO_GRAPHS_GRAPH_ANALYSIS_H

#include <vector>

#include "analysis/stable_computation.h"
#include "core/tabulated_protocol.h"
#include "graphs/interaction_graph.h"

namespace popproto {

/// Explores every configuration reachable from I(inputs) along the edges of
/// `graph` and applies the Lemma 1 verdict.  Throws std::runtime_error if
/// more than `max_configs` configurations are reachable.
StableComputationResult analyze_graph_stable_computation(
    const TabulatedProtocol& protocol, const InteractionGraph& graph,
    const std::vector<Symbol>& inputs, std::size_t max_configs = 1u << 22);

/// True iff `protocol` stably computes the Boolean `expected` on `graph`
/// from `inputs` under the all-agents output convention.
bool graph_stably_computes_bool(const TabulatedProtocol& protocol,
                                const InteractionGraph& graph,
                                const std::vector<Symbol>& inputs, bool expected,
                                std::size_t max_configs = 1u << 22);

}  // namespace popproto

#endif  // POPPROTO_GRAPHS_GRAPH_ANALYSIS_H
