#include "graphs/graph_simulation.h"

#include <string>
#include <utility>
#include <vector>

#include "core/interaction_model.h"
#include "core/require.h"
#include "core/rng.h"
#include "core/run_loop.h"

namespace popproto {

namespace {

constexpr std::uint32_t kNumBatons = 4;

State encode(State base_state, Baton baton) {
    return base_state * kNumBatons + static_cast<std::uint32_t>(baton);
}

const char* baton_name(Baton baton) {
    switch (baton) {
        case Baton::kD:
            return "D";
        case Baton::kS:
            return "S";
        case Baton::kR:
            return "R";
        case Baton::kBlank:
            return "-";
    }
    return "?";
}

}  // namespace

Baton baton_of(const Protocol& base, State simulation_state) {
    require(simulation_state < base.num_states() * kNumBatons,
            "baton_of: state out of range");
    return static_cast<Baton>(simulation_state % kNumBatons);
}

State base_state_of(const Protocol& base, State simulation_state) {
    require(simulation_state < base.num_states() * kNumBatons,
            "base_state_of: state out of range");
    return simulation_state / kNumBatons;
}

std::unique_ptr<TabulatedProtocol> make_graph_simulation_protocol(const Protocol& base_protocol) {
    const auto base = TabulatedProtocol::tabulate(base_protocol);
    const std::size_t base_states = base->num_states();
    const std::size_t num_states = base_states * kNumBatons;

    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = base->num_output_symbols();
    for (Symbol y = 0; y < base->num_output_symbols(); ++y)
        tables.output_names.push_back(base->output_name(y));
    for (Symbol x = 0; x < base->num_input_symbols(); ++x) {
        tables.initial.push_back(encode(base->initial_state(x), Baton::kD));
        tables.input_names.push_back(base->input_name(x));
    }

    tables.output.resize(num_states);
    tables.state_names.resize(num_states);
    for (State s = 0; s < num_states; ++s) {
        const State q = s / kNumBatons;
        const auto baton = static_cast<Baton>(s % kNumBatons);
        tables.output[s] = base->output_fast(q);
        tables.state_names[s] = base->state_name(q) + baton_name(baton);
    }

    tables.delta.resize(num_states * num_states);
    for (State sp = 0; sp < num_states; ++sp) {
        for (State sq = 0; sq < num_states; ++sq) {
            const State x = sp / kNumBatons;
            const State y = sq / kNumBatons;
            const auto bx = static_cast<Baton>(sp % kNumBatons);
            const auto by = static_cast<Baton>(sq % kNumBatons);
            StatePair result{sp, sq};

            if (bx == Baton::kD && by == Baton::kD) {
                // Group (a): two D marks distill into one S and one R.
                result = {encode(x, Baton::kS), encode(y, Baton::kR)};
            } else if (bx == Baton::kD) {
                // Group (a): a D meeting any non-D goes blank.
                result = {encode(x, Baton::kBlank), sq};
            } else if (by == Baton::kD) {
                result = {sp, encode(y, Baton::kBlank)};
            } else if (bx == Baton::kS && by == Baton::kS) {
                // Group (b): duplicate batons merge.
                result = {sp, encode(y, Baton::kBlank)};
            } else if (bx == Baton::kR && by == Baton::kR) {
                result = {sp, encode(y, Baton::kBlank)};
            } else if (bx != Baton::kBlank && by == Baton::kBlank) {
                // Group (c): a baton moves to a blank neighbor.
                result = {encode(x, Baton::kBlank), encode(y, bx)};
            } else if (bx == Baton::kBlank && by != Baton::kBlank) {
                result = {encode(x, by), encode(y, Baton::kBlank)};
            } else if (bx == Baton::kBlank && by == Baton::kBlank) {
                // Group (d): simulated agents swap places.
                result = {encode(y, Baton::kBlank), encode(x, Baton::kBlank)};
            } else if (bx == Baton::kS && by == Baton::kR) {
                // Group (e): a real A-transition; batons swap so S and R can
                // pass each other in narrow graphs.
                const StatePair inner = base->apply_fast(x, y);
                result = {encode(inner.initiator, Baton::kR), encode(inner.responder, Baton::kS)};
            } else if (bx == Baton::kR && by == Baton::kS) {
                // Group (e), mirrored: the responder acts as A-initiator.
                const StatePair inner = base->apply_fast(y, x);
                result = {encode(inner.responder, Baton::kS), encode(inner.initiator, Baton::kR)};
            }

            tables.delta[static_cast<std::size_t>(sp) * num_states + sq] = result;
        }
    }
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

GraphRunResult simulate_on_graph(const TabulatedProtocol& protocol, const InteractionGraph& graph,
                                 const std::vector<Symbol>& inputs, const RunOptions& options) {
    require(inputs.size() == graph.num_agents(),
            "simulate_on_graph: one input per agent required");
    require(!graph.edges().empty(), "simulate_on_graph: graph has no edges");
    require_engine_field(options, SimulationEngine::kAuto, "simulate_on_graph");

    // Pair selection lives in the shared InteractionModel layer: uniform
    // directed-edge activation is EdgeListPairModel, and the one PairStepper
    // supplies the delta application, silence policy, and checkpointing.
    PairStepper<EdgeListPairModel, ObservedEngine::kGraph> stepper(
        protocol, AgentConfiguration::from_inputs(protocol, inputs).states(),
        EdgeListPairModel(graph.edges(), graph.num_agents()), "simulate_on_graph");
    const RunResult run = run_loop(stepper, protocol, options, "simulate_on_graph");

    GraphRunResult result;
    result.final_configuration =
        AgentConfiguration::from_states(stepper.states(), protocol.num_states());
    result.stop_reason = run.stop_reason;
    result.interactions = run.interactions;
    result.effective_interactions = run.effective_interactions;
    result.last_output_change = run.last_output_change;
    result.consensus = run.consensus;
    return result;
}

}  // namespace popproto
