#include "graphs/graph_simulation.h"

#include <string>
#include <utility>
#include <vector>

#include "core/require.h"
#include "core/rng.h"
#include "core/run_loop.h"

namespace popproto {

namespace {

constexpr std::uint32_t kNumBatons = 4;

State encode(State base_state, Baton baton) {
    return base_state * kNumBatons + static_cast<std::uint32_t>(baton);
}

const char* baton_name(Baton baton) {
    switch (baton) {
        case Baton::kD:
            return "D";
        case Baton::kS:
            return "S";
        case Baton::kR:
            return "R";
        case Baton::kBlank:
            return "-";
    }
    return "?";
}

/// Uniform random edge activation on an explicit interaction graph.  Graph
/// protocols generally never fall silent (group (d) swaps fire forever), so
/// the stepper opts out of silence detection entirely.
class GraphEdgeStepper {
public:
    static constexpr ObservedEngine kEngine = ObservedEngine::kGraph;
    static constexpr SilenceMode kSilenceMode = SilenceMode::kNever;
    static constexpr bool kGeometricSkips = false;
    static constexpr bool kSuperSteps = false;

    GraphEdgeStepper(const TabulatedProtocol& protocol, const InteractionGraph& graph,
                     AgentConfiguration agents)
        : protocol_(protocol), edges_(graph.edges()), agents_(std::move(agents)) {}

    std::uint64_t population() const { return agents_.size(); }

    bool is_silent() const { return false; }

    std::uint64_t propose_skip(Rng&) { return 0; }

    StepOutcome step(Rng& rng) {
        const Edge& edge = edges_[rng.below(edges_.size())];
        const State p = agents_.state(edge.first);
        const State q = agents_.state(edge.second);
        const StatePair next = protocol_.apply_fast(p, q);
        StepOutcome outcome;
        if (next.initiator != p || next.responder != q) {
            outcome.changed = true;
            outcome.output_changed =
                protocol_.output_fast(next.initiator) != protocol_.output_fast(p) ||
                protocol_.output_fast(next.responder) != protocol_.output_fast(q);
            agents_.set_state(edge.first, next.initiator);
            agents_.set_state(edge.second, next.responder);
        }
        return outcome;
    }

    CountConfiguration counts() const { return agents_.to_counts(protocol_.num_states()); }

    void save(RunCheckpoint& checkpoint) const { checkpoint.agent_states = agents_.states(); }

    void restore(const RunCheckpoint& checkpoint) {
        require(checkpoint.agent_states.size() == agents_.size(),
                "simulate_on_graph: checkpoint agent count mismatch");
        for (std::size_t i = 0; i < checkpoint.agent_states.size(); ++i) {
            require(checkpoint.agent_states[i] < protocol_.num_states(),
                    "simulate_on_graph: checkpoint state out of range");
            agents_.set_state(i, checkpoint.agent_states[i]);
        }
    }

    AgentConfiguration release_agents() { return std::move(agents_); }

private:
    const TabulatedProtocol& protocol_;
    const std::vector<Edge>& edges_;
    AgentConfiguration agents_;
};

}  // namespace

Baton baton_of(const Protocol& base, State simulation_state) {
    require(simulation_state < base.num_states() * kNumBatons,
            "baton_of: state out of range");
    return static_cast<Baton>(simulation_state % kNumBatons);
}

State base_state_of(const Protocol& base, State simulation_state) {
    require(simulation_state < base.num_states() * kNumBatons,
            "base_state_of: state out of range");
    return simulation_state / kNumBatons;
}

std::unique_ptr<TabulatedProtocol> make_graph_simulation_protocol(const Protocol& base_protocol) {
    const auto base = TabulatedProtocol::tabulate(base_protocol);
    const std::size_t base_states = base->num_states();
    const std::size_t num_states = base_states * kNumBatons;

    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = base->num_output_symbols();
    for (Symbol y = 0; y < base->num_output_symbols(); ++y)
        tables.output_names.push_back(base->output_name(y));
    for (Symbol x = 0; x < base->num_input_symbols(); ++x) {
        tables.initial.push_back(encode(base->initial_state(x), Baton::kD));
        tables.input_names.push_back(base->input_name(x));
    }

    tables.output.resize(num_states);
    tables.state_names.resize(num_states);
    for (State s = 0; s < num_states; ++s) {
        const State q = s / kNumBatons;
        const auto baton = static_cast<Baton>(s % kNumBatons);
        tables.output[s] = base->output_fast(q);
        tables.state_names[s] = base->state_name(q) + baton_name(baton);
    }

    tables.delta.resize(num_states * num_states);
    for (State sp = 0; sp < num_states; ++sp) {
        for (State sq = 0; sq < num_states; ++sq) {
            const State x = sp / kNumBatons;
            const State y = sq / kNumBatons;
            const auto bx = static_cast<Baton>(sp % kNumBatons);
            const auto by = static_cast<Baton>(sq % kNumBatons);
            StatePair result{sp, sq};

            if (bx == Baton::kD && by == Baton::kD) {
                // Group (a): two D marks distill into one S and one R.
                result = {encode(x, Baton::kS), encode(y, Baton::kR)};
            } else if (bx == Baton::kD) {
                // Group (a): a D meeting any non-D goes blank.
                result = {encode(x, Baton::kBlank), sq};
            } else if (by == Baton::kD) {
                result = {sp, encode(y, Baton::kBlank)};
            } else if (bx == Baton::kS && by == Baton::kS) {
                // Group (b): duplicate batons merge.
                result = {sp, encode(y, Baton::kBlank)};
            } else if (bx == Baton::kR && by == Baton::kR) {
                result = {sp, encode(y, Baton::kBlank)};
            } else if (bx != Baton::kBlank && by == Baton::kBlank) {
                // Group (c): a baton moves to a blank neighbor.
                result = {encode(x, Baton::kBlank), encode(y, bx)};
            } else if (bx == Baton::kBlank && by != Baton::kBlank) {
                result = {encode(x, by), encode(y, Baton::kBlank)};
            } else if (bx == Baton::kBlank && by == Baton::kBlank) {
                // Group (d): simulated agents swap places.
                result = {encode(y, Baton::kBlank), encode(x, Baton::kBlank)};
            } else if (bx == Baton::kS && by == Baton::kR) {
                // Group (e): a real A-transition; batons swap so S and R can
                // pass each other in narrow graphs.
                const StatePair inner = base->apply_fast(x, y);
                result = {encode(inner.initiator, Baton::kR), encode(inner.responder, Baton::kS)};
            } else if (bx == Baton::kR && by == Baton::kS) {
                // Group (e), mirrored: the responder acts as A-initiator.
                const StatePair inner = base->apply_fast(y, x);
                result = {encode(inner.responder, Baton::kS), encode(inner.initiator, Baton::kR)};
            }

            tables.delta[static_cast<std::size_t>(sp) * num_states + sq] = result;
        }
    }
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

GraphRunResult simulate_on_graph(const TabulatedProtocol& protocol, const InteractionGraph& graph,
                                 const std::vector<Symbol>& inputs, const RunOptions& options) {
    require(inputs.size() == graph.num_agents(),
            "simulate_on_graph: one input per agent required");
    require(!graph.edges().empty(), "simulate_on_graph: graph has no edges");
    require_engine_field(options, SimulationEngine::kAuto, "simulate_on_graph");

    GraphEdgeStepper stepper(protocol, graph, AgentConfiguration::from_inputs(protocol, inputs));
    const RunResult run = run_loop(stepper, protocol, options, "simulate_on_graph");

    GraphRunResult result;
    result.final_configuration = stepper.release_agents();
    result.stop_reason = run.stop_reason;
    result.interactions = run.interactions;
    result.effective_interactions = run.effective_interactions;
    result.last_output_change = run.last_output_change;
    result.consensus = run.consensus;
    return result;
}

}  // namespace popproto
