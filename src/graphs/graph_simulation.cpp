#include "graphs/graph_simulation.h"

#include <chrono>
#include <string>

#include "core/require.h"
#include "core/rng.h"

namespace popproto {

namespace {

constexpr std::uint32_t kNumBatons = 4;

State encode(State base_state, Baton baton) {
    return base_state * kNumBatons + static_cast<std::uint32_t>(baton);
}

const char* baton_name(Baton baton) {
    switch (baton) {
        case Baton::kD:
            return "D";
        case Baton::kS:
            return "S";
        case Baton::kR:
            return "R";
        case Baton::kBlank:
            return "-";
    }
    return "?";
}

}  // namespace

Baton baton_of(const Protocol& base, State simulation_state) {
    require(simulation_state < base.num_states() * kNumBatons,
            "baton_of: state out of range");
    return static_cast<Baton>(simulation_state % kNumBatons);
}

State base_state_of(const Protocol& base, State simulation_state) {
    require(simulation_state < base.num_states() * kNumBatons,
            "base_state_of: state out of range");
    return simulation_state / kNumBatons;
}

std::unique_ptr<TabulatedProtocol> make_graph_simulation_protocol(const Protocol& base_protocol) {
    const auto base = TabulatedProtocol::tabulate(base_protocol);
    const std::size_t base_states = base->num_states();
    const std::size_t num_states = base_states * kNumBatons;

    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = base->num_output_symbols();
    for (Symbol y = 0; y < base->num_output_symbols(); ++y)
        tables.output_names.push_back(base->output_name(y));
    for (Symbol x = 0; x < base->num_input_symbols(); ++x) {
        tables.initial.push_back(encode(base->initial_state(x), Baton::kD));
        tables.input_names.push_back(base->input_name(x));
    }

    tables.output.resize(num_states);
    tables.state_names.resize(num_states);
    for (State s = 0; s < num_states; ++s) {
        const State q = s / kNumBatons;
        const auto baton = static_cast<Baton>(s % kNumBatons);
        tables.output[s] = base->output_fast(q);
        tables.state_names[s] = base->state_name(q) + baton_name(baton);
    }

    tables.delta.resize(num_states * num_states);
    for (State sp = 0; sp < num_states; ++sp) {
        for (State sq = 0; sq < num_states; ++sq) {
            const State x = sp / kNumBatons;
            const State y = sq / kNumBatons;
            const auto bx = static_cast<Baton>(sp % kNumBatons);
            const auto by = static_cast<Baton>(sq % kNumBatons);
            StatePair result{sp, sq};

            if (bx == Baton::kD && by == Baton::kD) {
                // Group (a): two D marks distill into one S and one R.
                result = {encode(x, Baton::kS), encode(y, Baton::kR)};
            } else if (bx == Baton::kD) {
                // Group (a): a D meeting any non-D goes blank.
                result = {encode(x, Baton::kBlank), sq};
            } else if (by == Baton::kD) {
                result = {sp, encode(y, Baton::kBlank)};
            } else if (bx == Baton::kS && by == Baton::kS) {
                // Group (b): duplicate batons merge.
                result = {sp, encode(y, Baton::kBlank)};
            } else if (bx == Baton::kR && by == Baton::kR) {
                result = {sp, encode(y, Baton::kBlank)};
            } else if (bx != Baton::kBlank && by == Baton::kBlank) {
                // Group (c): a baton moves to a blank neighbor.
                result = {encode(x, Baton::kBlank), encode(y, bx)};
            } else if (bx == Baton::kBlank && by != Baton::kBlank) {
                result = {encode(x, by), encode(y, Baton::kBlank)};
            } else if (bx == Baton::kBlank && by == Baton::kBlank) {
                // Group (d): simulated agents swap places.
                result = {encode(y, Baton::kBlank), encode(x, Baton::kBlank)};
            } else if (bx == Baton::kS && by == Baton::kR) {
                // Group (e): a real A-transition; batons swap so S and R can
                // pass each other in narrow graphs.
                const StatePair inner = base->apply_fast(x, y);
                result = {encode(inner.initiator, Baton::kR), encode(inner.responder, Baton::kS)};
            } else if (bx == Baton::kR && by == Baton::kS) {
                // Group (e), mirrored: the responder acts as A-initiator.
                const StatePair inner = base->apply_fast(y, x);
                result = {encode(inner.responder, Baton::kS), encode(inner.initiator, Baton::kR)};
            }

            tables.delta[static_cast<std::size_t>(sp) * num_states + sq] = result;
        }
    }
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

GraphRunResult simulate_on_graph(const TabulatedProtocol& protocol, const InteractionGraph& graph,
                                 const std::vector<Symbol>& inputs, const RunOptions& options) {
    require(inputs.size() == graph.num_agents(),
            "simulate_on_graph: one input per agent required");
    require(!graph.edges().empty(), "simulate_on_graph: graph has no edges");
    require(options.max_interactions > 0, "simulate_on_graph: max_interactions must be positive");

    Rng rng(options.seed);
    AgentConfiguration agents = AgentConfiguration::from_inputs(protocol, inputs);
    const std::vector<Edge>& edges = graph.edges();

    RunObserver* const observer = options.observer;
    std::uint64_t next_snapshot =
        observer ? options.snapshots.first_index() : SnapshotSchedule::kNever;
    std::chrono::steady_clock::time_point wall_start;
    if (observer) {
        wall_start = std::chrono::steady_clock::now();
        const CountConfiguration initial_counts = agents.to_counts(protocol.num_states());
        RunStartInfo info;
        info.engine = ObservedEngine::kGraph;
        info.population = graph.num_agents();
        info.num_states = protocol.num_states();
        info.seed = options.seed;
        info.max_interactions = options.max_interactions;
        info.initial = &initial_counts;
        info.protocol = &protocol;
        observer->on_start(info);
    }

    GraphRunResult result;
    while (result.interactions < options.max_interactions) {
        const Edge& edge = edges[rng.below(edges.size())];
        ++result.interactions;

        const State p = agents.state(edge.first);
        const State q = agents.state(edge.second);
        const StatePair next = protocol.apply_fast(p, q);
        if (next.initiator != p || next.responder != q) {
            ++result.effective_interactions;
            if (protocol.output_fast(next.initiator) != protocol.output_fast(p) ||
                protocol.output_fast(next.responder) != protocol.output_fast(q)) {
                result.last_output_change = result.interactions;
                if (observer) observer->on_output_change(result.interactions);
            }
            agents.set_state(edge.first, next.initiator);
            agents.set_state(edge.second, next.responder);
        }

        if (result.interactions >= next_snapshot) {
            observer->on_snapshot(result.interactions, agents.to_counts(protocol.num_states()));
            next_snapshot = options.snapshots.next_after(result.interactions);
        }

        if (options.stop_after_stable_outputs != 0 && result.last_output_change != 0 &&
            result.interactions - result.last_output_change >=
                options.stop_after_stable_outputs) {
            result.stop_reason = StopReason::kStableOutputs;
            break;
        }
    }

    result.consensus =
        agents.to_counts(protocol.num_states()).consensus_output(protocol);
    if (observer) {
        // Observers consume the engine-independent RunResult shape; graph
        // runs collapse their per-agent endpoint to the state multiset.
        RunResult run_result{agents.to_counts(protocol.num_states()), result.stop_reason,
                             result.interactions, result.effective_interactions,
                             result.last_output_change, result.consensus};
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
        observer->on_stop(run_result, wall);
    }
    result.final_configuration = std::move(agents);
    return result;
}

}  // namespace popproto
