// The population-protocol model (Sect. 3.1 of the paper).
//
// A protocol A = (X, Y, Q, I, O, delta) consists of finite input and output
// alphabets X and Y, a finite state set Q, an input function I : X -> Q, an
// output function O : Q -> Y, and a transition function
// delta : Q x Q -> Q x Q applied to ordered (initiator, responder) pairs.
//
// States, input symbols, and output symbols are represented as dense indices
// (State/Symbol) so that configurations can be stored as count vectors and a
// transition lookup is an array access.

#ifndef POPPROTO_CORE_PROTOCOL_H
#define POPPROTO_CORE_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace popproto {

/// Dense index of a protocol state (an element of Q).
using State = std::uint32_t;

/// Dense index of an input or output symbol (an element of X or Y).
using Symbol = std::uint32_t;

/// Result of one interaction: delta(initiator, responder).
struct StatePair {
    State initiator;
    State responder;

    friend bool operator==(const StatePair&, const StatePair&) = default;
};

/// Abstract population protocol.
///
/// Implementations must be deterministic and total: `apply` must be defined
/// for every ordered pair of states in [0, num_states()).  A pair that the
/// protocol leaves unchanged simply returns its arguments (a "null"
/// interaction); the simulator and analyzer detect such no-ops.
class Protocol {
public:
    Protocol() = default;
    virtual ~Protocol() = default;

    // Polymorphic class: suppress copying to avoid slicing (C.67).
    Protocol(const Protocol&) = delete;
    Protocol& operator=(const Protocol&) = delete;

    /// |Q|: number of states.
    virtual std::size_t num_states() const = 0;

    /// |X|: number of input symbols.
    virtual std::size_t num_input_symbols() const = 0;

    /// |Y|: number of output symbols.
    virtual std::size_t num_output_symbols() const = 0;

    /// I(x): the state an agent assumes when it reads input symbol `x`.
    virtual State initial_state(Symbol x) const = 0;

    /// O(q): the output symbol an agent in state `q` currently reports.
    virtual Symbol output(State q) const = 0;

    /// delta(p, q) for initiator state `p` and responder state `q`.
    virtual StatePair apply(State initiator, State responder) const = 0;

    /// Human-readable name of state `q`; defaults to "q<index>".
    virtual std::string state_name(State q) const;

    /// Human-readable name of input symbol `x`; defaults to "x<index>".
    virtual std::string input_name(Symbol x) const;

    /// Human-readable name of output symbol `y`; defaults to "y<index>".
    virtual std::string output_name(Symbol y) const;

    /// True iff delta(p, q) == (p, q), i.e. the interaction changes nothing.
    bool is_null_interaction(State initiator, State responder) const;
};

/// Conventional Boolean output alphabet used by predicate protocols:
/// output symbol 0 = "false", 1 = "true" (all-agents output convention,
/// Sect. 3.4 "Predicates").
inline constexpr Symbol kOutputFalse = 0;
inline constexpr Symbol kOutputTrue = 1;

}  // namespace popproto

#endif  // POPPROTO_CORE_PROTOCOL_H
