#include "core/run_loop.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace popproto {

std::uint64_t default_budget(std::uint64_t population, double factor) {
    require(population >= 2, "default_budget: population too small");
    const double n = static_cast<double>(population);
    const double budget = factor * n * n * (std::log(n) + 1.0);
    // n^2 log n clears 2^64 before n = 2^28; the float->int cast would be
    // undefined there (observed as a budget of 1 at n = 2^30), so saturate:
    // "effectively unbounded" is the honest meaning of the default at that
    // scale, and runs stop on silence/stability long before.
    if (budget >= static_cast<double>(~std::uint64_t{0})) return ~std::uint64_t{0};
    return static_cast<std::uint64_t>(budget) + 1;
}

std::uint64_t resolved_budget(const RunOptions& options, std::uint64_t population) {
    return options.max_interactions != 0 ? options.max_interactions : default_budget(population);
}

std::uint64_t resolved_silence_check_period(const RunOptions& options,
                                            std::uint64_t population) {
    return options.silence_check_period != 0
               ? options.silence_check_period
               : std::max<std::uint64_t>(4 * population, 1024);
}

bool multiset_silent(const TabulatedProtocol& protocol,
                     const std::vector<std::uint64_t>& counts) {
    std::vector<State> present;
    for (State q = 0; q < counts.size(); ++q)
        if (counts[q] > 0) present.push_back(q);
    for (State p : present) {
        for (State q : present) {
            if (p == q && counts[p] < 2) continue;
            const StatePair result = protocol.apply_fast(p, q);
            const bool multiset_preserved =
                (result.initiator == p && result.responder == q) ||
                (result.initiator == q && result.responder == p);
            if (!multiset_preserved) return false;
        }
    }
    return true;
}

void require_engine_field(const RunOptions& options, SimulationEngine accepted,
                          const char* entry_point) {
    if (options.engine == SimulationEngine::kAuto || options.engine == accepted) return;
    const char* requested = "kAuto";
    switch (options.engine) {
        case SimulationEngine::kAuto:
            break;
        case SimulationEngine::kAgentArray:
            requested = "kAgentArray";
            break;
        case SimulationEngine::kCountBatch:
            requested = "kCountBatch";
            break;
        case SimulationEngine::kCollapsedBatch:
            requested = "kCollapsedBatch";
            break;
        case SimulationEngine::kAdaptive:
            requested = "kAdaptive";
            break;
    }
    require(false, std::string(entry_point) + ": options.engine requests " + requested +
                       ", which this entry point does not run; call run_simulation to "
                       "dispatch on the field, or leave it kAuto");
}

namespace {

// Serialized checkpoint grammar (one key per line, space-separated values):
//
//   popproto-checkpoint v<kFormatVersion>
//   engine <observed_engine_name>
//   population <n>
//   num_states <|Q|>
//   rng <w0> <w1> <w2> <w3>
//   interactions <i>
//   effective <e>
//   last_output_change <l>
//   next_silence_check <c>
//   changed_since_check <0|1>
//   pending_skip <0|1> <remaining>
//   interaction_model <name> <k> <w...> (stateful pairing models only;
//                                        k serialized model words)
//   shard_rngs <K> <w...>               (parallel collapsed engine only;
//                                        4K words, shard-major)
//   adaptive <switches> <last_switch> <next_eval>
//                                       (adaptive dispatcher segments only;
//                                        engine-switch monitor state)
//   counts <k> <c0> ... <c{k-1}>        (count engines)
//   agents <k> <s0> ... <s{k-1}>        (agent engines)
//   end
//
// All integers are decimal.  Exactly one of counts/agents is present; the
// interaction_model, shard_rngs, and adaptive lines are present exactly
// when the run carries a stateful pairing model / shard streams / a
// switch monitor (all are optional lines, so v1 readers of old checkpoints
// still work and plain static runs serialize byte-identically to
// checkpoints written before each section existed).

/// Line-oriented tokenizer for the grammar above.  The grammar is one key
/// per line, so every parse error can name the line number and the
/// offending token — a corrupted spill file faulted back by the service
/// daemon is diagnosable from the exception message alone.
class CheckpointParser {
public:
    explicit CheckpointParser(std::istream& in) : in_(in) {}

    /// Advances to the next non-blank line; `expected` names what the
    /// caller was looking for in the end-of-file message.
    void next_line(const std::string& expected) {
        std::string text;
        while (std::getline(in_, text)) {
            ++line_number_;
            if (!text.empty() && text.back() == '\r') text.pop_back();
            if (text.find_first_not_of(" \t") != std::string::npos) {
                line_.clear();
                line_.str(text);
                return;
            }
        }
        if (line_number_ == 0) line_number_ = 1;  // empty stream: "line 1"
        fail("unexpected end of file, expected '" + expected + "'");
    }

    /// Next whitespace-separated token on the current line.
    std::string token(const std::string& expected) {
        std::string word;
        if (!(line_ >> word)) fail("line ended before '" + expected + "'");
        return word;
    }

    /// Requires the next token to be exactly `key`.
    void expect(const std::string& key) {
        const std::string word = token(key);
        if (word != key) fail("expected '" + key + "', got '" + word + "'");
    }

    /// Next token parsed as a decimal unsigned integer.
    std::uint64_t u64(const std::string& what) {
        const std::string word = token(what);
        if (word.empty() || word.find_first_not_of("0123456789") != std::string::npos)
            fail("bad value for '" + what + "': got '" + word + "'");
        try {
            return std::stoull(word);
        } catch (const std::out_of_range&) {
            fail("bad value for '" + what + "': '" + word + "' overflows 64 bits");
        }
    }

    /// Requires the current line to hold no further tokens.
    void end_line() {
        std::string word;
        if (line_ >> word) fail("unexpected trailing token '" + word + "'");
    }

    /// Whole `key <u64>` line in one call.
    std::uint64_t u64_line(const std::string& key) {
        next_line(key);
        expect(key);
        const std::uint64_t value = u64(key);
        end_line();
        return value;
    }

    [[noreturn]] void fail(const std::string& what) const {
        throw std::invalid_argument("read_checkpoint: line " + std::to_string(line_number_) +
                                    ": " + what);
    }

private:
    std::istream& in_;
    std::istringstream line_;
    std::size_t line_number_ = 0;
};

}  // namespace

void write_checkpoint(std::ostream& out, const RunCheckpoint& checkpoint) {
    out << "popproto-checkpoint v" << RunCheckpoint::kFormatVersion << "\n";
    out << "engine " << observed_engine_name(checkpoint.engine) << "\n";
    out << "population " << checkpoint.population << "\n";
    out << "num_states " << checkpoint.num_states << "\n";
    out << "rng";
    for (const std::uint64_t word : checkpoint.rng.words) out << ' ' << word;
    out << "\n";
    out << "interactions " << checkpoint.interactions << "\n";
    out << "effective " << checkpoint.effective_interactions << "\n";
    out << "last_output_change " << checkpoint.last_output_change << "\n";
    out << "next_silence_check " << checkpoint.next_silence_check << "\n";
    out << "changed_since_check " << (checkpoint.changed_since_silence_check ? 1 : 0) << "\n";
    out << "pending_skip " << (checkpoint.has_pending_skip ? 1 : 0) << ' '
        << checkpoint.pending_null_skips << "\n";
    if (!checkpoint.interaction_model.empty()) {
        require(checkpoint.interaction_model.find_first_of(" \t\r\n") == std::string::npos,
                "write_checkpoint: interaction model name must not contain whitespace");
        out << "interaction_model " << checkpoint.interaction_model << ' '
            << checkpoint.model_state.size();
        for (const std::uint64_t word : checkpoint.model_state) out << ' ' << word;
        out << "\n";
    }
    if (!checkpoint.shard_rngs.empty()) {
        out << "shard_rngs " << checkpoint.shard_rngs.size();
        for (const Rng::StreamState& shard : checkpoint.shard_rngs)
            for (const std::uint64_t word : shard.words) out << ' ' << word;
        out << "\n";
    }
    if (checkpoint.adaptive) {
        out << "adaptive " << checkpoint.adaptive_switches << ' '
            << checkpoint.adaptive_last_switch << ' ' << checkpoint.adaptive_next_eval << "\n";
    }
    if (!checkpoint.counts.empty()) {
        out << "counts " << checkpoint.counts.size();
        for (const std::uint64_t count : checkpoint.counts) out << ' ' << count;
        out << "\n";
    } else {
        out << "agents " << checkpoint.agent_states.size();
        for (const State state : checkpoint.agent_states) out << ' ' << state;
        out << "\n";
    }
    out << "end\n";
    require(static_cast<bool>(out), "write_checkpoint: stream write failed");
}

RunCheckpoint read_checkpoint(std::istream& in) {
    CheckpointParser parser(in);
    RunCheckpoint checkpoint;

    parser.next_line("popproto-checkpoint");
    const std::string magic = parser.token("popproto-checkpoint");
    if (magic != "popproto-checkpoint")
        parser.fail("not a popproto checkpoint (got '" + magic + "')");
    const std::string version = parser.token("format version");
    if (version != "v" + std::to_string(RunCheckpoint::kFormatVersion))
        parser.fail("unsupported checkpoint format version '" + version + "'");
    parser.end_line();

    parser.next_line("engine");
    parser.expect("engine");
    const std::string engine_name = parser.token("engine name");
    if (!observed_engine_from_name(engine_name, checkpoint.engine))
        parser.fail("unknown engine '" + engine_name + "'");
    parser.end_line();

    checkpoint.population = parser.u64_line("population");
    checkpoint.num_states = parser.u64_line("num_states");

    parser.next_line("rng");
    parser.expect("rng");
    for (std::uint64_t& rng_word : checkpoint.rng.words) rng_word = parser.u64("rng word");
    parser.end_line();

    checkpoint.interactions = parser.u64_line("interactions");
    checkpoint.effective_interactions = parser.u64_line("effective");
    checkpoint.last_output_change = parser.u64_line("last_output_change");
    checkpoint.next_silence_check = parser.u64_line("next_silence_check");
    checkpoint.changed_since_silence_check = parser.u64_line("changed_since_check") != 0;

    parser.next_line("pending_skip");
    parser.expect("pending_skip");
    checkpoint.has_pending_skip = parser.u64("pending_skip flag") != 0;
    checkpoint.pending_null_skips = parser.u64("pending_skip remainder");
    parser.end_line();

    parser.next_line("counts");
    std::string payload =
        parser.token("'interaction_model', 'shard_rngs', 'adaptive', 'counts' or 'agents'");
    if (payload == "interaction_model") {
        checkpoint.interaction_model = parser.token("interaction model name");
        const std::uint64_t words = parser.u64("model state length");
        if (words > (std::uint64_t{1} << 32))
            parser.fail("bad model state length '" + std::to_string(words) + "'");
        checkpoint.model_state.resize(words);
        for (std::uint64_t& word : checkpoint.model_state) word = parser.u64("model word");
        parser.end_line();
        parser.next_line("counts");
        payload = parser.token("'shard_rngs', 'adaptive', 'counts' or 'agents'");
    }
    if (payload == "shard_rngs") {
        const std::uint64_t shards = parser.u64("shard count");
        if (shards < 1 || shards > 65536)
            parser.fail("bad shard count '" + std::to_string(shards) + "'");
        checkpoint.shard_rngs.resize(shards);
        for (Rng::StreamState& shard : checkpoint.shard_rngs)
            for (std::uint64_t& shard_word : shard.words)
                shard_word = parser.u64("shard rng word");
        parser.end_line();
        parser.next_line("counts");
        payload = parser.token("'adaptive', 'counts' or 'agents'");
    }
    if (payload == "adaptive") {
        checkpoint.adaptive = true;
        checkpoint.adaptive_switches = parser.u64("adaptive switch count");
        checkpoint.adaptive_last_switch = parser.u64("adaptive last switch");
        checkpoint.adaptive_next_eval = parser.u64("adaptive next eval");
        parser.end_line();
        parser.next_line("counts");
        payload = parser.token("'counts' or 'agents'");
    }
    if (payload != "counts" && payload != "agents")
        parser.fail("expected 'counts' or 'agents', got '" + payload + "'");
    const std::uint64_t length = parser.u64("payload length");
    if (payload == "counts") {
        checkpoint.counts.resize(length);
        for (std::uint64_t& count : checkpoint.counts) count = parser.u64("count");
    } else {
        checkpoint.agent_states.resize(length);
        for (State& state : checkpoint.agent_states) {
            const std::uint64_t value = parser.u64("agent state");
            if (value > ~State{0})
                parser.fail("agent state '" + std::to_string(value) + "' does not fit 32 bits");
            state = static_cast<State>(value);
        }
    }
    parser.end_line();

    parser.next_line("end");
    parser.expect("end");
    parser.end_line();
    return checkpoint;
}

void transfer_checkpoint_engine(RunCheckpoint& checkpoint, ObservedEngine target) {
    require(target == ObservedEngine::kCountBatch || target == ObservedEngine::kCollapsed,
            "transfer_checkpoint_engine: target must be count_batch or collapsed");
    require(checkpoint.engine == ObservedEngine::kCountBatch ||
                checkpoint.engine == ObservedEngine::kCollapsed,
            std::string("transfer_checkpoint_engine: cannot transfer a ") +
                observed_engine_name(checkpoint.engine) + " checkpoint");
    require(!checkpoint.has_pending_skip,
            "transfer_checkpoint_engine: checkpoint carries a pending null skip");
    require(checkpoint.shard_rngs.empty(),
            "transfer_checkpoint_engine: checkpoint carries shard RNG streams");
    require(!checkpoint.counts.empty() && checkpoint.agent_states.empty(),
            "transfer_checkpoint_engine: checkpoint must carry a count configuration");
    checkpoint.engine = target;
}

std::string checkpoint_to_string(const RunCheckpoint& checkpoint) {
    std::ostringstream out;
    write_checkpoint(out, checkpoint);
    return out.str();
}

RunCheckpoint checkpoint_from_string(const std::string& text) {
    std::istringstream in(text);
    return read_checkpoint(in);
}

void write_checkpoint_atomic(const std::string& path, const RunCheckpoint& checkpoint) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            throw std::runtime_error("write_checkpoint_atomic: cannot open " + tmp + ": " +
                                     std::strerror(errno));
        try {
            write_checkpoint(out, checkpoint);
            out.flush();
            require(static_cast<bool>(out), "flush failed");
        } catch (const std::exception&) {
            // write_checkpoint surfaces stream failures (disk full, closed
            // descriptor) as a pathless exception; rethrow naming the file
            // and drop the partial temporary.
            const int saved_errno = errno;
            out.close();
            std::remove(tmp.c_str());
            throw std::runtime_error("write_checkpoint_atomic: cannot write " + tmp + ": " +
                                     std::strerror(saved_errno));
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int saved_errno = errno;
        std::remove(tmp.c_str());
        throw std::runtime_error("write_checkpoint_atomic: cannot rename " + tmp + " to " +
                                 path + ": " + std::strerror(saved_errno));
    }
}

RunCheckpoint read_checkpoint_file(const std::string& path) {
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("read_checkpoint_file: cannot open " + path + ": " +
                                 std::strerror(errno));
    return read_checkpoint(in);
}

}  // namespace popproto
