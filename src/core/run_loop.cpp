#include "core/run_loop.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

namespace popproto {

std::uint64_t default_budget(std::uint64_t population, double factor) {
    require(population >= 2, "default_budget: population too small");
    const double n = static_cast<double>(population);
    const double budget = factor * n * n * (std::log(n) + 1.0);
    // n^2 log n clears 2^64 before n = 2^28; the float->int cast would be
    // undefined there (observed as a budget of 1 at n = 2^30), so saturate:
    // "effectively unbounded" is the honest meaning of the default at that
    // scale, and runs stop on silence/stability long before.
    if (budget >= static_cast<double>(~std::uint64_t{0})) return ~std::uint64_t{0};
    return static_cast<std::uint64_t>(budget) + 1;
}

std::uint64_t resolved_budget(const RunOptions& options, std::uint64_t population) {
    return options.max_interactions != 0 ? options.max_interactions : default_budget(population);
}

std::uint64_t resolved_silence_check_period(const RunOptions& options,
                                            std::uint64_t population) {
    return options.silence_check_period != 0
               ? options.silence_check_period
               : std::max<std::uint64_t>(4 * population, 1024);
}

bool multiset_silent(const TabulatedProtocol& protocol,
                     const std::vector<std::uint64_t>& counts) {
    std::vector<State> present;
    for (State q = 0; q < counts.size(); ++q)
        if (counts[q] > 0) present.push_back(q);
    for (State p : present) {
        for (State q : present) {
            if (p == q && counts[p] < 2) continue;
            const StatePair result = protocol.apply_fast(p, q);
            const bool multiset_preserved =
                (result.initiator == p && result.responder == q) ||
                (result.initiator == q && result.responder == p);
            if (!multiset_preserved) return false;
        }
    }
    return true;
}

void require_engine_field(const RunOptions& options, SimulationEngine accepted,
                          const char* entry_point) {
    if (options.engine == SimulationEngine::kAuto || options.engine == accepted) return;
    const char* requested = "kAuto";
    switch (options.engine) {
        case SimulationEngine::kAuto:
            break;
        case SimulationEngine::kAgentArray:
            requested = "kAgentArray";
            break;
        case SimulationEngine::kCountBatch:
            requested = "kCountBatch";
            break;
        case SimulationEngine::kCollapsedBatch:
            requested = "kCollapsedBatch";
            break;
    }
    require(false, std::string(entry_point) + ": options.engine requests " + requested +
                       ", which this entry point does not run; call run_simulation to "
                       "dispatch on the field, or leave it kAuto");
}

namespace {

// Serialized checkpoint grammar (one key per line, space-separated values):
//
//   popproto-checkpoint v<kFormatVersion>
//   engine <observed_engine_name>
//   population <n>
//   num_states <|Q|>
//   rng <w0> <w1> <w2> <w3>
//   interactions <i>
//   effective <e>
//   last_output_change <l>
//   next_silence_check <c>
//   changed_since_check <0|1>
//   pending_skip <0|1> <remaining>
//   shard_rngs <K> <w...>               (parallel collapsed engine only;
//                                        4K words, shard-major)
//   counts <k> <c0> ... <c{k-1}>        (count engines)
//   agents <k> <s0> ... <s{k-1}>        (agent engines)
//   end
//
// All integers are decimal.  Exactly one of counts/agents is present; the
// shard_rngs line is present exactly when the engine carries shard streams
// (it is a new optional line, so v1 readers of old checkpoints still work).

std::uint64_t read_u64_field(std::istream& in, const char* key) {
    std::string word;
    require(static_cast<bool>(in >> word) && word == key,
            std::string("read_checkpoint: expected '") + key + "'");
    std::uint64_t value = 0;
    require(static_cast<bool>(in >> value),
            std::string("read_checkpoint: bad value for '") + key + "'");
    return value;
}

}  // namespace

void write_checkpoint(std::ostream& out, const RunCheckpoint& checkpoint) {
    out << "popproto-checkpoint v" << RunCheckpoint::kFormatVersion << "\n";
    out << "engine " << observed_engine_name(checkpoint.engine) << "\n";
    out << "population " << checkpoint.population << "\n";
    out << "num_states " << checkpoint.num_states << "\n";
    out << "rng";
    for (const std::uint64_t word : checkpoint.rng.words) out << ' ' << word;
    out << "\n";
    out << "interactions " << checkpoint.interactions << "\n";
    out << "effective " << checkpoint.effective_interactions << "\n";
    out << "last_output_change " << checkpoint.last_output_change << "\n";
    out << "next_silence_check " << checkpoint.next_silence_check << "\n";
    out << "changed_since_check " << (checkpoint.changed_since_silence_check ? 1 : 0) << "\n";
    out << "pending_skip " << (checkpoint.has_pending_skip ? 1 : 0) << ' '
        << checkpoint.pending_null_skips << "\n";
    if (!checkpoint.shard_rngs.empty()) {
        out << "shard_rngs " << checkpoint.shard_rngs.size();
        for (const Rng::StreamState& shard : checkpoint.shard_rngs)
            for (const std::uint64_t word : shard.words) out << ' ' << word;
        out << "\n";
    }
    if (!checkpoint.counts.empty()) {
        out << "counts " << checkpoint.counts.size();
        for (const std::uint64_t count : checkpoint.counts) out << ' ' << count;
        out << "\n";
    } else {
        out << "agents " << checkpoint.agent_states.size();
        for (const State state : checkpoint.agent_states) out << ' ' << state;
        out << "\n";
    }
    out << "end\n";
    require(static_cast<bool>(out), "write_checkpoint: stream write failed");
}

RunCheckpoint read_checkpoint(std::istream& in) {
    RunCheckpoint checkpoint;
    std::string word;

    require(static_cast<bool>(in >> word) && word == "popproto-checkpoint",
            "read_checkpoint: not a popproto checkpoint");
    require(static_cast<bool>(in >> word) &&
                word == "v" + std::to_string(RunCheckpoint::kFormatVersion),
            "read_checkpoint: unsupported checkpoint format version");

    require(static_cast<bool>(in >> word) && word == "engine",
            "read_checkpoint: expected 'engine'");
    require(static_cast<bool>(in >> word), "read_checkpoint: missing engine name");
    require(observed_engine_from_name(word, checkpoint.engine),
            "read_checkpoint: unknown engine '" + word + "'");

    checkpoint.population = read_u64_field(in, "population");
    checkpoint.num_states = read_u64_field(in, "num_states");

    require(static_cast<bool>(in >> word) && word == "rng", "read_checkpoint: expected 'rng'");
    for (std::uint64_t& rng_word : checkpoint.rng.words)
        require(static_cast<bool>(in >> rng_word), "read_checkpoint: bad RNG word");

    checkpoint.interactions = read_u64_field(in, "interactions");
    checkpoint.effective_interactions = read_u64_field(in, "effective");
    checkpoint.last_output_change = read_u64_field(in, "last_output_change");
    checkpoint.next_silence_check = read_u64_field(in, "next_silence_check");
    checkpoint.changed_since_silence_check = read_u64_field(in, "changed_since_check") != 0;

    require(static_cast<bool>(in >> word) && word == "pending_skip",
            "read_checkpoint: expected 'pending_skip'");
    std::uint64_t has_pending = 0;
    require(static_cast<bool>(in >> has_pending >> checkpoint.pending_null_skips),
            "read_checkpoint: bad pending_skip");
    checkpoint.has_pending_skip = has_pending != 0;

    require(static_cast<bool>(in >> word),
            "read_checkpoint: expected 'shard_rngs', 'counts' or 'agents'");
    if (word == "shard_rngs") {
        std::uint64_t shards = 0;
        require(static_cast<bool>(in >> shards) && shards >= 1 && shards <= 65536,
                "read_checkpoint: bad shard count");
        checkpoint.shard_rngs.resize(shards);
        for (Rng::StreamState& shard : checkpoint.shard_rngs)
            for (std::uint64_t& shard_word : shard.words)
                require(static_cast<bool>(in >> shard_word),
                        "read_checkpoint: bad shard RNG word");
        require(static_cast<bool>(in >> word),
                "read_checkpoint: expected 'counts' or 'agents'");
    }
    require(word == "counts" || word == "agents",
            "read_checkpoint: expected 'counts' or 'agents'");
    std::uint64_t length = 0;
    require(static_cast<bool>(in >> length), "read_checkpoint: bad payload length");
    if (word == "counts") {
        checkpoint.counts.resize(length);
        for (std::uint64_t& count : checkpoint.counts)
            require(static_cast<bool>(in >> count), "read_checkpoint: bad count");
    } else {
        checkpoint.agent_states.resize(length);
        for (State& state : checkpoint.agent_states)
            require(static_cast<bool>(in >> state), "read_checkpoint: bad agent state");
    }

    require(static_cast<bool>(in >> word) && word == "end", "read_checkpoint: expected 'end'");
    return checkpoint;
}

std::string checkpoint_to_string(const RunCheckpoint& checkpoint) {
    std::ostringstream out;
    write_checkpoint(out, checkpoint);
    return out.str();
}

RunCheckpoint checkpoint_from_string(const std::string& text) {
    std::istringstream in(text);
    return read_checkpoint(in);
}

}  // namespace popproto
