// The phase-adaptive dispatcher: one run, executed as a chain of
// count-batch / collapsed segments spliced at runtime density switches.
//
// Neither count engine wins a whole run.  The collapsed super-step engine
// (collapsed_simulator.h) advances ~1.25 sqrt(n) interactions per O(|Q|^2)
// super-step and is unbeatable through dense transients; the count-batch
// engine (batch_simulator.h) crosses null-heavy sparse tails in O(1)
// geometric jumps and is unbeatable there.  A single-seed epidemic at
// n = 2^22 visits *both* regimes — sparse ignition, dense middle, sparse
// convergence tail — so any static choice loses one phase.  The former
// kAuto policy picked once, by population size, before the run started.
//
// simulate_adaptive picks per *phase* instead.  An EngineSwitchMonitor
// (engine_monitor.h) watches the dimensionless signal x = rho * E[L]
// (effective-interaction fraction times expected collision-free run length)
// that both engines already compute for their silence predicates, and when
// hysteresis thresholds say the other engine now wins, the run-loop kernel
// captures a checkpoint at the current super-step / skip boundary and this
// driver resumes it under the other engine via transfer_checkpoint_engine.
// The switch IS a checkpoint round-trip: counts, the exact RNG stream
// position, the silence tracker, and the stop counters carry over verbatim,
// so an adaptive run is bit-identical to manually running engine A to the
// switch index, saving a checkpoint, and resuming engine B from it — and
// suspend/resume (checkpoint_every / pause_after / stop_flag) works across
// switch boundaries unchanged (the checkpoint's `adaptive` section carries
// the monitor state).
//
// The splice is exact because the monitor only fires at *natural* loop
// tops: a pause boundary placed at a switch index never clamps the
// super-step ending there (its natural end lands one short of the limit),
// so pausing ON a switch index is transparent.  Cuts elsewhere inherit the
// collapsed engine's checkpoint contract — boundaries inside collapsed
// segments clamp super-steps, so resume bit-identity for arbitrary cuts is
// against a baseline running the same boundary schedule (see
// tests/adaptive_simulator_test.cpp and collapsed_simulator_test.cpp).
//
// Optional mean-field fast-forward (RunOptions::fluid_assist +
// RunOptions::fluid_hook, see meanfield/fluid_assist.h): a dense-entry run
// may first integrate the protocol's mean-field ODE to the predicted
// sparse-tail entry, re-seed a stochastic configuration there, and only
// then simulate.  Explicitly opt-in because it trades exactness for speed:
// a fluid-assisted run is *not* bit-identical to (or even a sample path of)
// the unassisted law.
//
// Serial only: the sharded collapsed engine draws from K split RNG streams
// that the count-batch engine cannot continue, so threads > 1 keeps pinning
// the (parallel) collapsed engine in run_simulation instead.

#ifndef POPPROTO_CORE_ADAPTIVE_SIMULATOR_H
#define POPPROTO_CORE_ADAPTIVE_SIMULATOR_H

#include "core/configuration.h"
#include "core/simulator.h"
#include "core/tabulated_protocol.h"

namespace popproto {

/// Runs `protocol` from `initial` under the phase-adaptive dispatcher.
/// Accepts options.engine == kAdaptive (or kAuto); RunOptions::adaptive
/// holds the thresholds.  RunResult::engine reports kAdaptive; emitted
/// checkpoints carry the concrete segment engine plus the monitor's
/// `adaptive` section and resume here under kAuto/kAdaptive (or under the
/// segment engine, which pins it statically).  Requires threads <= 1.
RunResult simulate_adaptive(const TabulatedProtocol& protocol,
                            const CountConfiguration& initial, const RunOptions& options);

}  // namespace popproto

#endif  // POPPROTO_CORE_ADAPTIVE_SIMULATOR_H
