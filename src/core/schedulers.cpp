#include "core/schedulers.h"

#include <algorithm>

#include "core/require.h"
#include "core/run_loop.h"

namespace popproto {

namespace {

std::vector<AgentPair> all_ordered_pairs(std::size_t num_agents) {
    require(num_agents >= 2, "scheduler: need at least two agents");
    std::vector<AgentPair> pairs;
    pairs.reserve(num_agents * (num_agents - 1));
    for (std::size_t i = 0; i < num_agents; ++i)
        for (std::size_t j = 0; j < num_agents; ++j)
            if (i != j) pairs.emplace_back(i, j);
    return pairs;
}

/// Deterministic pair selection delegated to a Scheduler.  The kernel's RNG
/// is never consumed; determinism comes from the scheduler's own state,
/// which is also why checkpoint/resume is rejected at the entry point — a
/// RunCheckpoint cannot capture an arbitrary Scheduler's cursor.
class SchedulerStepper {
public:
    static constexpr ObservedEngine kEngine = ObservedEngine::kScheduler;
    static constexpr SilenceMode kSilenceMode = SilenceMode::kPeriodic;
    static constexpr bool kGeometricSkips = false;
    static constexpr bool kSuperSteps = false;

    SchedulerStepper(const TabulatedProtocol& protocol, const AgentConfiguration& initial,
                     Scheduler& scheduler)
        : protocol_(protocol),
          scheduler_(scheduler),
          agents_(initial),
          counts_(protocol.num_states(), 0) {
        for (const State q : agents_.states()) ++counts_[q];
    }

    std::uint64_t population() const { return agents_.size(); }

    bool is_silent() const { return multiset_silent(protocol_, counts_); }

    std::uint64_t propose_skip(Rng&) { return 0; }

    StepOutcome step(Rng&) {
        const std::size_t n = agents_.size();
        const AgentPair pair = scheduler_.next(agents_);
        require(pair.first != pair.second && pair.first < n && pair.second < n,
                "simulate_with_scheduler: scheduler produced an invalid pair");

        const State p = agents_.state(pair.first);
        const State q = agents_.state(pair.second);
        const StatePair next = protocol_.apply_fast(p, q);
        StepOutcome outcome;
        if (next.initiator != p || next.responder != q) {
            outcome.changed = true;
            outcome.output_changed =
                protocol_.output_fast(next.initiator) != protocol_.output_fast(p) ||
                protocol_.output_fast(next.responder) != protocol_.output_fast(q);
            agents_.set_state(pair.first, next.initiator);
            agents_.set_state(pair.second, next.responder);
            --counts_[p];
            --counts_[q];
            ++counts_[next.initiator];
            ++counts_[next.responder];
        }
        return outcome;
    }

    CountConfiguration counts() const { return CountConfiguration::from_state_counts(counts_); }

    void save(RunCheckpoint&) const {
        ensure(false, "simulate_with_scheduler: checkpointing is rejected at entry");
    }

    void restore(const RunCheckpoint&) {
        ensure(false, "simulate_with_scheduler: resume is rejected at entry");
    }

private:
    const TabulatedProtocol& protocol_;
    Scheduler& scheduler_;
    AgentConfiguration agents_;
    std::vector<std::uint64_t> counts_;
};

}  // namespace

RoundRobinScheduler::RoundRobinScheduler(std::size_t num_agents)
    : pairs_(all_ordered_pairs(num_agents)) {}

AgentPair RoundRobinScheduler::next(const AgentConfiguration& agents) {
    require(agents.size() * (agents.size() - 1) == pairs_.size(),
            "RoundRobinScheduler: population size changed");
    const AgentPair pair = pairs_[cursor_];
    cursor_ = (cursor_ + 1) % pairs_.size();
    return pair;
}

SweepScheduler::SweepScheduler(std::size_t num_agents, std::uint64_t seed)
    : pairs_(all_ordered_pairs(num_agents)), rng_(seed) {
    reshuffle();
}

void SweepScheduler::reshuffle() {
    // Fisher-Yates with our own RNG for reproducibility.
    for (std::size_t i = pairs_.size(); i > 1; --i)
        std::swap(pairs_[i - 1], pairs_[rng_.below(i)]);
    cursor_ = 0;
}

AgentPair SweepScheduler::next(const AgentConfiguration& agents) {
    require(agents.size() * (agents.size() - 1) == pairs_.size(),
            "SweepScheduler: population size changed");
    const AgentPair pair = pairs_[cursor_++];
    if (cursor_ == pairs_.size()) reshuffle();
    return pair;
}

RunResult simulate_with_scheduler(const TabulatedProtocol& protocol,
                                  const AgentConfiguration& initial, Scheduler& scheduler,
                                  const RunOptions& options) {
    require(initial.size() >= 2, "simulate_with_scheduler: need at least two agents");
    require_engine_field(options, SimulationEngine::kAuto, "simulate_with_scheduler");
    require(options.checkpoint_every == 0 && options.resume_from == nullptr,
            "simulate_with_scheduler: checkpoint/resume is not supported — a RunCheckpoint "
            "cannot capture the Scheduler's own state");

    SchedulerStepper stepper(protocol, initial, scheduler);
    return run_loop(stepper, protocol, options, "simulate_with_scheduler");
}

}  // namespace popproto
