#include "core/schedulers.h"

#include <algorithm>

#include "core/interaction_model.h"
#include "core/require.h"
#include "core/run_loop.h"

namespace popproto {

namespace {

/// Deterministic pair selection delegated to a Scheduler.  The kernel's RNG
/// is never consumed; determinism comes from the scheduler's own state,
/// serialized through the Scheduler checkpoint hooks into the checkpoint's
/// interaction_model section.  This stepper keeps a full AgentConfiguration
/// (not the raw state vector PairStepper uses) because Scheduler::next is a
/// public API contracted on it — adaptive schedulers read agent states.
class SchedulerStepper {
public:
    static constexpr ObservedEngine kEngine = ObservedEngine::kScheduler;
    static constexpr SilenceMode kSilenceMode = SilenceMode::kPeriodic;
    static constexpr bool kGeometricSkips = false;
    static constexpr bool kSuperSteps = false;

    SchedulerStepper(const TabulatedProtocol& protocol, const AgentConfiguration& initial,
                     Scheduler& scheduler)
        : protocol_(protocol),
          scheduler_(scheduler),
          agents_(initial),
          counts_(protocol.num_states(), 0) {
        for (const State q : agents_.states()) ++counts_[q];
    }

    std::uint64_t population() const { return agents_.size(); }

    bool is_silent() const { return multiset_silent(protocol_, counts_); }

    std::uint64_t propose_skip(Rng&) { return 0; }

    StepOutcome step(Rng&) {
        const std::size_t n = agents_.size();
        const AgentPair pair = scheduler_.next(agents_);
        require(pair.first != pair.second && pair.first < n && pair.second < n,
                "simulate_with_scheduler: scheduler produced an invalid pair");

        const State p = agents_.state(pair.first);
        const State q = agents_.state(pair.second);
        const StatePair next = protocol_.apply_fast(p, q);
        StepOutcome outcome;
        if (next.initiator != p || next.responder != q) {
            outcome.changed = true;
            outcome.output_changed =
                protocol_.output_fast(next.initiator) != protocol_.output_fast(p) ||
                protocol_.output_fast(next.responder) != protocol_.output_fast(q);
            agents_.set_state(pair.first, next.initiator);
            agents_.set_state(pair.second, next.responder);
            --counts_[p];
            --counts_[q];
            ++counts_[next.initiator];
            ++counts_[next.responder];
        }
        return outcome;
    }

    CountConfiguration counts() const { return CountConfiguration::from_state_counts(counts_); }

    void save(RunCheckpoint& checkpoint) const {
        ensure(scheduler_.checkpointable(),
               "simulate_with_scheduler: non-checkpointable scheduler reached save");
        checkpoint.agent_states = agents_.states();
        checkpoint.interaction_model = scheduler_.model_name();
        scheduler_.save_state(checkpoint.model_state);
    }

    void restore(const RunCheckpoint& checkpoint) {
        require(checkpoint.agent_states.size() == agents_.size(),
                "simulate_with_scheduler: checkpoint agent count mismatch");
        std::fill(counts_.begin(), counts_.end(), 0);
        for (std::size_t i = 0; i < checkpoint.agent_states.size(); ++i) {
            const State q = checkpoint.agent_states[i];
            require(q < counts_.size(),
                    "simulate_with_scheduler: checkpoint state out of range");
            agents_.set_state(i, q);
            ++counts_[q];
        }
        require(checkpoint.interaction_model == scheduler_.model_name(),
                "simulate_with_scheduler: checkpoint was taken under interaction model '" +
                    checkpoint.interaction_model + "', but this scheduler is '" +
                    scheduler_.model_name() + "'");
        scheduler_.restore_state(checkpoint.model_state);
    }

private:
    const TabulatedProtocol& protocol_;
    Scheduler& scheduler_;
    AgentConfiguration agents_;
    std::vector<std::uint64_t> counts_;
};

}  // namespace

void Scheduler::save_state(std::vector<std::uint64_t>&) const {
    ensure(false, "Scheduler: save_state requires checkpointable() == true");
}

void Scheduler::restore_state(const std::vector<std::uint64_t>&) {
    ensure(false, "Scheduler: restore_state requires checkpointable() == true");
}

RoundRobinScheduler::RoundRobinScheduler(std::size_t num_agents) : model_(num_agents) {}

AgentPair RoundRobinScheduler::next(const AgentConfiguration& agents) {
    require(agents.size() * (agents.size() - 1) == model_.num_pairs(),
            "RoundRobinScheduler: population size changed");
    return model_.next_pair();
}

void RoundRobinScheduler::save_state(std::vector<std::uint64_t>& words) const {
    model_.save_state(words);
}

void RoundRobinScheduler::restore_state(const std::vector<std::uint64_t>& words) {
    model_.restore_state(words);
}

SweepScheduler::SweepScheduler(std::size_t num_agents, std::uint64_t seed)
    : model_(num_agents, seed) {}

AgentPair SweepScheduler::next(const AgentConfiguration& agents) {
    require(agents.size() * (agents.size() - 1) == model_.num_pairs(),
            "SweepScheduler: population size changed");
    return model_.next_pair();
}

void SweepScheduler::save_state(std::vector<std::uint64_t>& words) const {
    model_.save_state(words);
}

void SweepScheduler::restore_state(const std::vector<std::uint64_t>& words) {
    model_.restore_state(words);
}

RunResult simulate_with_scheduler(const TabulatedProtocol& protocol,
                                  const AgentConfiguration& initial, Scheduler& scheduler,
                                  const RunOptions& options) {
    require(initial.size() >= 2, "simulate_with_scheduler: need at least two agents");
    require_engine_field(options, SimulationEngine::kAuto, "simulate_with_scheduler");
    const bool wants_checkpointing =
        options.checkpoint_every != 0 || options.checkpoint_sink != nullptr ||
        options.pause_after != 0 || options.resume_from != nullptr;
    require(!wants_checkpointing || scheduler.checkpointable(),
            "simulate_with_scheduler: this scheduler opts out of save/restore; "
            "checkpoint/resume needs a checkpointable() scheduler (the built-in "
            "RoundRobinScheduler and SweepScheduler both are)");

    SchedulerStepper stepper(protocol, initial, scheduler);
    return run_loop(stepper, protocol, options, "simulate_with_scheduler");
}

}  // namespace popproto
