#include "core/schedulers.h"

#include <algorithm>

#include "core/require.h"

namespace popproto {

namespace {

std::vector<AgentPair> all_ordered_pairs(std::size_t num_agents) {
    require(num_agents >= 2, "scheduler: need at least two agents");
    std::vector<AgentPair> pairs;
    pairs.reserve(num_agents * (num_agents - 1));
    for (std::size_t i = 0; i < num_agents; ++i)
        for (std::size_t j = 0; j < num_agents; ++j)
            if (i != j) pairs.emplace_back(i, j);
    return pairs;
}

}  // namespace

RoundRobinScheduler::RoundRobinScheduler(std::size_t num_agents)
    : pairs_(all_ordered_pairs(num_agents)) {}

AgentPair RoundRobinScheduler::next(const AgentConfiguration& agents) {
    require(agents.size() * (agents.size() - 1) == pairs_.size(),
            "RoundRobinScheduler: population size changed");
    const AgentPair pair = pairs_[cursor_];
    cursor_ = (cursor_ + 1) % pairs_.size();
    return pair;
}

SweepScheduler::SweepScheduler(std::size_t num_agents, std::uint64_t seed)
    : pairs_(all_ordered_pairs(num_agents)), rng_(seed) {
    reshuffle();
}

void SweepScheduler::reshuffle() {
    // Fisher-Yates with our own RNG for reproducibility.
    for (std::size_t i = pairs_.size(); i > 1; --i)
        std::swap(pairs_[i - 1], pairs_[rng_.below(i)]);
    cursor_ = 0;
}

AgentPair SweepScheduler::next(const AgentConfiguration& agents) {
    require(agents.size() * (agents.size() - 1) == pairs_.size(),
            "SweepScheduler: population size changed");
    const AgentPair pair = pairs_[cursor_++];
    if (cursor_ == pairs_.size()) reshuffle();
    return pair;
}

RunResult simulate_with_scheduler(const TabulatedProtocol& protocol,
                                  const AgentConfiguration& initial, Scheduler& scheduler,
                                  const RunOptions& options) {
    const std::size_t n = initial.size();
    require(n >= 2, "simulate_with_scheduler: need at least two agents");
    require(options.max_interactions > 0,
            "simulate_with_scheduler: max_interactions must be positive");

    AgentConfiguration agents = initial;
    std::vector<std::uint64_t> counts(protocol.num_states(), 0);
    for (State q : agents.states()) ++counts[q];

    const std::uint64_t check_period = options.silence_check_period != 0
                                           ? options.silence_check_period
                                           : std::max<std::uint64_t>(4 * n, 1024);

    RunResult result{CountConfiguration(protocol.num_states()), StopReason::kBudget, 0, 0, 0,
                     std::nullopt};

    const auto is_silent = [&]() {
        CountConfiguration config(protocol.num_states());
        for (State q = 0; q < counts.size(); ++q)
            if (counts[q] > 0) config.add(q, counts[q]);
        return config.is_silent(protocol);
    };

    bool silent = is_silent();
    std::uint64_t next_check = check_period;
    bool changed_since_check = true;

    while (!silent && result.interactions < options.max_interactions) {
        const AgentPair pair = scheduler.next(agents);
        require(pair.first != pair.second && pair.first < n && pair.second < n,
                "simulate_with_scheduler: scheduler produced an invalid pair");
        ++result.interactions;

        const State p = agents.state(pair.first);
        const State q = agents.state(pair.second);
        const StatePair next = protocol.apply_fast(p, q);
        if (next.initiator != p || next.responder != q) {
            ++result.effective_interactions;
            changed_since_check = true;
            if (protocol.output_fast(next.initiator) != protocol.output_fast(p) ||
                protocol.output_fast(next.responder) != protocol.output_fast(q)) {
                result.last_output_change = result.interactions;
            }
            agents.set_state(pair.first, next.initiator);
            agents.set_state(pair.second, next.responder);
            --counts[p];
            --counts[q];
            ++counts[next.initiator];
            ++counts[next.responder];
        }

        if (options.stop_after_stable_outputs != 0 && result.last_output_change != 0 &&
            result.interactions - result.last_output_change >= options.stop_after_stable_outputs) {
            result.stop_reason = StopReason::kStableOutputs;
            break;
        }
        if (result.interactions >= next_check) {
            next_check = result.interactions + check_period;
            if (changed_since_check) {
                silent = is_silent();
                changed_since_check = false;
            }
        }
    }
    if (silent) result.stop_reason = StopReason::kSilent;

    CountConfiguration final_config(protocol.num_states());
    for (State q = 0; q < counts.size(); ++q)
        if (counts[q] > 0) final_config.add(q, counts[q]);
    result.consensus = final_config.consensus_output(protocol);
    result.final_configuration = std::move(final_config);
    return result;
}

}  // namespace popproto
