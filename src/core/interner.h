// Dense interning of structured state descriptions.
//
// Concrete protocols are most naturally described over structured state
// spaces (tuples of flags, counters, component states, ...).  StateInterner
// assigns each distinct description a dense State index on first sight and
// remembers the reverse mapping, so protocol constructors can enumerate their
// reachable structured states and hand the core a flat indexed state space.

#ifndef POPPROTO_CORE_INTERNER_H
#define POPPROTO_CORE_INTERNER_H

#include <cstddef>
#include <map>
#include <vector>

#include "core/protocol.h"
#include "core/require.h"

namespace popproto {

/// Bidirectional map between values of `T` (ordered by `<`) and dense State
/// indices.  Insertion order determines the index.
template <typename T>
class StateInterner {
public:
    /// Returns the index of `value`, interning it if new.
    State intern(const T& value) {
        auto [it, inserted] = index_.try_emplace(value, static_cast<State>(values_.size()));
        if (inserted) values_.push_back(value);
        return it->second;
    }

    /// Returns the index of `value`; throws if it was never interned.
    State at(const T& value) const {
        auto it = index_.find(value);
        require(it != index_.end(), "StateInterner::at: unknown value");
        return it->second;
    }

    /// True iff `value` has been interned.
    bool contains(const T& value) const { return index_.find(value) != index_.end(); }

    /// The value with index `q`.
    const T& value(State q) const {
        require(q < values_.size(), "StateInterner::value: index out of range");
        return values_[q];
    }

    std::size_t size() const { return values_.size(); }

    /// All interned values in index order.
    const std::vector<T>& values() const { return values_; }

private:
    std::map<T, State> index_;
    std::vector<T> values_;
};

}  // namespace popproto

#endif  // POPPROTO_CORE_INTERNER_H
