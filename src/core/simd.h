// Portable SIMD kernels for the count-engine hot loops.
//
// The collapsed super-step engine spends its per-super-step O(|Q|^2) budget
// in three scalar loops: applying the aggregate count delta, re-deriving the
// effective-pair total W (a masked dot product per state row), and the
// log-factorial sums behind every hypergeometric/binomial inverse-CDF draw.
// This header wraps those loops over GCC/Clang vector extensions (2 x 64-bit
// lanes — the baseline register width on x86-64 and AArch64, so no ABI or
// -m flags are needed; the compiler widens to AVX where -march allows), with
// a scalar fallback that compiles everywhere.  The CMake option
// POPPROTO_SIMD (default ON) selects between them via the
// POPPROTO_SIMD_ENABLED define, so `-DPOPPROTO_SIMD=OFF` is the escape hatch
// for compilers without the extension.
//
// Every kernel is exact, not approximate: unsigned lanes wrap modulo 2^64
// exactly like the scalar code (intermediate a - b - c may "underflow", the
// final sum is the same), and the double kernel keeps the same association
// as its scalar fallback, so both integer and double kernels are
// bit-identical to the fallback path.

#ifndef POPPROTO_CORE_SIMD_H
#define POPPROTO_CORE_SIMD_H

#include <cstddef>
#include <cstdint>

#if defined(POPPROTO_SIMD_ENABLED) && (defined(__GNUC__) || defined(__clang__))
#define POPPROTO_SIMD_VECTOR_EXT 1
#endif

namespace popproto::simd {

#if POPPROTO_SIMD_VECTOR_EXT
using u64x2 = std::uint64_t __attribute__((vector_size(16), aligned(8)));
using f64x2 = double __attribute__((vector_size(16), aligned(8)));

inline u64x2 load_u64x2(const std::uint64_t* p) noexcept {
    return u64x2{p[0], p[1]};
}

inline void store_u64x2(std::uint64_t* p, u64x2 v) noexcept {
    p[0] = v[0];
    p[1] = v[1];
}
#endif

/// dst[i] += add[i] - sub1[i] - sub2[i] for i in [0, n).  The serial
/// collapsed engine's count-delta application: new counts = old + touched -
/// initiators - responders (unsigned wraparound in the intermediates is
/// fine; the final value is the exact non-negative count).
inline void add_sub_sub(std::uint64_t* dst, const std::uint64_t* add,
                        const std::uint64_t* sub1, const std::uint64_t* sub2,
                        std::size_t n) noexcept {
    std::size_t i = 0;
#if POPPROTO_SIMD_VECTOR_EXT
    for (; i + 2 <= n; i += 2) {
        store_u64x2(dst + i, load_u64x2(dst + i) + load_u64x2(add + i) -
                                 load_u64x2(sub1 + i) - load_u64x2(sub2 + i));
    }
#endif
    for (; i < n; ++i) dst[i] += add[i] - sub1[i] - sub2[i];
}

/// dst[i] += src[i] for i in [0, n) (the per-shard touched-multiset merge
/// and the sharded count update counts = residual + merged touched).
inline void add(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) noexcept {
    std::size_t i = 0;
#if POPPROTO_SIMD_VECTOR_EXT
    for (; i + 2 <= n; i += 2)
        store_u64x2(dst + i, load_u64x2(dst + i) + load_u64x2(src + i));
#endif
    for (; i < n; ++i) dst[i] += src[i];
}

/// Sum of values[i] over the i with mask[i] != 0 — one row of the
/// effective-pair total W = sum_p c_p * (sum_q eff[p][q] c_q - eff[p][p]).
/// Exact: 64-bit integer addition is associative, so the lane-split
/// accumulation equals the scalar loop bit for bit.
inline std::uint64_t masked_sum(const std::uint8_t* mask, const std::uint64_t* values,
                                std::size_t n) noexcept {
    std::size_t i = 0;
    std::uint64_t total = 0;
#if POPPROTO_SIMD_VECTOR_EXT
    u64x2 acc = {0, 0};
    for (; i + 2 <= n; i += 2) {
        // Lane-wise select: all-ones masks keep exactly the flagged entries.
        const u64x2 m = {mask[i] ? ~std::uint64_t{0} : 0,
                         mask[i + 1] ? ~std::uint64_t{0} : 0};
        acc += m & load_u64x2(values + i);
    }
    total = acc[0] + acc[1];
#endif
    for (; i < n; ++i)
        if (mask[i]) total += values[i];
    return total;
}

/// sum(plus[0..3]) - sum(minus[0..3]) of doubles — the vectorizable core of
/// a hypergeometric log-pmf evaluation, which is a signed sum of nine
/// log-factorials (four positive table loads, four negative, and one
/// trailing scalar term handled by the caller).  Both paths use the
/// association ((p0-m0)+(p1-m1)) + ((p2-m2)+(p3-m3)), so they agree bit
/// for bit.
inline double sum4_minus_sum4(const double* plus, const double* minus) noexcept {
#if POPPROTO_SIMD_VECTOR_EXT
    const f64x2 lo = f64x2{plus[0], plus[1]} - f64x2{minus[0], minus[1]};
    const f64x2 hi = f64x2{plus[2], plus[3]} - f64x2{minus[2], minus[3]};
    return (lo[0] + lo[1]) + (hi[0] + hi[1]);
#else
    return ((plus[0] - minus[0]) + (plus[1] - minus[1])) +
           ((plus[2] - minus[2]) + (plus[3] - minus[3]));
#endif
}

/// Whether this build compiled the vector-extension paths (for logs/tests).
inline constexpr bool enabled() noexcept {
#if POPPROTO_SIMD_VECTOR_EXT
    return true;
#else
    return false;
#endif
}

}  // namespace popproto::simd

#endif  // POPPROTO_CORE_SIMD_H
