// Introspection helpers: human-readable protocol listings and Graphviz
// exports of transition graphs.

#ifndef POPPROTO_CORE_DEBUG_H
#define POPPROTO_CORE_DEBUG_H

#include <string>

#include "core/tabulated_protocol.h"

namespace popproto {

/// Multi-line description of a protocol: alphabets, input map, output map,
/// and every non-null transition, using the protocol's display names.
std::string describe_protocol(const TabulatedProtocol& protocol);

/// Graphviz DOT rendering of a protocol's *state* transition structure:
/// one node per state (labelled with its output), one edge per non-null
/// ordered transition (p, q) -> (p', q'), labelled "with q -> p'|q'".
/// Intended for small protocols.
std::string protocol_to_dot(const TabulatedProtocol& protocol);

}  // namespace popproto

#endif  // POPPROTO_CORE_DEBUG_H
