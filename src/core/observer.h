// Run-trace instrumentation hooks for the simulation engines.
//
// Every experiment in the paper is a claim about a *trajectory* — the
// epidemic's infected count over time (Lemma 8), the Theta(n^2 log n)
// convergence tail of Presburger protocols (Theorem 8) — yet a RunResult
// only surfaces the endpoint.  A RunObserver attached to RunOptions
// receives the trajectory as it unfolds: a start event, configuration
// snapshots on a deterministic interaction-index schedule, output-change
// and engine-internal events, and a stop event carrying the final result
// plus wall-clock time.  Concrete observers (in-memory trace recording,
// metric aggregation, streaming JSONL export) live in src/observe; this
// header only defines the hook so that popproto_core stays dependency-free.
//
// Contract with the engines:
//
//  * observer == nullptr (the default) costs one predicted-not-taken
//    branch per interaction — nothing else.  bench_observe tracks this.
//  * Observation never perturbs the run: engines consume the same RNG
//    stream with and without an observer, so the reported RunResult is
//    bit-identical either way.  In particular the batch engine's geometric
//    null-skip jumps are *clamped* at snapshot boundaries without redrawing:
//    a scheduled index that falls inside a run of null interactions is
//    emitted with the (unchanged) current counts and stamped with its exact
//    interaction index.
//  * A snapshot at index t reports the configuration after the first t
//    interactions of the schedule (index 0 is the initial configuration,
//    delivered via on_start).
//  * Engines call observers synchronously from the simulating thread.
//    measure_trials runs trials on a worker pool, so one observer shared
//    across trials sees concurrent callbacks and must be thread-safe
//    (MetricsCollector is; TraceRecorder is per-run).

#ifndef POPPROTO_CORE_OBSERVER_H
#define POPPROTO_CORE_OBSERVER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace popproto {

class CountConfiguration;
class TabulatedProtocol;
struct RunResult;

/// Deterministic interaction-index schedule for on_snapshot callbacks.
/// The scheduled set depends only on the schedule parameters — never on the
/// trajectory — so two engines given the same schedule and the same stop
/// index emit snapshots at identical indices.
class SnapshotSchedule {
public:
    /// No snapshots (the default).
    SnapshotSchedule() = default;

    /// Snapshots at period, 2*period, 3*period, ...  Requires period >= 1.
    static SnapshotSchedule every(std::uint64_t period);

    /// Log-spaced snapshots: first, then repeatedly the smallest strictly
    /// larger index >= previous * factor.  Requires factor > 1 and
    /// first >= 1.  Useful for Theta(n^2 log n) tails where fixed periods
    /// either miss the early epidemic or drown in the null-heavy end.
    static SnapshotSchedule log_spaced(double factor, std::uint64_t first = 1);

    bool enabled() const { return kind_ != Kind::kNone; }

    /// First scheduled index, or kNever when disabled.
    std::uint64_t first_index() const;

    /// Smallest scheduled index strictly greater than `index`, or kNever.
    std::uint64_t next_after(std::uint64_t index) const;

    /// Sentinel "no snapshot will ever be due" index; engines compare the
    /// interaction counter against it with one branch on the hot path.
    static constexpr std::uint64_t kNever = ~std::uint64_t{0};

private:
    enum class Kind { kNone, kFixed, kLog };

    Kind kind_ = Kind::kNone;
    std::uint64_t period_ = 0;   // kFixed
    double factor_ = 0.0;        // kLog
    std::uint64_t first_ = 1;    // kLog
};

/// Which execution path produced the events (simulate, simulate_counts,
/// simulate_collapsed, simulate_weighted, simulate_on_graph, or
/// simulate_with_scheduler).
enum class ObservedEngine {
    kAgentArray,
    kCountBatch,
    kCollapsed,
    /// The sharded collapsed engine (RunOptions::threads > 1).  Kept
    /// distinct from kCollapsed because the two consume different RNG
    /// streams: checkpoints of one must not resume as the other.
    kParallelCollapsed,
    kWeighted,
    kGraph,
    kScheduler,
    /// Scenario runs driven by a named InteractionModel (run_scenario:
    /// round-robin, sweep, adversarial, dynamic graph, grid mobility).  The
    /// checkpoint's interaction_model section disambiguates which model.
    kPairModel,
    /// The phase-adaptive dispatcher (simulate_adaptive): one run executed
    /// as a chain of collapsed / count-batch segments spliced at runtime
    /// density switches.  Only RunResult::engine and observer events report
    /// this value; checkpoints always carry the concrete segment engine
    /// (count_batch or collapsed) plus an `adaptive` monitor section, so
    /// any segment checkpoint can also resume under its static engine.
    kAdaptive,
};

/// Short stable identifier ("agent_array", "count_batch", ...) for logs.
const char* observed_engine_name(ObservedEngine engine);

/// Inverse of `observed_engine_name`, for parsing serialized checkpoints;
/// returns false for an unknown name.
bool observed_engine_from_name(const std::string& name, ObservedEngine& engine);

/// Everything an observer may want to know at the start of a run.  Pointer
/// members are borrowed and only valid for the duration of on_start.
struct RunStartInfo {
    ObservedEngine engine = ObservedEngine::kAgentArray;
    std::uint64_t population = 0;
    std::size_t num_states = 0;
    std::uint64_t seed = 0;
    std::uint64_t max_interactions = 0;
    const CountConfiguration* initial = nullptr;
    const TabulatedProtocol* protocol = nullptr;
};

/// One phase-adaptive engine switch (simulate_adaptive): the monitor's
/// decision at the moment the run was spliced from one engine to the other.
struct EngineSwitchInfo {
    /// Interaction index of the splice point (the checkpoint-shaped state
    /// transfer happened exactly here).
    std::uint64_t interactions = 0;
    ObservedEngine from = ObservedEngine::kCountBatch;
    ObservedEngine to = ObservedEngine::kCollapsed;
    /// The monitor signal x = rho * E[L] that triggered the switch, and the
    /// hysteresis thresholds it was compared against.
    double signal = 0.0;
    double enter_threshold = 0.0;
    double exit_threshold = 0.0;
    /// 1-based ordinal of this switch within the run.
    std::uint64_t switch_index = 0;
};

/// Abstract run observer.  All callbacks default to no-ops so subclasses
/// override only what they consume.  The `configuration` arguments are
/// borrowed and only valid for the duration of the call.
class RunObserver {
public:
    virtual ~RunObserver() = default;

    /// The run is about to execute its first interaction.
    virtual void on_start(const RunStartInfo& info);

    /// The configuration after `interaction_index` interactions, emitted at
    /// every scheduled index <= the run's stop index.
    virtual void on_snapshot(std::uint64_t interaction_index,
                             const CountConfiguration& configuration);

    /// Interaction `interaction_index` changed the output multiset (batch
    /// engine) or some agent's output symbol (per-agent engines); see the
    /// bookkeeping note in batch_simulator.h for the distinction.
    virtual void on_output_change(std::uint64_t interaction_index);

    /// The batch engine skipped `length` consecutive null interactions in
    /// one geometric jump (only executed nulls are reported when a stop
    /// rule cuts the jump short).  Per-agent engines never call this.
    virtual void on_null_run(std::uint64_t length);

    /// The engine evaluated the silence predicate after
    /// `interaction_index` interactions (periodic-check engines only; the
    /// batch engine detects silence exactly via W == 0 and never calls
    /// this).
    virtual void on_silence_check(std::uint64_t interaction_index, bool silent);

    /// The adaptive dispatcher spliced the run onto another engine
    /// (simulate_adaptive only; static engines never call this).  Delivered
    /// between the last event of the old segment and the first of the new.
    virtual void on_engine_switch(const EngineSwitchInfo& info);

    /// The run is over; `result` is the exact RunResult the engine returns
    /// and `wall_seconds` the elapsed wall-clock time of the run.
    virtual void on_stop(const RunResult& result, double wall_seconds);
};

/// Fans every callback out to a list of observers, in order.  Borrowed
/// pointers; null entries are rejected at construction.
class TeeObserver final : public RunObserver {
public:
    explicit TeeObserver(std::vector<RunObserver*> observers);

    void on_start(const RunStartInfo& info) override;
    void on_snapshot(std::uint64_t interaction_index,
                     const CountConfiguration& configuration) override;
    void on_output_change(std::uint64_t interaction_index) override;
    void on_null_run(std::uint64_t length) override;
    void on_silence_check(std::uint64_t interaction_index, bool silent) override;
    void on_engine_switch(const EngineSwitchInfo& info) override;
    void on_stop(const RunResult& result, double wall_seconds) override;

private:
    std::vector<RunObserver*> observers_;
};

}  // namespace popproto

#endif  // POPPROTO_CORE_OBSERVER_H
