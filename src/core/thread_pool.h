// A fixed-size fork-merge thread pool for intra-run parallelism.
//
// The parallel collapsed engine (collapsed_simulator.cpp) needs exactly one
// concurrency shape: per super-step, fan K independent shard tasks across
// K workers and barrier before the merge — thousands of short rounds over
// the same worker set.  This pool serves that shape and nothing more: no
// work stealing, no task queue, no futures.  `run(tasks, fn)` dispatches
// fn(0) .. fn(tasks - 1) across the workers (the calling thread executes its
// share too, so a pool of size K uses K - 1 spawned threads), blocks until
// every task finished, and rethrows the first task exception on the caller.
//
// Determinism: the pool never influences *what* a task computes — shard k
// always processes shard state k with shard RNG stream k — only *where* it
// runs, so results are bit-identical across schedules and pool sizes by
// construction of the callers.
//
// Thread safety: `run` may be called repeatedly from one thread at a time
// (the simulation loop); the pool itself is not re-entrant.  Worker wakeup
// uses one mutex + two condition variables (round start / round done), and
// the round barrier gives the caller a happens-before edge over every
// task's writes, so shard outputs can be merged without further locking.

#ifndef POPPROTO_CORE_THREAD_POOL_H
#define POPPROTO_CORE_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/telemetry.h"

namespace popproto {

class ThreadPool {
public:
    /// A pool executing up to `size` tasks concurrently; `size` >= 1.  The
    /// calling thread of run() counts toward the size, so `size - 1` worker
    /// threads are spawned (size 1 spawns none and run() degenerates to a
    /// serial loop).
    explicit ThreadPool(std::size_t size);

    /// Joins the workers.  Must not race with an in-flight run().
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const noexcept { return size_; }

    /// Executes fn(0) .. fn(tasks - 1), each exactly once, across the
    /// workers and the calling thread; returns after all complete (the
    /// fork-merge barrier).  If any task throws, the first exception (in
    /// completion order) is rethrown here after the barrier.
    void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

    /// Attaches per-round utilization accounting (telemetry/telemetry.h):
    /// each executed task stamps begin/end into its disjoint scratch slot,
    /// and run() folds the round into the aggregates after the barrier, on
    /// the caller thread.  Must be called while no round is in flight; the
    /// caller configures `telemetry` (slot count, epoch) and keeps it alive
    /// for the pool's remaining rounds.  nullptr (the default) detaches.
    void set_telemetry(telemetry::PoolTelemetry* telemetry) { telemetry_ = telemetry; }

private:
    void worker_loop();
    /// Claims and executes tasks of round `my_round` until it is drained or
    /// superseded; each executed task contributes to `completed_`.
    void drain_round(const std::function<void(std::size_t)>& fn, std::uint64_t my_round);

    const std::size_t size_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable round_start_;
    std::condition_variable round_done_;
    // Guarded by mutex_: the current round's task function and bounds.
    const std::function<void(std::size_t)>* fn_ = nullptr;
    std::size_t tasks_ = 0;
    std::size_t next_task_ = 0;
    std::size_t completed_ = 0;
    std::uint64_t round_ = 0;  // bumps per run(); workers wait for a new round
    bool stopping_ = false;
    std::exception_ptr first_error_;

    // Set before a round begins and stable across it; workers observe the
    // pointer through the round-start acquire, so no separate fence needed.
    telemetry::PoolTelemetry* telemetry_ = nullptr;
};

}  // namespace popproto

#endif  // POPPROTO_CORE_THREAD_POOL_H
