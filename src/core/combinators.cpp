#include "core/combinators.h"

#include <string>

#include "core/require.h"

namespace popproto {

std::unique_ptr<TabulatedProtocol> make_product_protocol(
    const Protocol& a, const Protocol& b,
    const std::function<Symbol(Symbol, Symbol)>& combine, std::size_t num_output_symbols) {
    require(a.num_input_symbols() == b.num_input_symbols(),
            "make_product_protocol: input alphabets differ");
    require(num_output_symbols > 0, "make_product_protocol: empty output alphabet");

    const std::size_t states_a = a.num_states();
    const std::size_t states_b = b.num_states();
    const std::size_t num_states = states_a * states_b;
    const auto encode = [states_b](State qa, State qb) {
        return static_cast<State>(static_cast<std::size_t>(qa) * states_b + qb);
    };

    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = num_output_symbols;

    tables.initial.reserve(a.num_input_symbols());
    for (Symbol x = 0; x < a.num_input_symbols(); ++x) {
        tables.initial.push_back(encode(a.initial_state(x), b.initial_state(x)));
        tables.input_names.push_back(a.input_name(x));
    }

    tables.output.resize(num_states);
    tables.state_names.resize(num_states);
    for (State qa = 0; qa < states_a; ++qa) {
        for (State qb = 0; qb < states_b; ++qb) {
            const State q = encode(qa, qb);
            const Symbol y = combine(a.output(qa), b.output(qb));
            require(y < num_output_symbols, "make_product_protocol: combine out of range");
            tables.output[q] = y;
            tables.state_names[q] = "<" + a.state_name(qa) + "|" + b.state_name(qb) + ">";
        }
    }

    tables.delta.resize(num_states * num_states);
    for (State pa = 0; pa < states_a; ++pa) {
        for (State pb = 0; pb < states_b; ++pb) {
            for (State qa = 0; qa < states_a; ++qa) {
                for (State qb = 0; qb < states_b; ++qb) {
                    const StatePair ra = a.apply(pa, qa);
                    const StatePair rb = b.apply(pb, qb);
                    const State p = encode(pa, pb);
                    const State q = encode(qa, qb);
                    tables.delta[static_cast<std::size_t>(p) * num_states + q] =
                        StatePair{encode(ra.initiator, rb.initiator),
                                  encode(ra.responder, rb.responder)};
                }
            }
        }
    }
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

std::unique_ptr<TabulatedProtocol> make_output_mapped_protocol(
    const Protocol& base, const std::function<Symbol(Symbol)>& map,
    std::size_t num_output_symbols) {
    require(num_output_symbols > 0, "make_output_mapped_protocol: empty output alphabet");
    auto tabulated = TabulatedProtocol::tabulate(base);

    const std::size_t num_states = base.num_states();
    TabulatedProtocol::Tables tables;
    tables.num_output_symbols = num_output_symbols;
    tables.output.resize(num_states);
    for (State q = 0; q < num_states; ++q) {
        const Symbol y = map(base.output(q));
        require(y < num_output_symbols, "make_output_mapped_protocol: map out of range");
        tables.output[q] = y;
        tables.state_names.push_back(base.state_name(q));
    }
    for (Symbol x = 0; x < base.num_input_symbols(); ++x) {
        tables.initial.push_back(base.initial_state(x));
        tables.input_names.push_back(base.input_name(x));
    }
    tables.delta.reserve(num_states * num_states);
    for (State p = 0; p < num_states; ++p)
        for (State q = 0; q < num_states; ++q) tables.delta.push_back(tabulated->apply_fast(p, q));
    return std::make_unique<TabulatedProtocol>(std::move(tables));
}

std::unique_ptr<TabulatedProtocol> make_negation_protocol(const Protocol& base) {
    require(base.num_output_symbols() == 2, "make_negation_protocol: need Boolean outputs");
    return make_output_mapped_protocol(
        base, [](Symbol y) { return y == kOutputTrue ? kOutputFalse : kOutputTrue; }, 2);
}

}  // namespace popproto
