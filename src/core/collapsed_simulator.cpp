#include "core/collapsed_simulator.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/effect_tables.h"
#include "core/require.h"
#include "core/rng.h"
#include "core/run_loop.h"

namespace popproto {

namespace {

/// The collapsed super-step sampler (collapsed_simulator.h): collision-free
/// runs of ~sqrt(n) ordered pairs are assigned to state pairs by exact
/// hypergeometric count splits and applied as one aggregate delta; the
/// single colliding interaction terminating each run is resolved
/// individually.
class CollapsedStepper {
public:
    static constexpr ObservedEngine kEngine = ObservedEngine::kCollapsed;
    static constexpr SilenceMode kSilenceMode = SilenceMode::kExact;
    static constexpr bool kGeometricSkips = false;
    static constexpr bool kSuperSteps = true;

    CollapsedStepper(const TabulatedProtocol& protocol, const CountConfiguration& initial)
        : protocol_(protocol),
          eff_(protocol),
          counts_(initial.counts()),
          population_(initial.population_size()) {
        build_survival_table();
        recompute_effective_pairs();
    }

    std::uint64_t population() const { return population_; }

    bool is_silent() const { return effective_pairs_ == 0; }

    /// Draws the length L >= 1 of the maximal collision-free run: one
    /// uniform01 inverted through the precomputed survival table
    /// (survival_[t-1] = P(L >= t), strictly decreasing, survival_[0] = 1).
    std::uint64_t propose_super_step(Rng& rng) {
        const double u = rng.uniform01();
        // L = max{t : P(L >= t) > u}; the table is truncated once the
        // survival mass drops below ~1e-25 (or the population runs out of
        // disjoint agents), so a u below the last entry clamps to the end.
        const auto it = std::lower_bound(survival_.begin(), survival_.end(), u,
                                         std::greater<double>());
        const auto t = static_cast<std::uint64_t>(it - survival_.begin());
        return t > 0 ? t : std::uint64_t{1};  // survival_[0] = 1 > u always
    }

    /// Executes `m` collision-free pairs (2m distinct agents) as one
    /// aggregate count update, then the single colliding interaction when
    /// `with_collision` (the kernel clamps boundary-crossing runs instead).
    BatchOutcome apply_super_step(Rng& rng, std::uint64_t m, bool with_collision) {
        const std::size_t num_states = eff_.num_states;
        BatchOutcome outcome;

        // Initiator multiset A: m draws without replacement from the count
        // vector (multivariate hypergeometric, as a cascade of exact
        // univariate splits); responder multiset B: m more draws from the
        // remainder.  By exchangeability of the 2m uniformly-chosen agent
        // slots this matches drawing the pairs one by one.
        draw_without_replacement(rng, counts_, {}, m, initiators_);
        draw_without_replacement(rng, counts_, initiators_, m, responders_);

        // Matching: conditioned on the multisets A and B, the bipartite
        // initiator-responder matching is uniform, so row p of the
        // pair-count matrix is a hypergeometric split of A[p] draws over
        // the not-yet-matched responders.  Rows are applied on the fly.
        touched_.assign(num_states, 0);
        remainder_ = responders_;
        std::uint64_t unmatched = m;
        for (State p = 0; p < num_states; ++p) {
            std::uint64_t left = initiators_[p];
            if (left == 0) continue;
            // Row cascade: `pool` counts the unmatched responders in states
            // not yet classified for this row, so each split is an exact
            // univariate hypergeometric of the row's remaining draws.
            std::uint64_t pool = unmatched;
            for (State q = 0; q < num_states && left > 0; ++q) {
                const std::uint64_t available = remainder_[q];
                if (available == 0) continue;
                const std::uint64_t k =
                    rng.hypergeometric(available, pool - available, left);
                pool -= available;
                if (k != 0) {
                    remainder_[q] -= k;
                    unmatched -= k;
                    left -= k;
                    apply_pair_type(p, q, k, outcome);
                }
            }
            ensure(left == 0, "simulate_collapsed: internal matching invariant violated");
        }

        // New counts: the untouched agents keep their states; the 2m
        // touched agents land on the post-transition multiset.
        for (State s = 0; s < num_states; ++s)
            counts_[s] += touched_[s] - initiators_[s] - responders_[s];

        if (with_collision) resolve_collision(rng, m, outcome);

        recompute_effective_pairs();
        return outcome;
    }

    CountConfiguration counts() const { return CountConfiguration::from_state_counts(counts_); }

    void save(RunCheckpoint& checkpoint) const { checkpoint.counts = counts_; }

    void restore(const RunCheckpoint& checkpoint) {
        require(checkpoint.counts.size() == counts_.size(),
                "simulate_collapsed: checkpoint state-count mismatch");
        std::uint64_t total = 0;
        for (const std::uint64_t count : checkpoint.counts) total += count;
        require(total == population_, "simulate_collapsed: checkpoint population mismatch");
        counts_ = checkpoint.counts;
        recompute_effective_pairs();
    }

private:
    /// survival_[t-1] = P(first t pairs touch pairwise-disjoint agents)
    ///               = prod_{i<t} (n-2i)(n-2i-1) / (n(n-1)).
    /// Depends only on n; ~6.7 sqrt(n) entries before the 1e-25 cutoff.
    void build_survival_table() {
        const double n = static_cast<double>(population_);
        const double total_pairs = n * (n - 1.0);
        double survival = 1.0;
        std::uint64_t t = 1;
        survival_.clear();
        survival_.push_back(1.0);
        while (population_ >= 2 * t + 2) {
            const double free_agents = n - 2.0 * static_cast<double>(t);
            survival *= free_agents * (free_agents - 1.0) / total_pairs;
            if (survival < 1e-25) break;
            survival_.push_back(survival);
            ++t;
        }
    }

    /// Multivariate hypergeometric cascade: `out[s]` ~ number of state-s
    /// items among `draws` draws without replacement from the population
    /// with per-state counts `base[s] - excluded[s]` (pass {} to exclude
    /// nothing).
    void draw_without_replacement(Rng& rng, const std::vector<std::uint64_t>& base,
                                  const std::vector<std::uint64_t>& excluded,
                                  std::uint64_t draws, std::vector<std::uint64_t>& out) {
        out.assign(base.size(), 0);
        std::uint64_t remaining_items = population_;
        if (!excluded.empty())
            for (const std::uint64_t count : excluded) remaining_items -= count;
        std::uint64_t remaining_draws = draws;
        for (State s = 0; s < base.size() && remaining_draws > 0; ++s) {
            const std::uint64_t available =
                base[s] - (excluded.empty() ? 0 : excluded[s]);
            if (available == 0) continue;
            const std::uint64_t k =
                rng.hypergeometric(available, remaining_items - available, remaining_draws);
            out[s] = k;
            remaining_draws -= k;
            remaining_items -= available;
        }
    }

    /// Books `k` executed interactions of ordered pair type (p, q):
    /// accumulates the post-transition states into touched_ and the
    /// effective / output-change aggregates into `outcome`.
    void apply_pair_type(State p, State q, std::uint64_t k, BatchOutcome& outcome) {
        const StatePair next = protocol_.apply_fast(p, q);
        touched_[next.initiator] += k;
        touched_[next.responder] += k;
        if (!eff_.effective(p, q)) return;
        outcome.effective += k;
        const Symbol out_p = protocol_.output_fast(p);
        const Symbol out_q = protocol_.output_fast(q);
        const Symbol out_pn = protocol_.output_fast(next.initiator);
        const Symbol out_qn = protocol_.output_fast(next.responder);
        if (!((out_pn == out_p && out_qn == out_q) || (out_pn == out_q && out_qn == out_p)))
            outcome.output_changed = true;
    }

    /// The ordered pair that terminated the collision-free run: uniform over
    /// the n(n-1) - (n-2m)(n-2m-1) ordered pairs touching at least one of
    /// the 2m used agents, whose post-batch states are the touched_
    /// multiset; the untouched remainder is counts_ - touched_.
    void resolve_collision(Rng& rng, std::uint64_t m, BatchOutcome& outcome) {
        const std::size_t num_states = eff_.num_states;
        untouched_.resize(num_states);
        for (State s = 0; s < num_states; ++s) untouched_[s] = counts_[s] - touched_[s];

        const std::uint64_t touched_total = 2 * m;
        const std::uint64_t untouched_total = population_ - touched_total;
        const std::uint64_t w_tt = touched_total * (touched_total - 1);
        const std::uint64_t w_tu = touched_total * untouched_total;  // == w_ut
        const std::uint64_t which = rng.below(w_tt + 2 * w_tu);

        State p = 0;
        State q = 0;
        if (which < w_tt) {
            p = pick(touched_, rng.below(touched_total));
            --touched_[p];
            q = pick(touched_, rng.below(touched_total - 1));
            ++touched_[p];
        } else if (which < w_tt + w_tu) {
            p = pick(touched_, rng.below(touched_total));
            q = pick(untouched_, rng.below(untouched_total));
        } else {
            p = pick(untouched_, rng.below(untouched_total));
            q = pick(touched_, rng.below(touched_total));
        }

        const StatePair next = protocol_.apply_fast(p, q);
        --counts_[p];
        --counts_[q];
        ++counts_[next.initiator];
        ++counts_[next.responder];
        if (eff_.effective(p, q)) {
            ++outcome.effective;
            const Symbol out_p = protocol_.output_fast(p);
            const Symbol out_q = protocol_.output_fast(q);
            const Symbol out_pn = protocol_.output_fast(next.initiator);
            const Symbol out_qn = protocol_.output_fast(next.responder);
            if (!((out_pn == out_p && out_qn == out_q) ||
                  (out_pn == out_q && out_qn == out_p)))
                outcome.output_changed = true;
        }
    }

    /// The state of the `index`-th item (0-based) of the multiset `counts`.
    static State pick(const std::vector<std::uint64_t>& counts, std::uint64_t index) {
        for (State s = 0; s < counts.size(); ++s) {
            if (index < counts[s]) return s;
            index -= counts[s];
        }
        ensure(false, "simulate_collapsed: internal multiset-pick invariant violated");
        return 0;
    }

    // W = number of effective ordered agent pairs; W == 0 iff silent.
    // Recomputed O(|Q|^2) once per super-step (amortized over ~sqrt(n)
    // interactions, unlike the count-batch engine's per-step bookkeeping).
    void recompute_effective_pairs() {
        const std::size_t num_states = eff_.num_states;
        std::uint64_t w = 0;
        for (State p = 0; p < num_states; ++p) {
            if (counts_[p] == 0) continue;
            const std::uint8_t* row =
                eff_.eff_row.data() + static_cast<std::size_t>(p) * num_states;
            for (State q = 0; q < num_states; ++q)
                if (row[q]) w += counts_[p] * (counts_[q] - (p == q ? 1 : 0));
        }
        effective_pairs_ = w;
    }

    const TabulatedProtocol& protocol_;
    EffectTables eff_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t population_;
    std::uint64_t effective_pairs_ = 0;
    std::vector<double> survival_;

    // Per-super-step scratch (members to avoid reallocation).
    std::vector<std::uint64_t> initiators_;
    std::vector<std::uint64_t> responders_;
    std::vector<std::uint64_t> remainder_;
    std::vector<std::uint64_t> touched_;
    std::vector<std::uint64_t> untouched_;
};

}  // namespace

RunResult simulate_collapsed(const TabulatedProtocol& protocol,
                             const CountConfiguration& initial, const RunOptions& options) {
    require(initial.num_states() == protocol.num_states(),
            "simulate_collapsed: configuration does not match protocol");
    const std::uint64_t n = initial.population_size();
    require(n >= 2, "simulate_collapsed: need at least two agents");
    require(n < (std::uint64_t{1} << 32), "simulate_collapsed: population must fit 32 bits");
    require_engine_field(options, SimulationEngine::kCollapsedBatch, "simulate_collapsed");

    CollapsedStepper stepper(protocol, initial);
    return run_loop(stepper, protocol, options, "simulate_collapsed");
}

}  // namespace popproto
