#include "core/collapsed_simulator.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "core/effect_tables.h"
#include "core/require.h"
#include "core/rng.h"
#include "core/run_loop.h"
#include "core/simd.h"
#include "core/thread_pool.h"
#include "telemetry/telemetry.h"

namespace popproto {

namespace {

/// Machinery shared by the serial and the sharded collapsed steppers: the
/// birthday-law survival table, the multivariate-hypergeometric cascades,
/// the row-matching cascade, the colliding-interaction fixup, and the W
/// recompute.  Both steppers compose exactly these pieces, so the sharded
/// engine cannot drift from the serial law by re-implementing a sampler.
class CollapsedEngineBase {
public:
    std::uint64_t population() const { return population_; }

    bool is_silent() const { return effective_pairs_ == 0; }

    /// Exact W for the adaptive dispatcher's density monitor (run_loop.h);
    /// maintained by the per-super-step recompute either way.
    std::uint64_t effective_pairs() const { return effective_pairs_; }

    /// Attaches the run's telemetry collector (nullptr = disabled); the
    /// steppers time the super-step sub-phases against it.  Probes never
    /// touch the RNG stream, so results are bit-identical either way.
    void set_telemetry(telemetry::RunTelemetryCollector* collector) {
        collector_ = telemetry::kCompiledIn ? collector : nullptr;
    }

    /// Draws the length L >= 1 of the maximal collision-free run: one
    /// uniform01 inverted through the precomputed survival table
    /// (survival_[t-1] = P(L >= t), strictly decreasing, survival_[0] = 1).
    std::uint64_t propose_super_step(Rng& rng) {
        const double u = rng.uniform01();
        // L = max{t : P(L >= t) > u}; the table is truncated once the
        // survival mass drops below ~1e-25 (or the population runs out of
        // disjoint agents), so a u below the last entry clamps to the end.
        const auto it = std::lower_bound(survival_.begin(), survival_.end(), u,
                                         std::greater<double>());
        const auto t = static_cast<std::uint64_t>(it - survival_.begin());
        return t > 0 ? t : std::uint64_t{1};  // survival_[0] = 1 > u always
    }

    CountConfiguration counts() const { return CountConfiguration::from_state_counts(counts_); }

protected:
    CollapsedEngineBase(const TabulatedProtocol& protocol, const CountConfiguration& initial)
        : protocol_(protocol),
          eff_(protocol),
          counts_(initial.counts()),
          population_(initial.population_size()) {
        build_survival_table();
        recompute_effective_pairs();
    }

    /// Multivariate hypergeometric cascade: `out[s]` ~ number of state-s
    /// items among `draws` draws without replacement from the population
    /// with per-state counts `base[s] - excluded[s]` (pass nullptr to
    /// exclude nothing).  `total_items` is the population size of that
    /// residual multiset; passing it explicitly lets the sharded stepper
    /// cascade over sub-multisets (a shard's pool) with the same code.
    static void draw_without_replacement(Rng& rng, const std::vector<std::uint64_t>& base,
                                         const std::vector<std::uint64_t>* excluded,
                                         std::uint64_t total_items, std::uint64_t draws,
                                         std::vector<std::uint64_t>& out) {
        out.assign(base.size(), 0);
        std::uint64_t remaining_items = total_items;
        std::uint64_t remaining_draws = draws;
        for (State s = 0; s < base.size() && remaining_draws > 0; ++s) {
            const std::uint64_t available = base[s] - (excluded == nullptr ? 0 : (*excluded)[s]);
            if (available == 0) continue;
            const std::uint64_t k =
                rng.hypergeometric(available, remaining_items - available, remaining_draws);
            out[s] = k;
            remaining_draws -= k;
            remaining_items -= available;
        }
    }

    /// Row-matching cascade: conditioned on the initiator multiset A and the
    /// responder multiset (passed as `remainder`, consumed in place), the
    /// bipartite initiator-responder matching is uniform, so row p of the
    /// pair-count matrix is a hypergeometric split of A[p] draws over the
    /// not-yet-matched responders.  Rows are applied on the fly into
    /// `touched` / `outcome`.
    void match_rows(Rng& rng, const std::vector<std::uint64_t>& initiators,
                    std::vector<std::uint64_t>& remainder, std::uint64_t m,
                    std::vector<std::uint64_t>& touched, BatchOutcome& outcome) const {
        const std::size_t num_states = eff_.num_states;
        std::uint64_t unmatched = m;
        for (State p = 0; p < num_states; ++p) {
            std::uint64_t left = initiators[p];
            if (left == 0) continue;
            // Row cascade: `pool` counts the unmatched responders in states
            // not yet classified for this row, so each split is an exact
            // univariate hypergeometric of the row's remaining draws.
            std::uint64_t pool = unmatched;
            for (State q = 0; q < num_states && left > 0; ++q) {
                const std::uint64_t available = remainder[q];
                if (available == 0) continue;
                const std::uint64_t k = rng.hypergeometric(available, pool - available, left);
                pool -= available;
                if (k != 0) {
                    remainder[q] -= k;
                    unmatched -= k;
                    left -= k;
                    apply_pair_type(p, q, k, touched, outcome);
                }
            }
            ensure(left == 0, "simulate_collapsed: internal matching invariant violated");
        }
    }

    /// Books `k` executed interactions of ordered pair type (p, q):
    /// accumulates the post-transition states into `touched` and the
    /// effective / output-change aggregates into `outcome`.
    void apply_pair_type(State p, State q, std::uint64_t k, std::vector<std::uint64_t>& touched,
                         BatchOutcome& outcome) const {
        const StatePair next = protocol_.apply_fast(p, q);
        touched[next.initiator] += k;
        touched[next.responder] += k;
        if (!eff_.effective(p, q)) return;
        outcome.effective += k;
        const Symbol out_p = protocol_.output_fast(p);
        const Symbol out_q = protocol_.output_fast(q);
        const Symbol out_pn = protocol_.output_fast(next.initiator);
        const Symbol out_qn = protocol_.output_fast(next.responder);
        if (!((out_pn == out_p && out_qn == out_q) || (out_pn == out_q && out_qn == out_p)))
            outcome.output_changed = true;
    }

    /// The ordered pair that terminated the collision-free run: uniform over
    /// the n(n-1) - (n-2m)(n-2m-1) ordered pairs touching at least one of
    /// the 2m used agents, whose post-batch states are the touched_
    /// multiset; the untouched remainder is counts_ - touched_.  Requires
    /// counts_ already updated for the batch and touched_ holding the full
    /// (merged) post-transition multiset of the 2m touched agents.
    void resolve_collision(Rng& rng, std::uint64_t m, BatchOutcome& outcome) {
        const std::size_t num_states = eff_.num_states;
        untouched_.resize(num_states);
        for (State s = 0; s < num_states; ++s) untouched_[s] = counts_[s] - touched_[s];

        const std::uint64_t touched_total = 2 * m;
        const std::uint64_t untouched_total = population_ - touched_total;
        const std::uint64_t w_tt = touched_total * (touched_total - 1);
        const std::uint64_t w_tu = touched_total * untouched_total;  // == w_ut
        const std::uint64_t which = rng.below(w_tt + 2 * w_tu);

        State p = 0;
        State q = 0;
        if (which < w_tt) {
            p = pick(touched_, rng.below(touched_total));
            --touched_[p];
            q = pick(touched_, rng.below(touched_total - 1));
            ++touched_[p];
        } else if (which < w_tt + w_tu) {
            p = pick(touched_, rng.below(touched_total));
            q = pick(untouched_, rng.below(untouched_total));
        } else {
            p = pick(untouched_, rng.below(untouched_total));
            q = pick(touched_, rng.below(touched_total));
        }

        const StatePair next = protocol_.apply_fast(p, q);
        --counts_[p];
        --counts_[q];
        ++counts_[next.initiator];
        ++counts_[next.responder];
        if (eff_.effective(p, q)) {
            ++outcome.effective;
            const Symbol out_p = protocol_.output_fast(p);
            const Symbol out_q = protocol_.output_fast(q);
            const Symbol out_pn = protocol_.output_fast(next.initiator);
            const Symbol out_qn = protocol_.output_fast(next.responder);
            if (!((out_pn == out_p && out_qn == out_q) ||
                  (out_pn == out_q && out_qn == out_p)))
                outcome.output_changed = true;
        }
    }

    /// The state of the `index`-th item (0-based) of the multiset `counts`.
    static State pick(const std::vector<std::uint64_t>& counts, std::uint64_t index) {
        for (State s = 0; s < counts.size(); ++s) {
            if (index < counts[s]) return s;
            index -= counts[s];
        }
        ensure(false, "simulate_collapsed: internal multiset-pick invariant violated");
        return 0;
    }

    // W = number of effective ordered agent pairs; W == 0 iff silent.
    // Recomputed O(|Q|^2) once per super-step (amortized over ~sqrt(n)
    // interactions, unlike the count-batch engine's per-step bookkeeping).
    // Each row is a masked sum over the count vector (core/simd.h) — exact
    // 64-bit integer arithmetic, so the SIMD and scalar paths agree bit for
    // bit.
    void recompute_effective_pairs() {
        const std::size_t num_states = eff_.num_states;
        std::uint64_t w = 0;
        for (State p = 0; p < num_states; ++p) {
            if (counts_[p] == 0) continue;
            const std::uint8_t* row =
                eff_.eff_row.data() + static_cast<std::size_t>(p) * num_states;
            const std::uint64_t row_sum = simd::masked_sum(row, counts_.data(), num_states);
            w += counts_[p] * (row_sum - (row[p] ? 1 : 0));
        }
        effective_pairs_ = w;
    }

    /// Checkpoint payload shared by both steppers: the count vector (the
    /// sharded stepper additionally carries its shard streams).
    void save_counts(RunCheckpoint& checkpoint) const { checkpoint.counts = counts_; }

    void restore_counts(const RunCheckpoint& checkpoint) {
        require(checkpoint.counts.size() == counts_.size(),
                "simulate_collapsed: checkpoint state-count mismatch");
        std::uint64_t total = 0;
        for (const std::uint64_t count : checkpoint.counts) total += count;
        require(total == population_, "simulate_collapsed: checkpoint population mismatch");
        counts_ = checkpoint.counts;
        recompute_effective_pairs();
    }

    const TabulatedProtocol& protocol_;
    EffectTables eff_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t population_;
    std::uint64_t effective_pairs_ = 0;
    telemetry::RunTelemetryCollector* collector_ = nullptr;

    // Per-super-step scratch (members to avoid reallocation).
    std::vector<std::uint64_t> touched_;
    std::vector<std::uint64_t> untouched_;

private:
    /// survival_[t-1] = P(first t pairs touch pairwise-disjoint agents)
    ///               = prod_{i<t} (n-2i)(n-2i-1) / (n(n-1)).
    /// Depends only on n; ~6.7 sqrt(n) entries before the 1e-25 cutoff.
    void build_survival_table() {
        const double n = static_cast<double>(population_);
        const double total_pairs = n * (n - 1.0);
        double survival = 1.0;
        std::uint64_t t = 1;
        survival_.clear();
        survival_.push_back(1.0);
        while (population_ >= 2 * t + 2) {
            const double free_agents = n - 2.0 * static_cast<double>(t);
            survival *= free_agents * (free_agents - 1.0) / total_pairs;
            if (survival < 1e-25) break;
            survival_.push_back(survival);
            ++t;
        }
    }

    std::vector<double> survival_;
};

/// The serial collapsed super-step sampler (collapsed_simulator.h):
/// collision-free runs of ~sqrt(n) ordered pairs are assigned to state
/// pairs by exact hypergeometric count splits and applied as one aggregate
/// delta; the single colliding interaction terminating each run is resolved
/// individually.
class CollapsedStepper : public CollapsedEngineBase {
public:
    static constexpr ObservedEngine kEngine = ObservedEngine::kCollapsed;
    static constexpr SilenceMode kSilenceMode = SilenceMode::kExact;
    static constexpr bool kGeometricSkips = false;
    static constexpr bool kSuperSteps = true;

    CollapsedStepper(const TabulatedProtocol& protocol, const CountConfiguration& initial)
        : CollapsedEngineBase(protocol, initial) {}

    /// Executes `m` collision-free pairs (2m distinct agents) as one
    /// aggregate count update, then the single colliding interaction when
    /// `with_collision` (the kernel clamps boundary-crossing runs instead).
    BatchOutcome apply_super_step(Rng& rng, std::uint64_t m, bool with_collision) {
        const std::size_t num_states = eff_.num_states;
        BatchOutcome outcome;

        {
            const telemetry::ScopedTimer timer(collector_, telemetry::Phase::kPairCascade);
            // Initiator multiset A: m draws without replacement from the
            // count vector (multivariate hypergeometric, as a cascade of
            // exact univariate splits); responder multiset B: m more draws
            // from the remainder.  By exchangeability of the 2m
            // uniformly-chosen agent slots this matches drawing the pairs
            // one by one.
            draw_without_replacement(rng, counts_, nullptr, population_, m, initiators_);
            draw_without_replacement(rng, counts_, &initiators_, population_ - m, m,
                                     responders_);

            touched_.assign(num_states, 0);
            remainder_ = responders_;
            match_rows(rng, initiators_, remainder_, m, touched_, outcome);
        }

        {
            const telemetry::ScopedTimer timer(collector_, telemetry::Phase::kDeltaMerge);
            // New counts: the untouched agents keep their states; the 2m
            // touched agents land on the post-transition multiset.
            simd::add_sub_sub(counts_.data(), touched_.data(), initiators_.data(),
                              responders_.data(), num_states);
        }

        if (with_collision) {
            const telemetry::ScopedTimer timer(collector_, telemetry::Phase::kCollisionFixup);
            resolve_collision(rng, m, outcome);
        }

        {
            const telemetry::ScopedTimer timer(collector_, telemetry::Phase::kWRecompute);
            recompute_effective_pairs();
        }
        return outcome;
    }

    void save(RunCheckpoint& checkpoint) const { save_counts(checkpoint); }

    void restore(const RunCheckpoint& checkpoint) { restore_counts(checkpoint); }

private:
    std::vector<std::uint64_t> initiators_;
    std::vector<std::uint64_t> responders_;
    std::vector<std::uint64_t> remainder_;
};

/// The sharded collapsed stepper (RunOptions::threads = K >= 2): each
/// super-step's m pairs are split across K shards and sampled concurrently.
///
/// Exchangeability argument: the serial batch is a uniform ordered sample
/// of 2m distinct agents — m initiators, m responders, uniformly matched.
/// Partitioning the m pair slots into K contiguous blocks of sizes m_k and
/// drawing, on the *parent* stream, the pooled 2m_k agents of each block as
/// a sequential multivariate-hypergeometric cascade over the residual
/// counts yields the exact joint law of the per-shard pools (agents of a
/// without-replacement sample are exchangeable).  Conditioned on its pool,
/// shard k's initiator multiset is a uniform 2m_k-choose-m_k split and its
/// matching is uniform — both sampled on shard k's private *child* stream
/// with the same cascades the serial stepper uses.  The union of the
/// shards' pair-type counts therefore has the serial distribution for
/// every K.
///
/// Determinism contract: shard k always consumes shard stream k and writes
/// shard scratch k, and the merge is a fixed-order reduction, so the result
/// is bit-identical for a fixed (seed, K) across machines, pool schedules,
/// and the inline small-batch path.  Different K consume different
/// streams: agreement across thread counts is distributional.
class ParallelCollapsedStepper : public CollapsedEngineBase {
public:
    static constexpr ObservedEngine kEngine = ObservedEngine::kParallelCollapsed;
    static constexpr SilenceMode kSilenceMode = SilenceMode::kExact;
    static constexpr bool kGeometricSkips = false;
    static constexpr bool kSuperSteps = true;
    static constexpr bool kParallel = true;

    ParallelCollapsedStepper(const TabulatedProtocol& protocol,
                             const CountConfiguration& initial, unsigned threads)
        : CollapsedEngineBase(protocol, initial), shards_(threads), pool_(threads) {
        require(threads >= 2, "simulate_collapsed: parallel stepper needs threads >= 2");
    }

    /// Same birthday-law proposal as the serial stepper, but the first call
    /// also carves the K shard streams off the parent stream (K splits =
    /// K disjoint 2^128-draw blocks; see Rng::split).  Splitting at a fixed
    /// point of the parent stream keeps the whole run deterministic in
    /// (seed, K), and doing it before any super-step work means every
    /// checkpoint the kernel can take carries live shard streams.
    std::uint64_t propose_super_step(Rng& rng) {
        if (!shard_streams_ready_) {
            for (Shard& shard : shards_) shard.rng = rng.split();
            shard_streams_ready_ = true;
        }
        return CollapsedEngineBase::propose_super_step(rng);
    }

    /// Resolved shard count, reported into RunTelemetry::threads.
    unsigned threads() const { return static_cast<unsigned>(shards_.size()); }

    BatchOutcome apply_super_step(Rng& rng, std::uint64_t m, bool with_collision) {
        const std::size_t num_states = eff_.num_states;
        const std::size_t num_shards = shards_.size();
        BatchOutcome outcome;

        // Deferred until the first super-step: the collector's epoch is set
        // by begin_run, which runs after set_telemetry.
        if (collector_ != nullptr && !pool_telemetry_ready_) {
            collector_->pool().configure(num_shards, collector_->epoch(),
                                         collector_->max_spans());
            pool_.set_telemetry(&collector_->pool());
            pool_telemetry_ready_ = true;
        }

        {
            const telemetry::ScopedTimer timer(collector_, telemetry::Phase::kShardCarve);
            // Phase 1, parent stream: carve the 2m touched agents into
            // per-shard pools by a sequential multivariate-hypergeometric
            // cascade over the residual counts.  Shard sizes m_k = m/K
            // rounded, sum m; shards with m_k = 0 draw nothing.
            residual_ = counts_;
            std::uint64_t remaining_items = population_;
            for (std::size_t k = 0; k < num_shards; ++k) {
                Shard& shard = shards_[k];
                shard.m = m / num_shards + (k < m % num_shards ? 1 : 0);
                draw_without_replacement(rng, residual_, nullptr, remaining_items, 2 * shard.m,
                                         shard.pool);
                for (State s = 0; s < num_states; ++s) residual_[s] -= shard.pool[s];
                remaining_items -= 2 * shard.m;
            }
        }

        // Phase 2, child streams, in parallel: each shard splits its pool
        // into initiators and responders and runs the matching cascade on
        // its own scratch.  Small batches skip the pool's wakeup round-trip
        // and run inline — bit-identical, since the pool never influences
        // what a shard computes, only where it runs.
        const auto run_shard = [this, num_states](std::size_t k) {
            Shard& shard = shards_[k];
            shard.outcome = BatchOutcome{};
            shard.touched.assign(num_states, 0);
            if (shard.m == 0) return;
            draw_without_replacement(shard.rng, shard.pool, nullptr, 2 * shard.m, shard.m,
                                     shard.initiators);
            shard.remainder.resize(num_states);
            for (State s = 0; s < num_states; ++s)
                shard.remainder[s] = shard.pool[s] - shard.initiators[s];
            match_rows(shard.rng, shard.initiators, shard.remainder, shard.m, shard.touched,
                       shard.outcome);
        };
        {
            const telemetry::ScopedTimer timer(collector_, telemetry::Phase::kShardTasks);
            if (m >= kMinPairsPerWorker * num_shards) {
                pool_.run(num_shards, run_shard);
            } else {
                for (std::size_t k = 0; k < num_shards; ++k) run_shard(k);
                if (collector_ != nullptr) collector_->record_inline_round();
            }
        }

        {
            const telemetry::ScopedTimer timer(collector_, telemetry::Phase::kDeltaMerge);
            // Phase 3, fixed-order merge: touched multiset, effective count,
            // output flag.  New counts = residual (the agents no shard drew)
            // plus the merged post-transition multiset.
            touched_.assign(num_states, 0);
            for (const Shard& shard : shards_) {
                simd::add(touched_.data(), shard.touched.data(), num_states);
                outcome.effective += shard.outcome.effective;
                outcome.output_changed = outcome.output_changed || shard.outcome.output_changed;
            }
            counts_ = residual_;
            simd::add(counts_.data(), touched_.data(), num_states);
        }

        // Phase 4, parent stream: the colliding interaction sees only the
        // merged touched multiset, exactly as in the serial stepper.
        if (with_collision) {
            const telemetry::ScopedTimer timer(collector_, telemetry::Phase::kCollisionFixup);
            resolve_collision(rng, m, outcome);
        }

        {
            const telemetry::ScopedTimer timer(collector_, telemetry::Phase::kWRecompute);
            recompute_effective_pairs();
        }
        return outcome;
    }

    void save(RunCheckpoint& checkpoint) const {
        save_counts(checkpoint);
        ensure(shard_streams_ready_,
               "simulate_collapsed: checkpoint requested before the first super-step");
        checkpoint.shard_rngs.reserve(shards_.size());
        for (const Shard& shard : shards_) checkpoint.shard_rngs.push_back(shard.rng.save_state());
    }

    void restore(const RunCheckpoint& checkpoint) {
        restore_counts(checkpoint);
        require(checkpoint.shard_rngs.size() == shards_.size(),
                "simulate_collapsed: checkpoint was taken with " +
                    std::to_string(checkpoint.shard_rngs.size()) +
                    " shard streams; resume with RunOptions::threads equal to that count");
        for (std::size_t k = 0; k < shards_.size(); ++k)
            shards_[k].rng.restore_state(checkpoint.shard_rngs[k]);
        shard_streams_ready_ = true;
    }

private:
    /// Below this many pairs per worker the fork-merge wakeup costs more
    /// than the shard work; the inline path keeps tiny populations fast.
    static constexpr std::uint64_t kMinPairsPerWorker = 64;

    struct Shard {
        Rng rng{0};  // replaced by a split of the parent stream before use
        std::uint64_t m = 0;
        std::vector<std::uint64_t> pool;
        std::vector<std::uint64_t> initiators;
        std::vector<std::uint64_t> remainder;
        std::vector<std::uint64_t> touched;
        BatchOutcome outcome;
    };

    std::vector<Shard> shards_;
    ThreadPool pool_;
    bool shard_streams_ready_ = false;
    bool pool_telemetry_ready_ = false;
    std::vector<std::uint64_t> residual_;
};

/// RunOptions::threads with 0 resolved to the hardware concurrency.
unsigned resolved_threads(const RunOptions& options) {
    if (options.threads != 0) return options.threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

}  // namespace

RunResult simulate_collapsed(const TabulatedProtocol& protocol,
                             const CountConfiguration& initial, const RunOptions& options) {
    require(initial.num_states() == protocol.num_states(),
            "simulate_collapsed: configuration does not match protocol");
    const std::uint64_t n = initial.population_size();
    require(n >= 2, "simulate_collapsed: need at least two agents");
    require(n < (std::uint64_t{1} << 32), "simulate_collapsed: population must fit 32 bits");
    require_engine_field(options, SimulationEngine::kCollapsedBatch, "simulate_collapsed");

    const unsigned threads = resolved_threads(options);
    require(threads <= 4096, "simulate_collapsed: threads must be at most 4096");
    if (threads <= 1) {
        CollapsedStepper stepper(protocol, initial);
        stepper.set_telemetry(options.telemetry);
        return run_loop(stepper, protocol, options, "simulate_collapsed");
    }
    ParallelCollapsedStepper stepper(protocol, initial, threads);
    stepper.set_telemetry(options.telemetry);
    return run_loop(stepper, protocol, options, "simulate_collapsed");
}

}  // namespace popproto
