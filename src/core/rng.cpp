#include "core/rng.h"

#include <cmath>
#include <vector>

#include "core/simd.h"

namespace popproto {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
    // xoshiro must not start in the all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless method with rejection for exact uniformity.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform01() noexcept {
    // 53 random bits scaled into [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

void Rng::jump() noexcept {
    // Blackman & Vigna's jump constants for xoshiro256**: the state-update
    // matrix raised to 2^128, expressed in the polynomial basis.
    static constexpr std::uint64_t kJump[4] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (const std::uint64_t word : kJump) {
        for (int bit = 0; bit < 64; ++bit) {
            if (word & (std::uint64_t{1} << bit)) {
                s0 ^= state_[0];
                s1 ^= state_[1];
                s2 ^= state_[2];
                s3 ^= state_[3];
            }
            (*this)();
        }
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
}

Rng Rng::split() noexcept {
    Rng child = *this;  // child keeps the current position...
    jump();             // ...and the parent moves 2^128 draws past it
    return child;
}

Rng::StreamState Rng::save_state() const noexcept {
    StreamState state;
    for (int i = 0; i < 4; ++i) state.words[static_cast<std::size_t>(i)] = state_[i];
    return state;
}

void Rng::restore_state(const StreamState& state) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = state.words[static_cast<std::size_t>(i)];
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

namespace {

// ln(k!) for k < kLogFactorialTableSize, built once on first use (the
// thread-safe static covers the parallel trial harness).  Every argument at
// a call site is an integral count, so small arguments hit the table and
// skip lgamma — the dominant fixed cost of a binomial/hypergeometric draw
// for the small splits of the collapsed engine's cascades.
constexpr std::size_t kLogFactorialTableSize = 2048;

double log_factorial(double x) noexcept {
    static const std::vector<double> table = [] {
        std::vector<double> t(kLogFactorialTableSize, 0.0);
        for (std::size_t k = 2; k < kLogFactorialTableSize; ++k)
            t[k] = t[k - 1] + std::log(static_cast<double>(k));
        return t;
    }();
    if (x < static_cast<double>(kLogFactorialTableSize))
        return table[static_cast<std::size_t>(x)];
    return std::lgamma(x + 1.0);
}

// log C(a, b) for 0 <= b <= a.
double log_choose(double a, double b) noexcept {
    return log_factorial(a) - log_factorial(b) - log_factorial(a - b);
}

// log of the hypergeometric pmf at k:
//   log [ C(s, k) C(f, d - k) / C(s + f, d) ]
// expanded into its nine log-factorials and evaluated as a 4+4 signed
// vector sum (core/simd.h) plus the one trailing term.  Identical grouping
// in the SIMD and scalar builds keeps the two bit-compatible.
double hypergeometric_log_pmf(double s, double f, double d, double k) noexcept {
    const double plus[4] = {log_factorial(s), log_factorial(f), log_factorial(d),
                            log_factorial(s + f - d)};
    const double minus[4] = {log_factorial(k), log_factorial(s - k),
                             log_factorial(d - k), log_factorial(f - d + k)};
    return simd::sum4_minus_sum4(plus, minus) - log_factorial(s + f);
}

}  // namespace

std::uint64_t Rng::binomial(std::uint64_t trials, double p) noexcept {
    if (trials == 0 || p <= 0.0) return 0;
    if (p >= 1.0) return trials;

    double u = uniform01();
    const double t = static_cast<double>(trials);

    // Mode of Binomial(t, p), clamped into the support.
    std::uint64_t mode = static_cast<std::uint64_t>((t + 1.0) * p);
    if (mode > trials) mode = trials;
    const double m = static_cast<double>(mode);
    const double fmode =
        std::exp(log_choose(t, m) + m * std::log(p) + (t - m) * std::log1p(-p));
    if (u < fmode) return mode;
    u -= fmode;

    // Zig-zag outward from the mode: the pmf decreases monotonically on
    // either side, so this is inverse-CDF sampling in an order that keeps
    // the expected number of iterations O(std-deviation).
    const double odds = p / (1.0 - p);
    double fup = fmode;
    double fdown = fmode;
    std::uint64_t kup = mode;
    std::uint64_t kdown = mode;
    while (kup < trials || kdown > 0) {
        if (kup < trials) {
            fup *= (t - static_cast<double>(kup)) / (static_cast<double>(kup) + 1.0) * odds;
            ++kup;
            if (u < fup) return kup;
            u -= fup;
        }
        if (kdown > 0) {
            fdown *= static_cast<double>(kdown) / (t - static_cast<double>(kdown) + 1.0) / odds;
            --kdown;
            if (u < fdown) return kdown;
            u -= fdown;
        }
        // Both running pmfs underflowed: u sits in the O(1e-16) rounding
        // residue of the total mass.  Any remaining support index has
        // negligible probability; the mode is as good a tie-break as any.
        if (fup < 1e-300 && fdown < 1e-300) break;
    }
    return mode;
}

std::uint64_t Rng::hypergeometric(std::uint64_t successes, std::uint64_t failures,
                                  std::uint64_t draws) noexcept {
    const std::uint64_t total = successes + failures;
    if (draws == 0 || successes == 0) return 0;
    if (draws >= total) return successes;     // draw everything (overdraw clamps)
    if (failures == 0) return draws;          // every draw is a success

    // Support of the success count.
    const std::uint64_t lo = draws > failures ? draws - failures : 0;
    const std::uint64_t hi = draws < successes ? draws : successes;
    if (lo == hi) return lo;

    double u = uniform01();
    const double s = static_cast<double>(successes);
    const double f = static_cast<double>(failures);
    const double d = static_cast<double>(draws);

    // Mode of Hypergeometric(successes, failures, draws), clamped.
    std::uint64_t mode = static_cast<std::uint64_t>((d + 1.0) * (s + 1.0) / (s + f + 2.0));
    if (mode < lo) mode = lo;
    if (mode > hi) mode = hi;
    const double m = static_cast<double>(mode);
    const double fmode = std::exp(hypergeometric_log_pmf(s, f, d, m));
    if (u < fmode) return mode;
    u -= fmode;

    // Same mode-centered zig-zag as binomial(), with the hypergeometric
    // pmf recurrence f(k+1)/f(k) = (s-k)(d-k) / ((k+1)(f-d+k+1)).
    double fup = fmode;
    double fdown = fmode;
    std::uint64_t kup = mode;
    std::uint64_t kdown = mode;
    while (kup < hi || kdown > lo) {
        if (kup < hi) {
            const double k = static_cast<double>(kup);
            fup *= (s - k) * (d - k) / ((k + 1.0) * (f - d + k + 1.0));
            ++kup;
            if (u < fup) return kup;
            u -= fup;
        }
        if (kdown > lo) {
            const double k = static_cast<double>(kdown);
            fdown *= k * (f - d + k) / ((s - k + 1.0) * (d - k + 1.0));
            --kdown;
            if (u < fdown) return kdown;
            u -= fdown;
        }
        if (fup < 1e-300 && fdown < 1e-300) break;  // rounding residue; see binomial()
    }
    return mode;
}

std::uint64_t Rng::geometric_skips(double success_probability) noexcept {
    if (success_probability >= 1.0) return 0;
    double u = uniform01();
    if (u <= 0.0) u = 1e-300;
    const double skips = std::floor(std::log(u) / std::log1p(-success_probability));
    if (skips < 0.0) return 0;
    if (skips > 1e18) return static_cast<std::uint64_t>(1e18);
    return static_cast<std::uint64_t>(skips);
}

}  // namespace popproto
