#include "core/rng.h"

#include <cmath>

namespace popproto {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
    // xoshiro must not start in the all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless method with rejection for exact uniformity.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform01() noexcept {
    // 53 random bits scaled into [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

Rng::StreamState Rng::save_state() const noexcept {
    StreamState state;
    for (int i = 0; i < 4; ++i) state.words[static_cast<std::size_t>(i)] = state_[i];
    return state;
}

void Rng::restore_state(const StreamState& state) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = state.words[static_cast<std::size_t>(i)];
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::geometric_skips(double success_probability) noexcept {
    if (success_probability >= 1.0) return 0;
    double u = uniform01();
    if (u <= 0.0) u = 1e-300;
    const double skips = std::floor(std::log(u) / std::log1p(-success_probability));
    if (skips < 0.0) return 0;
    if (skips > 1e18) return static_cast<std::uint64_t>(1e18);
    return static_cast<std::uint64_t>(skips);
}

}  // namespace popproto
