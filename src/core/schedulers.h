// Alternative schedulers.
//
// The paper's results hold for *every* fair execution; the uniform random
// scheduler (simulator.h) realizes fairness with probability 1 (Sect. 6).
// This module adds deterministic schedulers for testing protocols against
// qualitatively different interaction patterns:
//
//   * RoundRobinScheduler cycles through all ordered pairs in a fixed order,
//     so every permitted encounter happens infinitely often.  Note the
//     paper's footnote 2: that intuitive property is formally neither
//     necessary nor sufficient for its fairness condition - but for the
//     protocols in this library it produces correct convergence, and the
//     tests document exactly that;
//   * SweepScheduler repeatedly plays a fixed random permutation of the
//     pairs (a "synchronous-ish" pattern common in sensor deployments).
//
// Both implement the Scheduler interface consumed by simulate_with_scheduler
// and are thin adapters over the InteractionModel layer
// (core/interaction_model.h), which owns the actual pair-selection state —
// RoundRobinPairModel's cursor and SweepPairModel's permutation — and its
// serialization.  Built-in schedulers therefore checkpoint/resume
// bit-identically; custom Scheduler subclasses opt in by overriding the
// checkpoint hooks below.

#ifndef POPPROTO_CORE_SCHEDULERS_H
#define POPPROTO_CORE_SCHEDULERS_H

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/configuration.h"
#include "core/interaction_model.h"
#include "core/simulator.h"

namespace popproto {

/// Strategy choosing the next encounter.  Implementations may keep state
/// (cursors, permutations); they see the current configuration so adaptive
/// (adversarial) schedulers can be expressed too.
class Scheduler {
public:
    Scheduler() = default;
    virtual ~Scheduler() = default;
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// Returns the next ordered pair of distinct agent indices in
    /// [0, agents.size()).
    virtual AgentPair next(const AgentConfiguration& agents) = 0;

    /// Checkpoint participation.  A checkpointable scheduler serializes its
    /// cursor state into the checkpoint's interaction_model section under
    /// `model_name()`, and simulate_with_scheduler accepts checkpoint/resume
    /// for it.  The default opts out (save_state/restore_state then throw if
    /// reached); custom schedulers opt in by overriding all four methods.
    virtual bool checkpointable() const { return false; }

    /// Stable identifier recorded in checkpoints; resume requires the
    /// rebuilt scheduler to report the same name.
    virtual const char* model_name() const { return "custom"; }

    virtual void save_state(std::vector<std::uint64_t>& words) const;
    virtual void restore_state(const std::vector<std::uint64_t>& words);
};

/// Deterministic cycle over all n(n-1) ordered pairs in lexicographic order.
class RoundRobinScheduler final : public Scheduler {
public:
    explicit RoundRobinScheduler(std::size_t num_agents);
    AgentPair next(const AgentConfiguration& agents) override;
    bool checkpointable() const override { return true; }
    const char* model_name() const override { return RoundRobinPairModel::kName; }
    void save_state(std::vector<std::uint64_t>& words) const override;
    void restore_state(const std::vector<std::uint64_t>& words) override;

private:
    RoundRobinPairModel model_;
};

/// Repeatedly replays one random permutation of all ordered pairs,
/// reshuffled after each full sweep.
class SweepScheduler final : public Scheduler {
public:
    SweepScheduler(std::size_t num_agents, std::uint64_t seed);
    AgentPair next(const AgentConfiguration& agents) override;
    bool checkpointable() const override { return true; }
    const char* model_name() const override { return SweepPairModel::kName; }
    void save_state(std::vector<std::uint64_t>& words) const override;
    void restore_state(const std::vector<std::uint64_t>& words) override;

private:
    SweepPairModel model_;
};

/// Runs `protocol` from `initial` under `scheduler`.  Stopping rules are as
/// in `simulate` (silence is sound for any scheduler; the output-stability
/// window and budget also apply; max_interactions == 0 resolves to
/// default_budget(n)).  Requires options.engine == kAuto.  Checkpoint/resume
/// works for any scheduler whose `checkpointable()` is true (the built-in
/// round-robin and sweep schedulers are); requesting it for one that opts
/// out throws std::invalid_argument.
RunResult simulate_with_scheduler(const TabulatedProtocol& protocol,
                                  const AgentConfiguration& initial, Scheduler& scheduler,
                                  const RunOptions& options);

}  // namespace popproto

#endif  // POPPROTO_CORE_SCHEDULERS_H
