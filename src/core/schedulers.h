// Alternative schedulers.
//
// The paper's results hold for *every* fair execution; the uniform random
// scheduler (simulator.h) realizes fairness with probability 1 (Sect. 6).
// This module adds deterministic schedulers for testing protocols against
// qualitatively different interaction patterns:
//
//   * RoundRobinScheduler cycles through all ordered pairs in a fixed order,
//     so every permitted encounter happens infinitely often.  Note the
//     paper's footnote 2: that intuitive property is formally neither
//     necessary nor sufficient for its fairness condition - but for the
//     protocols in this library it produces correct convergence, and the
//     tests document exactly that;
//   * SweepScheduler repeatedly plays a fixed random permutation of the
//     pairs (a "synchronous-ish" pattern common in sensor deployments).
//
// Both implement the Scheduler interface consumed by simulate_with_scheduler.

#ifndef POPPROTO_CORE_SCHEDULERS_H
#define POPPROTO_CORE_SCHEDULERS_H

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/configuration.h"
#include "core/simulator.h"

namespace popproto {

/// Ordered agent pair to interact next.
using AgentPair = std::pair<std::size_t, std::size_t>;

/// Strategy choosing the next encounter.  Implementations may keep state
/// (cursors, permutations); they see the current configuration so adaptive
/// (adversarial) schedulers can be expressed too.
class Scheduler {
public:
    Scheduler() = default;
    virtual ~Scheduler() = default;
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// Returns the next ordered pair of distinct agent indices in
    /// [0, agents.size()).
    virtual AgentPair next(const AgentConfiguration& agents) = 0;
};

/// Deterministic cycle over all n(n-1) ordered pairs in lexicographic order.
class RoundRobinScheduler final : public Scheduler {
public:
    explicit RoundRobinScheduler(std::size_t num_agents);
    AgentPair next(const AgentConfiguration& agents) override;

private:
    std::vector<AgentPair> pairs_;
    std::size_t cursor_ = 0;
};

/// Repeatedly replays one random permutation of all ordered pairs,
/// reshuffled after each full sweep.
class SweepScheduler final : public Scheduler {
public:
    SweepScheduler(std::size_t num_agents, std::uint64_t seed);
    AgentPair next(const AgentConfiguration& agents) override;

private:
    void reshuffle();
    std::vector<AgentPair> pairs_;
    std::size_t cursor_ = 0;
    Rng rng_;
};

/// Runs `protocol` from `initial` under `scheduler`.  Stopping rules are as
/// in `simulate` (silence is sound for any scheduler; the output-stability
/// window and budget also apply; max_interactions == 0 resolves to
/// default_budget(n)).  Requires options.engine == kAuto; checkpoint/resume
/// is rejected because a RunCheckpoint cannot capture the Scheduler's own
/// cursor state.
RunResult simulate_with_scheduler(const TabulatedProtocol& protocol,
                                  const AgentConfiguration& initial, Scheduler& scheduler,
                                  const RunOptions& options);

}  // namespace popproto

#endif  // POPPROTO_CORE_SCHEDULERS_H
