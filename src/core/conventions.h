// Input/output encoding conventions (Sect. 3.4, "Computation on other
// domains").
//
// Population protocols natively relate input assignments to output
// assignments; computing on integers or truth values requires encoding
// conventions E_I and E_O.  This module makes the paper's conventions
// first-class:
//
//   * symbol-count input: x_i = number of agents reading sigma_i
//     (CountConfiguration::from_input_counts already constructs I(x));
//   * integer-based input: each input symbol carries a k-vector of integers
//     and the represented tuple is the population-wide sum;
//   * integer-based output: each output symbol carries a vector and the
//     represented result is the sum over all agents;
//   * all-agents / zero-nonzero predicate outputs.
//
// The decoders consume OutputSignatures (per-output-symbol agent counts), so
// they compose directly with both the analyzer and the simulator.

#ifndef POPPROTO_CORE_CONVENTIONS_H
#define POPPROTO_CORE_CONVENTIONS_H

#include <cstdint>
#include <optional>
#include <vector>

#include "core/configuration.h"
#include "core/protocol.h"

namespace popproto {

/// Per-output-symbol agent counts (as produced by
/// CountConfiguration::output_counts and the analyzer).
using OutputCounts = std::vector<std::uint64_t>;

/// Integer-based input convention: input symbol x carries the integer vector
/// symbol_values[x]; an input represents the sum of its agents' vectors.
struct IntegerInputConvention {
    std::vector<std::vector<std::int64_t>> symbol_values;

    /// Dimension k of the represented tuples.
    std::size_t arity() const;

    /// The tuple represented by `symbol_counts` agents per input symbol.
    std::vector<std::int64_t> decode(const std::vector<std::uint64_t>& symbol_counts) const;
};

/// Integer-based output convention: output symbol y carries
/// symbol_values[y]; an output assignment represents the sum over agents.
struct IntegerOutputConvention {
    std::vector<std::vector<std::int64_t>> symbol_values;

    std::size_t arity() const;
    std::vector<std::int64_t> decode(const OutputCounts& output_counts) const;
};

/// All-agents predicate convention: true/false when every agent agrees,
/// nullopt (the paper's bottom) otherwise.  Output symbols are
/// kOutputFalse/kOutputTrue.
std::optional<bool> decode_all_agents_predicate(const OutputCounts& output_counts);

/// Zero/non-zero predicate convention (Sect. 3.6): true iff at least one
/// agent outputs 1.
bool decode_zero_nonzero_predicate(const OutputCounts& output_counts);

// The exact function-computation checker built on these conventions lives in
// analysis/stable_computation.h (stably_computes_integer_function), since it
// needs the reachability analyzer.

}  // namespace popproto

#endif  // POPPROTO_CORE_CONVENTIONS_H
