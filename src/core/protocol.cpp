#include "core/protocol.h"

namespace popproto {

std::string Protocol::state_name(State q) const {
    return "q" + std::to_string(q);
}

std::string Protocol::input_name(Symbol x) const {
    return "x" + std::to_string(x);
}

std::string Protocol::output_name(Symbol y) const {
    return "y" + std::to_string(y);
}

bool Protocol::is_null_interaction(State initiator, State responder) const {
    const StatePair result = apply(initiator, responder);
    return result.initiator == initiator && result.responder == responder;
}

}  // namespace popproto
