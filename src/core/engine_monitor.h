// Runtime density monitor for the phase-adaptive dispatcher.
//
// The collapsed super-step engine advances ~1.25 sqrt(n) interactions per
// O(|Q|^2) super-step regardless of how many of them are effective; the
// count-batch engine pays O(|Q|) per *effective* interaction and crosses
// runs of nulls in O(1) geometric jumps.  Which engine wins at a given
// moment is therefore governed by one dimensionless signal:
//
//   x = rho * E[L],   rho = W / (n(n-1)),   E[L] ~= 1.2533 sqrt(n),
//
// the expected number of effective interactions inside one collision-free
// run — "how much useful work one super-step amortizes".  Dense transients
// (x large) favour the collapsed engine; sparse tails (x small) favour
// count-batch.  Both engines already maintain W exactly (it is their
// silence predicate), so evaluating x consumes no extra RNG draws and no
// extra passes over the counts.
//
// EngineSwitchMonitor polls x every `eval_period` interactions at run-loop
// boundaries and requests a mid-run engine switch through hysteresis
// thresholds (enter_collapsed > exit_collapsed) plus a minimum dwell, so a
// workload hovering near the crossover cannot thrash.  The monitor itself
// is deterministic — pure integer/float arithmetic on counters the loop
// already has — and its three words of mutable state (switch count, last
// switch index, next poll index) ride in the checkpoint's `adaptive`
// section so suspend/resume replays decisions exactly.  Thresholds are not
// checkpointed; the caller re-supplies them like the seed.

#ifndef POPPROTO_CORE_ENGINE_MONITOR_H
#define POPPROTO_CORE_ENGINE_MONITOR_H

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/observer.h"
#include "core/require.h"

namespace popproto {

/// Tuning knobs of the phase-adaptive dispatcher (RunOptions::adaptive).
/// Defaults come from bench_adaptive's measured collapsed/count-batch
/// crossover on epidemic workloads at n = 2^20..2^24 (EXPERIMENTS.md).
struct AdaptiveOptions {
    /// Switch count-batch -> collapsed when x >= enter_collapsed.
    double enter_collapsed = 48.0;
    /// Switch collapsed -> count-batch when x <= exit_collapsed.  Must be
    /// < enter_collapsed (the gap is the hysteresis band).
    double exit_collapsed = 12.0;
    /// Interactions between monitor polls; 0 resolves to n/64, clamped to
    /// >= 256.  The density only evolves over Theta(n) interactions, so
    /// ~64 polls per regime timescale detect a crossover with <2% lag —
    /// polling faster (say per collapsed super-step, every ~sqrt(n)) buys
    /// nothing and its per-poll float arithmetic is measurable against the
    /// count-batch engine's O(1)-per-run sparse cost (bench_adaptive's
    /// sparse control).
    std::uint64_t eval_period = 0;
    /// Minimum interactions between two switches; 0 resolves to
    /// 4 * eval_period.
    std::uint64_t min_dwell = 0;

    friend bool operator==(const AdaptiveOptions&, const AdaptiveOptions&) = default;
};

/// The monitor the adaptive driver (simulate_adaptive) plants into each
/// engine segment via RunOptions::switch_monitor.  The run-loop kernel
/// polls it at loop-top boundaries; when `consider` requests a switch the
/// kernel captures a checkpoint-shaped state transfer and pauses, and the
/// driver resumes it under the other engine.  Internal plumbing — not a
/// user-facing option surface.
class EngineSwitchMonitor {
public:
    EngineSwitchMonitor(std::uint64_t population, ObservedEngine entry_engine,
                        const AdaptiveOptions& options)
        : enter_(options.enter_collapsed),
          exit_(options.exit_collapsed),
          current_(entry_engine) {
        require(population >= 2, "EngineSwitchMonitor: need at least two agents");
        require(enter_ > exit_ && exit_ >= 0.0,
                "simulate_adaptive: adaptive thresholds must satisfy "
                "enter_collapsed > exit_collapsed >= 0");
        require(entry_engine == ObservedEngine::kCountBatch ||
                    entry_engine == ObservedEngine::kCollapsed,
                "EngineSwitchMonitor: entry engine must be count_batch or collapsed");
        const double n = static_cast<double>(population);
        total_pairs_ = n * (n - 1.0);
        expected_run_length_ = 1.2533141373155003 * std::sqrt(n);
        period_ = options.eval_period != 0 ? options.eval_period
                                           : std::max<std::uint64_t>(population / 64, 256);
        dwell_ = options.min_dwell != 0 ? options.min_dwell : 4 * period_;
        next_eval_ = period_;

        // Integer images of the float thresholds: the smallest W whose
        // signal clears enter_ and the largest W still at or under exit_.
        // signal() is monotone in W even under float rounding (conversion,
        // division, and multiplication by positive constants all preserve
        // order), so the integer gates decide exactly as the float compares
        // they stand in for — but the common no-switch poll in consider()
        // costs two integer compares instead of a divide and a store
        // (measurable against count-batch's O(1)-per-run sparse cost;
        // bench_adaptive's sparse control).
        const std::uint64_t max_pairs =
            population * (population - 1);  // n < 2^32, so this fits
        enter_pairs_ = threshold_image(enter_, max_pairs, /*at_least=*/true);
        exit_pairs_ = threshold_image(exit_, max_pairs, /*at_least=*/false);
    }

    /// The engine currently executing (flips on commit_switch).
    ObservedEngine current() const { return current_; }

    /// Cheap hot-path gate: is a poll due at this interaction index?
    bool due(std::uint64_t interactions) const { return interactions >= next_eval_; }

    /// x = rho * E[L] for the given effective-pair count W.
    double signal(std::uint64_t effective_pairs) const {
        return (static_cast<double>(effective_pairs) / total_pairs_) * expected_run_length_;
    }

    /// One poll: reschedules the next evaluation and, subject to hysteresis
    /// and dwell, requests a switch.  Returns true iff a switch is pending;
    /// the caller (the kernel) then captures the transfer checkpoint.
    bool consider(std::uint64_t interactions, std::uint64_t effective_pairs) {
        // Deterministic poll backoff: more than a factor of two from the
        // active threshold, stretch the next poll to 8x the period.  W
        // moves by at most e^(2 * 8/64) ~ 28% over that stretch for
        // epidemic-like dynamics — well short of the 2x margin — so a
        // crossover is still met inside the 1x band; deep inside a regime
        // the monitor all but vanishes from the run (the poll itself is
        // what bench_adaptive's sparse control prices).  A pure function of
        // (W, interactions), so resumed runs replay the same poll schedule
        // from the checkpointed next_eval.
        const bool far = current_ == ObservedEngine::kCollapsed
                             ? effective_pairs / 2 > exit_pairs_
                             : effective_pairs < enter_pairs_ / 2;
        next_eval_ = interactions + (far ? 8 * period_ : period_);
        if (pending_) return true;
        if (switches_ != 0 && interactions < last_switch_ + dwell_) return false;
        if (current_ == ObservedEngine::kCollapsed) {
            if (effective_pairs > exit_pairs_) return false;
            target_ = ObservedEngine::kCountBatch;
        } else {
            if (effective_pairs < enter_pairs_) return false;
            target_ = ObservedEngine::kCollapsed;
        }
        last_signal_ = signal(effective_pairs);
        pending_ = true;
        return true;
    }

    bool pending_switch() const { return pending_; }
    ObservedEngine pending_target() const { return target_; }

    /// Books the pending switch as executed at `interactions` (the driver
    /// calls this after capturing the transfer checkpoint).
    void commit_switch(std::uint64_t interactions) {
        require(pending_, "EngineSwitchMonitor: no switch pending");
        ++switches_;
        last_switch_ = interactions;
        current_ = target_;
        pending_ = false;
    }

    // Checkpoint plumbing: the serialized `adaptive <switches> <last_switch>
    // <next_eval>` line round-trips through these.
    std::uint64_t switches() const { return switches_; }
    std::uint64_t last_switch() const { return last_switch_; }
    std::uint64_t next_eval() const { return next_eval_; }
    void restore(std::uint64_t switches, std::uint64_t last_switch, std::uint64_t next_eval) {
        switches_ = switches;
        last_switch_ = last_switch;
        next_eval_ = next_eval;
        pending_ = false;
    }

    /// The signal at the poll that requested the pending/last switch (polls
    /// that do not fire skip the float evaluation entirely).
    double last_signal() const { return last_signal_; }
    double enter_collapsed() const { return enter_; }
    double exit_collapsed() const { return exit_; }
    std::uint64_t eval_period() const { return period_; }
    std::uint64_t min_dwell() const { return dwell_; }

private:
    /// The smallest (at_least) or largest (!at_least) W whose signal sits on
    /// `bound`'s firing side, found by nudging the float inverse of signal()
    /// until the exact compare flips; kNeverFires when no representable W
    /// qualifies (e.g. enter_collapsed too high for this population).
    std::uint64_t threshold_image(double bound, std::uint64_t max_pairs,
                                  bool at_least) const {
        const double inverse = bound * total_pairs_ / expected_run_length_;
        std::uint64_t w = inverse <= 0.0 ? 0
                          : inverse >= static_cast<double>(max_pairs)
                              ? max_pairs
                              : static_cast<std::uint64_t>(inverse);
        if (at_least) {
            while (w != 0 && signal(w - 1) >= bound) --w;
            while (w <= max_pairs && signal(w) < bound) ++w;
            return w > max_pairs ? kNeverFires : w;
        }
        while (w != 0 && signal(w) > bound) --w;
        while (w < max_pairs && signal(w + 1) <= bound) ++w;
        if (signal(w) > bound) return 0;  // even W = 0 exceeds the bound
        return w;
    }

    /// Sentinel for an enter gate no population-feasible W can reach
    /// (strictly above every real W, so `effective_pairs < enter_pairs_`
    /// always holds and the gate never fires).
    static constexpr std::uint64_t kNeverFires = ~std::uint64_t{0};

    double enter_;
    double exit_;
    double total_pairs_ = 0.0;
    double expected_run_length_ = 0.0;
    std::uint64_t period_ = 0;
    std::uint64_t dwell_ = 0;
    std::uint64_t enter_pairs_ = 0;
    std::uint64_t exit_pairs_ = 0;

    ObservedEngine current_;
    std::uint64_t switches_ = 0;
    std::uint64_t last_switch_ = 0;
    std::uint64_t next_eval_ = 0;
    bool pending_ = false;
    ObservedEngine target_ = ObservedEngine::kCountBatch;
    double last_signal_ = 0.0;
};

}  // namespace popproto

#endif  // POPPROTO_CORE_ENGINE_MONITOR_H
