#include "core/interaction_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace popproto {

WeightedPairModel::WeightedPairModel(const std::vector<double>& weights) : weights_(weights) {
    require(weights_.size() >= 2, "WeightedPairModel: need at least two agents");
    total_weight_ = 0.0;
    cumulative_.resize(weights_.size());
    for (std::size_t i = 0; i < weights_.size(); ++i) {
        require(weights_[i] > 0.0 && std::isfinite(weights_[i]),
                "WeightedPairModel: weights must be positive");
        total_weight_ += weights_[i];
        cumulative_[i] = total_weight_;
    }
}

std::size_t WeightedPairModel::draw_agent(Rng& rng) const {
    const double u = rng.uniform01() * total_weight_;
    const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    // Floating-point rounding can push u past cumulative.back(), in which
    // case lower_bound returns end(); clamp to the last agent.
    const auto index = static_cast<std::size_t>(it - cumulative_.begin());
    return index < weights_.size() ? index : weights_.size() - 1;
}

// Draws an agent other than `exclude` exactly: u is drawn over the total
// mass minus the excluded weight and mapped around that agent's interval.
// Equivalent to rejection sampling, but O(log n) even when one weight
// dominates the total mass.
std::size_t WeightedPairModel::draw_agent_excluding(Rng& rng, std::size_t exclude) const {
    const std::size_t n = weights_.size();
    const double mass_before = cumulative_[exclude] - weights_[exclude];
    double u = rng.uniform01() * (total_weight_ - weights_[exclude]);
    if (u >= mass_before) u += weights_[exclude];
    const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    auto index = static_cast<std::size_t>(it - cumulative_.begin());
    if (index >= n) index = n - 1;
    if (index == exclude) index = exclude + 1 < n ? exclude + 1 : exclude - 1;
    return index;
}

EdgeListPairModel::EdgeListPairModel(
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges, std::uint64_t num_agents)
    : edges_(std::move(edges)) {
    require(!edges_.empty(), "EdgeListPairModel: need at least one edge");
    for (const auto& [from, to] : edges_)
        require(from != to && from < num_agents && to < num_agents,
                "EdgeListPairModel: edge endpoints must be distinct agents");
}

RoundRobinPairModel::RoundRobinPairModel(std::uint64_t num_agents)
    : num_agents_(num_agents), num_pairs_(num_agents * (num_agents - 1)) {
    require(num_agents >= 2, "scheduler: need at least two agents");
}

AgentPair RoundRobinPairModel::next_pair() {
    const AgentPair pair = decode_ordered_pair(cursor_, num_agents_);
    cursor_ = (cursor_ + 1) % num_pairs_;
    return pair;
}

void RoundRobinPairModel::save_state(std::vector<std::uint64_t>& words) const {
    words.assign({cursor_});
}

void RoundRobinPairModel::restore_state(const std::vector<std::uint64_t>& words) {
    require(words.size() == 1, "round_robin: checkpoint model state must be one cursor word");
    require(words[0] < num_pairs_, "round_robin: checkpoint cursor out of range");
    cursor_ = words[0];
}

SweepPairModel::SweepPairModel(std::uint64_t num_agents, std::uint64_t seed)
    : num_agents_(num_agents), num_pairs_(num_agents * (num_agents - 1)), rng_(seed) {
    require(num_agents >= 2, "scheduler: need at least two agents");
    permutation_ = FeistelPermutation(num_pairs_, rng_);
}

AgentPair SweepPairModel::next_pair() {
    const AgentPair pair = decode_ordered_pair(permutation_(cursor_++), num_agents_);
    if (cursor_ == num_pairs_) {
        // Epoch boundary: a reshuffle is a rekey, eagerly (matching the
        // materialized implementation's eager reshuffle) so a checkpoint
        // cursor is always < num_pairs.
        permutation_.rekey(rng_);
        cursor_ = 0;
    }
    return pair;
}

void SweepPairModel::save_state(std::vector<std::uint64_t>& words) const {
    words.clear();
    words.reserve(5 + FeistelPermutation::kRounds);
    const Rng::StreamState stream = rng_.save_state();
    words.insert(words.end(), stream.words.begin(), stream.words.end());
    words.push_back(cursor_);
    const auto& keys = permutation_.keys();
    words.insert(words.end(), keys.begin(), keys.end());
}

void SweepPairModel::restore_state(const std::vector<std::uint64_t>& words) {
    require(words.size() == 5 + FeistelPermutation::kRounds,
            "sweep: checkpoint model state has the wrong length");
    Rng::StreamState stream;
    std::copy(words.begin(), words.begin() + 4, stream.words.begin());
    rng_.restore_state(stream);
    require(words[4] < num_pairs_, "sweep: checkpoint cursor out of range");
    cursor_ = words[4];
    std::array<std::uint64_t, FeistelPermutation::kRounds> keys;
    std::copy(words.begin() + 5, words.end(), keys.begin());
    permutation_ = FeistelPermutation(num_pairs_, keys);
}

}  // namespace popproto
