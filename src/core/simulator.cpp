#include "core/simulator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/require.h"
#include "core/run_loop.h"

namespace popproto {

namespace {

/// Uniform random pairing over an expanded agent array: one ordered pair of
/// distinct agents per step, O(1) per interaction (the reference sampler).
class AgentArrayStepper {
public:
    static constexpr ObservedEngine kEngine = ObservedEngine::kAgentArray;
    static constexpr SilenceMode kSilenceMode = SilenceMode::kPeriodic;
    static constexpr bool kGeometricSkips = false;
    static constexpr bool kSuperSteps = false;

    AgentArrayStepper(const TabulatedProtocol& protocol, const CountConfiguration& initial)
        : protocol_(protocol),
          states_(AgentConfiguration::from_counts(initial).states()),
          counts_(initial.counts()) {}

    std::uint64_t population() const { return states_.size(); }

    bool is_silent() const { return multiset_silent(protocol_, counts_); }

    std::uint64_t propose_skip(Rng&) { return 0; }

    StepOutcome step(Rng& rng) {
        const std::uint64_t n = states_.size();
        const std::uint64_t i = rng.below(n);
        std::uint64_t j = rng.below(n - 1);
        if (j >= i) ++j;

        const State p = states_[i];
        const State q = states_[j];
        const StatePair next = protocol_.apply_fast(p, q);
        StepOutcome outcome;
        if (next.initiator != p || next.responder != q) {
            outcome.changed = true;
            outcome.output_changed =
                protocol_.output_fast(next.initiator) != protocol_.output_fast(p) ||
                protocol_.output_fast(next.responder) != protocol_.output_fast(q);
            states_[i] = next.initiator;
            states_[j] = next.responder;
            --counts_[p];
            --counts_[q];
            ++counts_[next.initiator];
            ++counts_[next.responder];
        }
        return outcome;
    }

    CountConfiguration counts() const { return CountConfiguration::from_state_counts(counts_); }

    void save(RunCheckpoint& checkpoint) const { checkpoint.agent_states = states_; }

    void restore(const RunCheckpoint& checkpoint) {
        require(checkpoint.agent_states.size() == states_.size(),
                "simulate: checkpoint agent count mismatch");
        states_ = checkpoint.agent_states;
        std::fill(counts_.begin(), counts_.end(), 0);
        for (const State q : states_) {
            require(q < counts_.size(), "simulate: checkpoint state out of range");
            ++counts_[q];
        }
    }

private:
    const TabulatedProtocol& protocol_;
    std::vector<State> states_;
    std::vector<std::uint64_t> counts_;
};

/// Weighted pairing (Sect. 8): ordered pair (i, j), i != j, with probability
/// proportional to weights[i] * weights[j], via inverse-CDF draws.
class WeightedStepper {
public:
    static constexpr ObservedEngine kEngine = ObservedEngine::kWeighted;
    static constexpr SilenceMode kSilenceMode = SilenceMode::kPeriodic;
    static constexpr bool kGeometricSkips = false;
    static constexpr bool kSuperSteps = false;

    WeightedStepper(const TabulatedProtocol& protocol, const AgentConfiguration& initial,
                    const std::vector<double>& weights)
        : protocol_(protocol),
          states_(initial.states()),
          counts_(protocol.num_states(), 0),
          weights_(weights) {
        for (const State q : states_) ++counts_[q];
        total_weight_ = 0.0;
        cumulative_.resize(weights.size());
        for (std::size_t i = 0; i < weights.size(); ++i) {
            total_weight_ += weights[i];
            cumulative_[i] = total_weight_;
        }
    }

    std::uint64_t population() const { return states_.size(); }

    bool is_silent() const { return multiset_silent(protocol_, counts_); }

    std::uint64_t propose_skip(Rng&) { return 0; }

    StepOutcome step(Rng& rng) {
        const std::size_t i = draw_agent(rng);
        // Rejection is cheap when weights are balanced, but when one weight
        // carries almost all the mass a collision loop could spin for an
        // unbounded number of draws; fall back to the exact exclusion draw.
        std::size_t j = draw_agent(rng);
        for (int attempt = 0; j == i; ++attempt) {
            if (attempt >= 16) {
                j = draw_agent_excluding(rng, i);
                break;
            }
            j = draw_agent(rng);
        }

        const State p = states_[i];
        const State q = states_[j];
        const StatePair next = protocol_.apply_fast(p, q);
        StepOutcome outcome;
        if (next.initiator != p || next.responder != q) {
            outcome.changed = true;
            outcome.output_changed =
                protocol_.output_fast(next.initiator) != protocol_.output_fast(p) ||
                protocol_.output_fast(next.responder) != protocol_.output_fast(q);
            states_[i] = next.initiator;
            states_[j] = next.responder;
            --counts_[p];
            --counts_[q];
            ++counts_[next.initiator];
            ++counts_[next.responder];
        }
        return outcome;
    }

    CountConfiguration counts() const { return CountConfiguration::from_state_counts(counts_); }

    void save(RunCheckpoint& checkpoint) const { checkpoint.agent_states = states_; }

    void restore(const RunCheckpoint& checkpoint) {
        require(checkpoint.agent_states.size() == states_.size(),
                "simulate_weighted: checkpoint agent count mismatch");
        states_ = checkpoint.agent_states;
        std::fill(counts_.begin(), counts_.end(), 0);
        for (const State q : states_) {
            require(q < counts_.size(), "simulate_weighted: checkpoint state out of range");
            ++counts_[q];
        }
    }

private:
    std::size_t draw_agent(Rng& rng) const {
        const double u = rng.uniform01() * total_weight_;
        const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
        // Floating-point rounding can push u past cumulative.back(), in
        // which case lower_bound returns end(); clamp to the last agent.
        const auto index = static_cast<std::size_t>(it - cumulative_.begin());
        return index < states_.size() ? index : states_.size() - 1;
    }

    // Draws an agent other than `exclude` exactly: u is drawn over the total
    // mass minus the excluded weight and mapped around that agent's
    // interval.  Equivalent to rejection sampling, but O(log n) even when
    // one weight dominates the total mass.
    std::size_t draw_agent_excluding(Rng& rng, std::size_t exclude) const {
        const std::size_t n = states_.size();
        const double mass_before = cumulative_[exclude] - weights_[exclude];
        double u = rng.uniform01() * (total_weight_ - weights_[exclude]);
        if (u >= mass_before) u += weights_[exclude];
        const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
        auto index = static_cast<std::size_t>(it - cumulative_.begin());
        if (index >= n) index = n - 1;
        if (index == exclude) index = exclude + 1 < n ? exclude + 1 : exclude - 1;
        return index;
    }

    const TabulatedProtocol& protocol_;
    std::vector<State> states_;
    std::vector<std::uint64_t> counts_;
    std::vector<double> weights_;
    std::vector<double> cumulative_;
    double total_weight_ = 0.0;
};

}  // namespace

RunResult simulate(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                   const RunOptions& options) {
    require(initial.num_states() == protocol.num_states(),
            "simulate: configuration does not match protocol");
    require(initial.population_size() >= 2, "simulate: need at least two agents");
    require_engine_field(options, SimulationEngine::kAgentArray, "simulate");

    AgentArrayStepper stepper(protocol, initial);
    return run_loop(stepper, protocol, options, "simulate");
}

RunResult simulate_weighted(const TabulatedProtocol& protocol,
                            const AgentConfiguration& initial,
                            const std::vector<double>& weights, const RunOptions& options) {
    const std::size_t n = initial.size();
    require(n >= 2, "simulate_weighted: need at least two agents");
    require(weights.size() == n, "simulate_weighted: one weight per agent required");
    require_engine_field(options, SimulationEngine::kAuto, "simulate_weighted");
    for (const double w : weights)
        require(w > 0.0 && std::isfinite(w), "simulate_weighted: weights must be positive");

    WeightedStepper stepper(protocol, initial, weights);
    return run_loop(stepper, protocol, options, "simulate_weighted");
}

}  // namespace popproto
