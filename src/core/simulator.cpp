#include "core/simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "core/require.h"

namespace popproto {

namespace {

/// True iff no possible interaction among the present states changes the
/// multiset of states (swaps and identities are allowed; see
/// CountConfiguration::is_silent).
bool counts_silent(const TabulatedProtocol& protocol, const std::vector<std::uint64_t>& counts,
                   const std::vector<State>& present_scratch) {
    for (State p : present_scratch) {
        for (State q : present_scratch) {
            if (p == q && counts[p] < 2) continue;
            const StatePair result = protocol.apply_fast(p, q);
            const bool multiset_preserved =
                (result.initiator == p && result.responder == q) ||
                (result.initiator == q && result.responder == p);
            if (!multiset_preserved) return false;
        }
    }
    return true;
}

/// Seconds elapsed since `start` (observer wall-clock bookkeeping).
double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

RunResult simulate(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                   const RunOptions& options) {
    require(initial.num_states() == protocol.num_states(),
            "simulate: configuration does not match protocol");
    const std::uint64_t n = initial.population_size();
    require(n >= 2, "simulate: need at least two agents");
    require(options.max_interactions > 0, "simulate: max_interactions must be positive");

    Rng rng(options.seed);
    AgentConfiguration agents = AgentConfiguration::from_counts(initial);
    std::vector<State> states = agents.states();
    std::vector<std::uint64_t> counts = initial.counts();

    const std::uint64_t check_period = options.silence_check_period != 0
                                           ? options.silence_check_period
                                           : std::max<std::uint64_t>(4 * n, 1024);

    RunResult result{CountConfiguration(protocol.num_states()), StopReason::kBudget, 0, 0, 0,
                     std::nullopt};

    RunObserver* const observer = options.observer;
    std::uint64_t next_snapshot =
        observer ? options.snapshots.first_index() : SnapshotSchedule::kNever;
    std::chrono::steady_clock::time_point wall_start;
    if (observer) {
        wall_start = std::chrono::steady_clock::now();
        RunStartInfo info;
        info.engine = ObservedEngine::kAgentArray;
        info.population = n;
        info.num_states = protocol.num_states();
        info.seed = options.seed;
        info.max_interactions = options.max_interactions;
        info.initial = &initial;
        info.protocol = &protocol;
        observer->on_start(info);
    }

    std::vector<State> present;
    std::uint64_t next_check = check_period;
    std::uint64_t since_last_check = 1;  // force a pre-loop silence test path below

    // A configuration that starts silent should terminate immediately.
    present.clear();
    for (State q = 0; q < counts.size(); ++q)
        if (counts[q] > 0) present.push_back(q);
    bool silent = counts_silent(protocol, counts, present);
    if (observer) observer->on_silence_check(0, silent);

    while (!silent && result.interactions < options.max_interactions) {
        const std::uint64_t i = rng.below(n);
        std::uint64_t j = rng.below(n - 1);
        if (j >= i) ++j;
        ++result.interactions;

        const State p = states[i];
        const State q = states[j];
        const StatePair next = protocol.apply_fast(p, q);
        if (next.initiator != p || next.responder != q) {
            ++result.effective_interactions;
            since_last_check = 1;
            if (protocol.output_fast(next.initiator) != protocol.output_fast(p) ||
                protocol.output_fast(next.responder) != protocol.output_fast(q)) {
                result.last_output_change = result.interactions;
                if (observer) observer->on_output_change(result.interactions);
            }
            states[i] = next.initiator;
            states[j] = next.responder;
            --counts[p];
            --counts[q];
            ++counts[next.initiator];
            ++counts[next.responder];
        }

        if (result.interactions >= next_snapshot) {
            observer->on_snapshot(result.interactions,
                                  CountConfiguration::from_state_counts(counts));
            next_snapshot = options.snapshots.next_after(result.interactions);
        }

        if (options.stop_after_stable_outputs != 0 && result.last_output_change != 0 &&
            result.interactions - result.last_output_change >= options.stop_after_stable_outputs) {
            result.stop_reason = StopReason::kStableOutputs;
            break;
        }

        if (result.interactions >= next_check) {
            next_check = result.interactions + check_period;
            if (since_last_check != 0) {
                // Only re-test silence if something changed since last test.
                present.clear();
                for (State s = 0; s < counts.size(); ++s)
                    if (counts[s] > 0) present.push_back(s);
                silent = counts_silent(protocol, counts, present);
                since_last_check = 0;
                if (observer) observer->on_silence_check(result.interactions, silent);
            }
        }
    }

    if (!silent && result.interactions >= options.max_interactions) {
        // The budget can expire between silence checks; a final test keeps
        // the sound kSilent certificate from being misreported as kBudget.
        present.clear();
        for (State s = 0; s < counts.size(); ++s)
            if (counts[s] > 0) present.push_back(s);
        silent = counts_silent(protocol, counts, present);
        if (observer) observer->on_silence_check(result.interactions, silent);
    }
    if (silent) result.stop_reason = StopReason::kSilent;

    CountConfiguration final_config(protocol.num_states());
    for (State q = 0; q < counts.size(); ++q)
        if (counts[q] > 0) final_config.add(q, counts[q]);
    result.consensus = final_config.consensus_output(protocol);
    result.final_configuration = std::move(final_config);
    if (observer) observer->on_stop(result, seconds_since(wall_start));
    return result;
}

RunResult simulate_weighted(const TabulatedProtocol& protocol,
                            const AgentConfiguration& initial,
                            const std::vector<double>& weights, const RunOptions& options) {
    const std::size_t n = initial.size();
    require(n >= 2, "simulate_weighted: need at least two agents");
    require(weights.size() == n, "simulate_weighted: one weight per agent required");
    require(options.max_interactions > 0, "simulate_weighted: max_interactions must be positive");
    double total_weight = 0.0;
    for (double w : weights) {
        require(w > 0.0 && std::isfinite(w), "simulate_weighted: weights must be positive");
        total_weight += w;
    }

    // Cumulative weights for inverse-CDF sampling; the second draw rejects
    // collisions with the first (equivalent to renormalizing without i).
    std::vector<double> cumulative(n);
    double running = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        running += weights[i];
        cumulative[i] = running;
    }
    Rng rng(options.seed);
    const auto draw_agent = [&]() -> std::size_t {
        const double u = rng.uniform01() * total_weight;
        const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
        // Floating-point rounding can push u past cumulative.back(), in
        // which case lower_bound returns end(); clamp to the last agent.
        const auto index = static_cast<std::size_t>(it - cumulative.begin());
        return index < n ? index : n - 1;
    };
    // Draws an agent other than `exclude` exactly: u is drawn over the total
    // mass minus the excluded weight and mapped around that agent's
    // interval.  Equivalent to rejection sampling, but O(log n) even when
    // one weight dominates the total mass.
    const auto draw_agent_excluding = [&](std::size_t exclude) -> std::size_t {
        const double mass_before = cumulative[exclude] - weights[exclude];
        double u = rng.uniform01() * (total_weight - weights[exclude]);
        if (u >= mass_before) u += weights[exclude];
        const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
        auto index = static_cast<std::size_t>(it - cumulative.begin());
        if (index >= n) index = n - 1;
        if (index == exclude) index = exclude + 1 < n ? exclude + 1 : exclude - 1;
        return index;
    };

    std::vector<State> states = initial.states();
    std::vector<std::uint64_t> counts(protocol.num_states(), 0);
    for (State q : states) ++counts[q];

    const std::uint64_t check_period = options.silence_check_period != 0
                                           ? options.silence_check_period
                                           : std::max<std::uint64_t>(4 * n, 1024);

    RunResult result{CountConfiguration(protocol.num_states()), StopReason::kBudget, 0, 0, 0,
                     std::nullopt};

    RunObserver* const observer = options.observer;
    std::uint64_t next_snapshot =
        observer ? options.snapshots.first_index() : SnapshotSchedule::kNever;
    std::chrono::steady_clock::time_point wall_start;
    std::optional<CountConfiguration> initial_counts;
    if (observer) {
        wall_start = std::chrono::steady_clock::now();
        initial_counts.emplace(CountConfiguration::from_state_counts(counts));
        RunStartInfo info;
        info.engine = ObservedEngine::kWeighted;
        info.population = n;
        info.num_states = protocol.num_states();
        info.seed = options.seed;
        info.max_interactions = options.max_interactions;
        info.initial = &*initial_counts;
        info.protocol = &protocol;
        observer->on_start(info);
    }

    std::vector<State> present;
    for (State q = 0; q < counts.size(); ++q)
        if (counts[q] > 0) present.push_back(q);
    bool silent = counts_silent(protocol, counts, present);
    if (observer) observer->on_silence_check(0, silent);
    std::uint64_t next_check = check_period;
    std::uint64_t changed_since_check = 1;

    while (!silent && result.interactions < options.max_interactions) {
        const std::size_t i = draw_agent();
        // Rejection is cheap when weights are balanced, but when one weight
        // carries almost all the mass a collision loop could spin for an
        // unbounded number of draws; fall back to the exact exclusion draw.
        std::size_t j = draw_agent();
        for (int attempt = 0; j == i; ++attempt) {
            if (attempt >= 16) {
                j = draw_agent_excluding(i);
                break;
            }
            j = draw_agent();
        }
        ++result.interactions;

        const State p = states[i];
        const State q = states[j];
        const StatePair next = protocol.apply_fast(p, q);
        if (next.initiator != p || next.responder != q) {
            ++result.effective_interactions;
            changed_since_check = 1;
            if (protocol.output_fast(next.initiator) != protocol.output_fast(p) ||
                protocol.output_fast(next.responder) != protocol.output_fast(q)) {
                result.last_output_change = result.interactions;
                if (observer) observer->on_output_change(result.interactions);
            }
            states[i] = next.initiator;
            states[j] = next.responder;
            --counts[p];
            --counts[q];
            ++counts[next.initiator];
            ++counts[next.responder];
        }

        if (result.interactions >= next_snapshot) {
            observer->on_snapshot(result.interactions,
                                  CountConfiguration::from_state_counts(counts));
            next_snapshot = options.snapshots.next_after(result.interactions);
        }

        if (options.stop_after_stable_outputs != 0 && result.last_output_change != 0 &&
            result.interactions - result.last_output_change >= options.stop_after_stable_outputs) {
            result.stop_reason = StopReason::kStableOutputs;
            break;
        }
        if (result.interactions >= next_check) {
            next_check = result.interactions + check_period;
            if (changed_since_check != 0) {
                present.clear();
                for (State s = 0; s < counts.size(); ++s)
                    if (counts[s] > 0) present.push_back(s);
                silent = counts_silent(protocol, counts, present);
                changed_since_check = 0;
                if (observer) observer->on_silence_check(result.interactions, silent);
            }
        }
    }
    if (!silent && result.interactions >= options.max_interactions) {
        // Same budget-vs-check-period race as in simulate above.
        present.clear();
        for (State s = 0; s < counts.size(); ++s)
            if (counts[s] > 0) present.push_back(s);
        silent = counts_silent(protocol, counts, present);
        if (observer) observer->on_silence_check(result.interactions, silent);
    }
    if (silent) result.stop_reason = StopReason::kSilent;

    CountConfiguration final_config(protocol.num_states());
    for (State q = 0; q < counts.size(); ++q)
        if (counts[q] > 0) final_config.add(q, counts[q]);
    result.consensus = final_config.consensus_output(protocol);
    result.final_configuration = std::move(final_config);
    if (observer) observer->on_stop(result, seconds_since(wall_start));
    return result;
}

std::uint64_t default_budget(std::uint64_t population, double factor) {
    require(population >= 2, "default_budget: population too small");
    const double n = static_cast<double>(population);
    const double budget = factor * n * n * (std::log(n) + 1.0);
    return static_cast<std::uint64_t>(budget) + 1;
}

}  // namespace popproto
