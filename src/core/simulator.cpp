#include "core/simulator.h"

#include <cmath>
#include <vector>

#include "core/interaction_model.h"
#include "core/require.h"
#include "core/run_loop.h"

namespace popproto {

RunResult simulate(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                   const RunOptions& options) {
    require(initial.num_states() == protocol.num_states(),
            "simulate: configuration does not match protocol");
    require(initial.population_size() >= 2, "simulate: need at least two agents");
    require_engine_field(options, SimulationEngine::kAgentArray, "simulate");

    PairStepper<UniformPairModel, ObservedEngine::kAgentArray> stepper(
        protocol, AgentConfiguration::from_counts(initial).states(), UniformPairModel{},
        "simulate");
    return run_loop(stepper, protocol, options, "simulate");
}

RunResult simulate_weighted(const TabulatedProtocol& protocol,
                            const AgentConfiguration& initial,
                            const std::vector<double>& weights, const RunOptions& options) {
    const std::size_t n = initial.size();
    require(n >= 2, "simulate_weighted: need at least two agents");
    require(weights.size() == n, "simulate_weighted: one weight per agent required");
    require_engine_field(options, SimulationEngine::kAuto, "simulate_weighted");
    for (const double w : weights)
        require(w > 0.0 && std::isfinite(w), "simulate_weighted: weights must be positive");

    PairStepper<WeightedPairModel, ObservedEngine::kWeighted> stepper(
        protocol, initial.states(), WeightedPairModel(weights), "simulate_weighted");
    return run_loop(stepper, protocol, options, "simulate_weighted");
}

}  // namespace popproto
