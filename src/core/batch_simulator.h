// Count-based batch simulation engine (the Sect. 3.5 anonymity argument,
// turned into a performance tool).
//
// On the complete interaction graph agents are anonymous, so a run's
// observable behaviour depends only on the *multiset* of states.  This
// engine therefore simulates directly on the CountConfiguration vector
// instead of an expanded agent array:
//
//  * The ordered state pair (p, q) of the next interaction is sampled from
//    the count vector: P[(p, q)] = c_p (c_q - [p == q]) / (n (n - 1)).
//    Sampling walks a cumulative sum over the (at most |Q|) present states,
//    so one draw costs O(|Q|) independent of n, and memory is O(|Q|) plus
//    the protocol's delta table instead of O(n).
//  * Null-interaction skip: the engine maintains W, the number of ordered
//    agent pairs whose interaction would change the multiset (swaps and
//    identities are null).  Instead of burning one RNG draw per null
//    interaction, it samples the number of consecutive nulls before the
//    next effective interaction geometrically with success probability
//    W / (n (n - 1)) and advances the interaction counter in one jump.
//    The long convergence tail - where almost every pair is null - costs
//    O(1) per *effective* interaction instead of O(1) per interaction.
//  * W == 0 is exactly the silence predicate, so silence is detected at the
//    precise interaction after which no further change is possible;
//    RunOptions::silence_check_period is not needed and is ignored.
//  * Observation (core/observer.h): scheduled snapshot indices that fall
//    inside a geometric jump are emitted with the current (unchanged)
//    counts and stamped with their exact interaction index — null runs
//    change nothing, so the jump is clamped at each snapshot boundary
//    without consuming extra randomness, and a run's trajectory and
//    RunResult are bit-identical with and without an observer.
//
// The reported interaction counts, stop reasons, and final configurations
// are distributed exactly as in the agent-array `simulate` loop; only the
// RNG stream differs, so a fixed seed yields a different (equally valid)
// trajectory.  Two bookkeeping fields are interpreted multiset-wise:
// `effective_interactions` counts interactions that changed the multiset
// (the agent-array engine also counts pure swaps), and
// `last_output_change` records the last interaction that changed the
// multiset of outputs (not any individual agent's output).
//
// Cost model: O(|Q|^2) setup, O(|Q|) per effective interaction, O(1) per
// skipped null.  The agent-array engine remains preferable only when the
// effective fraction stays near 1 *and* |Q| is large; for the protocols in
// this repository the batch engine wins by orders of magnitude at large n
// (see bench_throughput).

#ifndef POPPROTO_CORE_BATCH_SIMULATOR_H
#define POPPROTO_CORE_BATCH_SIMULATOR_H

#include "core/configuration.h"
#include "core/simulator.h"
#include "core/tabulated_protocol.h"

namespace popproto {

/// Simulates `protocol` from `initial` under uniform random pairing using
/// the count-based batch engine.  Requires a population of at least 2 and
/// fewer than 2^32 agents, and options.engine in {kAuto, kCountBatch}.
/// Drop-in replacement for `simulate`: same options (silence_check_period
/// ignored), same result contract (see the file comment for the two
/// multiset-wise bookkeeping fields).  Runs on the shared run-loop kernel
/// (core/run_loop.h); checkpoint boundaries inside a geometric null skip are
/// materialized exactly, so suspend/resume is bit-identical here too.
RunResult simulate_counts(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                          const RunOptions& options);

/// Dispatches on `options.engine`: kCountBatch runs `simulate_counts`,
/// kCollapsedBatch runs `simulate_collapsed`, kAgentArray runs `simulate`.
/// kAuto selects by population size — agent array below
/// kAutoCountBatchThreshold, count-batch up to kAutoCollapsedThreshold,
/// collapsed beyond (see simulator.h for the measured crossovers); the
/// chosen engine is reported in RunResult::engine.
RunResult run_simulation(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                         const RunOptions& options);

}  // namespace popproto

#endif  // POPPROTO_CORE_BATCH_SIMULATOR_H
