// Protocol serialization.
//
// A simple line-based text format for protocols, so that designed or
// compiled protocols can be saved, diffed, and reloaded (e.g. golden files,
// or interchange with external tools).  Null transitions are implicit; only
// state-changing entries of delta are written, which keeps files compact for
// the typical sparse protocols.
//
// Format (one directive per line, '#' comments allowed):
//
//   popproto-protocol 1
//   sizes <num_states> <num_inputs> <num_outputs>
//   state <index> <name...>            (optional, any subset)
//   input <index> <initial_state> <name...>
//   outname <index> <name...>          (optional)
//   out <state> <output_symbol>
//   delta <p> <q> <p'> <q'>            (non-null entries only)
//   end

#ifndef POPPROTO_CORE_PROTOCOL_IO_H
#define POPPROTO_CORE_PROTOCOL_IO_H

#include <memory>
#include <string>

#include "core/tabulated_protocol.h"

namespace popproto {

/// Serializes `protocol` into the text format above.
std::string serialize_protocol(const TabulatedProtocol& protocol);

/// Parses the text format; throws std::invalid_argument with a line-numbered
/// message on malformed input.
std::unique_ptr<TabulatedProtocol> deserialize_protocol(const std::string& text);

}  // namespace popproto

#endif  // POPPROTO_CORE_PROTOCOL_IO_H
