#include "core/debug.h"

namespace popproto {

std::string describe_protocol(const TabulatedProtocol& protocol) {
    std::string text;
    text += "states (" + std::to_string(protocol.num_states()) + "):";
    for (State q = 0; q < protocol.num_states(); ++q) text += " " + protocol.state_name(q);
    text += "\ninputs  (" + std::to_string(protocol.num_input_symbols()) + "):";
    for (Symbol x = 0; x < protocol.num_input_symbols(); ++x) {
        text += " " + protocol.input_name(x) + "->" +
                protocol.state_name(protocol.initial_state(x));
    }
    text += "\noutputs (" + std::to_string(protocol.num_output_symbols()) + "):";
    for (State q = 0; q < protocol.num_states(); ++q) {
        text += " " + protocol.state_name(q) + ":" +
                protocol.output_name(protocol.output_fast(q));
    }
    text += "\ntransitions (non-null):\n";
    for (State p = 0; p < protocol.num_states(); ++p) {
        for (State q = 0; q < protocol.num_states(); ++q) {
            const StatePair next = protocol.apply_fast(p, q);
            if (next.initiator == p && next.responder == q) continue;
            text += "  (" + protocol.state_name(p) + ", " + protocol.state_name(q) + ") -> (" +
                    protocol.state_name(next.initiator) + ", " +
                    protocol.state_name(next.responder) + ")\n";
        }
    }
    return text;
}

namespace {

/// DOT-escapes a label (quotes and backslashes).
std::string escape(const std::string& label) {
    std::string escaped;
    for (char c : label) {
        if (c == '"' || c == '\\') escaped += '\\';
        escaped += c;
    }
    return escaped;
}

}  // namespace

std::string protocol_to_dot(const TabulatedProtocol& protocol) {
    std::string dot = "digraph protocol {\n  rankdir=LR;\n";
    for (State q = 0; q < protocol.num_states(); ++q) {
        dot += "  q" + std::to_string(q) + " [label=\"" + escape(protocol.state_name(q)) +
               "\\nO=" + escape(protocol.output_name(protocol.output_fast(q))) + "\"];\n";
    }
    for (State p = 0; p < protocol.num_states(); ++p) {
        for (State q = 0; q < protocol.num_states(); ++q) {
            const StatePair next = protocol.apply_fast(p, q);
            if (next.initiator == p && next.responder == q) continue;
            // Edge from the initiator's state to its successor, annotated
            // with the responder's half of the transition.
            dot += "  q" + std::to_string(p) + " -> q" + std::to_string(next.initiator) +
                   " [label=\"with " + escape(protocol.state_name(q)) + " -> " +
                   escape(protocol.state_name(next.responder)) + "\"];\n";
        }
    }
    dot += "}\n";
    return dot;
}

}  // namespace popproto
