#include "core/thread_pool.h"

#include "core/require.h"

namespace popproto {

ThreadPool::ThreadPool(std::size_t size) : size_(size) {
    require(size >= 1, "ThreadPool: size must be at least 1");
    workers_.reserve(size - 1);
    for (std::size_t w = 0; w + 1 < size; ++w)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    round_start_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run(std::size_t tasks, const std::function<void(std::size_t)>& fn) {
    if (tasks == 0) return;
    telemetry::PoolTelemetry* const telemetry = telemetry_;
    const std::uint64_t round_begin = telemetry != nullptr ? telemetry->now_ns() : 0;
    if (size_ == 1 || tasks == 1) {
        // Serial path with the same semantics as the parallel one: every
        // task executes, the first exception is rethrown after the batch.
        std::exception_ptr first_error;
        for (std::size_t i = 0; i < tasks; ++i) {
            if (telemetry != nullptr && i < telemetry->tasks()) telemetry->stamp_begin(i);
            try {
                fn(i);
            } catch (...) {
                if (!first_error) first_error = std::current_exception();
            }
            if (telemetry != nullptr && i < telemetry->tasks()) telemetry->stamp_end(i);
        }
        if (telemetry != nullptr) telemetry->fold_round(round_begin, telemetry->now_ns(), tasks);
        if (first_error) std::rethrow_exception(first_error);
        return;
    }

    std::uint64_t my_round = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        fn_ = &fn;
        tasks_ = tasks;
        next_task_ = 0;
        completed_ = 0;
        first_error_ = nullptr;
        my_round = ++round_;
    }
    round_start_.notify_all();

    drain_round(fn, my_round);  // the caller works its share too

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        round_done_.wait(lock, [&] { return completed_ == tasks_; });
        fn_ = nullptr;  // workers that wake late see no work for this round
        error = first_error_;
        first_error_ = nullptr;
    }
    // After the barrier every task's begin/end stamps are visible here, so
    // folding on the caller thread needs no further synchronization.
    if (telemetry != nullptr) telemetry->fold_round(round_begin, telemetry->now_ns(), tasks);
    if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)>* fn = nullptr;
        std::uint64_t my_round = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            round_start_.wait(
                lock, [&] { return stopping_ || (round_ != seen && fn_ != nullptr); });
            if (stopping_) return;
            seen = round_;
            my_round = round_;
            fn = fn_;
        }
        drain_round(*fn, my_round);
    }
}

void ThreadPool::drain_round(const std::function<void(std::size_t)>& fn,
                             std::uint64_t my_round) {
    // Stable for the whole round: set_telemetry only runs between rounds,
    // and this thread observed the round start after it.
    telemetry::PoolTelemetry* const telemetry = telemetry_;
    for (;;) {
        std::size_t task = 0;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            // A stale worker waking into a later round must not claim its
            // tasks with this round's function; the round check closes that
            // window (claims and round bumps share mutex_).
            if (round_ != my_round || next_task_ >= tasks_) return;
            task = next_task_++;
        }
        // Each task stamps only its own slot; run() reads the stamps after
        // the round barrier, so the writes race with nothing.
        if (telemetry != nullptr && task < telemetry->tasks()) telemetry->stamp_begin(task);
        try {
            fn(task);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_) first_error_ = std::current_exception();
        }
        if (telemetry != nullptr && task < telemetry->tasks()) telemetry->stamp_end(task);
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            ++completed_;
            if (completed_ == tasks_) round_done_.notify_all();
        }
    }
}

}  // namespace popproto
