#include "core/configuration.h"

#include "core/require.h"

namespace popproto {

CountConfiguration::CountConfiguration(std::size_t num_states) : counts_(num_states, 0) {
    require(num_states > 0, "CountConfiguration: empty state set");
}

CountConfiguration CountConfiguration::from_inputs(const Protocol& protocol,
                                                   const std::vector<Symbol>& inputs) {
    CountConfiguration config(protocol.num_states());
    for (Symbol x : inputs) {
        require(x < protocol.num_input_symbols(), "from_inputs: input symbol out of range");
        config.add(protocol.initial_state(x));
    }
    return config;
}

CountConfiguration CountConfiguration::from_input_counts(
    const Protocol& protocol, const std::vector<std::uint64_t>& symbol_counts) {
    require(symbol_counts.size() == protocol.num_input_symbols(),
            "from_input_counts: need one count per input symbol");
    CountConfiguration config(protocol.num_states());
    for (Symbol x = 0; x < symbol_counts.size(); ++x)
        if (symbol_counts[x] > 0) config.add(protocol.initial_state(x), symbol_counts[x]);
    return config;
}

CountConfiguration CountConfiguration::from_state_counts(std::vector<std::uint64_t> counts) {
    CountConfiguration config(counts.size());
    config.counts_ = std::move(counts);
    config.population_ = 0;
    for (std::uint64_t count : config.counts_) config.population_ += count;
    return config;
}

std::uint64_t CountConfiguration::count(State q) const {
    require(q < counts_.size(), "CountConfiguration: state out of range");
    return counts_[q];
}

void CountConfiguration::add(State q, std::uint64_t agents) {
    require(q < counts_.size(), "CountConfiguration: state out of range");
    counts_[q] += agents;
    population_ += agents;
}

void CountConfiguration::remove(State q, std::uint64_t agents) {
    require(q < counts_.size(), "CountConfiguration: state out of range");
    require(counts_[q] >= agents, "CountConfiguration: removing absent agents");
    counts_[q] -= agents;
    population_ -= agents;
}

void CountConfiguration::apply_interaction(const Protocol& protocol, State p, State q) {
    require(p < counts_.size() && q < counts_.size(), "apply_interaction: state out of range");
    const std::uint64_t needed = (p == q) ? 2 : 1;
    require(counts_[p] >= needed && counts_[q] >= 1,
            "apply_interaction: interacting agents are not present");
    const StatePair result = protocol.apply(p, q);
    counts_[p] -= 1;
    counts_[q] -= 1;
    counts_[result.initiator] += 1;
    counts_[result.responder] += 1;
}

std::vector<std::uint64_t> CountConfiguration::output_counts(const Protocol& protocol) const {
    std::vector<std::uint64_t> outputs(protocol.num_output_symbols(), 0);
    for (State q = 0; q < counts_.size(); ++q)
        if (counts_[q] > 0) outputs[protocol.output(q)] += counts_[q];
    return outputs;
}

std::optional<Symbol> CountConfiguration::consensus_output(const Protocol& protocol) const {
    if (population_ == 0) return std::nullopt;
    std::optional<Symbol> consensus;
    for (State q = 0; q < counts_.size(); ++q) {
        if (counts_[q] == 0) continue;
        const Symbol y = protocol.output(q);
        if (!consensus) {
            consensus = y;
        } else if (*consensus != y) {
            return std::nullopt;
        }
    }
    return consensus;
}

bool CountConfiguration::is_silent(const Protocol& protocol) const {
    for (State p = 0; p < counts_.size(); ++p) {
        if (counts_[p] == 0) continue;
        for (State q = 0; q < counts_.size(); ++q) {
            if (counts_[q] == 0) continue;
            if (p == q && counts_[p] < 2) continue;
            const StatePair result = protocol.apply(p, q);
            const bool multiset_preserved =
                (result.initiator == p && result.responder == q) ||
                (result.initiator == q && result.responder == p);
            if (!multiset_preserved) return false;
        }
    }
    return true;
}

std::size_t CountConfigurationHash::operator()(const CountConfiguration& config) const noexcept {
    std::size_t hash = 1469598103934665603ULL;  // FNV offset basis
    for (std::uint64_t count : config.counts()) {
        hash ^= static_cast<std::size_t>(count + 0x9e3779b97f4a7c15ULL);
        hash *= 1099511628211ULL;  // FNV prime
    }
    return hash;
}

AgentConfiguration AgentConfiguration::from_inputs(const Protocol& protocol,
                                                   const std::vector<Symbol>& inputs) {
    AgentConfiguration config;
    config.states_.reserve(inputs.size());
    for (Symbol x : inputs) {
        require(x < protocol.num_input_symbols(), "from_inputs: input symbol out of range");
        config.states_.push_back(protocol.initial_state(x));
    }
    return config;
}

AgentConfiguration AgentConfiguration::from_counts(const CountConfiguration& counts) {
    AgentConfiguration config;
    config.states_.reserve(counts.population_size());
    for (State q = 0; q < counts.num_states(); ++q)
        config.states_.insert(config.states_.end(), counts.count(q), q);
    return config;
}

AgentConfiguration AgentConfiguration::from_states(std::vector<State> states,
                                                   std::size_t num_states) {
    for (const State q : states)
        require(q < num_states, "from_states: state out of range");
    AgentConfiguration config;
    config.states_ = std::move(states);
    return config;
}

State AgentConfiguration::state(std::size_t agent) const {
    require(agent < states_.size(), "AgentConfiguration: agent out of range");
    return states_[agent];
}

void AgentConfiguration::set_state(std::size_t agent, State q) {
    require(agent < states_.size(), "AgentConfiguration: agent out of range");
    states_[agent] = q;
}

bool AgentConfiguration::apply_interaction(const Protocol& protocol, std::size_t initiator,
                                           std::size_t responder) {
    require(initiator < states_.size() && responder < states_.size(),
            "apply_interaction: agent out of range");
    require(initiator != responder, "apply_interaction: an agent cannot meet itself");
    const StatePair result = protocol.apply(states_[initiator], states_[responder]);
    const bool changed =
        result.initiator != states_[initiator] || result.responder != states_[responder];
    states_[initiator] = result.initiator;
    states_[responder] = result.responder;
    return changed;
}

CountConfiguration AgentConfiguration::to_counts(std::size_t num_states) const {
    CountConfiguration config(num_states);
    for (State q : states_) config.add(q);
    return config;
}

}  // namespace popproto
