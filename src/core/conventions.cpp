#include "core/conventions.h"

#include "core/require.h"

namespace popproto {

std::size_t IntegerInputConvention::arity() const {
    require(!symbol_values.empty(), "IntegerInputConvention: no symbols");
    return symbol_values.front().size();
}

std::vector<std::int64_t> IntegerInputConvention::decode(
    const std::vector<std::uint64_t>& symbol_counts) const {
    require(symbol_counts.size() == symbol_values.size(),
            "IntegerInputConvention::decode: one count per symbol required");
    const std::size_t k = arity();
    std::vector<std::int64_t> tuple(k, 0);
    for (std::size_t x = 0; x < symbol_values.size(); ++x) {
        require(symbol_values[x].size() == k, "IntegerInputConvention: ragged symbol values");
        for (std::size_t j = 0; j < k; ++j)
            tuple[j] += symbol_values[x][j] * static_cast<std::int64_t>(symbol_counts[x]);
    }
    return tuple;
}

std::size_t IntegerOutputConvention::arity() const {
    require(!symbol_values.empty(), "IntegerOutputConvention: no symbols");
    return symbol_values.front().size();
}

std::vector<std::int64_t> IntegerOutputConvention::decode(
    const OutputCounts& output_counts) const {
    require(output_counts.size() == symbol_values.size(),
            "IntegerOutputConvention::decode: one count per output symbol required");
    const std::size_t k = arity();
    std::vector<std::int64_t> tuple(k, 0);
    for (std::size_t y = 0; y < symbol_values.size(); ++y) {
        require(symbol_values[y].size() == k, "IntegerOutputConvention: ragged symbol values");
        for (std::size_t j = 0; j < k; ++j)
            tuple[j] += symbol_values[y][j] * static_cast<std::int64_t>(output_counts[y]);
    }
    return tuple;
}

std::optional<bool> decode_all_agents_predicate(const OutputCounts& output_counts) {
    require(output_counts.size() == 2, "decode_all_agents_predicate: Boolean outputs required");
    const bool any_false = output_counts[kOutputFalse] > 0;
    const bool any_true = output_counts[kOutputTrue] > 0;
    if (any_false && any_true) return std::nullopt;  // the paper's "bottom"
    return any_true;
}

bool decode_zero_nonzero_predicate(const OutputCounts& output_counts) {
    require(output_counts.size() == 2, "decode_zero_nonzero_predicate: Boolean outputs required");
    return output_counts[kOutputTrue] > 0;
}

}  // namespace popproto
