// Random-scheduling simulator (the conjugating-automata model, Sect. 6).
//
// At each step an ordered pair of distinct agents is chosen independently and
// uniformly at random from the complete interaction graph and delta is
// applied.  Random pairing guarantees fairness with probability 1, so any
// protocol that stably computes a predicate converges to the correct answer
// along almost every run; the simulator additionally measures *when*.
//
// All engines (this file, batch_simulator.h, graphs/graph_simulation.h,
// schedulers.h) share one run-loop kernel (core/run_loop.h) that owns every
// piece of run policy: the interaction budget, the periodic silence check,
// the stable-output window, observer dispatch, geometric-skip clamping at
// snapshot boundaries, and deterministic checkpoint/resume.  The entry
// points below only differ in how the next interaction is sampled.

#ifndef POPPROTO_CORE_SIMULATOR_H
#define POPPROTO_CORE_SIMULATOR_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/configuration.h"
#include "core/engine_monitor.h"
#include "core/observer.h"
#include "core/rng.h"
#include "core/tabulated_protocol.h"

namespace popproto {

namespace telemetry {
struct RunTelemetry;
class RunTelemetryCollector;
}  // namespace telemetry

class CheckpointSink;
struct RunCheckpoint;

/// Which execution engine carries out a run on the complete graph.
///
/// Resolution contract (the historical footgun — direct `simulate` /
/// `simulate_counts` calls silently ignoring the field — is gone): every
/// entry point now *checks* the field.  `run_simulation` dispatches on it
/// (`kAuto` selects the reference agent-array engine); the direct entry
/// points accept `kAuto` (the default) or their own value and throw on a
/// mismatch, so a RunOptions that asks for the batch engine can never be
/// executed by the agent-array loop unnoticed.  Engines without an enum
/// value (weighted, graph, scheduler) require `kAuto`.
enum class SimulationEngine {
    /// Defer to the call site: `run_simulation` selects by population size
    /// (agent array below kAutoCountBatchThreshold, count-batch up to
    /// kAutoCollapsedThreshold, the phase-adaptive dispatcher beyond —
    /// threads > 1 still pins the collapsed engine, the only parallel one),
    /// and each direct entry point runs itself.
    kAuto,
    /// Expanded agent array, one RNG draw per agent per interaction.  The
    /// reference implementation: O(n) memory, O(1) per interaction.
    kAgentArray,
    /// Count-based batch engine (batch_simulator.h): simulates directly on
    /// the multiset of states and skips runs of null interactions with
    /// exact geometric jumps.  O(|Q|) memory, O(|Q|) per *effective*
    /// interaction; the distribution of observables is identical.
    kCountBatch,
    /// Collapsed super-step engine (collapsed_simulator.h): processes the
    /// maximal collision-free run of ~sqrt(n) interactions in one O(|Q|^2)
    /// super-step of exact hypergeometric count splits — amortized
    /// O(|Q|^2 / sqrt(n)) per interaction.  Equivalence with the other
    /// engines is distributional (super-steps also make the *pathwise*
    /// trajectory sensitive to snapshot/checkpoint boundary placement; see
    /// collapsed_simulator.h).
    kCollapsedBatch,
    /// Phase-adaptive dispatcher (adaptive_simulator.h): starts on whichever
    /// of collapsed / count-batch the initial density favours and switches
    /// mid-run as the effective-interaction fraction crosses the hysteresis
    /// thresholds in RunOptions::adaptive — a checkpoint-shaped state
    /// transfer at a loop boundary, bit-identical to a manual splice at the
    /// same index.  Serial only (threads <= 1).
    kAdaptive,
};

/// `run_simulation` auto-selection crossovers (populations at or above the
/// threshold use the faster engine).  Chosen from bench_throughput /
/// bench_collapsed: the count-batch engine wins from a few thousand agents
/// (PR 1 measured ~70000x at n = 2^20 on sparse phases), and the collapsed
/// engine overtakes it on dense phases around n = 2^20 (>= 10x there, no
/// regression above ~2^12; below that count-batch's O(1)-per-skipped-null
/// geometric jumps win on sparse tails).  At or above
/// kAutoCollapsedThreshold the regime *within* a run matters more than its
/// size, so kAuto hands those runs to the phase-adaptive dispatcher
/// (adaptive_simulator.h), which starts on whichever side the initial
/// density favours and re-decides at runtime.
inline constexpr std::uint64_t kAutoCountBatchThreshold = std::uint64_t{1} << 12;
inline constexpr std::uint64_t kAutoCollapsedThreshold = std::uint64_t{1} << 20;

/// Knobs controlling a single simulated execution.
struct RunOptions {
    /// Hard cap on interactions; the run reports `hit_budget` if reached.
    /// 0 selects `default_budget(n)` for the population at hand.
    std::uint64_t max_interactions = 0;

    /// How often (in interactions) to test whether the configuration is
    /// silent.  0 selects max(4n, 1024) automatically.  Silence is a sound
    /// stopping rule: a silent configuration can never change again.
    std::uint64_t silence_check_period = 0;

    /// If nonzero, additionally stop once no agent's *output* has changed for
    /// this many consecutive interactions.  This is a heuristic stopping rule
    /// for protocols that never become silent (e.g. the Theorem 7 simulator,
    /// which swaps states forever); choose the window large enough for the
    /// experiment at hand.
    std::uint64_t stop_after_stable_outputs = 0;

    /// RNG seed for this run (ignored when `resume_from` is set: the
    /// checkpoint carries the exact RNG stream position instead).
    std::uint64_t seed = 1;

    /// Engine selection; see the SimulationEngine resolution contract.
    SimulationEngine engine = SimulationEngine::kAuto;

    /// Intra-run worker threads.  Only the collapsed engine parallelizes
    /// (collapsed_simulator.h: super-steps are sharded across this many
    /// workers); every other engine is inherently sequential and rejects
    /// values > 1.  0 resolves to the hardware concurrency (clamped by
    /// measure_trials so trials x shards never oversubscribes), 1 (the
    /// default) is the serial engine.  For a fixed (seed, threads) the run
    /// is bit-identical across machines and pool schedules; changing
    /// `threads` changes the consumed RNG streams, so results across thread
    /// counts agree in distribution, not bit for bit (threads >= 2 all
    /// consume the same *parent* stream, but shard streams differ).
    unsigned threads = 1;

    /// Run-trace instrumentation hook (core/observer.h); borrowed, may be
    /// nullptr (the default — costs one branch per interaction).  Observation
    /// never changes the RNG stream, so a run's RunResult is bit-identical
    /// with and without an observer.  When `measure_trials` fans trials
    /// across threads, the observer receives concurrent callbacks and must
    /// be thread-safe.
    RunObserver* observer = nullptr;

    /// Interaction indices at which `observer->on_snapshot` fires (ignored
    /// without an observer).  Defaults to no snapshots.
    SnapshotSchedule snapshots;

    /// If nonzero, deliver a deterministic RunCheckpoint (core/run_loop.h)
    /// to `checkpoint_sink` at every multiple of this interaction count.
    /// Checkpoints land *exactly* on the multiples — a boundary that falls
    /// inside the batch engine's geometric null skip is materialized by
    /// recording the not-yet-executed remainder of the skip — and never
    /// perturb the RNG stream, so a checkpointed run's RunResult is
    /// bit-identical to an unobserved one.  Requires `checkpoint_sink`.
    std::uint64_t checkpoint_every = 0;

    /// Receiver for the checkpoints above; borrowed, may be nullptr only
    /// when `checkpoint_every` is 0.
    CheckpointSink* checkpoint_sink = nullptr;

    /// Resume a suspended run from this checkpoint (borrowed) instead of
    /// starting fresh.  The checkpoint must come from the same engine,
    /// protocol shape, and population; the initial configuration argument
    /// of the entry point is only used for those validity checks.  A
    /// suspend-at-k + resume pair is bit-identical to the uninterrupted
    /// run on every engine.
    const RunCheckpoint* resume_from = nullptr;

    /// If nonzero, execute up to this *absolute* interaction index, deliver
    /// one checkpoint exactly there to `checkpoint_sink`, and stop with
    /// StopReason::kPaused — the primitive behind bounded work quanta (the
    /// service daemon slices a long run into pause_after segments and
    /// re-queues the checkpoint).  The pause checkpoint is the same
    /// checkpoint a checkpoint_every boundary at that index would deliver,
    /// so chained pause/resume segments are bit-identical to the
    /// uninterrupted run (super-step engines: to a run checkpointed at the
    /// same boundaries; see collapsed_simulator.h).  Requires
    /// `checkpoint_sink`, and must lie strictly beyond the resume point.
    /// A run that terminates (silent / stable outputs / budget) before the
    /// pause index simply reports its terminal result.
    std::uint64_t pause_after = 0;

    /// Borrowed cooperative-stop flag, polled once per loop iteration with
    /// a relaxed load (nullptr, the default, costs one predicted branch).
    /// When found true the kernel delivers a final checkpoint to
    /// `checkpoint_sink` (if one is configured) at the current loop
    /// boundary and stops with StopReason::kPaused.  This is how a signal
    /// handler (trace_run SIGINT/SIGTERM) or the service daemon's
    /// suspend/cancel commands interrupt an in-flight run without losing
    /// its exact state; resuming from the delivered checkpoint is
    /// bit-identical to never having stopped.
    const std::atomic<bool>* stop_flag = nullptr;

    /// Performance-telemetry collector (telemetry/telemetry.h); borrowed,
    /// may be nullptr (the default — costs one branch per probe site).
    /// Like observers, telemetry never touches the RNG stream or the
    /// configuration: the RunResult is bit-identical with and without a
    /// collector.  One collector instruments one run at a time (it resets
    /// itself in begin_run), so `measure_trials` rejects it.
    telemetry::RunTelemetryCollector* telemetry = nullptr;

    /// Phase-adaptive dispatcher tuning (engine == kAdaptive, or kAuto runs
    /// large enough that run_simulation routes them adaptively): hysteresis
    /// thresholds on the density signal x = rho * E[L], the monitor poll
    /// period, and the minimum dwell between switches (engine_monitor.h).
    AdaptiveOptions adaptive;

    /// Opt-in mean-field fast-forward for the adaptive dispatcher: when the
    /// run enters on the dense (collapsed) side, hand the dense bulk to the
    /// fluid-limit ODE and re-seed the stochastic run from the integrated
    /// densities at the predicted collapse of the signal below
    /// adaptive.exit_collapsed.  This is an *approximation* — the resumed
    /// trajectory is sampled from the mean-field densities, not the exact
    /// chain, and interaction counters advance by the fluid estimate — so
    /// it is excluded from every bit-identity contract and off by default.
    /// Requires `fluid_hook` (meanfield/fluid_assist.h supplies the
    /// standard one; core cannot depend on the meanfield library, hence the
    /// indirection).
    bool fluid_assist = false;

    /// The fast-forward implementation consulted when `fluid_assist` is
    /// set: returns a synthetic count-batch checkpoint to resume from, or
    /// nullopt to decline (e.g. the ODE never leaves the dense regime
    /// within its horizon, or the protocol has no usable fluid limit).
    std::function<std::optional<RunCheckpoint>(
        const TabulatedProtocol& protocol, const CountConfiguration& initial,
        const RunOptions& options)>
        fluid_hook;

    /// Internal plumbing of simulate_adaptive: the per-segment monitor the
    /// kernel polls at loop boundaries.  Not a user-facing option — the
    /// driver owns the monitor's lifetime; leave nullptr.
    EngineSwitchMonitor* switch_monitor = nullptr;
};

/// Why a run stopped.
enum class StopReason {
    kSilent,         ///< no interaction can change any state; outputs final
    kStableOutputs,  ///< heuristic output-stability window elapsed
    kBudget,         ///< max_interactions reached
    /// Suspended, not finished: RunOptions::pause_after was reached or
    /// RunOptions::stop_flag was raised; a checkpoint capturing the exact
    /// state was delivered to checkpoint_sink (when configured) and the run
    /// can be resumed bit-identically.
    kPaused,
};

/// Outcome of a simulated execution.
struct RunResult {
    CountConfiguration final_configuration;
    StopReason stop_reason = StopReason::kBudget;

    /// Total interactions performed, including null interactions.
    std::uint64_t interactions = 0;

    /// Interactions that changed at least one agent's state.
    std::uint64_t effective_interactions = 0;

    /// 1-based index of the last interaction that changed any agent's
    /// output symbol; 0 if outputs never changed.  For a run that converges
    /// to the correct stable output this is the empirical convergence time.
    std::uint64_t last_output_change = 0;

    /// Consensus output of the final configuration, if all agents agree.
    std::optional<Symbol> consensus;

    /// Which engine actually executed the run — `run_simulation`'s kAuto
    /// dispatch reports its size-based choice here (every entry point fills
    /// the field, so it is also a cross-check for pinned engines).
    ObservedEngine engine = ObservedEngine::kAgentArray;

    /// Finished performance telemetry when RunOptions::telemetry was set
    /// (phase timers, shard utilization, super-step/skip accounting);
    /// nullptr otherwise.  Shared with the collector, so it outlives both.
    std::shared_ptr<const telemetry::RunTelemetry> telemetry;
};

/// Simulates `protocol` from `initial` under uniform random pairing.
/// Requires a population of at least 2 agents and
/// options.engine in {kAuto, kAgentArray}.
RunResult simulate(const TabulatedProtocol& protocol, const CountConfiguration& initial,
                   const RunOptions& options);

/// A generous default interaction budget for experiments expecting
/// Theta(n^2 log n) convergence: `factor * n^2 * (ln n + 1)`.  This is the
/// budget a RunOptions with max_interactions == 0 resolves to
/// (core/run_loop.h owns that plumbing).
std::uint64_t default_budget(std::uint64_t population, double factor = 64.0);

/// Weighted sampling (the Sect. 8 open direction): the ordered pair (i, j),
/// i != j, interacts with probability proportional to
/// weights[i] * weights[j].  Uniform weights reduce to `simulate`.  The
/// paper conjectures that reasonable weights do not change computational
/// power; bench_weighted_sampling probes this empirically.  `initial` fixes
/// per-agent states (weights are per agent, so agents are not anonymous
/// here); all weights must be positive and finite.  Requires
/// options.engine == kAuto.
RunResult simulate_weighted(const TabulatedProtocol& protocol,
                            const AgentConfiguration& initial,
                            const std::vector<double>& weights, const RunOptions& options);

}  // namespace popproto

#endif  // POPPROTO_CORE_SIMULATOR_H
